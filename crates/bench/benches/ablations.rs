//! Ablation benches for the design choices DESIGN.md calls out:
//! quantile-grid resolution for the stump search, boosting iteration
//! count, and the locator's per-class model count (flat models only vs
//! flat + location + fusion).
//!
//! Criterion measures the *cost* of each choice; the matching *quality*
//! numbers come from the `experiments` harness (fig6/fig7/fig10), so a
//! cost/quality trade-off can be read off together.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nevermind_ml::boost::{BStump, BoostConfig};
use nevermind_ml::data::{Dataset, FeatureMatrix, FeatureMeta};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn synth(n_rows: usize, n_cols: usize, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let meta: Vec<FeatureMeta> =
        (0..n_cols).map(|c| FeatureMeta::continuous(format!("f{c}"))).collect();
    let mut values = Vec::with_capacity(n_rows * n_cols);
    let mut labels = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let s: f32 = rng.random();
        for c in 0..n_cols {
            values.push(if c < 3 { s + rng.random::<f32>() * 0.5 } else { rng.random() });
        }
        labels.push(s > 0.75);
    }
    Dataset::new(FeatureMatrix::new(n_rows, meta, values), labels)
}

/// Quantile-grid resolution: coarser grids are cheaper per round but less
/// precise thresholds. The harness's fig7 precision barely moves between
/// 64 and 256 bins, which justifies the 64-bin default.
fn bench_bin_resolution(c: &mut Criterion) {
    let data = synth(20_000, 30, 1);
    let mut g = c.benchmark_group("ablation_bins");
    g.sample_size(10);
    for &bins in &[16usize, 64, 256] {
        let cfg =
            BoostConfig { iterations: 60, n_bins: bins, parallel: false, ..BoostConfig::default() };
        g.bench_with_input(BenchmarkId::from_parameter(bins), &bins, |b, _| {
            b.iter(|| black_box(BStump::fit(&data, &cfg)))
        });
    }
    g.finish();
}

/// Iteration count: the paper fixes 800 by cross-validation; cost is
/// linear in T, so this bench pins the unit price of one extra round.
fn bench_iteration_count(c: &mut Criterion) {
    let data = synth(20_000, 30, 2);
    let mut g = c.benchmark_group("ablation_iterations");
    g.sample_size(10);
    for &iters in &[25usize, 100, 400] {
        let cfg = BoostConfig { iterations: iters, parallel: false, ..BoostConfig::default() };
        g.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, _| {
            b.iter(|| black_box(BStump::fit(&data, &cfg)))
        });
    }
    g.finish();
}

/// Smoothing choice: the Schapire–Singer ε barely costs anything but
/// prevents infinite scores; this pins the (absence of) overhead.
fn bench_smoothing(c: &mut Criterion) {
    let data = synth(20_000, 30, 3);
    let mut g = c.benchmark_group("ablation_smoothing");
    g.sample_size(10);
    for (name, smoothing) in [("default_1_over_2n", None), ("fixed_1e-3", Some(1e-3))] {
        let cfg =
            BoostConfig { iterations: 60, smoothing, parallel: false, ..BoostConfig::default() };
        g.bench_function(name, |b| b.iter(|| black_box(BStump::fit(&data, &cfg))));
    }
    g.finish();
}

criterion_group!(benches, bench_bin_resolution, bench_iteration_count, bench_smoothing);
criterion_main!(benches);
