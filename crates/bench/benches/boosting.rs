//! Criterion benches for the BStump training path: quantile binning,
//! single-round stump search, and full training throughput.
//!
//! The paper trains 800 iterations on 1M records in ~2h on a 2009 server;
//! these benches track the per-iteration cost that claim scales from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nevermind_ml::boost::{BStump, BoostConfig};
use nevermind_ml::data::{Dataset, FeatureMatrix, FeatureMeta};
use nevermind_ml::stump::{best_stump, BinnedDataset};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn synth(n_rows: usize, n_cols: usize, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let meta: Vec<FeatureMeta> =
        (0..n_cols).map(|c| FeatureMeta::continuous(format!("f{c}"))).collect();
    let mut values = Vec::with_capacity(n_rows * n_cols);
    let mut labels = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let signal: f32 = rng.random();
        for c in 0..n_cols {
            let v = if c == 0 { signal } else { rng.random() };
            values.push(if rng.random_bool(0.05) { f32::NAN } else { v });
        }
        labels.push(signal > 0.8 && rng.random_bool(0.9));
    }
    Dataset::new(FeatureMatrix::new(n_rows, meta, values), labels)
}

fn bench_binning(c: &mut Criterion) {
    let mut g = c.benchmark_group("binning");
    g.sample_size(10);
    for &n in &[10_000usize, 50_000] {
        let data = synth(n, 25, 1);
        g.bench_with_input(BenchmarkId::new("bin_25_cols", n), &n, |b, _| {
            b.iter(|| black_box(BinnedDataset::from_matrix(&data.x, 64)))
        });
    }
    g.finish();
}

fn bench_stump_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("stump_search");
    g.sample_size(20);
    for &n in &[10_000usize, 50_000] {
        let data = synth(n, 25, 2);
        let binned = BinnedDataset::from_matrix(&data.x, 64);
        let features: Vec<usize> = (0..25).collect();
        let w = vec![1.0 / n as f64; n];
        g.bench_with_input(BenchmarkId::new("one_round_25_cols", n), &n, |b, _| {
            b.iter(|| black_box(best_stump(&binned, &features, &data.y, &w, 1e-6)))
        });
    }
    g.finish();
}

fn bench_training(c: &mut Criterion) {
    let mut g = c.benchmark_group("training");
    g.sample_size(10);
    let data = synth(20_000, 40, 3);
    for &iters in &[50usize, 200] {
        let cfg = BoostConfig { iterations: iters, parallel: false, ..BoostConfig::default() };
        g.bench_with_input(BenchmarkId::new("bstump_20k_rows_40_cols", iters), &iters, |b, _| {
            b.iter(|| black_box(BStump::fit(&data, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_binning, bench_stump_search, bench_training);
criterion_main!(benches);
