//! Criterion benches for the Table-3 feature encoder: base encoding
//! throughput (rows/sec) and derived-feature materialization.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nevermind::pipeline::ExperimentData;
use nevermind_dslsim::SimConfig;
use nevermind_features::encode::{all_products, derive, EncoderConfig};
use std::hint::black_box;

fn data() -> ExperimentData {
    let mut cfg = SimConfig::small(7);
    cfg.n_lines = 4_000;
    cfg.days = 270;
    ExperimentData::simulate(cfg)
}

fn bench_encode(c: &mut Criterion) {
    let data = data();
    let encoder = data.encoder(EncoderConfig::default());
    let day = 30 * 7 + 6;

    let mut g = c.benchmark_group("encode_base");
    g.sample_size(10);
    g.throughput(Throughput::Elements(data.config.n_lines as u64));
    g.bench_function("one_saturday_4k_lines", |b| b.iter(|| black_box(encoder.encode(&[day]))));
    g.finish();
}

fn bench_derive(c: &mut Criterion) {
    let data = data();
    let encoder = data.encoder(EncoderConfig::default());
    let base = encoder.encode(&[30 * 7 + 6]);
    let products = all_products(&base);
    let chunk = &products[..256.min(products.len())];

    let mut g = c.benchmark_group("derive_products");
    g.sample_size(10);
    g.throughput(Throughput::Elements((base.data.len() * chunk.len()) as u64));
    g.bench_function("256_products_4k_rows", |b| b.iter(|| black_box(derive(&base, chunk))));
    g.finish();
}

criterion_group!(benches, bench_encode, bench_derive);
criterion_main!(benches);
