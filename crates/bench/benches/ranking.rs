//! Criterion benches for population ranking — the paper's operational
//! claim that scoring several million lines takes under 15 minutes.
//! We measure lines/second on the trained model so the claim can be
//! extrapolated to any population.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nevermind::pipeline::{ExperimentData, SplitSpec};
use nevermind::predictor::{PredictorConfig, TicketPredictor};
use nevermind_dslsim::SimConfig;
use std::hint::black_box;

struct Fixture {
    data: ExperimentData,
    split: SplitSpec,
    predictor: TicketPredictor,
}

fn fixture() -> Fixture {
    let mut sim = SimConfig::small(11);
    sim.n_lines = 4_000;
    sim.days = 270;
    let data = ExperimentData::simulate(sim);
    let split = SplitSpec::paper_like(&data).expect("horizon fits the protocol");
    let cfg =
        PredictorConfig { iterations: 120, selection_row_cap: 8_000, ..PredictorConfig::default() };
    let (predictor, _) =
        TicketPredictor::fit(&data, &split, &cfg).expect("well-formed training data");
    Fixture { data, split, predictor }
}

fn bench_rank_population(c: &mut Criterion) {
    let f = fixture();
    let n_rows = f.data.config.n_lines * f.split.test_days.len();

    let mut g = c.benchmark_group("rank_population");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n_rows as u64));
    g.bench_function("encode_assemble_score_sort", |b| {
        b.iter(|| black_box(f.predictor.rank(&f.data, &f.split.test_days)))
    });
    g.finish();
}

fn bench_score_only(c: &mut Criterion) {
    let f = fixture();
    let encoder = f.data.encoder(nevermind_features::encode::EncoderConfig::default());
    let base = encoder.encode(&f.split.test_days);
    let assembled = f.predictor.assemble(&base);

    let mut g = c.benchmark_group("score_only");
    g.sample_size(20);
    g.throughput(Throughput::Elements(assembled.len() as u64));
    g.bench_function("margins_over_assembled", |b| {
        b.iter(|| black_box(f.predictor.model().margins(&assembled.x)))
    });
    g.finish();
}

criterion_group!(benches, bench_rank_population, bench_score_only);
criterion_main!(benches);
