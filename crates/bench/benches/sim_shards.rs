//! Sharded plant stepping: wall-clock scaling of `World::run` with the
//! shard count.
//!
//! The simulator partitions the plant by DSLAM subtree; each shard owns its
//! lines' state and steps on its own scoped thread, with per-day buffer
//! merges (see DESIGN.md "Sharded plant"). The output is bit-identical for
//! every shard count — pinned by `crates/dslsim/tests/sharding.rs` — so
//! this bench measures pure execution policy: how much wall clock the
//! barrier-and-merge structure recovers on the available cores.
//!
//! Like `weekly_rerank`, samples are interleaved round-robin across shard
//! counts so slow machine-state drift is shared rather than landing on
//! whichever variant runs first.
//!
//! # Refreshing `BENCH_sim.json`
//!
//! ```sh
//! cargo bench -p nevermind-bench --bench sim_shards | tee /tmp/sim_shards.log
//! # the million-line row (long; budget RAM accordingly):
//! NEVERMIND_BENCH_LINES=1000000 NEVERMIND_BENCH_SAMPLES=1 \
//!     cargo bench -p nevermind-bench --bench sim_shards
//! ```
//!
//! then copy each median into `results.<lines>.shards_<n>_ms` of
//! `BENCH_sim.json` and update `context` if the hardware changed. On a
//! single-core box the shard counts tie (scoped threads time-slice one
//! CPU); record the honest numbers with `context.cores` so readers can
//! tell scaling data from serialization overhead data.

use nevermind_dslsim::{SimConfig, World};
use std::hint::black_box;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    let mid = s.len() / 2;
    if s.len() % 2 == 1 {
        s[mid]
    } else {
        (s[mid - 1] + s[mid]) / 2.0
    }
}

fn main() {
    let n_lines = env_usize("NEVERMIND_BENCH_LINES", 100_000);
    let samples = env_usize("NEVERMIND_BENCH_SAMPLES", 3);
    let mut cfg = SimConfig::small(0xB51D);
    cfg.n_lines = n_lines;
    cfg.days = 364; // 52 weeks: the ISSUE's operational-year yardstick.

    println!(
        "== sim_shards @ {n_lines} lines, {} days, {samples} paired samples, shards {SHARD_COUNTS:?} ==",
        cfg.days
    );
    let mut timings: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); SHARD_COUNTS.len()];
    // One untimed warm-up at one shard so page-cache/allocator first-touch
    // costs are not attributed to the first timed variant.
    black_box(World::generate(cfg.clone()).run());
    for _ in 0..samples {
        for (vi, &shards) in SHARD_COUNTS.iter().enumerate() {
            let start = Instant::now();
            let out = World::generate(cfg.clone()).with_shards(shards).run();
            let ms = start.elapsed().as_secs_f64() * 1e3;
            black_box(out.measurements.len());
            timings[vi].push(ms);
        }
    }
    let mut base = f64::NAN;
    for (vi, &shards) in SHARD_COUNTS.iter().enumerate() {
        let med = median(&timings[vi]);
        if shards == 1 {
            base = med;
        }
        let all: Vec<String> = timings[vi].iter().map(|t| format!("{t:.0}")).collect();
        println!(
            "sim_shards/{n_lines}/shards_{shards}: median {med:.1} ms  speedup {:.2}x  (samples: {})",
            base / med,
            all.join(", ")
        );
    }
}
