//! Criterion benches for the DSL-plant simulator: world generation and
//! full-year throughput at several population sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nevermind_dslsim::{SimConfig, World};
use std::hint::black_box;

fn cfg(n_lines: usize, days: u32, seed: u64) -> SimConfig {
    SimConfig { seed, n_lines, days, ..SimConfig::default() }
}

fn bench_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("world_generate");
    g.sample_size(10);
    for &n in &[2_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(World::generate(cfg(n, 120, 1))))
        });
    }
    g.finish();
}

fn bench_run_quarter(c: &mut Criterion) {
    let mut g = c.benchmark_group("world_run_90_days");
    g.sample_size(10);
    for &n in &[2_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(World::generate(cfg(n, 90, 2)).run()))
        });
    }
    g.finish();
}

fn bench_step_day(c: &mut Criterion) {
    let mut g = c.benchmark_group("world_step_day");
    g.sample_size(20);
    g.bench_function("10k_lines_one_week", |b| {
        b.iter_batched(
            || World::generate(cfg(10_000, 120, 3)),
            |mut w| {
                for _ in 0..7 {
                    w.step_day();
                }
                black_box(w.day())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_generate, bench_run_quarter, bench_step_day);
criterion_main!(benches);
