//! Weekly population re-ranking: the operational loop's hot path.
//!
//! Every simulated Saturday the proactive policy re-ranks the whole line
//! population and dispatches the top-budget. The original implementation
//! cloned the accumulated logs, rebuilt the batch encoder's indexes,
//! walked every stump per row serially and fully sorted the population —
//! every single week, at a cost growing with elapsed time. The incremental
//! engine ([`WeeklyScorer`]) ingests only each week's fresh events into
//! rolling per-line state, scores through compiled lookup tables on scoped
//! threads, and partially selects the budgeted head.
//!
//! Both paths produce identical dispatch lists (pinned by tests in the
//! `scoring` and `incremental` modules); this bench measures 20 consecutive
//! Saturdays at 10k- and 100k-line populations.
//!
//! # Paired, interleaved measurement
//!
//! This bench does *not* use the criterion stand-in: measuring each variant
//! in its own block let slow machine-state drift (frequency scaling, cache
//! and page warm-up) land entirely on whichever variant ran first, and a
//! committed snapshot once showed `incremental_instrumented` *faster* than
//! `incremental` — an artifact, not a result. Instead the harness runs the
//! variants round-robin: sample 0 of every variant, then sample 1 of every
//! variant, and so on, so drift is shared and per-sample deltas pair up.
//! Medians of the paired samples are what `BENCH_scoring.json` records.
//!
//! # Refreshing `BENCH_scoring.json`
//!
//! ```sh
//! cargo bench -p nevermind-bench --bench weekly_rerank | tee /tmp/weekly.log
//! ```
//!
//! then copy each reported median into the matching
//! `results.<population>.<variant>` entry of `BENCH_scoring.json` (medians
//! in milliseconds), update `context` if the hardware changed, and
//! sanity-check the three overhead budgets the README promises:
//! `incremental_instrumented` within ~2% of `incremental`,
//! `incremental_profiled` (metrics plus the continuous span profiler
//! sweeping at its default cadence) within 5%, `incremental_traced`
//! (metrics *and* decision-provenance tracing live) within 5%, and
//! `incremental_history` (metrics plus the history ring folding a full
//! registry snapshot on every ranked Saturday) within 5%. Run on an
//! otherwise idle machine.

use nevermind::pipeline::{ExperimentData, SplitSpec};
use nevermind::predictor::{PredictorConfig, TicketPredictor};
use nevermind::provenance::emit_week_trace;
use nevermind::scoring::WeeklyScorer;
use nevermind_dslsim::topology::Topology;
use nevermind_dslsim::{SimConfig, SimOutput, World};
use nevermind_ml::rank::argsort_desc;
use std::hint::black_box;
use std::time::Instant;

const WEEKS: usize = 20;

/// Trains one predictor on a small world; the bench then applies it to
/// larger populations (features are per-line, so the model transfers).
fn trained_predictor() -> TicketPredictor {
    let data = ExperimentData::simulate(SimConfig::small(11));
    let split = SplitSpec::paper_like(&data).expect("horizon fits the protocol");
    let cfg =
        PredictorConfig { iterations: 120, selection_row_cap: 8_000, ..PredictorConfig::default() };
    TicketPredictor::fit(&data, &split, &cfg).expect("well-formed training data").0
}

struct Population {
    sim_config: SimConfig,
    topology: Topology,
    output: SimOutput,
    /// The 20 Saturdays being re-ranked, ascending.
    saturdays: Vec<u32>,
    budget: usize,
}

fn population(n_lines: usize) -> Population {
    let mut sim_config = SimConfig::small(12);
    sim_config.n_lines = n_lines;
    sim_config.days = 420;
    let world = World::generate(sim_config.clone());
    let topology = world.topology().clone();
    let output = world.run();
    let saturdays: Vec<u32> = (6..output.days)
        .step_by(7)
        .collect::<Vec<_>>()
        .split_off((output.days as usize / 7).saturating_sub(WEEKS));
    assert_eq!(saturdays.len(), WEEKS);
    let budget = PredictorConfig::default().budget(n_lines);
    Population { sim_config, topology, output, saturdays, budget }
}

/// Log prefixes visible at the end of `day` (global logs are day-ordered).
fn frontier(out: &SimOutput, day: u32) -> (usize, usize) {
    (
        out.measurements.partition_point(|m| m.day <= day),
        out.tickets.partition_point(|t| t.day <= day),
    )
}

/// The pre-incremental weekly path, as `run_proactive_trial` used to do it:
/// clone the world's accumulated output (all log streams, as
/// `world.output().clone()` did), rebuild the batch encoder over it, score
/// serially, fully sort, take the budget head.
fn rebuild_each_week(p: &Population, predictor: &TicketPredictor) -> usize {
    let mut dispatched = 0;
    for &day in &p.saturdays {
        let (m_end, t_end) = frontier(&p.output, day);
        let data = ExperimentData {
            config: p.sim_config.clone(),
            topology: p.topology.clone(),
            output: SimOutput {
                measurements: p.output.measurements[..m_end].to_vec(),
                tickets: p.output.tickets[..t_end].to_vec(),
                notes: p.output.notes[..p.output.notes.partition_point(|n| n.day <= day)].to_vec(),
                outage_events: p.output.outage_events.clone(),
                traffic: p.output.traffic.clone(),
                ivr_calls: p.output.ivr_calls
                    [..p.output.ivr_calls.partition_point(|c| c.day <= day)]
                    .to_vec(),
                churn_events: p.output.churn_events
                    [..p.output.churn_events.partition_point(|c| c.day <= day)]
                    .to_vec(),
                days: day + 1,
            },
        };
        let ranking = predictor.rank(&data, &[day]);
        dispatched += argsort_desc(&ranking.probabilities).into_iter().take(p.budget).count();
    }
    dispatched
}

/// The incremental weekly path: ingest the fresh suffix, encode from
/// rolling state, score through compiled LUTs in parallel, partially select.
fn incremental(p: &Population, predictor: &TicketPredictor) -> usize {
    let mut scorer = WeeklyScorer::new(predictor, &p.topology.lines);
    let mut dispatched = 0;
    for &day in &p.saturdays {
        let (m_end, t_end) = frontier(&p.output, day);
        scorer.observe(&p.output.measurements[..m_end], &p.output.tickets[..t_end]);
        dispatched += scorer.top_lines(day, p.budget).len();
    }
    dispatched
}

/// The incremental path with decision-provenance tracing live:
/// `emit_week_trace` borrows the week's frame from the scorer's feature
/// store (no extra materialization) and writes the dispatch-cutoff, score,
/// stump, calibrate and rank events for the dispatched head plus the
/// reservoir sample — what `trial --trace` pays.
fn incremental_traced(p: &Population, predictor: &TicketPredictor) -> usize {
    let mut scorer = WeeklyScorer::new(predictor, &p.topology.lines);
    let mut dispatched = 0;
    for &day in &p.saturdays {
        let (m_end, t_end) = frontier(&p.output, day);
        scorer.observe(&p.output.measurements[..m_end], &p.output.tickets[..t_end]);
        let ranking = scorer.rank_week(day);
        emit_week_trace(&scorer, predictor, &ranking, p.budget, day);
        dispatched += ranking.top_rows(p.budget).len();
    }
    dispatched
}

/// The incremental path with the metrics-history ring live: after each
/// ranked Saturday, `history::tick` folds a full registry snapshot into
/// the day/week window rings — the snapshot cadence `--history on` adds
/// to the operational loop (in the real trial the tick runs per simulated
/// day; the weekly fold here is the one that lands on the scoring path).
fn incremental_history(p: &Population, predictor: &TicketPredictor) -> usize {
    let mut scorer = WeeklyScorer::new(predictor, &p.topology.lines);
    let mut dispatched = 0;
    for &day in &p.saturdays {
        let (m_end, t_end) = frontier(&p.output, day);
        scorer.observe(&p.output.measurements[..m_end], &p.output.tickets[..t_end]);
        dispatched += scorer.top_lines(day, p.budget).len();
        nevermind_obs::history::tick(u64::from(day));
    }
    dispatched
}

/// Milliseconds of one timed call.
fn time_ms(f: &mut dyn FnMut() -> usize) -> f64 {
    let start = Instant::now();
    black_box(f());
    start.elapsed().as_secs_f64() * 1e3
}

fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    let mid = s.len() / 2;
    if s.len() % 2 == 1 {
        s[mid]
    } else {
        (s[mid - 1] + s[mid]) / 2.0
    }
}

/// Runs every variant `samples` times, interleaved round-robin, and prints
/// each variant's median (plus all samples, for eyeballing drift).
fn run_paired(n_lines: usize, samples: usize, variants: &mut [(&str, &mut dyn FnMut() -> usize)]) {
    // One untimed warm-up pass per variant so first-touch costs (page
    // faults, lazy allocations, branch history) are not attributed to
    // whichever variant happens to run first.
    for (_, f) in variants.iter_mut() {
        black_box(f());
    }
    let mut timings: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); variants.len()];
    for _ in 0..samples {
        for (vi, (_, f)) in variants.iter_mut().enumerate() {
            timings[vi].push(time_ms(f));
        }
    }
    let mut medians = Vec::with_capacity(variants.len());
    for (vi, (name, _)) in variants.iter().enumerate() {
        let med = median(&timings[vi]);
        medians.push((*name, med));
        let all: Vec<String> = timings[vi].iter().map(|t| format!("{t:.1}")).collect();
        println!(
            "weekly_rerank/{name}/{n_lines}: median {med:.3} ms  (samples: {})",
            all.join(", ")
        );
    }
    // Paired deltas against the plain incremental path.
    if let Some(&(_, base)) = medians.iter().find(|(n, _)| *n == "incremental") {
        for &(name, med) in &medians {
            if name != "incremental" && name != "rebuild_each_week" {
                println!(
                    "weekly_rerank/{name}/{n_lines}: overhead vs incremental {:+.2}%",
                    (med / base - 1.0) * 100.0
                );
            }
        }
    }
}

fn main() {
    let predictor = trained_predictor();
    // The million-line row is opt-in (`NEVERMIND_BENCH_1M=1`): simulating
    // the population alone takes minutes and several GB, and the rebuild
    // baseline at that scale is minutes *per Saturday* — it exists to put a
    // number on the ISSUE's million-line operational year, not for CI.
    let mut populations = vec![10_000usize, 100_000];
    if std::env::var_os("NEVERMIND_BENCH_1M").is_some() {
        populations.push(1_000_000);
    }
    for n_lines in populations {
        let p = population(n_lines);
        // The incremental variants are fast enough that their medians are
        // noise-bound, not time-bound — spend samples freely at 10k.
        let samples = if n_lines >= 100_000 { 3 } else { 11 };
        println!(
            "\n== weekly_rerank @ {n_lines} lines, {WEEKS} weeks, {samples} paired samples =="
        );
        let mut rebuild = || rebuild_each_week(&p, &predictor);
        let mut incr = || incremental(&p, &predictor);
        // Metrics registry live for the whole call: spans, counters and
        // histograms all record. The paired delta against `incremental` is
        // the instrumentation overhead on the hot path (budgeted < 2%).
        let mut instrumented = || {
            nevermind_obs::set_enabled(true);
            let n = incremental(&p, &predictor);
            nevermind_obs::set_enabled(false);
            n
        };
        // Metrics live *and* the continuous span profiler sweeping at the
        // CLI's default cadence: the paired delta against `incremental`
        // is what `--profile` costs the hot path (budgeted < 5%).
        // Start/stop per sample mirrors the CLI, which brings the sampler
        // up for the whole run.
        let mut profiled = || {
            nevermind_obs::set_enabled(true);
            nevermind_obs::profile::global()
                .start(nevermind_obs::profile::Profiler::DEFAULT_INTERVAL)
                .expect("sampler thread starts");
            let n = incremental(&p, &predictor);
            nevermind_obs::profile::global().stop();
            nevermind_obs::set_enabled(false);
            n
        };
        // Metrics *and* tracing live; the ring is reset each call so every
        // sample pays the same allocation pattern.
        let mut traced = || {
            nevermind_obs::set_enabled(true);
            nevermind_obs::trace::set_enabled(true);
            nevermind_obs::trace::global().reset();
            let n = incremental_traced(&p, &predictor);
            nevermind_obs::trace::set_enabled(false);
            nevermind_obs::set_enabled(false);
            n
        };
        // Metrics *and* the history ring live; the ring is reset each call
        // so every sample folds the same window structure from scratch.
        let mut history = || {
            nevermind_obs::set_enabled(true);
            nevermind_obs::history::global().reset();
            nevermind_obs::history::set_enabled(true);
            let n = incremental_history(&p, &predictor);
            nevermind_obs::history::set_enabled(false);
            nevermind_obs::set_enabled(false);
            n
        };
        // The rebuild baseline at 1M lines costs minutes per Saturday and
        // its asymptotics are already pinned by the 10k/100k rows — the
        // million-line row measures only the incremental engine.
        let mut variants: Vec<(&str, &mut dyn FnMut() -> usize)> = Vec::new();
        if n_lines < 1_000_000 {
            variants.push(("rebuild_each_week", &mut rebuild));
        }
        variants.push(("incremental", &mut incr));
        variants.push(("incremental_instrumented", &mut instrumented));
        variants.push(("incremental_profiled", &mut profiled));
        variants.push(("incremental_traced", &mut traced));
        variants.push(("incremental_history", &mut history));
        run_paired(n_lines, samples, &mut variants);
    }
}
