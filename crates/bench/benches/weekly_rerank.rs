//! Weekly population re-ranking: the operational loop's hot path.
//!
//! Every simulated Saturday the proactive policy re-ranks the whole line
//! population and dispatches the top-budget. The original implementation
//! cloned the accumulated logs, rebuilt the batch encoder's indexes,
//! walked every stump per row serially and fully sorted the population —
//! every single week, at a cost growing with elapsed time. The incremental
//! engine ([`WeeklyScorer`]) ingests only each week's fresh events into
//! rolling per-line state, scores through compiled lookup tables on scoped
//! threads, and partially selects the budgeted head.
//!
//! Both paths produce identical dispatch lists (pinned by tests in the
//! `scoring` and `incremental` modules); this bench measures 20 consecutive
//! Saturdays at 10k- and 100k-line populations.
//!
//! # Refreshing `BENCH_scoring.json`
//!
//! The repo root carries `BENCH_scoring.json`, a committed snapshot of this
//! bench's medians (the "before" `rebuild_each_week` path, the "after"
//! `incremental` path, and `incremental_instrumented` — the same path with
//! the metrics registry live, whose delta against `incremental` is the
//! instrumentation overhead). To refresh it after touching the scoring or
//! observability hot paths:
//!
//! ```sh
//! cargo bench -p nevermind-bench --bench weekly_rerank | tee /tmp/weekly.log
//! ```
//!
//! then copy each reported median into the matching
//! `results.<population>.<variant>` entry of `BENCH_scoring.json` (medians
//! in milliseconds; the throughput lines are derived, don't store them),
//! update `context` if the hardware changed, and sanity-check that
//! `incremental_instrumented` stays within ~2% of `incremental` — that
//! budget is what the README's observability section promises. Run on an
//! otherwise idle machine; the vendored criterion stand-in reports the
//! median of a small fixed sample count, so background load skews it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nevermind::pipeline::{ExperimentData, SplitSpec};
use nevermind::predictor::{PredictorConfig, TicketPredictor};
use nevermind::scoring::WeeklyScorer;
use nevermind_dslsim::topology::Topology;
use nevermind_dslsim::{SimConfig, SimOutput, World};
use nevermind_ml::rank::argsort_desc;
use std::hint::black_box;

const WEEKS: usize = 20;

/// Trains one predictor on a small world; the bench then applies it to
/// larger populations (features are per-line, so the model transfers).
fn trained_predictor() -> TicketPredictor {
    let data = ExperimentData::simulate(SimConfig::small(11));
    let split = SplitSpec::paper_like(&data).expect("horizon fits the protocol");
    let cfg =
        PredictorConfig { iterations: 120, selection_row_cap: 8_000, ..PredictorConfig::default() };
    TicketPredictor::fit(&data, &split, &cfg).expect("well-formed training data").0
}

struct Population {
    sim_config: SimConfig,
    topology: Topology,
    output: SimOutput,
    /// The 20 Saturdays being re-ranked, ascending.
    saturdays: Vec<u32>,
    budget: usize,
}

fn population(n_lines: usize) -> Population {
    let mut sim_config = SimConfig::small(12);
    sim_config.n_lines = n_lines;
    sim_config.days = 420;
    let world = World::generate(sim_config.clone());
    let topology = world.topology().clone();
    let output = world.run();
    let saturdays: Vec<u32> = (6..output.days)
        .step_by(7)
        .collect::<Vec<_>>()
        .split_off((output.days as usize / 7).saturating_sub(WEEKS));
    assert_eq!(saturdays.len(), WEEKS);
    let budget = PredictorConfig::default().budget(n_lines);
    Population { sim_config, topology, output, saturdays, budget }
}

/// Log prefixes visible at the end of `day` (global logs are day-ordered).
fn frontier(out: &SimOutput, day: u32) -> (usize, usize) {
    (
        out.measurements.partition_point(|m| m.day <= day),
        out.tickets.partition_point(|t| t.day <= day),
    )
}

/// The pre-incremental weekly path, as `run_proactive_trial` used to do it:
/// clone the world's accumulated output (all log streams, as
/// `world.output().clone()` did), rebuild the batch encoder over it, score
/// serially, fully sort, take the budget head.
fn rebuild_each_week(p: &Population, predictor: &TicketPredictor) -> usize {
    let mut dispatched = 0;
    for &day in &p.saturdays {
        let (m_end, t_end) = frontier(&p.output, day);
        let data = ExperimentData {
            config: p.sim_config.clone(),
            topology: p.topology.clone(),
            output: SimOutput {
                measurements: p.output.measurements[..m_end].to_vec(),
                tickets: p.output.tickets[..t_end].to_vec(),
                notes: p.output.notes[..p.output.notes.partition_point(|n| n.day <= day)].to_vec(),
                outage_events: p.output.outage_events.clone(),
                traffic: p.output.traffic.clone(),
                ivr_calls: p.output.ivr_calls
                    [..p.output.ivr_calls.partition_point(|c| c.day <= day)]
                    .to_vec(),
                churn_events: p.output.churn_events
                    [..p.output.churn_events.partition_point(|c| c.day <= day)]
                    .to_vec(),
                days: day + 1,
            },
        };
        let ranking = predictor.rank(&data, &[day]);
        dispatched += argsort_desc(&ranking.probabilities).into_iter().take(p.budget).count();
    }
    dispatched
}

/// The incremental weekly path: ingest the fresh suffix, encode from
/// rolling state, score through compiled LUTs in parallel, partially select.
fn incremental(p: &Population, predictor: &TicketPredictor) -> usize {
    let mut scorer = WeeklyScorer::new(predictor, &p.topology.lines);
    let mut dispatched = 0;
    for &day in &p.saturdays {
        let (m_end, t_end) = frontier(&p.output, day);
        scorer.observe(&p.output.measurements[..m_end], &p.output.tickets[..t_end]);
        dispatched += scorer.top_lines(day, p.budget).len();
    }
    dispatched
}

fn bench_weekly_rerank(c: &mut Criterion) {
    let predictor = trained_predictor();
    for n_lines in [10_000usize, 100_000] {
        let p = population(n_lines);
        let mut g = c.benchmark_group("weekly_rerank");
        g.sample_size(if n_lines >= 100_000 { 2 } else { 5 });
        g.throughput(Throughput::Elements((n_lines * WEEKS) as u64));
        g.bench_with_input(BenchmarkId::new("rebuild_each_week", n_lines), &p, |b, p| {
            b.iter(|| black_box(rebuild_each_week(p, &predictor)))
        });
        g.bench_with_input(BenchmarkId::new("incremental", n_lines), &p, |b, p| {
            b.iter(|| black_box(incremental(p, &predictor)))
        });
        // Same path with the metrics registry live: spans, counters and
        // histograms all record. The delta against `incremental` is the
        // instrumentation overhead on the scoring hot path (budgeted < 2%).
        g.bench_with_input(BenchmarkId::new("incremental_instrumented", n_lines), &p, |b, p| {
            b.iter(|| {
                nevermind_obs::set_enabled(true);
                let n = black_box(incremental(p, &predictor));
                nevermind_obs::set_enabled(false);
                n
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_weekly_rerank);
criterion_main!(benches);
