//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation from one simulated world.
//!
//! ```text
//! experiments [--scale quick|full] [--seed N] [--metrics PATH] [EXPERIMENT ...]
//! ```
//!
//! With no experiment names, runs everything. Results print to stdout and
//! are persisted as JSON under `results/`. With `--metrics PATH`, the
//! process-global metrics registry (per-phase span timings, counters, one
//! `bench/<experiment>` span per experiment run) is dumped at PATH in the
//! same `nevermind-metrics/v1` schema the CLI's `--metrics` flag emits, so
//! harness runs and CLI runs are directly comparable.

use nevermind_bench::ctx::{Ctx, Scale};
use nevermind_bench::exp;

const ALL: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "table5",
    "notonsite",
    "weekly",
    "summary",
    "locator_data",
    "fig9",
    "fig10",
    "locator50",
    "locator_cost",
    "ablation_models",
    "selection_overlap",
    "location_confusion",
];

fn main() {
    let mut scale = Scale::Quick;
    let mut seed = 0x5EED_CA11u64;
    let mut metrics_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--metrics" => {
                let v = args.next().unwrap_or_default();
                if v.is_empty() {
                    eprintln!("--metrics needs a path");
                    std::process::exit(2);
                }
                metrics_path = Some(v);
            }
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (expected quick|full)");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad seed '{v}'");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--scale quick|full] [--seed N] [--metrics PATH] \
                     [EXPERIMENT ...]"
                );
                println!("experiments: {}", ALL.join(" "));
                return;
            }
            name => wanted.push(name.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted = ALL.iter().map(|s| s.to_string()).collect();
    }
    for w in &wanted {
        if !ALL.contains(&w.as_str()) {
            eprintln!("unknown experiment '{w}'; known: {}", ALL.join(" "));
            std::process::exit(2);
        }
    }

    nevermind_obs::set_enabled(true);
    eprintln!("[harness] simulating world (scale {scale:?}, seed {seed}) ...");
    let start = std::time::Instant::now();
    let ctx = Ctx::new(scale, seed);
    eprintln!(
        "[harness] world ready in {:.1}s: {} lines, {} days, {} measurements, {} tickets",
        start.elapsed().as_secs_f64(),
        ctx.data.config.n_lines,
        ctx.data.config.days,
        ctx.data.output.measurements.len(),
        ctx.data.output.tickets.len()
    );

    for name in &wanted {
        let t = std::time::Instant::now();
        match name.as_str() {
            "table1" => drop(exp::table1(&ctx)),
            "table2" => drop(exp::table2(&ctx)),
            "table3" => drop(exp::table3(&ctx)),
            "fig4" => drop(exp::fig4(&ctx)),
            "fig6" => drop(exp::fig6(&ctx)),
            "fig7" => drop(exp::fig7(&ctx)),
            "fig8" => drop(exp::fig8(&ctx)),
            "table5" => drop(exp::table5(&ctx)),
            "notonsite" => drop(exp::notonsite(&ctx)),
            "fig9" => drop(exp::fig9(&ctx)),
            "fig10" => drop(exp::fig10(&ctx)),
            "locator50" => drop(exp::locator50(&ctx)),
            "locator_cost" => drop(exp::locator_cost(&ctx)),
            "ablation_models" => drop(exp::ablation_models(&ctx)),
            "selection_overlap" => drop(exp::selection_overlap(&ctx)),
            "location_confusion" => drop(exp::location_confusion(&ctx)),
            "locator_data" => drop(exp::locator_data(&ctx)),
            "weekly" => drop(exp::weekly(&ctx)),
            "summary" => drop(exp::summary(&ctx)),
            _ => unreachable!("validated above"),
        }
        let elapsed = t.elapsed();
        // One span per experiment; `record_span` takes a dynamic path, so
        // the 19 experiment names need no static span macro each.
        nevermind_obs::global().record_span(
            &format!("bench/{name}"),
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        );
        eprintln!("[harness] {name} done in {:.1}s", elapsed.as_secs_f64());
    }

    if let Some(path) = metrics_path {
        match std::fs::write(&path, nevermind_obs::global().to_json()) {
            Ok(()) => eprintln!("[harness] wrote metrics to {path}"),
            Err(e) => {
                eprintln!("[harness] cannot write metrics '{path}': {e}");
                std::process::exit(1);
            }
        }
    }
}
