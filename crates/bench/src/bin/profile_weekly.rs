//! Temporary profiling harness for the weekly path components.
use nevermind::pipeline::{ExperimentData, SplitSpec};
use nevermind::predictor::{PredictorConfig, TicketPredictor};
use nevermind::scoring::WeeklyScorer;
use nevermind_dslsim::{SimConfig, World};
use std::time::Instant;

fn main() {
    let data = ExperimentData::simulate(SimConfig::small(11));
    let split = SplitSpec::paper_like(&data).expect("horizon fits");
    let cfg =
        PredictorConfig { iterations: 120, selection_row_cap: 8_000, ..PredictorConfig::default() };
    let (predictor, _) = TicketPredictor::fit(&data, &split, &cfg).expect("well-formed data");

    let mut sim = SimConfig::small(12);
    sim.n_lines = 100_000;
    sim.days = 210;
    let world = World::generate(sim.clone());
    let topology = world.topology().clone();
    let out = world.run();
    let day = 202u32; // a late Saturday
    assert_eq!(day % 7, 6);

    let mut scorer = WeeklyScorer::new(&predictor, &topology.lines);
    let t = Instant::now();
    scorer.observe(&out.measurements, &out.tickets);
    println!("observe(all): {:?}", t.elapsed());

    // Component timings via the underlying pieces.
    let mut enc = nevermind_features::IncrementalEncoder::new(
        &topology.lines,
        predictor.encoder_config().clone(),
    );
    enc.ingest(&out.measurements, &out.tickets);
    let t = Instant::now();
    let base = enc.encode_day(day);
    println!("encode_day: {:?}", t.elapsed());

    let t = Instant::now();
    let assembled = predictor.assemble(&base);
    println!("assemble: {:?}", t.elapsed());

    let scorer2 = nevermind_ml::score::BatchScorer::new(predictor.model());
    let t = Instant::now();
    let margins = scorer2.margins_parallel(&assembled.x, 0);
    println!("margins_parallel: {:?}", t.elapsed());

    let t = Instant::now();
    let m2 = predictor.model().margins(&assembled.x);
    println!("margins_serial(old): {:?}", t.elapsed());
    assert_eq!(margins.len(), m2.len());

    let t = Instant::now();
    let probs = predictor.calibration().probabilities(&margins);
    println!("calibrate: {:?}", t.elapsed());

    let t = Instant::now();
    let top = nevermind_ml::rank::top_k(&probs, 1000);
    println!("top_k: {:?}", t.elapsed());
    let t = Instant::now();
    let full = nevermind_ml::rank::argsort_desc(&probs);
    println!("argsort(old): {:?}", t.elapsed());
    assert_eq!(top[..10], full[..10]);

    for d in [day - 14, day - 7, day] {
        let t = Instant::now();
        let _ = scorer.rank_week(d);
        println!("rank_week({d}): {:?}", t.elapsed());
    }
}
