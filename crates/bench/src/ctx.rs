//! Shared experiment context: one simulated world, one split, lazily
//! fitted models reused across experiments.

use nevermind::locator::{LocatorConfig, LocatorEvaluation, TroubleLocator};
use nevermind::pipeline::{ExperimentData, SplitSpec};
use nevermind::predictor::{PredictorConfig, RankedPredictions, SelectionReport, TicketPredictor};
use nevermind_dslsim::SimConfig;
use std::cell::OnceCell;

/// Harness scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~6k lines, 330 days — minutes on one core; shapes still hold.
    Quick,
    /// 20k lines, 420 days — the default reproduction scale.
    Full,
}

impl Scale {
    /// Parses `"quick"` / `"full"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The simulator configuration for this scale.
    pub fn sim_config(self, seed: u64) -> SimConfig {
        match self {
            Scale::Quick => SimConfig { seed, n_lines: 6_000, days: 330, ..SimConfig::default() },
            Scale::Full => SimConfig { seed, ..SimConfig::default() },
        }
    }

    /// The predictor configuration for this scale.
    pub fn predictor_config(self) -> PredictorConfig {
        match self {
            Scale::Quick => PredictorConfig {
                iterations: 150,
                selection_row_cap: 12_000,
                ..PredictorConfig::default()
            },
            Scale::Full => PredictorConfig {
                iterations: 250,
                selection_row_cap: 20_000,
                ..PredictorConfig::default()
            },
        }
    }

    /// The locator configuration for this scale.
    pub fn locator_config(self) -> LocatorConfig {
        match self {
            Scale::Quick => LocatorConfig { iterations: 80, ..LocatorConfig::default() },
            Scale::Full => LocatorConfig::default(),
        }
    }
}

/// Lazily-materialized shared state for a harness run.
pub struct Ctx {
    /// The chosen scale.
    pub scale: Scale,
    /// The simulated world and logs.
    pub data: ExperimentData,
    /// The paper-like time split.
    pub split: SplitSpec,
    /// Predictor hyper-parameters at this scale.
    pub predictor_cfg: PredictorConfig,
    predictor: OnceCell<(TicketPredictor, SelectionReport)>,
    ranking: OnceCell<RankedPredictions>,
    locator: OnceCell<(TroubleLocator, LocatorEvaluation)>,
}

impl Ctx {
    /// Simulates the world for a scale (no models fitted yet).
    pub fn new(scale: Scale, seed: u64) -> Self {
        let data = ExperimentData::simulate(scale.sim_config(seed));
        let split = SplitSpec::paper_like(&data).expect("bench horizon fits the protocol");
        Self {
            scale,
            data,
            split,
            predictor_cfg: scale.predictor_config(),
            predictor: OnceCell::new(),
            ranking: OnceCell::new(),
            locator: OnceCell::new(),
        }
    }

    /// The fitted predictor + selection report (fit on first use).
    pub fn predictor(&self) -> &(TicketPredictor, SelectionReport) {
        self.predictor.get_or_init(|| {
            eprintln!("[ctx] fitting ticket predictor ...");
            TicketPredictor::fit(&self.data, &self.split, &self.predictor_cfg)
                .expect("bench data is well-formed")
        })
    }

    /// The pooled test-period ranking (computed on first use).
    pub fn ranking(&self) -> &RankedPredictions {
        self.ranking.get_or_init(|| {
            eprintln!("[ctx] ranking test population ...");
            self.predictor().0.rank(&self.data, &self.split.test_days)
        })
    }

    /// The absolute ATDS budget over the pooled test ranking.
    pub fn budget(&self) -> usize {
        self.predictor_cfg.budget(self.ranking().len())
    }

    /// The per-week budget (the paper's 20K-per-week analogue).
    pub fn weekly_budget(&self) -> usize {
        self.predictor_cfg.budget(self.data.config.n_lines)
    }

    /// Locator training window `[from, to)` and test window `[to, end)`.
    ///
    /// The paper uses 7 + 7 weeks on a multi-million-line plant; at
    /// simulated scale we stretch the training window to gather a
    /// comparable number of dispatches per disposition (documented
    /// substitution).
    pub fn locator_windows(&self) -> (u32, u32, u32) {
        let end = self.data.config.days;
        let test_weeks = 14u32.min(end / 7 / 3);
        let mid = end - test_weeks * 7;
        (70.min(mid / 2), mid, end)
    }

    /// The fitted locator and its evaluation on the held-out window.
    pub fn locator(&self) -> &(TroubleLocator, LocatorEvaluation) {
        self.locator.get_or_init(|| {
            eprintln!("[ctx] fitting trouble locator ...");
            let (from, mid, end) = self.locator_windows();
            let locator = TroubleLocator::fit(&self.data, from, mid, &self.scale.locator_config())
                .expect("bench window has dispatches");
            let eval = LocatorEvaluation::run(&locator, &self.data, mid, end);
            (locator, eval)
        })
    }
}
