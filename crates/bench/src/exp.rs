//! One regeneration function per table/figure of the paper's evaluation.
//!
//! Each function prints a human-readable rendition of the table/figure and
//! returns a JSON record (also persisted under `results/`) so EXPERIMENTS.md
//! can cite exact numbers. None of them tries to match the paper's absolute
//! values — the substrate is a simulator — but each prints the *shape*
//! assertion the paper makes next to the measured counterpart.

use crate::ctx::Ctx;
use crate::report::{f3, heading, histogram, pct, save_json, table};
use nevermind::analysis;
use nevermind::locator::collect_dispatch_examples;
use nevermind::predictor::TicketPredictor;
use nevermind_dslsim::disposition::{dispositions_at, MajorLocation, DISPOSITIONS};
use nevermind_dslsim::{LineMetric, N_DISPOSITIONS};

use nevermind_features::BaseEncoder;
use nevermind_ml::select::SelectionCriterion;
use serde_json::json;

/// Table 1: dispositions per major location, with observed frequencies.
pub fn table1(ctx: &Ctx) -> serde_json::Value {
    heading("Table 1 — dispositions at the four major locations");
    let mut counts = vec![0usize; N_DISPOSITIONS];
    let mut total = 0usize;
    for n in &ctx.data.output.notes {
        if let Some(d) = n.disposition {
            counts[d.0 as usize] += 1;
            total += 1;
        }
    }
    let mut rows = Vec::new();
    let mut by_location = serde_json::Map::new();
    for loc in MajorLocation::ALL {
        let ids = dispositions_at(loc);
        let loc_total: usize = ids.iter().map(|d| counts[d.0 as usize]).sum();
        let mut loc_rows = Vec::new();
        for d in ids {
            let info = d.info();
            let c = counts[d.0 as usize];
            rows.push(vec![
                loc.label().to_string(),
                info.code.to_string(),
                info.description.to_string(),
                c.to_string(),
            ]);
            loc_rows.push(json!({"code": info.code, "count": c}));
        }
        by_location.insert(
            loc.label().to_string(),
            json!({"total": loc_total, "share": loc_total as f64 / total.max(1) as f64,
                   "dispositions": loc_rows}),
        );
    }
    table(&["loc", "code", "description", "observed"], &rows);
    println!(
        "\nShape check (paper): no dominant disposition within a location; \
         customer-edge problems spread across all four locations."
    );
    let v = json!({"total_notes": total, "by_location": by_location});
    save_json("table1", &v);
    v
}

/// Table 2: the 25 line features with simulated summary statistics.
pub fn table2(ctx: &Ctx) -> serde_json::Value {
    heading("Table 2 — basic line features (simulated ranges)");
    let sample: Vec<&nevermind_dslsim::LineTest> =
        ctx.data.output.measurements.iter().take(50_000).collect();
    let mut rows = Vec::new();
    let mut stats = serde_json::Map::new();
    for m in LineMetric::ALL {
        let vals: Vec<f64> =
            sample.iter().map(|t| f64::from(t.get(m))).filter(|v| !v.is_nan()).collect();
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        rows.push(vec![
            m.name().to_string(),
            m.description().to_string(),
            f3(lo),
            f3(mean),
            f3(hi),
        ]);
        stats.insert(m.name().to_string(), json!({"min": lo, "mean": mean, "max": hi}));
    }
    table(&["feature", "description", "min", "mean", "max"], &rows);
    let v = json!({"n_sampled_tests": sample.len(), "metrics": stats});
    save_json("table2", &v);
    v
}

/// Table 3: the encoder's feature census per class.
pub fn table3(_ctx: &Ctx) -> serde_json::Value {
    heading("Table 3 — encoded feature classes");
    let (meta, classes) = BaseEncoder::base_meta();
    let mut per_class: std::collections::BTreeMap<&str, usize> = Default::default();
    for c in &classes {
        *per_class.entry(c.label()).or_default() += 1;
    }
    let n_cont =
        meta.iter().filter(|m| m.kind == nevermind_ml::data::FeatureKind::Continuous).count();
    let n_quad = n_cont;
    let n_prod = n_cont * (n_cont - 1) / 2;
    per_class.insert("quadratic", n_quad);
    per_class.insert("product", n_prod);
    let rows: Vec<Vec<String>> =
        per_class.iter().map(|(k, v)| vec![k.to_string(), v.to_string()]).collect();
    table(&["class", "features"], &rows);
    let v = json!(per_class);
    save_json("table3", &v);
    v
}

/// Fig. 4: AP(budget) histograms for (a) history+customer, (b) quadratic,
/// (c) product features.
pub fn fig4(ctx: &Ctx) -> serde_json::Value {
    heading("Fig. 4 — top-N average precision per candidate feature");
    let (_, report) = ctx.predictor();
    let collect = |scored: &[nevermind::predictor::ScoredFeature]| -> Vec<f64> {
        scored.iter().map(|s| s.score).collect()
    };
    let base = collect(&report.base);
    let quad = collect(&report.quadratic);
    let prod = collect(&report.product);
    let hi = base.iter().chain(&quad).chain(&prod).copied().fold(0.0f64, f64::max).max(1e-6);

    println!("\n[a] history + customer features (n = {}):", base.len());
    let ha = histogram(&base, 0.0, hi, 12);
    println!("\n[b] quadratic features (n = {}):", quad.len());
    let hb = histogram(&quad, 0.0, hi, 12);
    println!("\n[c] product features (n = {}):", prod.len());
    let hc = histogram(&prod, 0.0, hi, 12);

    // Bimodality proxy: share of features in the top half of the score
    // range vs near zero.
    let strong = |xs: &[f64]| xs.iter().filter(|&&x| x > 0.4 * hi).count();
    println!(
        "\nShape check (paper): strongly bimodal — a small informative cluster \
         well-separated from the bulk. informative(a)={} informative(b)={} informative(c)={}",
        strong(&base),
        strong(&quad),
        strong(&prod)
    );
    let v = json!({
        "selection_budget": report.selection_budget,
        "max_score": hi,
        "histograms": {"history_customer": ha, "quadratic": hb, "product": hc},
        "informative": {"history_customer": strong(&base), "quadratic": strong(&quad),
                         "product": strong(&prod)},
    });
    save_json("fig4", &v);
    v
}

/// Fig. 6: precision-vs-cutoff for the five feature-selection methods.
pub fn fig6(ctx: &Ctx) -> serde_json::Value {
    heading("Fig. 6 — feature-selection method comparison (top-25 base features each)");
    let budget = ctx.budget();
    let n_eval_rows = ctx
        .predictor_cfg
        .selection_row_cap
        .min(ctx.data.config.n_lines * ctx.split.selection_eval_days.len());
    let sel_budget = ctx.predictor_cfg.budget(n_eval_rows);
    let methods: Vec<(&str, SelectionCriterion)> = vec![
        ("top-N AP", SelectionCriterion::TopNAp { n: sel_budget }),
        ("AUC", SelectionCriterion::Auc),
        ("avg precision", SelectionCriterion::AveragePrecision),
        ("PCA", SelectionCriterion::Pca { components: 10 }),
        ("gain ratio", SelectionCriterion::GainRatio { bins: 32 }),
    ];
    let cutoffs: Vec<usize> =
        vec![budget / 4, budget / 2, budget, budget * 2, budget * 5, budget * 10]
            .into_iter()
            .filter(|&c| c > 0)
            .collect();

    let mut rows = Vec::new();
    let mut curves = serde_json::Map::new();
    for (name, criterion) in &methods {
        eprintln!("[fig6] fitting with {name} selection ...");
        // The paper keeps the top 50 of its feature space; our base space
        // is ~82 columns, so top-25 keeps the same selectivity ratio and
        // lets the criteria actually differ.
        let p = TicketPredictor::fit_base_only(
            &ctx.data,
            &ctx.split,
            &ctx.predictor_cfg,
            *criterion,
            25,
        )
        .expect("bench data is well-formed");
        let ranking = p.rank(&ctx.data, &ctx.split.test_days);
        let curve = ranking.precision_curve(&cutoffs);
        let mut row = vec![name.to_string()];
        row.extend(curve.iter().map(|(_, p)| f3(*p)));
        rows.push(row);
        curves.insert(
            name.to_string(),
            json!(curve.iter().map(|&(k, p)| json!({"k": k, "precision": p})).collect::<Vec<_>>()),
        );
    }
    let mut headers: Vec<String> = vec!["method".to_string()];
    headers.extend(cutoffs.iter().map(|c| format!("p@{c}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    table(&headers_ref, &rows);
    println!(
        "\nShape check (paper): top-N AP wins below the budget cutoff ({budget}); \
         AUC catches up / overtakes well above it."
    );
    let v = json!({"budget": budget, "cutoffs": cutoffs, "curves": curves});
    save_json("fig6", &v);
    v
}

/// Fig. 7: precision-vs-cutoff with and without derived features.
pub fn fig7(ctx: &Ctx) -> serde_json::Value {
    heading("Fig. 7 — ticket prediction with vs without derived features");
    let budget = ctx.budget();
    let cutoffs: Vec<usize> = vec![budget / 4, budget / 2, budget, budget * 2, budget * 5]
        .into_iter()
        .filter(|&c| c > 0)
        .collect();

    // Full pipeline (with derived features): the shared ctx predictor.
    let full_curve = ctx.ranking().precision_curve(&cutoffs);

    // Without derived features: same top-N-AP selection, base only.
    eprintln!("[fig7] fitting base-only predictor ...");
    let n_eval_rows = ctx
        .predictor_cfg
        .selection_row_cap
        .min(ctx.data.config.n_lines * ctx.split.selection_eval_days.len());
    let sel_budget = ctx.predictor_cfg.budget(n_eval_rows);
    let base_only = TicketPredictor::fit_base_only(
        &ctx.data,
        &ctx.split,
        &ctx.predictor_cfg,
        SelectionCriterion::TopNAp { n: sel_budget },
        ctx.predictor_cfg.n_base,
    )
    .expect("bench data is well-formed");
    let base_curve = base_only.rank(&ctx.data, &ctx.split.test_days).precision_curve(&cutoffs);

    let mut rows = Vec::new();
    for (i, &k) in cutoffs.iter().enumerate() {
        rows.push(vec![k.to_string(), f3(base_curve[i].1), f3(full_curve[i].1)]);
    }
    table(&["top-k", "history+customer only", "all selected features"], &rows);
    let p_base = base_curve[cutoffs.iter().position(|&c| c == budget).unwrap_or(0)].1;
    let p_full = full_curve[cutoffs.iter().position(|&c| c == budget).unwrap_or(0)].1;
    println!(
        "\nShape check (paper: 37.8% → 40% at the budget): derived features lift \
         precision@{budget} from {} to {} here; at the budget roughly {:.1} true \
         prediction(s) per {:.1} false.",
        pct(p_base),
        pct(p_full),
        p_full * 10.0,
        (1.0 - p_full) * 10.0
    );
    let v = json!({
        "budget": budget,
        "cutoffs": cutoffs,
        "base_only": base_curve.iter().map(|&(k, p)| json!({"k": k, "precision": p})).collect::<Vec<_>>(),
        "full": full_curve.iter().map(|&(k, p)| json!({"k": k, "precision": p})).collect::<Vec<_>>(),
    });
    save_json("fig7", &v);
    v
}

/// Fig. 8: CDF of days from prediction to ticket for three top-N cuts.
pub fn fig8(ctx: &Ctx) -> serde_json::Value {
    heading("Fig. 8 — CDF of ticket arrival time after prediction");
    let budget = ctx.budget();
    let tops = vec![budget / 2, budget, budget * 5];
    let series = analysis::time_to_ticket(
        &ctx.data,
        ctx.ranking(),
        ctx.predictor_cfg.encoder.horizon_days,
        &tops,
    );
    let grid: Vec<f64> = (0..=28).map(f64::from).collect();
    let mut rows = Vec::new();
    for day in [2u32, 3, 7, 14, 21, 28] {
        let mut row = vec![format!("≤ {day} days")];
        for s in &series {
            row.push(pct(s.cdf.eval(f64::from(day))));
        }
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["window".into()];
    headers.extend(series.iter().map(|s| format!("top {}", s.top_n)));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    table(&headers_ref, &rows);
    let cdf_budget = series.iter().find(|s| s.top_n == budget);
    if let Some(s) = cdf_budget {
        println!(
            "\nShape check (paper: ~80% of predicted tickets arrive within two weeks; \
             fixing by Monday misses ≤15%, within three days ≤20%): here within-2-weeks = {}, \
             missed-if-fixed-in-2-days = {}, in-3-days = {}.",
            pct(s.cdf.eval(14.0)),
            pct(s.cdf.eval(2.0)),
            pct(s.cdf.eval(3.0))
        );
    }
    let v = json!({
        "tops": tops,
        "series": series
            .iter()
            .map(|s| json!({
                "top_n": s.top_n,
                "n_true_predictions": s.days.len(),
                "cdf": s.cdf.curve(&grid).iter().map(|&(x, y)| json!([x, y])).collect::<Vec<_>>(),
            }))
            .collect::<Vec<_>>(),
    });
    save_json("fig8", &v);
    v
}

/// Table 5: incorrect predictions explained by outages + IVR; logistic
/// regression of prediction counts on future outages.
pub fn table5(ctx: &Ctx) -> serde_json::Value {
    heading("Table 5 — incorrect predictions explained by outages (IVR scenario)");
    let budget = ctx.budget();
    let rows_data = analysis::outage_ivr_analysis(&ctx.data, ctx.ranking(), budget, &[1, 2, 3, 4]);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                format!("{} week(s)", r.weeks),
                pct(r.incorrect_explained),
                format!("{:+.4}", r.coefficient),
                format!("{:.4}", r.p_value),
            ]
        })
        .collect();
    table(&["window", "% incorrect explained", "coef", "p-value"], &rows);
    println!(
        "\nShape check (paper: 12.7% → 31.5% from 1 to 4 weeks; coefficient positive \
         with p < 0.05 at every window): fraction grows with the window and the \
         regression stays significantly positive."
    );
    let v = json!(rows_data
        .iter()
        .map(|r| json!({
            "weeks": r.weeks,
            "incorrect_explained": r.incorrect_explained,
            "coefficient": r.coefficient,
            "p_value": r.p_value,
        }))
        .collect::<Vec<_>>());
    save_json("table5", &v);
    v
}

/// Sec. 5.2: the not-on-site traffic analysis.
pub fn notonsite(ctx: &Ctx) -> serde_json::Value {
    heading("Sec. 5.2 — incorrect predictions from customers not on site");
    let budget = ctx.budget();
    let res = analysis::not_on_site_analysis(&ctx.data, ctx.ranking(), budget);
    println!(
        "incorrect predictions with traffic coverage: {}\n\
         of which zero traffic ±1 week around prediction: {} ({})",
        res.covered,
        res.not_on_site,
        pct(res.fraction())
    );
    println!(
        "\nShape check (paper: 18 of 108 covered subscribers = 16.7%): a visible \
         minority of 'incorrect' predictions are explained by absent customers."
    );
    let v = json!({"covered": res.covered, "not_on_site": res.not_on_site,
                   "fraction": res.fraction()});
    save_json("notonsite", &v);
    v
}

/// Fig. 9: render the combined inference model for the inside-wiring (HN)
/// disposition.
pub fn fig9(ctx: &Ctx) -> serde_json::Value {
    heading("Fig. 9 — combined model structure for inside wiring at HN");
    let (locator, _) = ctx.locator();
    let target = nevermind_dslsim::disposition::by_code("HN-IW-WET").expect("disposition exists");
    let chosen = if locator.model_pair(target).is_some() {
        target
    } else {
        // Fall back to the most frequent modeled HN disposition.
        *locator
            .modeled_dispositions()
            .iter()
            .filter(|d| d.location() == MajorLocation::HomeNetwork)
            .max_by(|a, b| {
                locator.priors()[a.0 as usize].total_cmp(&locator.priors()[b.0 as usize])
            })
            .unwrap_or(&locator.modeled_dispositions()[0])
    };
    let (flat, loc, fuse) = locator.model_pair(chosen).expect("modeled disposition");
    println!("disposition: {} ({})", chosen.info().code, chosen.info().description);
    println!(
        "\nEq. 2 fusion: P_adj = sigmoid({:.3}·f_disposition + {:.3}·f_location + {:.3})",
        fuse.coefficients[0], fuse.coefficients[1], fuse.intercept
    );
    let render = |name: &str, model: &nevermind_ml::BStump| -> Vec<serde_json::Value> {
        println!("\n{name}: {} stumps; strongest weak learners:", model.stumps().len());
        let mut idx: Vec<usize> = (0..model.stumps().len()).collect();
        idx.sort_by(|&a, &b| {
            let wa = model.stumps()[a].s_gt.abs().max(model.stumps()[a].s_le.abs());
            let wb = model.stumps()[b].s_gt.abs().max(model.stumps()[b].s_le.abs());
            wb.total_cmp(&wa)
        });
        idx.iter()
            .take(6)
            .map(|&i| {
                let s = &model.stumps()[i];
                println!(
                    "  feature #{:<4} thr {:>12.3}  score(≤) {:+.3}  score(>) {:+.3}",
                    s.feature, s.threshold, s.s_le, s.s_gt
                );
                json!({"feature": s.feature, "threshold": s.threshold,
                       "s_le": s.s_le, "s_gt": s.s_gt})
            })
            .collect()
    };
    let flat_stumps = render("disposition classifier f_Cij", flat);
    let loc_stumps = render("major-location classifier f_Ci.", loc);
    let v = json!({
        "disposition": chosen.info().code,
        "gamma": {"disposition": fuse.coefficients[0], "location": fuse.coefficients[1],
                   "intercept": fuse.intercept},
        "flat_top_stumps": flat_stumps,
        "location_top_stumps": loc_stumps,
    });
    save_json("fig9", &v);
    v
}

/// Fig. 10: mean rank boost over the basic order per basic-rank bin.
pub fn fig10(ctx: &Ctx) -> serde_json::Value {
    heading("Fig. 10 — rank change vs the basic (experience) ranking");
    let (_, eval) = ctx.locator();
    let bins = [(1usize, 5usize), (6, 10), (11, 15), (16, 20), (21, 30), (31, 52)];
    let rows_data = eval.rank_change_by_bin(&bins);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|b| {
            vec![
                format!("{}–{}", b.lo, b.hi),
                b.n.to_string(),
                f3(b.flat_boost),
                f3(b.combined_boost),
            ]
        })
        .collect();
    table(&["basic-rank bin", "dispatches", "flat boost", "combined boost"], &rows);
    println!(
        "\nShape check (paper: both models lift deep basic ranks — ≈+4 for bins 16–20 — \
         and the combined model wins at the deepest ranks): boosts grow with bin depth \
         and combined ≥ flat in the deep bins."
    );
    let v = json!(rows_data
        .iter()
        .map(|b| json!({"lo": b.lo, "hi": b.hi, "n": b.n,
                         "flat_boost": b.flat_boost, "combined_boost": b.combined_boost}))
        .collect::<Vec<_>>());
    save_json("fig10", &v);
    v
}

/// Sec. 6.3 headline: tests needed to locate 50% of problems.
pub fn locator50(ctx: &Ctx) -> serde_json::Value {
    heading("Sec. 6.3 — tests needed to locate 50% of the problems");
    let (_, eval) = ctx.locator();
    let (basic, flat, combined) = eval.tests_to_locate(0.5);
    table(
        &["ranking", "tests for 50% of problems"],
        &[
            vec!["basic (experience)".into(), basic.to_string()],
            vec!["flat model".into(), flat.to_string()],
            vec!["combined model".into(), combined.to_string()],
        ],
    );
    println!(
        "\nShape check (paper: ≤9 tests basic vs ≤4 with either model — the technician \
         saves half the testing work): both models need clearly fewer tests than basic."
    );
    let v = json!({"basic": basic, "flat": flat, "combined": combined,
                   "n_test_dispatches": eval.per_example.len()});
    save_json("locator50", &v);
    v
}

/// Extension (the paper's Sec.-6.1 "second improvement", left there as
/// future work): cost-aware test ordering, evaluated in technician-minutes.
pub fn locator_cost(ctx: &Ctx) -> serde_json::Value {
    heading("Extension — cost-aware test ordering (technician minutes)");
    let (_, eval) = ctx.locator();
    let (basic, flat, combined, cost_aware) = eval.mean_minutes();
    table(
        &["ranking", "mean minutes to locate"],
        &[
            vec!["basic (experience)".into(), format!("{basic:.1}")],
            vec!["flat model".into(), format!("{flat:.1}")],
            vec!["combined model".into(), format!("{combined:.1}")],
            vec!["cost-aware (P / minutes)".into(), format!("{cost_aware:.1}")],
        ],
    );
    println!(
        "\nShape check: the cost-aware order (greedy expected-time minimization on the \
         combined posteriors) spends no more technician time than the combined order, \
         which in turn beats the experience model."
    );
    let v = json!({"basic": basic, "flat": flat, "combined": combined,
                   "cost_aware": cost_aware, "n": eval.per_example.len()});
    save_json("locator_cost", &v);
    v
}

/// Ablation (Sec. 4.4's model-choice claim): BStump vs logistic regression,
/// Naive Bayes, and CART trees on the same selected features.
pub fn ablation_models(ctx: &Ctx) -> serde_json::Value {
    heading("Ablation — model choice under noisy ticket labels (Sec. 4.4)");
    let (predictor, _) = ctx.predictor();
    eprintln!("[ablation_models] training alternative models ...");
    let results =
        nevermind::comparison::compare_models(&ctx.data, &ctx.split, &ctx.predictor_cfg, predictor);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                pct(r.train_precision),
                pct(r.test_precision),
                f3(r.train_precision - r.test_precision),
            ]
        })
        .collect();
    table(&["model", "train precision@B", "test precision@B", "generalization gap"], &rows);
    println!(
        "\nShape check (paper: \"sophisticated non-linear models overfit easily, we hence \
         choose a linear model\"): the unconstrained tree memorizes the noisy labels \
         (large train→test gap) while the linear-family models — BStump included — carry \
         small or negative gaps. Capacity-limited models can stay competitive out of \
         sample, which matches the paper's framing: BStump was chosen for scalability at \
         comparable accuracy, not outright dominance."
    );
    let v = json!(results
        .iter()
        .map(|r| json!({"model": r.model, "train": r.train_precision,
                         "test": r.test_precision}))
        .collect::<Vec<_>>());
    save_json("ablation_models", &v);
    v
}

/// Supplementary: how similarly the five selection criteria order the base
/// features (Spearman rank correlation of their scores).
pub fn selection_overlap(ctx: &Ctx) -> serde_json::Value {
    heading("Supplement — agreement between feature-selection criteria");
    let encoder = ctx.data.encoder(ctx.predictor_cfg.encoder.clone());
    let base_train = encoder.encode(&ctx.split.train_days);
    let base_eval = encoder.encode(&ctx.split.selection_eval_days);
    let n_eval_rows = ctx.predictor_cfg.selection_row_cap.min(base_eval.data.len());
    let sel_budget = ctx.predictor_cfg.budget(n_eval_rows);
    let select_cfg = nevermind_ml::select::SelectConfig {
        model_iterations: ctx.predictor_cfg.selection_iterations,
        n_bins: ctx.predictor_cfg.n_bins,
        threads: 0,
    };
    let methods: Vec<(&str, SelectionCriterion)> = vec![
        ("top-N AP", SelectionCriterion::TopNAp { n: sel_budget }),
        ("AUC", SelectionCriterion::Auc),
        ("avg precision", SelectionCriterion::AveragePrecision),
        ("PCA", SelectionCriterion::Pca { components: 10 }),
        ("gain ratio", SelectionCriterion::GainRatio { bins: 32 }),
    ];
    let scores: Vec<Vec<f64>> = methods
        .iter()
        .map(|(name, criterion)| {
            eprintln!("[selection_overlap] scoring with {name} ...");
            nevermind_ml::select::score_features(
                &base_train.data,
                &base_eval.data,
                *criterion,
                &select_cfg,
            )
            .into_iter()
            .map(|s| s.score)
            .collect()
        })
        .collect();

    let mut rows = Vec::new();
    let mut matrix = serde_json::Map::new();
    for (i, (name_i, _)) in methods.iter().enumerate() {
        let mut row = vec![name_i.to_string()];
        let mut json_row = Vec::new();
        for (j, _) in methods.iter().enumerate() {
            let rho = nevermind_ml::stats::spearman(&scores[i], &scores[j]);
            row.push(f3(rho));
            json_row.push(rho);
        }
        rows.push(row);
        matrix.insert(name_i.to_string(), json!(json_row));
    }
    let mut headers: Vec<String> = vec!["ρ".to_string()];
    headers.extend(methods.iter().map(|(n, _)| n.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    table(&headers_ref, &rows);
    println!(
        "\nReading: the model-based criteria agree broadly on what is informative; the \
         paper's top-N AP differs exactly where it is designed to — weighting the head \
         of the ranking — which is why its selected set wins below the budget (Fig. 6)."
    );
    let v = json!({"methods": methods.iter().map(|(n, _)| n).collect::<Vec<_>>(),
                   "spearman": matrix});
    save_json("selection_overlap", &v);
    v
}

/// Supplementary: the combined model's major-location decision quality.
pub fn location_confusion(ctx: &Ctx) -> serde_json::Value {
    heading("Supplement — major-location confusion (combined model top-1)");
    let (_, eval) = ctx.locator();
    let m = eval.location_confusion();
    let labels = ["HN", "F2", "F1", "DS"];
    let mut rows = Vec::new();
    for (i, l) in labels.iter().enumerate() {
        let mut row = vec![format!("true {l}")];
        row.extend(m[i].iter().map(|c| c.to_string()));
        rows.push(row);
    }
    table(&["", "→HN", "→F2", "→F1", "→DS"], &rows);
    println!(
        "\nlocation accuracy = {} (the Sec.-2.2 decision the paper says \"is difficult \
         to make purely based on expert knowledge\")",
        pct(eval.location_accuracy())
    );
    let v = json!({"confusion": m, "accuracy": eval.location_accuracy()});
    save_json("location_confusion", &v);
    v
}

/// Sec. 3.3: weekly ticket-arrival trend.
pub fn weekly(ctx: &Ctx) -> serde_json::Value {
    heading("Sec. 3.3 — customer-edge tickets by day of week");
    let hist = analysis::weekly_ticket_histogram(&ctx.data);
    let names = ["Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"];
    let rows: Vec<Vec<String>> =
        names.iter().zip(&hist).map(|(n, c)| vec![n.to_string(), c.to_string()]).collect();
    table(&["day", "tickets"], &rows);
    println!("\nShape check (paper: tickets peak on Monday and bottom out over the weekend).");
    let v = json!(names
        .iter()
        .zip(&hist)
        .map(|(n, c)| json!({"day": n, "tickets": c}))
        .collect::<Vec<_>>());
    save_json("weekly", &v);
    v
}

/// Sec. 5 headline numbers: precision at the budget, weekly true
/// predictions, DSLAM grouping.
pub fn summary(ctx: &Ctx) -> serde_json::Value {
    heading("Summary — headline reproduction numbers");
    let ranking = ctx.ranking();
    let budget = ctx.budget();
    let weekly_budget = ctx.weekly_budget();
    let hits = ranking.hits_at(budget);
    let precision = ranking.precision_at(budget);
    let n_weeks = ctx.split.test_days.len();
    let base_rate =
        ranking.labels.iter().filter(|&&y| y).count() as f64 / ranking.labels.len() as f64;
    let groups = analysis::predictions_by_dslam(&ctx.data, ranking, budget);
    let top_dslam = groups.first().map(|&(d, c)| (d.0, c)).unwrap_or((0, 0));

    table(
        &["quantity", "value"],
        &[
            vec!["lines simulated".into(), ctx.data.config.n_lines.to_string()],
            vec!["test population (line-weeks)".into(), ranking.len().to_string()],
            vec!["budget (pooled / weekly)".into(), format!("{budget} / {weekly_budget}")],
            vec!["precision@budget".into(), pct(precision)],
            vec!["base rate".into(), pct(base_rate)],
            vec!["lift over random".into(), f3(precision / base_rate.max(1e-12))],
            vec![
                "true predictions per test week".into(),
                format!("{:.1}", hits as f64 / n_weeks as f64),
            ],
            vec![
                "true : false at budget".into(),
                format!("1 : {:.2}", (1.0 - precision) / precision.max(1e-12)),
            ],
            vec![
                "largest DSLAM prediction cluster".into(),
                format!("DSLAM#{} with {} predictions", top_dslam.0, top_dslam.1),
            ],
        ],
    );
    println!(
        "\nShape check (paper: ~40% precision at the 20K budget, i.e. 2 true per 3 false; \
         >8K true predictions per week at full scale; prediction clusters flag outages)."
    );
    let v = json!({
        "n_lines": ctx.data.config.n_lines,
        "test_rows": ranking.len(),
        "budget": budget,
        "weekly_budget": weekly_budget,
        "precision_at_budget": precision,
        "base_rate": base_rate,
        "hits_at_budget": hits,
        "true_per_week": hits as f64 / n_weeks as f64,
    });
    save_json("summary", &v);
    v
}

/// Extra shape check: dispatch-example volume feeding the locator.
pub fn locator_data(ctx: &Ctx) -> serde_json::Value {
    heading("Locator data — dispatch volume per window");
    let (from, mid, end) = ctx.locator_windows();
    let train = collect_dispatch_examples(&ctx.data.output.notes, from, mid).len();
    let test = collect_dispatch_examples(&ctx.data.output.notes, mid, end).len();
    let modeled = ctx.locator().0.modeled_dispositions().len();
    table(
        &["window", "value"],
        &[
            vec![format!("train [{from},{mid})"), train.to_string()],
            vec![format!("test  [{mid},{end})"), test.to_string()],
            vec!["modeled dispositions".into(), format!("{modeled} / {}", DISPOSITIONS.len())],
        ],
    );
    let v = json!({"train": train, "test": test, "modeled": modeled});
    save_json("locator_data", &v);
    v
}
