//! Shared infrastructure for the experiment harness and criterion benches.
//!
//! [`ctx::Ctx`] simulates one world and lazily fits/caches the predictor,
//! ranking, and locator that most experiments share; [`report`] holds the
//! plain-text table/histogram rendering and JSON persistence; [`exp`]
//! implements one regeneration function per table/figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod exp;
pub mod report;
