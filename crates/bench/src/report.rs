//! Plain-text rendering (tables, ASCII histograms) and JSON persistence
//! for the experiment harness.

use std::fs;
use std::path::Path;

/// Prints a section heading.
pub fn heading(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let n = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate().take(n) {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Renders an ASCII histogram of `values` over `n_bins` equal-width bins
/// between `lo` and `hi`. Returns `(bin_lo, count)` pairs for JSON export.
pub fn histogram(values: &[f64], lo: f64, hi: f64, n_bins: usize) -> Vec<(f64, usize)> {
    let mut counts = vec![0usize; n_bins];
    let width = (hi - lo) / n_bins as f64;
    for &v in values {
        if v.is_nan() {
            continue;
        }
        let b = (((v - lo) / width).floor() as isize).clamp(0, n_bins as isize - 1) as usize;
        counts[b] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    for (b, &c) in counts.iter().enumerate() {
        let bar = "#".repeat((c * 50).div_ceil(max).min(50));
        println!("{:>7.3} | {:<50} {}", lo + b as f64 * width, bar, c);
    }
    counts.iter().enumerate().map(|(b, &c)| (lo + b as f64 * width, c)).collect()
}

/// Formats a float with three decimals, rendering NaN as "-".
pub fn f3(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.3}")
    }
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * x)
    }
}

/// Persists an experiment's JSON record under `results/`.
pub fn save_json(name: &str, value: &serde_json::Value) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_err() {
        eprintln!("[report] could not create results/; skipping JSON for {name}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("[report] write {path:?} failed: {e}");
            } else {
                eprintln!("[report] wrote {path:?}");
            }
        }
        Err(e) => eprintln!("[report] serialize {name} failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_cover_range_and_count_everything() {
        let values = [0.05, 0.15, 0.15, 0.95, f64::NAN];
        let bins = histogram(&values, 0.0, 1.0, 10);
        assert_eq!(bins.len(), 10);
        let total: usize = bins.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 4, "NaN dropped, everything else counted");
        assert_eq!(bins[0].1, 1);
        assert_eq!(bins[1].1, 2);
        assert_eq!(bins[9].1, 1);
        assert!((bins[1].0 - 0.1).abs() < 1e-12, "bin lower edges are spaced by width");
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let values = [-5.0, 5.0];
        let bins = histogram(&values, 0.0, 1.0, 4);
        assert_eq!(bins[0].1, 1);
        assert_eq!(bins[3].1, 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f3(f64::NAN), "-");
        assert_eq!(pct(0.375), "37.5%");
        assert_eq!(pct(f64::NAN), "-");
    }
}
