//! A small, dependency-free flag parser: `--key value` pairs plus
//! positional arguments, with typed accessors and helpful errors.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub(crate) struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// A parse/lookup failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses a raw argument list (without the program/subcommand names).
    ///
    /// Every `--key` must be followed by a value; bare `--key` at the end
    /// or followed by another flag is an error (the CLI has no boolean
    /// flags — explicit values keep invocations self-documenting).
    pub(crate) fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("empty flag name '--'".into()));
                }
                match iter.next() {
                    Some(v) if !v.starts_with("--") => {
                        if args.flags.insert(key.to_string(), v).is_some() {
                            return Err(ArgError(format!("flag --{key} given twice")));
                        }
                    }
                    _ => return Err(ArgError(format!("flag --{key} needs a value"))),
                }
            } else {
                args.positional.push(a);
            }
        }
        Ok(args)
    }

    /// Positional arguments.
    pub(crate) fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string flag.
    pub(crate) fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// A string flag with a default.
    pub(crate) fn get_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    /// A required string flag.
    pub(crate) fn require(&self, key: &str) -> Result<String, ArgError> {
        self.get(key)
            .map(str::to_string)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// A parsed numeric flag with a default.
    pub(crate) fn get_parsed_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError(format!("--{key}: cannot parse '{v}'"))),
        }
    }

    /// Rejects unknown flags (call after reading all expected ones).
    pub(crate) fn reject_unknown(&self, known: &[&str]) -> Result<(), ArgError> {
        for key in self.flags.keys() {
            if !known.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{key} (expected one of: {})",
                    known.iter().map(|k| format!("--{k}")).collect::<Vec<_>>().join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Args, ArgError> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = parse(&["pos1", "--lines", "500", "pos2", "--seed", "7"]).expect("parse");
        assert_eq!(a.positional(), &["pos1", "pos2"]);
        assert_eq!(a.get("lines"), Some("500"));
        assert_eq!(a.get_parsed_or("seed", 0u64).expect("num"), 7);
        assert_eq!(a.get_parsed_or("missing", 42u32).expect("default"), 42);
        assert_eq!(a.get_or("scenario", "baseline"), "baseline");
    }

    #[test]
    fn rejects_missing_values_and_duplicates() {
        assert!(parse(&["--lines"]).is_err());
        assert!(parse(&["--lines", "--seed", "7"]).is_err());
        assert!(parse(&["--x", "1", "--x", "2"]).is_err());
        assert!(parse(&["--", "v"]).is_err());
    }

    #[test]
    fn require_and_unknown_flags() {
        let a = parse(&["--out", "dir"]).expect("parse");
        assert_eq!(a.require("out").expect("present"), "dir");
        assert!(a.require("model").is_err());
        assert!(a.reject_unknown(&["out"]).is_ok());
        assert!(a.reject_unknown(&["model"]).is_err());
    }

    #[test]
    fn parse_errors_are_descriptive() {
        let e = parse(&["--lines"]).expect_err("must fail");
        assert!(e.to_string().contains("--lines"));
        let a = parse(&["--n", "abc"]).expect("parse");
        let e = a.get_parsed_or("n", 0usize).expect_err("must fail");
        assert!(e.to_string().contains("abc"));
    }
}
