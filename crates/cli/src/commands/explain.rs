//! `nevermind explain` — render one line's causal chain from a
//! `nevermind-trace/v1` JSONL export: why it ranked where it did (top
//! stump contributions), the calibration step, the dispatch decision, and
//! what the truck found.

use super::CliResult;
use crate::args::Args;
use serde_json::Value;

/// One parsed trace event.
pub(crate) struct Event {
    pub(crate) seq: u64,
    pub(crate) kind: String,
    pub(crate) line: Option<u64>,
    pub(crate) day: Option<u64>,
    pub(crate) fields: Value,
}

impl Event {
    pub(crate) fn f64(&self, name: &str) -> Option<f64> {
        self.fields.as_object()?.get(name)?.as_f64()
    }

    pub(crate) fn u64(&self, name: &str) -> Option<u64> {
        self.fields.as_object()?.get(name)?.as_u64()
    }

    pub(crate) fn str(&self, name: &str) -> Option<&str> {
        self.fields.as_object()?.get(name)?.as_str()
    }
}

/// Runs the subcommand.
pub(crate) fn run(args: &Args) -> CliResult {
    args.reject_unknown(&["trace", "line", "metrics", "trace-sample"])?;
    let _span = nevermind_obs::span!("cli/explain");
    let path = args.require("trace")?;
    let line_arg = args.require("line")?;
    // Accept both the raw index and the Display form ("LineId#7").
    let line: u64 = line_arg
        .strip_prefix("LineId#")
        .unwrap_or(&line_arg)
        .parse()
        .map_err(|_| format!("--line must be a line index (got '{line_arg}')"))?;

    let events = load_trace(&path)?;
    let ours: Vec<&Event> = events.iter().filter(|e| e.line == Some(line)).collect();
    if ours.is_empty() {
        let mut traced: Vec<u64> = events.iter().filter_map(|e| e.line).collect();
        traced.sort_unstable();
        traced.dedup();
        return Err(format!(
            "no trace events for line {line}; the trace covers {} lines \
             (raise --trace-sample or dispatch budgets to trace more)",
            traced.len()
        )
        .into());
    }

    println!("decision provenance for line {line} — {path} (nevermind-trace/v1)");

    // Weekly ranking chains, in day order (rank is the chain's anchor).
    let mut rank_days: Vec<u64> =
        ours.iter().filter(|e| e.kind == "rank").filter_map(|e| e.day).collect();
    rank_days.sort_unstable();
    rank_days.dedup();
    for day in &rank_days {
        render_week(&ours, *day);
    }
    if rank_days.is_empty() {
        println!("\n(no ranking events for this line — it was never scored while traced)");
    }

    // The closed loop: dispatches scheduled and what the trucks found.
    let mut printed_visits = false;
    for e in &ours {
        match e.kind.as_str() {
            "dispatch" => {
                println!(
                    "\ndispatch scheduled on day {} (due day {}{})",
                    e.day.unwrap_or(0),
                    e.u64("due_day").unwrap_or(0),
                    if e.u64("proactive") == Some(1) { ", proactive" } else { "" },
                );
            }
            "visit" => {
                printed_visits = true;
                let found = e.u64("found_fault") == Some(1);
                println!(
                    "truck roll on day {} ({}): disposition {} ({}) after {} tests, {:.0} minutes",
                    e.day.unwrap_or(0),
                    if e.u64("proactive") == Some(1) { "proactive" } else { "reactive" },
                    e.str("disposition").unwrap_or("?"),
                    if found { "found a fault" } else { "no fault found" },
                    e.u64("tests_performed").unwrap_or(0),
                    e.f64("minutes_spent").unwrap_or(0.0),
                );
            }
            _ => {}
        }
    }
    if !printed_visits {
        println!("\n(no technician visit recorded for this line in the trace window)");
    }

    // Trouble-locator terms, if the trace carries any for this line.
    let locates: Vec<&&Event> = ours.iter().filter(|e| e.kind == "locate").collect();
    if !locates.is_empty() {
        println!("\ntrouble locator (flat vs combined posteriors)");
        println!("  {:<20} {:>12} {:>12}  location", "disposition", "flat P", "combined P");
        for e in locates {
            println!(
                "  {:<20} {:>12.4} {:>12.4}  {}",
                e.str("disposition").unwrap_or("?"),
                e.f64("flat_probability").unwrap_or(f64::NAN),
                e.f64("combined_probability").unwrap_or(f64::NAN),
                e.str("location").unwrap_or("?"),
            );
        }
    }
    Ok(())
}

/// Renders one ranked week's chain: rank line, stump contributions,
/// calibration step.
fn render_week(ours: &[&Event], day: u64) {
    let at_day = |kind: &str| -> Vec<&&Event> {
        ours.iter().filter(|e| e.kind == kind && e.day == Some(day)).collect()
    };
    let Some(rank) = at_day("rank").first().copied() else { return };
    let dispatched = rank.u64("dispatched") == Some(1);
    println!(
        "\nweek ending day {day}: rank {} · P(ticket) = {:.4} · {}",
        rank.u64("rank").unwrap_or(0),
        rank.f64("probability").unwrap_or(f64::NAN),
        if dispatched { "DISPATCHED" } else { "not dispatched" },
    );
    if let Some(score) = at_day("score").first() {
        println!(
            "  ensemble margin {:+.4} over {} stumps; top contributions:",
            score.f64("margin").unwrap_or(f64::NAN),
            score.u64("stumps").unwrap_or(0),
        );
    }
    let mut stumps = at_day("stump");
    stumps.sort_by_key(|e| e.u64("order").unwrap_or(u64::MAX));
    for e in stumps {
        println!(
            "    #{} {:<40} value {:>10.3}  thr {:>10.3}  vote {:+.4}",
            e.u64("order").unwrap_or(0) + 1,
            e.str("name").unwrap_or("?"),
            e.f64("value").unwrap_or(f64::NAN),
            e.f64("threshold").unwrap_or(f64::NAN),
            e.f64("vote").unwrap_or(f64::NAN),
        );
    }
    if let Some(cal) = at_day("calibrate").first() {
        println!(
            "  calibration: sigmoid({} * margin + {}) = {:.4}",
            trim(cal.f64("a").unwrap_or(f64::NAN)),
            trim(cal.f64("b").unwrap_or(f64::NAN)),
            cal.f64("probability").unwrap_or(f64::NAN),
        );
    }
}

fn trim(v: f64) -> String {
    format!("{v:.4}")
}

/// Loads and schema-checks a `nevermind-trace/v1` JSONL file.
pub(crate) fn load_trace(path: &str) -> Result<Vec<Event>, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| format!("'{path}' is empty"))?;
    let header = serde_json::parse(header)
        .map_err(|e| format!("cannot parse trace header in '{path}': {e}"))?;
    let schema = header
        .as_object()
        .and_then(|h| h.get("schema"))
        .and_then(Value::as_str)
        .unwrap_or("<missing>");
    if schema != "nevermind-trace/v1" {
        return Err(format!(
            "'{path}' is not a nevermind-trace/v1 file (schema: {schema}); \
             produce one with '--trace PATH' on any subcommand"
        )
        .into());
    }
    let mut events = Vec::new();
    for (i, raw) in lines.enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        let v = serde_json::parse(raw)
            .map_err(|e| format!("cannot parse trace event on line {} of '{path}': {e}", i + 2))?;
        let obj = v
            .as_object()
            .ok_or_else(|| format!("trace event on line {} of '{path}' is not an object", i + 2))?;
        events.push(Event {
            seq: obj.get("seq").and_then(Value::as_u64).unwrap_or(0),
            kind: obj.get("kind").and_then(Value::as_str).unwrap_or("").to_string(),
            line: obj.get("line").and_then(Value::as_u64),
            day: obj.get("day").and_then(Value::as_u64),
            fields: obj.get("fields").cloned().unwrap_or(Value::Null),
        });
    }
    events.sort_by_key(|e| e.seq);
    Ok(events)
}
