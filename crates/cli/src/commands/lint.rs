//! `nevermind lint` — run the workspace static analysis (see the
//! `nevermind-lint` crate) from the main CLI.

use super::CliResult;
use crate::args::Args;
use std::path::Path;

/// Runs the subcommand.
pub(crate) fn run(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "root",
        "format",
        "out",
        "rules",
        "list-rules",
        "metrics",
        "trace",
        "trace-sample",
    ])?;
    let _span = nevermind_obs::span!("cli/lint");
    if args.get_parsed_or("list-rules", false)? {
        for r in nevermind_lint::RULES {
            println!("{:<26} {}", r.id, r.summary);
        }
        return Ok(());
    }
    let root = args.get_or("root", ".");
    let format = args.get_or("format", "text");
    if format != "text" && format != "json" {
        return Err(format!("--format must be 'text' or 'json', got '{format}'").into());
    }
    let opts = match args.get("rules") {
        Some(csv) => nevermind_lint::LintOptions::with_rules(csv)?,
        None => nevermind_lint::LintOptions::default(),
    };

    let report = nevermind_lint::lint_workspace_with(Path::new(&root), &opts)?;
    let rendered = if format == "json" { report.render_json() } else { report.render_text() };
    match args.get("out") {
        Some(path) => nevermind_lint::engine::write_report(path, &rendered)?,
        None => print!("{rendered}"),
    }
    if report.clean() {
        Ok(())
    } else {
        Err(format!(
            "{} lint diagnostic(s); fix them or acknowledge with \
             `// lint:allow(<rule>) -- <reason>`",
            report.diagnostics.len()
        )
        .into())
    }
}
