//! `nevermind locate` — fit the trouble locator on a saved dataset and
//! show ranked dispositions for held-out dispatches.

use super::{load_dataset, CliResult};
use crate::args::Args;
use nevermind::locator::{
    collect_dispatch_examples, LocatorConfig, LocatorEvaluation, TroubleLocator,
};

/// Runs the subcommand.
pub(crate) fn run(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "data",
        "top",
        "dispatches",
        "iterations",
        "metrics",
        "trace",
        "trace-sample",
    ])?;
    let _span = nevermind_obs::span!("cli/locate");
    let data = load_dataset(&args.require("data")?)?;
    let top: usize = args.get_parsed_or("top", 5usize)?;
    let n_show: usize = args.get_parsed_or("dispatches", 3usize)?;

    let days = data.config.days;
    let mid = days * 2 / 3;
    let config = LocatorConfig {
        iterations: args.get_parsed_or("iterations", 80usize)?,
        ..LocatorConfig::default()
    };
    eprintln!("fitting the trouble locator on dispatches in [30, {mid}) ...");
    let locator = TroubleLocator::fit(&data, 30, mid, &config)?;
    println!(
        "{} of 52 dispositions modeled from {} training dispatches",
        locator.modeled_dispositions().len(),
        collect_dispatch_examples(&data.output.notes, 30, mid).len()
    );

    let examples = collect_dispatch_examples(&data.output.notes, mid, days);
    if examples.is_empty() {
        println!("no held-out dispatches to demonstrate on");
        return Ok(());
    }
    let ds = locator.encode_examples(&data, &examples[..n_show.min(examples.len())]);
    for (i, e) in examples.iter().take(n_show).enumerate() {
        println!(
            "\ndispatch to {} (day {}), technician recorded {}:",
            e.line,
            e.day,
            e.disposition.info().code
        );
        // Tag the locator's trace events with the dispatch they explain.
        let ranked = locator.rank_combined_traced(ds.x.row(i), Some((e.line.0, e.day)));
        for s in ranked.iter().take(top) {
            let marker = if s.disposition == e.disposition { "  <-- true" } else { "" };
            println!(
                "  {:<20} P = {:.3} ({}){marker}",
                s.disposition.info().code,
                s.probability,
                s.disposition.location().label()
            );
        }
    }

    let eval = LocatorEvaluation::run(&locator, &data, mid, days);
    let (basic, flat, combined) = eval.tests_to_locate(0.5);
    let (bm, fm, cm, costm) = eval.mean_minutes();
    println!("\n--- aggregate over {} held-out dispatches ---", eval.per_example.len());
    println!("tests to locate 50%: basic {basic} / flat {flat} / combined {combined}");
    println!(
        "mean technician minutes: basic {bm:.0} / flat {fm:.0} / combined {cm:.0} / cost-aware {costm:.0}"
    );
    println!("major-location accuracy: {:.1}%", 100.0 * eval.location_accuracy());
    Ok(())
}
