//! CLI subcommand implementations.

pub(crate) mod explain;
pub(crate) mod lint;
pub(crate) mod locate;
pub(crate) mod rank;
pub(crate) mod report;
pub(crate) mod simulate;
pub(crate) mod train;
pub(crate) mod trial;

use nevermind_dslsim::scenario::Scenario;

/// Shared error type: user-facing message strings.
pub(crate) type CliResult = Result<(), Box<dyn std::error::Error>>;

/// `nevermind scenarios` — list the named presets.
pub(crate) fn scenarios(args: &crate::args::Args) -> CliResult {
    args.reject_unknown(&["metrics", "trace", "trace-sample"])?;
    println!("{:<18} description", "scenario");
    println!("{:<18} -----------", "--------");
    for s in Scenario::ALL {
        println!("{:<18} {}", s.name(), s.description());
    }
    Ok(())
}

/// Dumps the global metrics registry as one JSON document at `path`
/// (the `--metrics` flag every subcommand accepts).
pub(crate) fn write_metrics(path: &str) -> CliResult {
    std::fs::write(path, nevermind_obs::global().to_json())
        .map_err(|e| format!("cannot write metrics '{path}': {e}"))?;
    eprintln!("wrote metrics to {path}");
    Ok(())
}

/// Dumps the global trace buffer as one `nevermind-trace/v1` JSONL
/// document at `path` (the `--trace` flag every subcommand accepts).
pub(crate) fn write_trace(path: &str) -> CliResult {
    std::fs::write(path, nevermind_obs::trace::global().to_jsonl())
        .map_err(|e| format!("cannot write trace '{path}': {e}"))?;
    eprintln!("wrote trace to {path}");
    Ok(())
}

/// Resolves a scenario flag into a simulator config.
pub(crate) fn sim_config_from(
    args: &crate::args::Args,
) -> Result<nevermind_dslsim::SimConfig, Box<dyn std::error::Error>> {
    let name = args.get_or("scenario", "baseline");
    let scenario = Scenario::parse(&name)
        .ok_or_else(|| format!("unknown scenario '{name}' (see 'nevermind scenarios')"))?;
    let lines = args.get_parsed_or("lines", 4_000usize)?;
    let days = args.get_parsed_or("days", 330u32)?;
    let seed = args.get_parsed_or("seed", 0x5EED_CA11u64)?;
    let cfg = scenario.config(seed, lines, days);
    cfg.validate().map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(cfg)
}

/// Loads a dataset written by `nevermind simulate`.
pub(crate) fn load_dataset(
    path: &str,
) -> Result<nevermind::pipeline::ExperimentData, Box<dyn std::error::Error>> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open dataset '{path}': {e}"))?;
    let reader = std::io::BufReader::new(file);
    let data: nevermind::pipeline::ExperimentData = serde_json::from_reader(reader)
        .map_err(|e| format!("cannot parse dataset '{path}': {e}"))?;
    Ok(data)
}
