//! CLI subcommand implementations.

pub(crate) mod explain;
pub(crate) mod lint;
pub(crate) mod locate;
pub(crate) mod rank;
pub(crate) mod report;
pub(crate) mod simulate;
pub(crate) mod train;
pub(crate) mod trial;

use nevermind_dslsim::scenario::Scenario;

/// Shared error type: user-facing message strings.
pub(crate) type CliResult = Result<(), Box<dyn std::error::Error>>;

/// A typed "recognized family, unsupported version" failure for
/// `nevermind-*` schema strings — a named error, never a panic, so a
/// dump from a newer build degrades into an actionable message.
#[derive(Debug)]
pub(crate) struct SchemaError {
    /// The schema string found in the file.
    pub(crate) found: String,
    /// Schemas this build understands.
    pub(crate) supported: &'static [&'static str],
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schema error: unsupported schema '{}'; this build reads {}",
            self.found,
            self.supported.join(", ")
        )
    }
}

impl std::error::Error for SchemaError {}

/// The live observability plane behind `--obs-listen ADDR` and
/// `--profile PATH` on long-running subcommands (`trial`, `simulate`).
///
/// `--obs-listen` binds the [`nevermind_obs::ObsServer`] HTTP endpoint
/// (and turns the trace ring on so `/trace/tail` and `/explain` have
/// events to serve); either flag starts the continuous span profiler so
/// `/profile` answers live and `--profile PATH` gets a collapsed-stack
/// dump on exit. Neither perturbs outcomes: the server only reads
/// snapshots, the profiler only observes span stacks, and the extra
/// status line goes to stderr.
pub(crate) struct ObsPlane {
    server: Option<nevermind_obs::ObsServer>,
    profile_out: Option<String>,
    started_profiler: bool,
}

impl ObsPlane {
    /// Reads `--obs-listen` / `--profile` and brings the plane up.
    /// Returns an inert plane when neither flag is present.
    pub(crate) fn start(args: &crate::args::Args) -> Result<ObsPlane, Box<dyn std::error::Error>> {
        let profile_out = args.get("profile").map(str::to_owned);
        let server = match args.get("obs-listen") {
            None => None,
            Some(addr) => {
                nevermind_obs::trace::set_enabled(true);
                let server = nevermind_obs::ObsServer::start(addr)?;
                eprintln!(
                    "obs: live observability plane on http://{} \
                     (/metrics /health /history /alerts /trace/tail /explain /profile)",
                    server.local_addr()
                );
                Some(server)
            }
        };
        let started_profiler = server.is_some() || profile_out.is_some();
        if started_profiler {
            nevermind_obs::profile::global()
                .start(nevermind_obs::profile::Profiler::DEFAULT_INTERVAL)
                .map_err(|e| format!("cannot start span profiler: {e}"))?;
        }
        Ok(ObsPlane { server, profile_out, started_profiler })
    }

    /// Tears the plane down: stops the sampler, writes the `--profile`
    /// dump if requested, and shuts the HTTP listener down.
    pub(crate) fn finish(self) -> CliResult {
        if self.started_profiler {
            nevermind_obs::profile::global().stop();
        }
        if let Some(path) = &self.profile_out {
            let dump = nevermind_obs::profile::global().collapsed();
            std::fs::write(path, &dump)
                .map_err(|e| format!("cannot write profile '{path}': {e}"))?;
            eprintln!(
                "wrote {} collapsed stack{} to {path} (flamegraph.pl / inferno format)",
                dump.lines().count(),
                if dump.lines().count() == 1 { "" } else { "s" }
            );
        }
        if let Some(server) = self.server {
            server.stop();
        }
        Ok(())
    }
}

/// Brings up the deterministic metrics-history layer behind `--history
/// on|off` and `--rules PATH` (long-running subcommands: `trial`,
/// `simulate`).
///
/// `--rules PATH` parses a zero-dependency rule file (recording rules,
/// `for`-duration alert rules, SLO error-budget objectives — see the
/// README's "Metrics history & alerting" section for the grammar) and
/// installs it as the global rule engine, which implies `--history on`.
/// The history ring snapshots the registry on *simulated* day ticks, so
/// everything it retains — and every alert transition the engine takes —
/// is byte-reproducible across reruns and shard counts, and outcomes are
/// byte-identical with the layer on or off.
pub(crate) fn setup_history(args: &crate::args::Args) -> CliResult {
    let rules = match args.get("rules") {
        None => None,
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read rules '{path}': {e}"))?;
            let rules = nevermind_obs::rules::parse_rules(&text)
                .map_err(|e| format!("cannot parse rules '{path}': {e}"))?;
            Some((path.to_string(), rules))
        }
    };
    let history_on = match args.get("history") {
        None => rules.is_some(),
        Some("on") => true,
        Some("off") => false,
        Some(other) => {
            return Err(format!("--history takes 'on' or 'off', not '{other}'").into());
        }
    };
    if let Some((path, rules)) = rules {
        if !history_on {
            return Err(
                format!("--rules '{path}' needs the history layer; drop '--history off'").into()
            );
        }
        eprintln!(
            "obs: installed rules from {path} ({} recording, {} alert, {} slo)",
            rules.records.len(),
            rules.alerts.len(),
            rules.slos.len()
        );
        nevermind_obs::rules::install(rules);
    }
    nevermind_obs::history::set_enabled(history_on);
    if history_on {
        eprintln!("obs: metrics history ring enabled (day + week resolutions, sim-time ticks)");
    }
    Ok(())
}

/// `nevermind scenarios` — list the named presets.
pub(crate) fn scenarios(args: &crate::args::Args) -> CliResult {
    args.reject_unknown(&["metrics", "trace", "trace-sample"])?;
    println!("{:<18} description", "scenario");
    println!("{:<18} -----------", "--------");
    for s in Scenario::ALL {
        println!("{:<18} {}", s.name(), s.description());
    }
    Ok(())
}

/// Dumps the global metrics registry as one JSON document at `path`
/// (the `--metrics` flag every subcommand accepts).
pub(crate) fn write_metrics(path: &str) -> CliResult {
    // History-aware export: when the history layer ran, the dump grows a
    // `nevermind-history/v1` section (windowed aggregates + alert states);
    // when it didn't, the document is byte-identical to the plain form.
    let snap = nevermind_obs::global().snapshot();
    std::fs::write(path, nevermind_obs::json::snapshot_to_json_with_history(&snap))
        .map_err(|e| format!("cannot write metrics '{path}': {e}"))?;
    eprintln!("wrote metrics to {path}");
    Ok(())
}

/// Dumps the global trace buffer as one `nevermind-trace/v1` JSONL
/// document at `path` (the `--trace` flag every subcommand accepts).
pub(crate) fn write_trace(path: &str) -> CliResult {
    std::fs::write(path, nevermind_obs::trace::global().to_jsonl())
        .map_err(|e| format!("cannot write trace '{path}': {e}"))?;
    eprintln!("wrote trace to {path}");
    Ok(())
}

/// Resolves a scenario flag into a simulator config.
pub(crate) fn sim_config_from(
    args: &crate::args::Args,
) -> Result<nevermind_dslsim::SimConfig, Box<dyn std::error::Error>> {
    let name = args.get_or("scenario", "baseline");
    let scenario = Scenario::parse(&name)
        .ok_or_else(|| format!("unknown scenario '{name}' (see 'nevermind scenarios')"))?;
    let lines = args.get_parsed_or("lines", 4_000usize)?;
    let days = args.get_parsed_or("days", 330u32)?;
    let seed = args.get_parsed_or("seed", 0x5EED_CA11u64)?;
    let cfg = scenario.config(seed, lines, days);
    cfg.validate().map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(cfg)
}

/// Loads a dataset written by `nevermind simulate`.
pub(crate) fn load_dataset(
    path: &str,
) -> Result<nevermind::pipeline::ExperimentData, Box<dyn std::error::Error>> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open dataset '{path}': {e}"))?;
    let reader = std::io::BufReader::new(file);
    let data: nevermind::pipeline::ExperimentData = serde_json::from_reader(reader)
        .map_err(|e| format!("cannot parse dataset '{path}': {e}"))?;
    Ok(data)
}
