//! `nevermind rank` — spend the ATDS budget on a saved dataset with a
//! saved model, optionally explaining each pick.

use super::{load_dataset, CliResult};
use crate::args::Args;
use nevermind::pipeline::SplitSpec;
use nevermind::predictor::TicketPredictor;

/// Runs the subcommand.
pub(crate) fn run(args: &Args) -> CliResult {
    args.reject_unknown(&["data", "model", "top", "explain", "metrics", "trace", "trace-sample"])?;
    let _span = nevermind_obs::span!("cli/rank");
    let data = load_dataset(&args.require("data")?)?;
    let model_path = args.require("model")?;
    let top: usize = args.get_parsed_or("top", 20usize)?;
    let explain: usize = args.get_parsed_or("explain", 0usize)?;

    let file = std::fs::File::open(&model_path)
        .map_err(|e| format!("cannot open model '{model_path}': {e}"))?;
    let predictor: TicketPredictor = serde_json::from_reader(std::io::BufReader::new(file))
        .map_err(|e| format!("cannot parse model '{model_path}': {e}"))?;

    let split = SplitSpec::paper_like(&data)?;
    eprintln!("ranking test Saturdays {:?} ...", split.test_days);
    let ranking = predictor.rank(&data, &split.test_days);

    println!("{:<12} {:>5} {:>22} {:>8}", "line", "day", "P(ticket in 4 wks)", "outcome");
    for (key, prob, label) in ranking.top_rows(top) {
        println!(
            "{:<12} {:>5} {:>22.3} {:>8}",
            key.line.to_string(),
            key.day,
            prob,
            if label { "ticket" } else { "-" }
        );
    }
    let budget = ((ranking.len() as f64) * 0.01).ceil() as usize;
    println!("\nprecision@{budget} (1% budget) = {:.1}%", 100.0 * ranking.precision_at(budget));

    // With `--trace`, emit the provenance chain for every printed row so
    // `nevermind explain` can reconstruct the batch ranking too.
    if nevermind_obs::trace::enabled() {
        let encoder = data.encoder(Default::default());
        let base = encoder.encode(&split.test_days);
        let assembled = predictor.assemble(&base);
        let names = predictor.assembled_feature_names();
        for (i, (key, prob, _)) in ranking.top_rows(top).into_iter().enumerate() {
            if let Some(row_idx) = base.rows.iter().position(|r| *r == key) {
                nevermind::provenance::emit_scored_line(
                    &predictor,
                    &names,
                    assembled.x.row(row_idx),
                    (key.line.0, key.day),
                    (i + 1, prob, i < budget),
                );
            }
        }
    }

    if explain > 0 {
        let encoder = data.encoder(Default::default());
        let base = encoder.encode(&split.test_days);
        let assembled = predictor.assemble(&base);
        // Map row keys back to assembled row indices.
        println!("\n--- why the top {explain} picks ---");
        for (key, prob, _) in ranking.top_rows(explain) {
            // A malformed or mismatched dataset (e.g. edited by hand, or a
            // model trained against a different plant) can rank a row the
            // re-encoding does not contain; report it instead of panicking.
            let row_idx = base.rows.iter().position(|r| *r == key).ok_or_else(|| {
                format!(
                    "ranked line {} (day {}) is missing from the dataset's encoding — \
                     was the dataset modified, or the model trained on different data?",
                    key.line, key.day
                )
            })?;
            let contributions = predictor.explain(assembled.x.row(row_idx));
            println!("\n{} @ day {} (P = {prob:.3}):", key.line, key.day);
            for c in contributions.iter().take(5) {
                println!("  {:<40} value {:>12.3}  margin {:+.3}", c.name, c.value, c.contribution);
            }
        }
    }
    Ok(())
}
