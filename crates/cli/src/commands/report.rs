//! `nevermind report` — render a `--metrics` JSON dump as a terminal
//! report: top spans by total time, per-week series as sparkline tables,
//! the model-health drift/calibration table with threshold breaches
//! called out, and — for dumps written with `--history` — the
//! `nevermind-history/v1` section as week-window sparklines plus the
//! alert scoreboard and transition timeline.
//!
//! Reads any `nevermind-metrics/v1` document, including pre-telemetry dumps
//! (the sections it cannot find are reported as absent, not errors).
//! Dumps from a *newer* schema version fail with a named
//! [`SchemaError`], never a parse panic. `--profile FILE` instead renders
//! a collapsed-stack profiler dump (`frame;frame N`, as written by
//! `--profile` on `trial`/`simulate` or served at `GET /profile`).

use super::{CliResult, SchemaError};
use crate::args::Args;
use serde_json::Value;

/// How many spans the "top spans" table shows.
const TOP_SPANS: usize = 12;
/// Sparklines are downsampled to at most this many cells.
const SPARK_WIDTH: usize = 48;
/// How many frames the profile self-time table shows.
const TOP_FRAMES: usize = 20;

/// Schemas the positional-dump path understands.
const SUPPORTED: &[&str] = &["nevermind-metrics/v1", "nevermind-trace/v1"];

/// Runs the subcommand. The dump path is the one positional argument;
/// `--profile FILE` is the flag-selected alternative mode. Positional
/// dumps may be `nevermind-metrics/v1` JSON or `nevermind-trace/v1`
/// JSONL (detected from the header line).
pub(crate) fn run(args: &Args, path: Option<&str>) -> CliResult {
    args.reject_unknown(&["metrics", "trace", "trace-sample", "profile"])?;
    let profile = args.get("profile");
    let path = match (path, profile) {
        (Some(_), Some(_)) => {
            return Err("pass either a dump path or --profile FILE, not both".into())
        }
        (None, Some(profile)) => return render_profile(profile),
        (None, None) => {
            return Err("usage: nevermind report METRICS_OR_TRACE | --profile FILE".into())
        }
        (Some(path), None) => path,
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    match header_schema(&text).as_deref() {
        // A JSONL header on the first line decides the format outright.
        Some("nevermind-trace/v1") => return render_trace(path),
        Some(schema) if schema.starts_with("nevermind-") && !SUPPORTED.contains(&schema) => {
            return Err(SchemaError { found: schema.to_string(), supported: SUPPORTED }.into());
        }
        _ => {}
    }
    let doc = serde_json::parse(&text).map_err(|e| format!("cannot parse '{path}': {e}"))?;
    let doc = doc.as_object().ok_or("metrics document is not a JSON object")?;
    let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("<missing>");
    if schema.starts_with("nevermind-") && !SUPPORTED.contains(&schema) {
        return Err(SchemaError { found: schema.to_string(), supported: SUPPORTED }.into());
    }

    println!("nevermind metrics report — {path} ({schema})");
    render_spans(doc);
    render_series(doc);
    render_telemetry(doc);
    render_history(doc);
    Ok(())
}

/// The schema string of a single-line JSON header, when the text starts
/// with one (JSONL exports do; pretty-printed metrics dumps do not).
fn header_schema(text: &str) -> Option<String> {
    let first = text.lines().next()?;
    let v = serde_json::parse(first).ok()?;
    Some(v.as_object()?.get("schema")?.as_str()?.to_string())
}

/// Renders a collapsed-stack profile: total samples, distinct stacks,
/// and the top frames by self time (samples where the frame was the
/// innermost open span) alongside total time (samples where it was open
/// at any depth).
fn render_profile(path: &str) -> CliResult {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    if let Some(schema) = header_schema(&text) {
        // A nevermind JSON dump was passed where collapsed stacks belong.
        return Err(SchemaError {
            found: schema,
            supported: &["collapsed stacks (frame;frame N), as written by --profile"],
        }
        .into());
    }
    let mut total_samples = 0u64;
    let mut stacks = 0usize;
    // (frame, self_samples, total_samples), insertion-ordered.
    let mut frames: Vec<(String, u64, u64)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed = line
            .rsplit_once(' ')
            .and_then(|(stack, count)| Some((stack, count.parse::<u64>().ok()?)));
        let Some((stack, count)) = parsed else {
            return Err(format!(
                "'{path}' line {} is not a collapsed stack ('frame;frame N'): {line}",
                i + 1
            )
            .into());
        };
        total_samples += count;
        stacks += 1;
        let mut seen: Vec<&str> = Vec::new();
        let mut leaf = "";
        for frame in stack.split(';') {
            leaf = frame;
            // Recursion repeats a frame within one stack; count its
            // total once.
            if !seen.contains(&frame) {
                seen.push(frame);
            }
        }
        for frame in seen {
            match frames.iter_mut().find(|(f, _, _)| f == frame) {
                Some(row) => row.2 += count,
                None => frames.push((frame.to_string(), 0, count)),
            }
        }
        if let Some(row) = frames.iter_mut().find(|(f, _, _)| f == leaf) {
            row.1 += count;
        }
    }
    println!("nevermind profile report — {path} ({total_samples} samples, {stacks} stacks)");
    if total_samples == 0 {
        println!(
            "\n(no samples — was the profiler running? start it with --profile or --obs-listen)"
        );
        return Ok(());
    }
    frames.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let pct = |n: u64| 100.0 * n as f64 / total_samples as f64;
    println!("\ntop frames by self samples ({} of {})", frames.len().min(TOP_FRAMES), frames.len());
    println!("  {:>7}  {:>8}  {:>7}  {:>8}  frame", "self%", "self", "total%", "total");
    for (frame, self_n, total_n) in frames.iter().take(TOP_FRAMES) {
        println!(
            "  {:>6.1}%  {:>8}  {:>6.1}%  {:>8}  {}",
            pct(*self_n),
            self_n,
            pct(*total_n),
            total_n,
            frame
        );
    }
    Ok(())
}

fn render_spans(doc: &serde_json::Map) {
    let Some(spans) = doc.get("spans").and_then(Value::as_object) else {
        println!("\n(no spans section)");
        return;
    };
    if spans.is_empty() {
        println!("\n(no spans recorded)");
        return;
    }
    let mut rows: Vec<(&str, f64, u64, f64)> = spans
        .iter()
        .filter_map(|(path, s)| {
            let s = s.as_object()?;
            let total_ns = s.get("total_ns")?.as_f64()?;
            let count = s.get("count")?.as_u64()?;
            let mean_ns = s.get("mean_ns").and_then(Value::as_f64).unwrap_or(0.0);
            Some((path.as_str(), total_ns, count, mean_ns))
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop spans by total time ({} of {})", rows.len().min(TOP_SPANS), rows.len());
    println!("  {:>12}  {:>7}  {:>12}  path", "total", "calls", "mean");
    for (path, total_ns, count, mean_ns) in rows.iter().take(TOP_SPANS) {
        println!("  {:>12}  {count:>7}  {:>12}  {path}", fmt_ns(*total_ns), fmt_ns(*mean_ns));
    }
}

fn render_series(doc: &serde_json::Map) {
    let Some(series) = doc.get("series").and_then(Value::as_object) else {
        println!("\n(no series section)");
        return;
    };
    let mut printed_header = false;
    for (name, points) in series.iter() {
        let Some(points) = points.as_array() else { continue };
        let pts: Vec<(f64, f64)> = points
            .iter()
            .filter_map(|p| {
                let p = p.as_array()?;
                Some((p.first()?.as_f64()?, p.get(1)?.as_f64()?))
            })
            .collect();
        if pts.is_empty() {
            continue;
        }
        if !printed_header {
            println!("\nper-week series");
            printed_header = true;
        }
        let ys: Vec<f64> = pts.iter().map(|&(_, y)| y).collect();
        let (min, max) = min_max(&ys);
        println!(
            "  {name}: {} pts, x {:.0}→{:.0}, min {}, max {}, last {}",
            pts.len(),
            pts[0].0,
            pts[pts.len() - 1].0,
            fmt_val(min),
            fmt_val(max),
            fmt_val(ys[ys.len() - 1]),
        );
        println!("    {}", sparkline(&ys, SPARK_WIDTH));
    }
    if !printed_header {
        println!("\n(no series recorded)");
    }
}

fn render_telemetry(doc: &serde_json::Map) {
    let Some(tele) = doc.get("telemetry").and_then(Value::as_object) else {
        println!("\n(no telemetry section — dump predates model-health telemetry)");
        return;
    };
    let status = tele.get("status").and_then(Value::as_str).unwrap_or("unknown");
    let weeks = tele.get("weeks_observed").and_then(Value::as_u64).unwrap_or(0);
    let breaches = tele.get("breaches").and_then(Value::as_u64).unwrap_or(0);
    println!("\nmodel-health telemetry");
    if status == "none" && weeks == 0 {
        println!("  (none recorded — run a trial with --metrics to populate it)");
        return;
    }
    println!(
        "  status: {}   weeks observed: {weeks}   threshold breaches: {breaches}",
        status.to_uppercase()
    );

    let threshold =
        |key: &str| -> Option<f64> { tele.get("thresholds")?.as_object()?.get(key)?.as_f64() };
    // Classic scorecard fallbacks, for dumps written without thresholds.
    let psi_warn = threshold("psi_warning").unwrap_or(0.1);
    let psi_alert = threshold("psi_alert").unwrap_or(0.25);
    let ece_warn = threshold("ece_warning").unwrap_or(0.05);
    let ece_alert = threshold("ece_alert").unwrap_or(0.15);
    println!(
        "  thresholds: PSI warn {psi_warn} / alert {psi_alert} · ECE warn {ece_warn} / alert {ece_alert}"
    );

    let Some(series) = tele.get("series").and_then(Value::as_object) else {
        return;
    };
    if series.is_empty() {
        return;
    }
    println!("  {:<34}  {:>9}  {:>9}  {:>9}  status", "metric", "last", "max", "mean");
    for (name, summary) in series.iter() {
        let Some(s) = summary.as_object() else { continue };
        let last = s.get("last").and_then(Value::as_f64).unwrap_or(f64::NAN);
        let max = s.get("max").and_then(Value::as_f64).unwrap_or(f64::NAN);
        let mean = s.get("mean").and_then(Value::as_f64).unwrap_or(f64::NAN);
        // Drift metrics judge against PSI thresholds, calibration against
        // ECE thresholds; everything else (brier, health) is informational.
        let verdict = if name.starts_with("psi/") || name == "score_psi" {
            classify(max, psi_warn, psi_alert)
        } else if name == "ece" {
            classify(max, ece_warn, ece_alert)
        } else {
            "-"
        };
        println!(
            "  {:<34}  {:>9}  {:>9}  {:>9}  {verdict}",
            name,
            fmt_val(last),
            fmt_val(max),
            fmt_val(mean)
        );
    }
}

/// Renders the optional `nevermind-history/v1` section of a metrics dump:
/// week-window sparklines per retained series, then — when a rule engine
/// ran — the alert/SLO scoreboard and the transition timeline recorded in
/// the engine's notification log. Dumps written without `--history` have
/// no section and print nothing here.
fn render_history(doc: &serde_json::Map) {
    let Some(hist) = doc.get("history").and_then(Value::as_object) else { return };
    let schema = hist.get("schema").and_then(Value::as_str).unwrap_or("<missing>");
    if schema != "nevermind-history/v1" {
        println!("\n(history section has unsupported schema '{schema}'; skipping)");
        return;
    }
    let ticks = hist.get("ticks").and_then(Value::as_u64).unwrap_or(0);
    println!("\nmetrics history ({ticks} sim-day ticks, week windows)");
    let mut printed_series = false;
    if let Some(series) = hist.get("series").and_then(Value::as_object) {
        for (name, rings) in series.iter() {
            let Some(weeks) =
                rings.as_object().and_then(|r| r.get("week")).and_then(Value::as_array)
            else {
                continue;
            };
            // A window is [start_day, min, max, sum, count, last]; the
            // sparkline plots the per-window mean.
            let ys: Vec<f64> = weeks
                .iter()
                .filter_map(|w| {
                    let w = w.as_array()?;
                    let sum = w.get(3)?.as_f64()?;
                    let count = w.get(4)?.as_f64()?;
                    Some(if count > 0.0 { sum / count } else { f64::NAN })
                })
                .collect();
            if ys.is_empty() {
                continue;
            }
            printed_series = true;
            let (min, max) = min_max(&ys);
            println!(
                "  {name}: {} windows, min {}, max {}, last {}",
                ys.len(),
                fmt_val(min),
                fmt_val(max),
                fmt_val(ys[ys.len() - 1]),
            );
            println!("    {}", sparkline(&ys, SPARK_WIDTH));
        }
    }
    if !printed_series {
        println!("  (no series retained)");
    }

    let Some(alerting) = hist.get("alerting").and_then(Value::as_object) else { return };
    let firing = alerting.get("firing").and_then(Value::as_u64).unwrap_or(0);
    let evals = alerting.get("evaluations").and_then(Value::as_u64).unwrap_or(0);
    println!("\nalerting — {evals} evaluations, {firing} firing");
    if let Some(alerts) = alerting.get("alerts").and_then(Value::as_array) {
        for a in alerts {
            let Some(a) = a.as_object() else { continue };
            let name = a.get("name").and_then(Value::as_str).unwrap_or("?");
            let state = a.get("state").and_then(Value::as_str).unwrap_or("?");
            let severity = a.get("severity").and_then(Value::as_str).unwrap_or("?");
            let value = a.get("value").and_then(Value::as_f64).unwrap_or(f64::NAN);
            let threshold = a.get("threshold").and_then(Value::as_f64).unwrap_or(f64::NAN);
            println!(
                "  alert {name} [{severity}]: {}  (value {}, threshold {})",
                if state == "firing" { "FIRING" } else { state },
                fmt_val(value),
                fmt_val(threshold)
            );
        }
    }
    if let Some(slos) = alerting.get("slos").and_then(Value::as_array) {
        for s in slos {
            let Some(s) = s.as_object() else { continue };
            let name = s.get("name").and_then(Value::as_str).unwrap_or("?");
            let status = s.get("status").and_then(Value::as_str).unwrap_or("?");
            let burn = s.get("burn").and_then(Value::as_f64).unwrap_or(f64::NAN);
            let objective = s.get("objective").and_then(Value::as_f64).unwrap_or(f64::NAN);
            println!(
                "  slo {name}: {status}  (burn {}, objective {})",
                fmt_val(burn),
                fmt_val(objective)
            );
        }
    }
    let Some(notes) = alerting.get("notifications").and_then(Value::as_array) else { return };
    if notes.is_empty() {
        println!("  timeline: (no transitions recorded)");
        return;
    }
    println!("  timeline:");
    for n in notes {
        let Some(n) = n.as_object() else { continue };
        let day = n.get("day").and_then(Value::as_u64).unwrap_or(0);
        let Some(f) = n.get("fields").and_then(Value::as_object) else { continue };
        let rule = f.get("rule").and_then(Value::as_str).unwrap_or("?");
        let from = f.get("from").and_then(Value::as_str).unwrap_or("?");
        let to = f.get("to").and_then(Value::as_str).unwrap_or("?");
        println!("    day {day:>4}  {rule}: {from} -> {to}");
    }
}

fn classify(value: f64, warn: f64, alert: f64) -> &'static str {
    if !value.is_finite() {
        "-"
    } else if value >= alert {
        "ALERT"
    } else if value >= warn {
        "warning"
    } else {
        "ok"
    }
}

fn min_max(ys: &[f64]) -> (f64, f64) {
    let min = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (min, max)
}

/// Renders values as 8-level unicode blocks, downsampled by chunk means
/// when longer than `width`. Non-finite values render as spaces.
fn sparkline(ys: &[f64], width: usize) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let cells: Vec<f64> = if ys.len() <= width {
        ys.to_vec()
    } else {
        (0..width)
            .map(|i| {
                let lo = i * ys.len() / width;
                let hi = ((i + 1) * ys.len() / width).max(lo + 1);
                ys[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    };
    let (min, max) = min_max(&cells);
    let span = max - min;
    cells
        .iter()
        .map(|&y| {
            if !y.is_finite() {
                ' '
            } else if span <= 0.0 || !span.is_finite() {
                BLOCKS[3]
            } else {
                let level = ((y - min) / span * 7.0).round() as usize;
                BLOCKS[level.min(7)]
            }
        })
        .collect()
}

/// Human duration from nanoseconds.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Compact numeric cell: fixed-point for ordinary magnitudes, scientific
/// for the tiny calibrated-probability scale, "n/a" for non-finite.
fn fmt_val(v: f64) -> String {
    if !v.is_finite() {
        "n/a".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 0.001 {
        format!("{v:.3}")
    } else {
        format!("{v:.1e}")
    }
}

/// Summarizes a `nevermind-trace/v1` export: events by kind, then the
/// proactive dispatch → technician disposition confusion counts.
fn render_trace(path: &str) -> CliResult {
    let events = super::explain::load_trace(path)?;
    println!("nevermind trace report — {path} (nevermind-trace/v1)");

    // Events by kind, most frequent first (name-ordered ties).
    let mut kinds: Vec<(String, usize)> = Vec::new();
    for e in &events {
        match kinds.iter_mut().find(|(k, _)| *k == e.kind) {
            Some((_, n)) => *n += 1,
            None => kinds.push((e.kind.clone(), 1)),
        }
    }
    kinds.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("\n{} events by kind", events.len());
    for (kind, n) in &kinds {
        println!("  {n:>7}  {kind}");
    }

    // Close the loop: what did proactive truck rolls actually find?
    let proactive: Vec<_> =
        events.iter().filter(|e| e.kind == "visit" && e.u64("proactive") == Some(1)).collect();
    println!("\nproactive dispatch outcomes");
    if proactive.is_empty() {
        println!("  dispatched lines visited: 0");
        println!("  fault-found precision: n/a");
    } else {
        let mut by_disposition: Vec<(String, usize)> = Vec::new();
        let mut found = 0usize;
        for v in &proactive {
            if v.u64("found_fault") == Some(1) {
                found += 1;
            }
            let code = v.str("disposition").unwrap_or("?").to_string();
            match by_disposition.iter_mut().find(|(c, _)| *c == code) {
                Some((_, n)) => *n += 1,
                None => by_disposition.push((code, 1)),
            }
        }
        by_disposition.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        println!("  dispatched lines visited: {}", proactive.len());
        let precision = found as f64 / proactive.len() as f64;
        println!("  fault-found precision: {precision:.3} ({found}/{})", proactive.len());
        println!("  disposition counts:");
        for (code, n) in &by_disposition {
            println!("    {n:>7}  {code}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[0.0, 1.0], 48), "▁█");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0], 48), "▄▄▄");
        assert_eq!(sparkline(&[0.0, f64::NAN, 1.0], 48), "▁ █");
        let long: Vec<f64> = (0..1000).map(f64::from).collect();
        let s = sparkline(&long, 48);
        assert_eq!(s.chars().count(), 48);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }

    #[test]
    fn classification_against_thresholds() {
        assert_eq!(classify(0.05, 0.1, 0.25), "ok");
        assert_eq!(classify(0.12, 0.1, 0.25), "warning");
        assert_eq!(classify(0.30, 0.1, 0.25), "ALERT");
        assert_eq!(classify(f64::NAN, 0.1, 0.25), "-");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ns(4.1e9), "4.10 s");
        assert_eq!(fmt_ns(2.5e6), "2.5 ms");
        assert_eq!(fmt_ns(900.0), "900 ns");
        assert_eq!(fmt_val(0.1234), "0.123");
        assert_eq!(fmt_val(0.000012), "1.2e-5");
        assert_eq!(fmt_val(f64::NAN), "n/a");
    }

    #[test]
    fn header_schema_detection() {
        assert_eq!(
            header_schema("{\"schema\":\"nevermind-trace/v1\",\"events\":0}\n").as_deref(),
            Some("nevermind-trace/v1")
        );
        assert_eq!(
            header_schema("{\"schema\":\"nevermind-trace/v9\"}\n{}\n").as_deref(),
            Some("nevermind-trace/v9")
        );
        // Pretty-printed metrics dumps start with a bare brace.
        assert_eq!(header_schema("{\n  \"schema\": \"nevermind-metrics/v1\"\n}\n"), None);
        assert_eq!(header_schema("weekly/rank_week;score 42\n"), None);
        assert_eq!(header_schema(""), None);
    }

    #[test]
    fn schema_error_is_named_and_lists_supported_versions() {
        let e = SchemaError { found: "nevermind-metrics/v9".to_string(), supported: SUPPORTED };
        let msg = e.to_string();
        assert!(msg.starts_with("schema error:"), "{msg}");
        assert!(msg.contains("nevermind-metrics/v9"), "{msg}");
        assert!(msg.contains("nevermind-metrics/v1"), "{msg}");
    }
}
