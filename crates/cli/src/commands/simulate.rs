//! `nevermind simulate` — generate a dataset and write it to disk.

use super::{sim_config_from, CliResult, ObsPlane};
use crate::args::Args;
use nevermind::pipeline::ExperimentData;
use nevermind_dslsim::export::export_csv_dir;
use nevermind_dslsim::summary::OutputSummary;

/// Runs the subcommand.
pub(crate) fn run(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "out",
        "scenario",
        "lines",
        "days",
        "seed",
        "shards",
        "metrics",
        "trace",
        "trace-sample",
        "obs-listen",
        "profile",
        "rules",
        "history",
    ])?;
    let out_dir = std::path::PathBuf::from(args.require("out")?);
    let cfg = sim_config_from(args)?;
    let shards: usize = args.get_parsed_or("shards", 1usize)?;
    super::setup_history(args)?;
    let plane = ObsPlane::start(args)?;

    eprintln!(
        "simulating {} lines over {} days (seed {}, {shards} shard{}) ...",
        cfg.n_lines,
        cfg.days,
        cfg.seed,
        if shards == 1 { "" } else { "s" }
    );
    let span = nevermind_obs::span!("cli/simulate");
    let data = ExperimentData::simulate_sharded(cfg.clone(), shards);
    eprintln!("simulation finished in {:.1}s", span.elapsed().as_secs_f64());
    drop(span);

    let summary = OutputSummary::compute(&data.output, cfg.n_lines);
    println!("{summary}");

    std::fs::create_dir_all(&out_dir)?;
    export_csv_dir(&out_dir, &data.output)?;

    let dataset_path = out_dir.join("dataset.json");
    let file = std::io::BufWriter::new(std::fs::File::create(&dataset_path)?);
    serde_json::to_writer(file, &data)?;
    println!(
        "\nwrote {} (self-contained; feed it to 'nevermind train') plus CSV tables in {}/",
        dataset_path.display(),
        out_dir.display()
    );
    plane.finish()
}
