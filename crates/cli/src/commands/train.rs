//! `nevermind train` — fit the ticket predictor on a saved dataset.

use super::{load_dataset, CliResult};
use crate::args::Args;
use nevermind::pipeline::SplitSpec;
use nevermind::predictor::{PredictorConfig, TicketPredictor};

/// Runs the subcommand.
pub(crate) fn run(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "data",
        "model",
        "iterations",
        "budget-fraction",
        "n-base",
        "n-quadratic",
        "n-product",
        "selection-row-cap",
        "metrics",
        "trace",
        "trace-sample",
    ])?;
    let data_path = args.require("data")?;
    let model_path = args.require("model")?;

    let data = load_dataset(&data_path)?;
    let split = SplitSpec::paper_like(&data)?;
    let config = PredictorConfig {
        iterations: args.get_parsed_or("iterations", 150usize)?,
        budget_fraction: args.get_parsed_or("budget-fraction", 0.01f64)?,
        n_base: args.get_parsed_or("n-base", 40usize)?,
        n_quadratic: args.get_parsed_or("n-quadratic", 25usize)?,
        n_product: args.get_parsed_or("n-product", 25usize)?,
        selection_row_cap: args.get_parsed_or("selection-row-cap", 12_000usize)?,
        ..PredictorConfig::default()
    };

    eprintln!(
        "training on {:?} (selection eval {:?}) ...",
        split.train_days, split.selection_eval_days
    );
    let span = nevermind_obs::span!("cli/train");
    let (predictor, report) = TicketPredictor::fit(&data, &split, &config)?;
    eprintln!("fit finished in {:.1}s", span.elapsed().as_secs_f64());
    drop(span);

    println!(
        "selected {} features ({} base + {} derived); selection AP budget {}",
        report.n_selected(),
        report.selected_base.len(),
        report.selected_derived.len(),
        report.selection_budget
    );
    println!("top selected features by single-feature AP:");
    // A degenerate selection window (single-class labels) yields NaN AP for
    // every feature scored on it; `total_cmp` keeps the sort panic-free,
    // and NaN-scored features are reported separately rather than ranked.
    let all: Vec<_> =
        report.base.iter().chain(report.quadratic.iter()).chain(report.product.iter()).collect();
    let (unscored, mut scored): (Vec<_>, Vec<_>) = all.into_iter().partition(|f| f.score.is_nan());
    scored.sort_by(|a, b| b.score.total_cmp(&a.score));
    for f in scored.iter().take(10) {
        println!("  {:<40} AP = {:.3}", f.name, f.score);
    }
    if !unscored.is_empty() {
        println!(
            "note: {} features have undefined AP (degenerate selection window?), e.g. {}",
            unscored.len(),
            unscored[0].name
        );
    }

    let file = std::io::BufWriter::new(std::fs::File::create(&model_path)?);
    serde_json::to_writer(file, &predictor)?;
    println!("\nwrote model to {model_path}");

    // Quick self-check on the held-out test window.
    let ranking = predictor.rank(&data, &split.test_days);
    let budget = config.budget(ranking.len());
    println!(
        "held-out check: precision@{budget} = {:.1}% over {} (line, week) pairs",
        100.0 * ranking.precision_at(budget),
        ranking.len()
    );
    Ok(())
}
