//! `nevermind trial` — proactive-vs-reactive twin-world comparison.

use super::{sim_config_from, CliResult};
use crate::args::Args;
use nevermind::pipeline::run_proactive_trial;
use nevermind::predictor::PredictorConfig;

/// Runs the subcommand.
pub fn run(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "scenario",
        "lines",
        "days",
        "seed",
        "warmup-weeks",
        "budget-fraction",
        "iterations",
    ])?;
    let cfg = sim_config_from(args)?;
    let warmup: u32 = args.get_parsed_or("warmup-weeks", 30u32)?;
    let predictor_cfg = PredictorConfig {
        iterations: args.get_parsed_or("iterations", 120usize)?,
        budget_fraction: args.get_parsed_or("budget-fraction", 0.01f64)?,
        selection_row_cap: 8_000,
        ..PredictorConfig::default()
    };

    eprintln!(
        "running twin worlds: {} lines, {} days, policy starts week {warmup} ...",
        cfg.n_lines, cfg.days
    );
    let started = std::time::Instant::now();
    let outcome = run_proactive_trial(cfg, &predictor_cfg, warmup);
    eprintln!("trial finished in {:.1}s", started.elapsed().as_secs_f64());

    println!("policy active from day {}", outcome.policy_start_day);
    println!("reactive twin : {} customer-edge tickets", outcome.reactive_tickets);
    println!("proactive twin: {} customer-edge tickets", outcome.proactive_tickets);
    println!("ticket reduction: {:.1}%", 100.0 * outcome.ticket_reduction());
    println!(
        "proactive dispatches: {} ({} found a fault; {:.1}% precision)",
        outcome.proactive_dispatches,
        outcome.proactive_hits,
        100.0 * outcome.dispatch_precision()
    );
    println!(
        "churned customers: {} reactive vs {} proactive",
        outcome.reactive_churn, outcome.proactive_churn
    );
    Ok(())
}
