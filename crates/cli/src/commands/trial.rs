//! `nevermind trial` — proactive-vs-reactive twin-world comparison, with
//! model-health telemetry and optional drift injection.

use super::{sim_config_from, CliResult, ObsPlane};
use crate::args::Args;
use nevermind::pipeline::{run_proactive_trial_with, TrialOptions};
use nevermind::predictor::PredictorConfig;
use nevermind::telemetry::TelemetryConfig;
use nevermind_dslsim::scenario::Scenario;
use nevermind_features::FeatureStore;

/// Runs the subcommand.
pub(crate) fn run(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "scenario",
        "lines",
        "days",
        "seed",
        "shards",
        "warmup-weeks",
        "budget-fraction",
        "iterations",
        "train-scenario",
        "psi-warn",
        "psi-alert",
        "ece-warn",
        "ece-alert",
        "metrics",
        "trace",
        "trace-sample",
        "stop-after-week",
        "store-out",
        "resume-from",
        "obs-listen",
        "profile",
        "rules",
        "history",
    ])?;
    let cfg = sim_config_from(args)?;
    let mut warmup: u32 = args.get_parsed_or("warmup-weeks", 30u32)?;
    // The warm-up must leave room for the policy to run (and the split
    // machinery needs the warm-up window itself to hold a full protocol);
    // on short horizons clamp rather than panic inside the trial.
    let max_warmup = (cfg.days / 7).saturating_sub(1);
    if warmup > max_warmup {
        eprintln!(
            "note: --warmup-weeks {warmup} does not fit the {}-day horizon; using {max_warmup}",
            cfg.days
        );
        warmup = max_warmup;
    }
    let predictor_cfg = PredictorConfig {
        iterations: args.get_parsed_or("iterations", 120usize)?,
        budget_fraction: args.get_parsed_or("budget-fraction", 0.01f64)?,
        selection_row_cap: 8_000,
        ..PredictorConfig::default()
    };

    // Drift injection: train the model in a *separate* world simulated from
    // another scenario (same seed/scale/horizon), then score the live one —
    // the telemetry must notice the mismatch.
    let train_config = match args.get("train-scenario") {
        None => None,
        Some(name) => {
            let scenario = Scenario::parse(name)
                .ok_or_else(|| format!("unknown scenario '{name}' (see 'nevermind scenarios')"))?;
            Some(scenario.config(cfg.seed, cfg.n_lines, cfg.days))
        }
    };
    // Checkpoint/resume: `--store-out` keeps every ranked week's feature
    // frame and writes the store to disk; `--resume-from` loads such a
    // store so the trial adopts the checkpointed frames instead of
    // re-encoding them. File IO stays here in the CLI — core only sees
    // bytes.
    let stop_after_week: Option<u32> = match args.get("stop-after-week") {
        None => None,
        Some(_) => Some(args.get_parsed_or("stop-after-week", 0u32)?),
    };
    let store_out = args.get("store-out").map(str::to_owned);
    let resume_store = match args.get("resume-from") {
        None => None,
        Some(path) => {
            let bytes =
                std::fs::read(path).map_err(|e| format!("cannot read store '{path}': {e}"))?;
            Some(
                FeatureStore::import(&bytes)
                    .map_err(|e| format!("cannot load store '{path}': {e}"))?,
            )
        }
    };
    let defaults = TelemetryConfig::default();
    let shards: usize = args.get_parsed_or("shards", 0usize)?;
    let options = TrialOptions {
        train_config,
        telemetry: TelemetryConfig {
            psi_warning: args.get_parsed_or("psi-warn", defaults.psi_warning)?,
            psi_alert: args.get_parsed_or("psi-alert", defaults.psi_alert)?,
            ece_warning: args.get_parsed_or("ece-warn", defaults.ece_warning)?,
            ece_alert: args.get_parsed_or("ece-alert", defaults.ece_alert)?,
            ..defaults
        },
        shards,
        stop_after_week,
        resume_store,
        keep_store: store_out.is_some(),
    };

    // The live observability plane (`--obs-listen` / `--profile`) comes up
    // before the run and is torn down after the outcome prints, so a
    // scraper can watch the whole trial. The metrics-history layer
    // (`--history` / `--rules`) likewise starts first so the earliest
    // simulated day already lands in the ring.
    super::setup_history(args)?;
    let plane = ObsPlane::start(args)?;

    eprintln!(
        "running twin worlds: {} lines, {} days, policy starts week {warmup}, {} shard{} ...",
        cfg.n_lines,
        cfg.days,
        shards.max(1),
        if shards.max(1) == 1 { "" } else { "s" }
    );
    let span = nevermind_obs::span!("cli/trial");
    let result = run_proactive_trial_with(cfg, &predictor_cfg, warmup, &options)?;
    eprintln!("trial finished in {:.1}s", span.elapsed().as_secs_f64());
    drop(span);

    if let Some(path) = &store_out {
        let store = result
            .store
            .as_ref()
            .ok_or_else(|| "trial did not return a store despite --store-out".to_string())?;
        let bytes = store.export();
        std::fs::write(path, &bytes).map_err(|e| format!("cannot write store '{path}': {e}"))?;
        eprintln!(
            "wrote {} ranked-week frame{} ({} bytes) to {path}",
            store.frames().len(),
            if store.frames().len() == 1 { "" } else { "s" },
            bytes.len()
        );
    }

    let outcome = &result.outcome;
    println!("policy active from day {}", outcome.policy_start_day);
    println!("reactive twin : {} customer-edge tickets", outcome.reactive_tickets);
    println!("proactive twin: {} customer-edge tickets", outcome.proactive_tickets);
    println!("ticket reduction: {:.1}%", 100.0 * outcome.ticket_reduction());
    // No dispatch → the precision quotient is undefined; print "n/a"
    // rather than the NaN sentinel (`NaN%` was a long-standing eyesore).
    let precision = match outcome.dispatch_precision_checked() {
        Some(p) => format!("{:.1}% precision", 100.0 * p),
        None => "precision n/a".to_string(),
    };
    println!(
        "proactive dispatches: {} ({} found a fault; {precision})",
        outcome.proactive_dispatches, outcome.proactive_hits,
    );
    println!(
        "churned customers: {} reactive vs {} proactive",
        outcome.reactive_churn, outcome.proactive_churn
    );
    if let Some(report) = &result.telemetry {
        println!("{}", report.summary());
    }
    plane.finish()
}
