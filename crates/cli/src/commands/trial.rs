//! `nevermind trial` — proactive-vs-reactive twin-world comparison.

use super::{sim_config_from, CliResult};
use crate::args::Args;
use nevermind::pipeline::run_proactive_trial;
use nevermind::predictor::PredictorConfig;

/// Runs the subcommand.
pub fn run(args: &Args) -> CliResult {
    args.reject_unknown(&[
        "scenario",
        "lines",
        "days",
        "seed",
        "warmup-weeks",
        "budget-fraction",
        "iterations",
        "metrics",
    ])?;
    let cfg = sim_config_from(args)?;
    let mut warmup: u32 = args.get_parsed_or("warmup-weeks", 30u32)?;
    // The warm-up must leave room for the policy to run (and the split
    // machinery needs the warm-up window itself to hold a full protocol);
    // on short horizons clamp rather than panic inside the trial.
    let max_warmup = (cfg.days / 7).saturating_sub(1);
    if warmup > max_warmup {
        eprintln!(
            "note: --warmup-weeks {warmup} does not fit the {}-day horizon; using {max_warmup}",
            cfg.days
        );
        warmup = max_warmup;
    }
    let predictor_cfg = PredictorConfig {
        iterations: args.get_parsed_or("iterations", 120usize)?,
        budget_fraction: args.get_parsed_or("budget-fraction", 0.01f64)?,
        selection_row_cap: 8_000,
        ..PredictorConfig::default()
    };

    eprintln!(
        "running twin worlds: {} lines, {} days, policy starts week {warmup} ...",
        cfg.n_lines, cfg.days
    );
    let span = nevermind_obs::span!("cli/trial");
    let outcome = run_proactive_trial(cfg, &predictor_cfg, warmup);
    eprintln!("trial finished in {:.1}s", span.elapsed().as_secs_f64());
    drop(span);

    println!("policy active from day {}", outcome.policy_start_day);
    println!("reactive twin : {} customer-edge tickets", outcome.reactive_tickets);
    println!("proactive twin: {} customer-edge tickets", outcome.proactive_tickets);
    println!("ticket reduction: {:.1}%", 100.0 * outcome.ticket_reduction());
    // No dispatch → the precision quotient is undefined; print "n/a"
    // rather than the NaN sentinel (`NaN%` was a long-standing eyesore).
    let precision = match outcome.dispatch_precision_checked() {
        Some(p) => format!("{:.1}% precision", 100.0 * p),
        None => "precision n/a".to_string(),
    };
    println!(
        "proactive dispatches: {} ({} found a fault; {precision})",
        outcome.proactive_dispatches, outcome.proactive_hits,
    );
    println!(
        "churned customers: {} reactive vs {} proactive",
        outcome.reactive_churn, outcome.proactive_churn
    );
    Ok(())
}
