//! `nevermind` — command-line interface to the NEVERMIND reproduction.
//!
//! ```text
//! nevermind simulate --out DIR [--scenario S] [--lines N] [--days D] [--seed S] [--shards N]
//! nevermind train    --data DIR/dataset.json --model FILE [--iterations N] ...
//! nevermind rank     --data DIR/dataset.json --model FILE [--top N] [--explain N]
//! nevermind locate   --data DIR/dataset.json [--line ID] [--top N]
//! nevermind lint     [--root PATH] [--format text|json] [--out FILE] [--rules a,b]
//! nevermind trial    [--scenario S] [--lines N] [--days D] [--warmup-weeks W] [--shards N]
//! nevermind explain  --trace FILE --line ID
//! nevermind report   METRICS_OR_TRACE
//! nevermind scenarios
//! ```
//!
//! `simulate` writes a self-contained `dataset.json` (plus CSV tables);
//! `train` fits the Sec.-4 pipeline and writes a portable model JSON;
//! `rank` spends the ATDS budget and can explain each pick; `locate` fits
//! the Sec.-6 trouble locator and prints ranked dispositions for dispatches;
//! `trial` runs the proactive-vs-reactive twin-world comparison; `report`
//! renders a `--metrics` dump (spans, series, model-health telemetry) or
//! summarizes a `--trace` export; `explain` renders one line's decision
//! provenance (stump contributions, calibration, rank, dispatch, truck-roll
//! outcome) from a trace file; `lint` runs the workspace static analysis
//! (determinism and robustness rules — see the `nevermind-lint` crate).

mod args;
mod commands;

use args::Args;

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    // Only `report` takes a positional operand (the dump file to render);
    // every other subcommand is flags-only.
    let max_positional = usize::from(command == "report");
    if parsed.positional().len() > max_positional {
        eprintln!(
            "error: unexpected argument '{}' (every option is a --flag)\n\n{USAGE}",
            parsed.positional()[max_positional]
        );
        std::process::exit(2);
    }

    // The CLI always records metrics (span/counter overhead is negligible at
    // command granularity); `--metrics PATH` additionally dumps the registry
    // as one JSON document on successful exit.
    nevermind_obs::set_enabled(true);
    let metrics_path = parsed.get("metrics").map(str::to_string);

    // `--trace PATH` turns on decision-provenance tracing and exports the
    // event buffer as nevermind-trace/v1 JSONL on successful exit. For
    // `explain` the flag names the *input* trace, so it must not re-enable
    // tracing (or the export would clobber the file being explained).
    let trace_path =
        (command != "explain").then(|| parsed.get("trace").map(str::to_string)).flatten();
    if trace_path.is_some() {
        nevermind_obs::trace::set_enabled(true);
        match parsed.get("trace-sample").map(str::parse::<usize>) {
            None => {}
            Some(Ok(k)) => nevermind_obs::trace::global()
                .set_policy(nevermind_obs::trace::TracePolicy { reservoir_per_week: k }),
            Some(Err(_)) => {
                eprintln!("error: --trace-sample must be a non-negative integer\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let result = match command.as_str() {
        "simulate" => commands::simulate::run(&parsed),
        "train" => commands::train::run(&parsed),
        "rank" => commands::rank::run(&parsed),
        "locate" => commands::locate::run(&parsed),
        "lint" => commands::lint::run(&parsed),
        "trial" => commands::trial::run(&parsed),
        "report" => commands::report::run(&parsed, parsed.positional().first().map(String::as_str)),
        "explain" => commands::explain::run(&parsed),
        "scenarios" => commands::scenarios(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("unknown command '{other}'\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    if let Some(path) = metrics_path {
        if let Err(e) = commands::write_metrics(&path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = trace_path {
        if let Err(e) = commands::write_trace(&path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

const USAGE: &str = "\
nevermind — proactive DSL troubleshooting (CoNEXT 2010 reproduction)

USAGE:
  nevermind simulate --out DIR [--scenario NAME] [--lines N] [--days D] [--seed S] [--shards N]
  nevermind train    --data FILE --model FILE [--iterations N] [--budget-fraction F]
  nevermind rank     --data FILE --model FILE [--top N] [--explain N]
  nevermind locate   --data FILE [--top N] [--dispatches N]
  nevermind trial    [--scenario NAME] [--lines N] [--days D] [--seed S] [--warmup-weeks W]
                     [--shards N] [--train-scenario NAME] [--psi-warn F] [--psi-alert F]
                     [--ece-warn F] [--ece-alert F] [--obs-listen ADDR] [--profile PATH]
                     [--history on|off] [--rules PATH]
  nevermind explain  --trace FILE --line ID
  nevermind report   METRICS_JSON_OR_TRACE_JSONL | --profile COLLAPSED_STACKS
  nevermind lint     [--root PATH] [--format text|json] [--out FILE] [--rules a,b]
                     [--list-rules true]
  nevermind scenarios

Every subcommand also accepts '--metrics PATH' to dump per-phase span
timings, counters, per-week series and model-health telemetry as one
JSON document on exit (see the README's Observability section for the
schema); 'nevermind report' renders such a dump as a terminal report.
Every subcommand likewise accepts '--trace PATH' to record decision
provenance (per-line stump contributions, calibration, rank, dispatch
cutoff, technician disposition) as nevermind-trace/v1 JSONL, with
'--trace-sample N' extra non-dispatched lines traced per week;
'nevermind explain --trace FILE --line ID' then renders one line's full
causal chain, and 'nevermind report FILE' summarizes a trace file.
'trial --train-scenario NAME' trains the model in a separate world to
inject drift that the telemetry must detect. '--shards N' (simulate,
trial) steps the plant N DSLAM-subtree shards in parallel and runs the
weekly scoring stages N-way; outputs are bit-identical for every N. 'nevermind lint' walks the
workspace sources and enforces the determinism/robustness rules — token
bans plus call-graph passes for lock order, effects under locks, schema
drift and hash-iteration nondeterminism ('--rules a,b' runs a subset,
'--list-rules true' enumerates them; suppress a finding inline with
'// lint:allow(<rule>) -- <reason>').
'--obs-listen ADDR' (simulate, trial) serves the live observability
plane over HTTP while the run is in flight: /metrics (JSON, or
?format=prom for Prometheus), /health, /history?series=NAME&r=day|week,
/alerts, /trace/tail?n=N, /explain?line=ID and /profile — bind
127.0.0.1:0 for an ephemeral port (printed on stderr). '--profile PATH'
samples every thread's open span stack continuously and writes a
flamegraph-compatible collapsed-stack dump on exit. '--history on'
(simulate, trial) retains windowed metric aggregates in a fixed-capacity
ring clocked on simulated days; '--rules PATH' loads recording rules,
for-duration alert rules and SLO burn-rate objectives evaluated on that
history (implies --history on; firing alerts flip /health to 503), and
the '--metrics' dump grows a nevermind-history/v1 section that
'nevermind report' renders as sparklines plus an alert timeline. None of
these flags change outcomes: runs are byte-identical with the plane,
history and rules on or off.

Run 'nevermind scenarios' to list the named scenarios.";
