//! `nevermind` — command-line interface to the NEVERMIND reproduction.
//!
//! ```text
//! nevermind simulate --out DIR [--scenario S] [--lines N] [--days D] [--seed S]
//! nevermind train    --data DIR/dataset.json --model FILE [--iterations N] ...
//! nevermind rank     --data DIR/dataset.json --model FILE [--top N] [--explain N]
//! nevermind locate   --data DIR/dataset.json [--line ID] [--top N]
//! nevermind lint     [--root PATH] [--format text|json] [--out FILE]
//! nevermind trial    [--scenario S] [--lines N] [--days D] [--warmup-weeks W]
//! nevermind report   METRICS_JSON
//! nevermind scenarios
//! ```
//!
//! `simulate` writes a self-contained `dataset.json` (plus CSV tables);
//! `train` fits the Sec.-4 pipeline and writes a portable model JSON;
//! `rank` spends the ATDS budget and can explain each pick; `locate` fits
//! the Sec.-6 trouble locator and prints ranked dispositions for dispatches;
//! `trial` runs the proactive-vs-reactive twin-world comparison; `report`
//! renders a `--metrics` dump (spans, series, model-health telemetry);
//! `lint` runs the workspace static analysis (determinism and robustness
//! rules — see the `nevermind-lint` crate).

mod args;
mod commands;

use args::Args;

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    // Only `report` takes a positional operand (the dump file to render);
    // every other subcommand is flags-only.
    let max_positional = usize::from(command == "report");
    if parsed.positional().len() > max_positional {
        eprintln!(
            "error: unexpected argument '{}' (every option is a --flag)\n\n{USAGE}",
            parsed.positional()[max_positional]
        );
        std::process::exit(2);
    }

    // The CLI always records metrics (span/counter overhead is negligible at
    // command granularity); `--metrics PATH` additionally dumps the registry
    // as one JSON document on successful exit.
    nevermind_obs::set_enabled(true);
    let metrics_path = parsed.get("metrics").map(str::to_string);

    let result = match command.as_str() {
        "simulate" => commands::simulate::run(&parsed),
        "train" => commands::train::run(&parsed),
        "rank" => commands::rank::run(&parsed),
        "locate" => commands::locate::run(&parsed),
        "lint" => commands::lint::run(&parsed),
        "trial" => commands::trial::run(&parsed),
        "report" => match parsed.positional().first() {
            Some(path) => commands::report::run(&parsed, path),
            None => Err("usage: nevermind report METRICS_JSON".into()),
        },
        "scenarios" => commands::scenarios(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("unknown command '{other}'\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    if let Some(path) = metrics_path {
        if let Err(e) = commands::write_metrics(&path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

const USAGE: &str = "\
nevermind — proactive DSL troubleshooting (CoNEXT 2010 reproduction)

USAGE:
  nevermind simulate --out DIR [--scenario NAME] [--lines N] [--days D] [--seed S]
  nevermind train    --data FILE --model FILE [--iterations N] [--budget-fraction F]
  nevermind rank     --data FILE --model FILE [--top N] [--explain N]
  nevermind locate   --data FILE [--top N] [--dispatches N]
  nevermind trial    [--scenario NAME] [--lines N] [--days D] [--seed S] [--warmup-weeks W]
                     [--train-scenario NAME] [--psi-warn F] [--psi-alert F]
                     [--ece-warn F] [--ece-alert F]
  nevermind report   METRICS_JSON
  nevermind lint     [--root PATH] [--format text|json] [--out FILE]
  nevermind scenarios

Every subcommand also accepts '--metrics PATH' to dump per-phase span
timings, counters, per-week series and model-health telemetry as one
JSON document on exit (see the README's Observability section for the
schema); 'nevermind report' renders such a dump as a terminal report.
'trial --train-scenario NAME' trains the model in a separate world to
inject drift that the telemetry must detect. 'nevermind lint' walks the
workspace sources and enforces the determinism/robustness rules
(suppress a finding inline with '// lint:allow(<rule>) -- <reason>').

Run 'nevermind scenarios' to list the named scenarios.";
