//! End-to-end CLI test: simulate → train → rank → locate → trial on a tiny
//! world, driving the actual binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nevermind"))
}

fn work_dir() -> PathBuf {
    named_work_dir("flow")
}

/// Per-test scratch dirs: tests run concurrently in one process, so each
/// needs its own directory to create and remove.
fn named_work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nevermind-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create work dir");
    dir
}

#[test]
fn full_cli_workflow() {
    let dir = work_dir();
    let dataset = dir.join("dataset.json");
    let model = dir.join("model.json");

    // simulate
    let out = bin()
        .args([
            "simulate",
            "--out",
            dir.to_str().expect("utf8"),
            "--lines",
            "1200",
            "--days",
            "270",
            "--seed",
            "5",
        ])
        .output()
        .expect("run simulate");
    assert!(out.status.success(), "simulate failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("tickets:"), "summary printed: {stdout}");
    assert!(dataset.exists(), "dataset.json written");
    assert!(dir.join("measurements.csv").exists());

    // train
    let out = bin()
        .args([
            "train",
            "--data",
            dataset.to_str().expect("utf8"),
            "--model",
            model.to_str().expect("utf8"),
            "--iterations",
            "40",
            "--selection-row-cap",
            "4000",
            "--n-base",
            "15",
            "--n-quadratic",
            "5",
            "--n-product",
            "5",
        ])
        .output()
        .expect("run train");
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("selected"), "selection report printed: {stdout}");
    assert!(stdout.contains("precision@"), "held-out check printed: {stdout}");
    assert!(model.exists(), "model.json written");

    // rank (+ explain)
    let out = bin()
        .args([
            "rank",
            "--data",
            dataset.to_str().expect("utf8"),
            "--model",
            model.to_str().expect("utf8"),
            "--top",
            "5",
            "--explain",
            "1",
        ])
        .output()
        .expect("run rank");
    assert!(out.status.success(), "rank failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("P(ticket in 4 wks)"), "{stdout}");
    assert!(stdout.contains("why the top 1"), "{stdout}");

    // locate
    let out = bin()
        .args([
            "locate",
            "--data",
            dataset.to_str().expect("utf8"),
            "--iterations",
            "25",
            "--dispatches",
            "1",
        ])
        .output()
        .expect("run locate");
    assert!(out.status.success(), "locate failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("tests to locate 50%"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_workflow_trial_explain_report() {
    let dir = named_work_dir("trace");
    let trace = dir.join("trial.trace.jsonl");

    // A traced trial long enough for several policy Saturdays and for the
    // scheduled trucks to actually roll before the horizon.
    let out = bin()
        .args([
            "trial",
            "--lines",
            "300",
            "--days",
            "160",
            "--warmup-weeks",
            "14",
            "--trace",
            trace.to_str().expect("utf8"),
        ])
        .output()
        .expect("run trial");
    assert!(out.status.success(), "trial failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(trace.exists(), "trace written");

    // The export leads with the schema header and carries dispatch events.
    let jsonl = std::fs::read_to_string(&trace).expect("read trace");
    let header = jsonl.lines().next().expect("header");
    assert!(header.contains("\"schema\":\"nevermind-trace/v1\""), "{header}");
    let dispatched_line = jsonl
        .lines()
        .find(|l| l.contains("\"kind\":\"dispatch\""))
        .and_then(|l| {
            let rest = l.split("\"line\":").nth(1)?;
            rest.split(|c: char| !c.is_ascii_digit()).next().map(str::to_string)
        })
        .expect("a dispatch event with a line id");

    // explain renders the dispatched line's full causal chain.
    let out = bin()
        .args(["explain", "--trace", trace.to_str().expect("utf8"), "--line", &dispatched_line])
        .output()
        .expect("run explain");
    assert!(out.status.success(), "explain failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in
        ["decision provenance", "DISPATCHED", "top contributions", "calibration", "truck roll"]
    {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }

    // explain on an untraced line fails with guidance, not a panic.
    let out = bin()
        .args(["explain", "--trace", trace.to_str().expect("utf8"), "--line", "999999"])
        .output()
        .expect("run explain");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no trace events for line 999999"));

    // report summarizes the same file: kinds and the dispatch confusion.
    let out = bin().args(["report", trace.to_str().expect("utf8")]).output().expect("run report");
    assert!(out.status.success(), "report failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["events by kind", "dispatch_week", "proactive dispatch outcomes", "precision"] {
        assert!(stdout.contains(needle), "missing '{needle}' in:\n{stdout}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_edge_cases_do_not_panic() {
    let dir = named_work_dir("report");

    // Empty metrics file: a clean parse error, not a panic.
    let empty = dir.join("empty.json");
    std::fs::write(&empty, "").expect("write");
    let out = bin().args(["report", empty.to_str().expect("utf8")]).output().expect("run");
    assert!(!out.status.success(), "empty file must be an error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot parse"), "clean error, got: {stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // Metrics dump with no telemetry section: reported as absent, exit 0.
    let bare = dir.join("bare.json");
    std::fs::write(
        &bare,
        r#"{"schema":"nevermind-metrics/v1","counters":{},"gauges":{},"histograms":{},"spans":{},"series":{}}"#,
    )
    .expect("write");
    let out = bin().args(["report", bare.to_str().expect("utf8")]).output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(no telemetry section"), "{stdout}");

    // Trace file with zero dispatched lines: precision renders as n/a,
    // no divide-by-zero, exit 0.
    let quiet = dir.join("quiet.trace.jsonl");
    std::fs::write(
        &quiet,
        concat!(
            "{\"schema\":\"nevermind-trace/v1\",\"events\":2,\"dropped\":0,\"reservoir_per_week\":5}\n",
            "{\"seq\":0,\"kind\":\"dispatch_week\",\"day\":104,\"fields\":{\"population\":300,\"budget\":3,\"dispatched\":0}}\n",
            "{\"seq\":1,\"kind\":\"visit\",\"line\":7,\"day\":12,\"fields\":{\"proactive\":0,\"found_fault\":1,\"disposition\":\"F1-STUB\",\"tests_performed\":9,\"minutes_spent\":120.0}}\n",
        ),
    )
    .expect("write");
    let out = bin().args(["report", quiet.to_str().expect("utf8")]).output().expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dispatched lines visited: 0"), "{stdout}");
    assert!(stdout.contains("fault-found precision: n/a"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenarios_lists_presets() {
    let out = bin().arg("scenarios").output().expect("run scenarios");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["baseline", "storm-season", "aging-plant", "overprovisioned", "quiet-network"] {
        assert!(stdout.contains(name), "missing {name}: {stdout}");
    }
}

#[test]
fn bad_invocations_fail_cleanly() {
    // Unknown command.
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required flag.
    let out = bin().arg("simulate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));

    // Unknown flag.
    let out = bin().args(["simulate", "--out", "/tmp/x", "--bogus", "1"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bogus"));

    // Unknown scenario.
    let out =
        bin().args(["simulate", "--out", "/tmp/x", "--scenario", "nope"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown scenario"));

    // Stray positional.
    let out = bin().args(["rank", "stray"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected argument"));
}
