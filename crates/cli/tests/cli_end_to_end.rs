//! End-to-end CLI test: simulate → train → rank → locate → trial on a tiny
//! world, driving the actual binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nevermind"))
}

fn work_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nevermind-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create work dir");
    dir
}

#[test]
fn full_cli_workflow() {
    let dir = work_dir();
    let dataset = dir.join("dataset.json");
    let model = dir.join("model.json");

    // simulate
    let out = bin()
        .args([
            "simulate",
            "--out",
            dir.to_str().expect("utf8"),
            "--lines",
            "1200",
            "--days",
            "270",
            "--seed",
            "5",
        ])
        .output()
        .expect("run simulate");
    assert!(out.status.success(), "simulate failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("tickets:"), "summary printed: {stdout}");
    assert!(dataset.exists(), "dataset.json written");
    assert!(dir.join("measurements.csv").exists());

    // train
    let out = bin()
        .args([
            "train",
            "--data",
            dataset.to_str().expect("utf8"),
            "--model",
            model.to_str().expect("utf8"),
            "--iterations",
            "40",
            "--selection-row-cap",
            "4000",
            "--n-base",
            "15",
            "--n-quadratic",
            "5",
            "--n-product",
            "5",
        ])
        .output()
        .expect("run train");
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("selected"), "selection report printed: {stdout}");
    assert!(stdout.contains("precision@"), "held-out check printed: {stdout}");
    assert!(model.exists(), "model.json written");

    // rank (+ explain)
    let out = bin()
        .args([
            "rank",
            "--data",
            dataset.to_str().expect("utf8"),
            "--model",
            model.to_str().expect("utf8"),
            "--top",
            "5",
            "--explain",
            "1",
        ])
        .output()
        .expect("run rank");
    assert!(out.status.success(), "rank failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("P(ticket in 4 wks)"), "{stdout}");
    assert!(stdout.contains("why the top 1"), "{stdout}");

    // locate
    let out = bin()
        .args([
            "locate",
            "--data",
            dataset.to_str().expect("utf8"),
            "--iterations",
            "25",
            "--dispatches",
            "1",
        ])
        .output()
        .expect("run locate");
    assert!(out.status.success(), "locate failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("tests to locate 50%"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenarios_lists_presets() {
    let out = bin().arg("scenarios").output().expect("run scenarios");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["baseline", "storm-season", "aging-plant", "overprovisioned", "quiet-network"] {
        assert!(stdout.contains(name), "missing {name}: {stdout}");
    }
}

#[test]
fn bad_invocations_fail_cleanly() {
    // Unknown command.
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required flag.
    let out = bin().arg("simulate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));

    // Unknown flag.
    let out = bin().args(["simulate", "--out", "/tmp/x", "--bogus", "1"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bogus"));

    // Unknown scenario.
    let out =
        bin().args(["simulate", "--out", "/tmp/x", "--scenario", "nope"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown scenario"));

    // Stray positional.
    let out = bin().args(["rank", "stray"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected argument"));
}
