//! The Sec.-5.2 evaluation analyses.
//!
//! The paper is careful to note that its "accuracy" metric is conservative:
//! a prediction that never becomes a ticket may still be a real problem.
//! Three analyses quantify that:
//!
//! * **time-to-ticket** (Fig. 8) — how long after a prediction the ticket
//!   actually arrives, i.e. how much time the operator has to fix things;
//! * **outage + IVR** (Table 5) — "incorrect" predictions concentrated at
//!   DSLAMs with imminent outages, where the customer did call but the IVR
//!   swallowed the ticket; including a logistic regression of prediction
//!   counts onto future outages with Wald p-values;
//! * **not on site** — "incorrect" predictions on lines with zero traffic a
//!   week either side of the prediction: the customer wasn't home to
//!   notice.

use crate::pipeline::ExperimentData;
use crate::predictor::RankedPredictions;
use nevermind_dslsim::DslamId;
use nevermind_features::TicketIndex;
use nevermind_ml::logistic::LogisticRegression;
use nevermind_ml::stats::Ecdf;
use serde::{Deserialize, Serialize};

/// Fig.-8 series: the ECDF of days from prediction to the arriving ticket,
/// for the true predictions within one top-N cut.
#[derive(Debug, Clone)]
pub struct TimeToTicket {
    /// The top-N cut this series describes.
    pub top_n: usize,
    /// Days from prediction day to the first ticket, one entry per true
    /// prediction.
    pub days: Vec<f64>,
    /// The ECDF over `days`.
    pub cdf: Ecdf,
}

/// Computes time-to-ticket ECDFs for several top-N cuts.
pub fn time_to_ticket(
    data: &ExperimentData,
    ranking: &RankedPredictions,
    horizon_days: u32,
    top_ns: &[usize],
) -> Vec<TimeToTicket> {
    let tickets = TicketIndex::build(&data.output.tickets, data.topology.lines.len());
    top_ns
        .iter()
        .map(|&n| {
            let days: Vec<f64> = ranking
                .top_rows(n)
                .into_iter()
                .filter(|(_, _, y)| *y)
                .filter_map(|(key, _, _)| {
                    tickets
                        .first_within(key.line, key.day, horizon_days)
                        .map(|t| f64::from(t - key.day))
                })
                .collect();
            TimeToTicket { top_n: n, cdf: Ecdf::new(days.clone()), days }
        })
        .collect()
}

/// One row of the Table-5 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutageIvrRow {
    /// Look-ahead window in weeks (the paper varies T = 1..4).
    pub weeks: u32,
    /// Fraction of incorrect top-budget predictions whose DSLAM has an
    /// outage starting within the window.
    pub incorrect_explained: f64,
    /// Logistic-regression coefficient of the per-DSLAM prediction count
    /// on the future-outage indicator.
    pub coefficient: f64,
    /// Two-sided Wald p-value of that coefficient.
    pub p_value: f64,
}

/// Runs the Table-5 analysis for each window length.
pub fn outage_ivr_analysis(
    data: &ExperimentData,
    ranking: &RankedPredictions,
    budget: usize,
    weeks_list: &[u32],
) -> Vec<OutageIvrRow> {
    let incorrect = ranking.incorrect_in_top(budget);
    let top = ranking.top_rows(budget);

    // Count top-budget predictions per (DSLAM, prediction day).
    let prediction_days: Vec<u32> = {
        let mut ds: Vec<u32> = ranking.rows.iter().map(|r| r.day).collect();
        ds.sort_unstable();
        ds.dedup();
        ds
    };
    let n_dslams = data.topology.dslams.len();
    let mut counts = vec![0f64; n_dslams * prediction_days.len()];
    for (key, _, _) in &top {
        let dslam = data.topology.dslam_of(key.line);
        // lint:allow(no-panic-in-lib) -- prediction_days was built from these very rows two lines up
        let di = prediction_days.binary_search(&key.day).expect("day known");
        counts[dslam.index() * prediction_days.len() + di] += 1.0;
    }

    weeks_list
        .iter()
        .map(|&weeks| {
            let window = weeks * 7;
            // Fraction of incorrect predictions explained by IVR/outage.
            let explained = incorrect
                .iter()
                .filter(|key| {
                    let dslam = data.topology.dslam_of(key.line);
                    outage_starting_within(data, dslam, key.day, key.day + window)
                })
                .count();
            let incorrect_explained = if incorrect.is_empty() {
                f64::NAN
            } else {
                explained as f64 / incorrect.len() as f64
            };

            // Logistic regression over (DSLAM, prediction day) units.
            let mut x = Vec::with_capacity(counts.len());
            let mut y = Vec::with_capacity(counts.len());
            for (d, dslam) in data.topology.dslams.iter().enumerate() {
                for (di, &day) in prediction_days.iter().enumerate() {
                    x.push(vec![counts[d * prediction_days.len() + di]]);
                    y.push(outage_starting_within(data, dslam.id, day, day + window));
                }
            }
            // A firmer ridge than the default: prediction counts can be
            // quasi-separating (every heavily-flagged DSLAM-day fails), and
            // an exploding coefficient would make the Wald p-value
            // meaningless.
            let reg = LogisticRegression { ridge: 1e-2, ..LogisticRegression::default() };
            let model = reg.fit(&x, &y);
            OutageIvrRow {
                weeks,
                incorrect_explained,
                coefficient: model.coefficients[0],
                p_value: model.p_value(0),
            }
        })
        .collect()
}

fn outage_starting_within(data: &ExperimentData, dslam: DslamId, from: u32, to: u32) -> bool {
    data.output.outage_events.iter().any(|e| e.dslam == dslam && e.start >= from && e.start < to)
}

/// Result of the not-on-site analysis.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NotOnSiteResult {
    /// Incorrect predictions whose line has traffic coverage.
    pub covered: usize,
    /// Of those, how many had zero traffic ±1 week around the prediction.
    pub not_on_site: usize,
}

impl NotOnSiteResult {
    /// Fraction of covered incorrect predictions attributable to absence.
    pub fn fraction(&self) -> f64 {
        if self.covered == 0 {
            f64::NAN
        } else {
            self.not_on_site as f64 / self.covered as f64
        }
    }
}

/// The Sec.-5.2 "customers not on site" analysis over the traffic sample.
pub fn not_on_site_analysis(
    data: &ExperimentData,
    ranking: &RankedPredictions,
    budget: usize,
) -> NotOnSiteResult {
    let mut covered = 0usize;
    let mut not_on_site = 0usize;
    for key in ranking.incorrect_in_top(budget) {
        if let Some(absent) = data.output.traffic.not_on_site(key.line, key.day) {
            covered += 1;
            if absent {
                not_on_site += 1;
            }
        }
    }
    NotOnSiteResult { covered, not_on_site }
}

/// Customer-edge ticket counts by day of week (0 = Sunday … 6 = Saturday) —
/// the Sec.-3.3 weekly trend.
pub fn weekly_ticket_histogram(data: &ExperimentData) -> [usize; 7] {
    let mut hist = [0usize; 7];
    for t in data.output.customer_edge_tickets() {
        hist[(t.day % 7) as usize] += 1;
    }
    hist
}

/// Groups the top-budget predictions by DSLAM, descending by count — the
/// paper's suggestion to "group predictions by DSLAMs and send one truck to
/// resolve most of the problems in a given DSLAM", which doubles as an
/// outage early-warning signal.
pub fn predictions_by_dslam(
    data: &ExperimentData,
    ranking: &RankedPredictions,
    budget: usize,
) -> Vec<(DslamId, usize)> {
    let mut counts = vec![0usize; data.topology.dslams.len()];
    for (key, _, _) in ranking.top_rows(budget) {
        counts[data.topology.dslam_of(key.line).index()] += 1;
    }
    let mut out: Vec<(DslamId, usize)> = counts
        .into_iter()
        .enumerate()
        .filter(|(_, c)| *c > 0)
        .map(|(i, c)| (DslamId(i as u32), c))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SplitSpec;
    use crate::predictor::{PredictorConfig, TicketPredictor};
    use nevermind_dslsim::SimConfig;

    fn setup() -> (ExperimentData, RankedPredictions, usize) {
        let mut cfg = SimConfig::small(101);
        cfg.outages_per_dslam_year = 4.0; // make the Table-5 signal visible
        let data = ExperimentData::simulate(cfg);
        let split = SplitSpec::paper_like(&data).expect("horizon fits the protocol");
        let pcfg = PredictorConfig {
            iterations: 60,
            selection_iterations: 4,
            n_base: 20,
            n_quadratic: 8,
            n_product: 8,
            selection_row_cap: 6_000,
            ..PredictorConfig::default()
        };
        let (predictor, _) =
            TicketPredictor::fit(&data, &split, &pcfg).expect("well-formed training data");
        let ranking = predictor.rank(&data, &split.test_days);
        let budget = pcfg.budget(ranking.len());
        (data, ranking, budget)
    }

    #[test]
    fn time_to_ticket_cdf_is_bounded_by_horizon() {
        let (data, ranking, budget) = setup();
        let series = time_to_ticket(&data, &ranking, 28, &[budget / 2, budget]);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert!(!s.days.is_empty(), "no true predictions in top {}", s.top_n);
            for &d in &s.days {
                assert!((1.0..=28.0).contains(&d), "day {d} outside horizon");
            }
            assert!((s.cdf.eval(28.0) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn outage_rows_cover_requested_weeks() {
        let (data, ranking, budget) = setup();
        let rows = outage_ivr_analysis(&data, &ranking, budget, &[1, 2, 3, 4]);
        assert_eq!(rows.len(), 4);
        // Explained fraction is monotone non-decreasing in the window.
        for w in rows.windows(2) {
            if !w[0].incorrect_explained.is_nan() && !w[1].incorrect_explained.is_nan() {
                assert!(w[1].incorrect_explained >= w[0].incorrect_explained - 1e-12);
            }
        }
        for r in &rows {
            assert!(r.coefficient.is_finite());
            assert!((0.0..=1.0).contains(&r.p_value));
        }
    }

    #[test]
    fn not_on_site_counts_are_consistent() {
        let (data, ranking, budget) = setup();
        let res = not_on_site_analysis(&data, &ranking, budget);
        assert!(res.not_on_site <= res.covered);
        if res.covered > 0 {
            assert!((0.0..=1.0).contains(&res.fraction()));
        }
    }

    #[test]
    fn weekly_histogram_pins_the_sec33_shape() {
        // The histogram indexes buckets by `day % 7`; the simulator defines
        // `day % 7 == 0` as Sunday (`DayOfWeek::of`) and draws calls with
        // Monday-peak / Saturday-trough weights. This test pins the
        // day-of-week mapping between the two: if either side ever shifted
        // its convention, the observed peak and trough would land on the
        // wrong buckets.
        use nevermind_dslsim::config::DayOfWeek;
        let (data, _, _) = setup();
        let hist = weekly_ticket_histogram(&data);
        let total: usize = hist.iter().sum();
        assert!(total > 0);

        let argmax = (0..7).max_by_key(|&d| hist[d]).expect("seven buckets");
        let argmin = (0..7).min_by_key(|&d| hist[d]).expect("seven buckets");
        let weight_argmax = (0..7u32)
            .max_by(|&a, &b| {
                DayOfWeek::of(a).call_weight().total_cmp(&DayOfWeek::of(b).call_weight())
            })
            .expect("seven days") as usize;
        let weight_argmin = (0..7u32)
            .min_by(|&a, &b| {
                DayOfWeek::of(a).call_weight().total_cmp(&DayOfWeek::of(b).call_weight())
            })
            .expect("seven days") as usize;
        assert_eq!(argmax, weight_argmax, "peak bucket must be the max-weight day: {hist:?}");
        assert_eq!(argmin, weight_argmin, "trough bucket must be the min-weight day: {hist:?}");
        // And in the paper's calendar terms: Monday peak (bucket 1),
        // Saturday trough (bucket 6), whole weekend below every weekday.
        assert_eq!(argmax, 1, "Sec. 3.3: tickets peak on Monday: {hist:?}");
        assert_eq!(argmin, 6, "Sec. 3.3: tickets bottom out on Saturday: {hist:?}");
        for weekday in 1..6 {
            assert!(hist[0] < hist[weekday], "Sunday below weekday {weekday}: {hist:?}");
            assert!(hist[6] < hist[weekday], "Saturday below weekday {weekday}: {hist:?}");
        }
        // The Monday spike is a real spike: its share sits near the
        // configured 1.65/7 ≈ 0.24 of the week's tickets.
        let monday_share = hist[1] as f64 / total as f64;
        assert!(
            (0.18..0.32).contains(&monday_share),
            "Monday share {monday_share:.3} strays from the configured weight"
        );
    }

    #[test]
    fn dslam_grouping_sums_to_budget() {
        let (data, ranking, budget) = setup();
        let groups = predictions_by_dslam(&data, &ranking, budget);
        let total: usize = groups.iter().map(|(_, c)| c).sum();
        assert_eq!(total, budget.min(ranking.len()));
        for w in groups.windows(2) {
            assert!(w[0].1 >= w[1].1, "descending counts");
        }
    }
}
