//! Model comparison — the Sec.-4.4 design-choice ablation.
//!
//! The paper justifies BStump twice: it is "the most scalable while having
//! an accuracy comparable to sophisticated non-linear classifiers" (citing
//! the authors' traffic-classification system), and, because unreported
//! problems mislabel positives as negatives, "sophisticated non-linear
//! models overfit easily, we hence choose a linear model". This module
//! trains the alternatives on exactly the same selected features and
//! training window so the claim can be measured rather than asserted:
//!
//! * **BStump** — the paper's model (via [`TicketPredictor`]);
//! * **logistic regression** — a plain linear model on standardized
//!   features (missing → 0 after standardization);
//! * **Gaussian Naive Bayes** — a cheap generative baseline;
//! * **deep CART tree** — the overfitting-prone non-linear comparator;
//! * **shallow CART tree** — the same model family, capacity-limited.

use crate::pipeline::{ExperimentData, SplitSpec};
use crate::predictor::{PredictorConfig, RankedPredictions, TicketPredictor};
use nevermind_ml::bayes::GaussianNb;
use nevermind_ml::data::{Dataset, FeatureMatrix};
use nevermind_ml::logistic::LogisticRegression;
use nevermind_ml::stats::RunningMoments;
use nevermind_ml::tree::{DecisionTree, TreeConfig};
use serde::{Deserialize, Serialize};

/// Which alternative model to train on the predictor's feature space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlternativeModel {
    /// Plain logistic regression on standardized features.
    Logistic,
    /// Gaussian Naive Bayes.
    NaiveBayes,
    /// CART, depth 16 / leaf 1 — deliberately allowed to overfit.
    DeepTree,
    /// CART, depth 4 — capacity-limited.
    ShallowTree,
}

impl AlternativeModel {
    /// All alternatives, in presentation order.
    pub const ALL: [AlternativeModel; 4] = [
        AlternativeModel::Logistic,
        AlternativeModel::NaiveBayes,
        AlternativeModel::DeepTree,
        AlternativeModel::ShallowTree,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            AlternativeModel::Logistic => "logistic regression",
            AlternativeModel::NaiveBayes => "gaussian naive bayes",
            AlternativeModel::DeepTree => "deep CART (depth 16)",
            AlternativeModel::ShallowTree => "shallow CART (depth 4)",
        }
    }
}

/// Result of one model's run in the comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelResult {
    /// Model label.
    pub model: String,
    /// Precision within the training window's own top budget (in-sample).
    pub train_precision: f64,
    /// Precision within the test-window budget (out-of-sample).
    pub test_precision: f64,
}

/// Trains every alternative on the BStump predictor's selected feature
/// space and ranks the same test population.
///
/// Returns the BStump row first, then the alternatives. The overfitting
/// signature the paper warns about shows up as a large gap between
/// `train_precision` and `test_precision` for the deep tree.
pub fn compare_models(
    data: &ExperimentData,
    split: &SplitSpec,
    config: &PredictorConfig,
    predictor: &TicketPredictor,
) -> Vec<ModelResult> {
    let encoder = data.encoder(config.encoder.clone());
    let base_train = encoder.encode(&split.train_days);
    let base_test = encoder.encode(&split.test_days);
    let train = predictor.assemble(&base_train);
    let test = predictor.assemble(&base_test);
    let train_budget = config.budget(train.len());
    let test_budget = config.budget(test.len());

    let mut results = Vec::new();

    // BStump (already fitted).
    let bstump_train = predictor.model().margins(&train.x);
    let bstump_test = predictor.model().margins(&test.x);
    results.push(ModelResult {
        model: "BStump (paper)".to_string(),
        train_precision: nevermind_ml::metrics::precision_at_k(
            &bstump_train,
            &train.y,
            train_budget,
        ),
        test_precision: nevermind_ml::metrics::precision_at_k(&bstump_test, &test.y, test_budget),
    });

    for alt in AlternativeModel::ALL {
        let (train_scores, test_scores) = fit_and_score(alt, &train, &test);
        results.push(ModelResult {
            model: alt.label().to_string(),
            train_precision: nevermind_ml::metrics::precision_at_k(
                &train_scores,
                &train.y,
                train_budget,
            ),
            test_precision: nevermind_ml::metrics::precision_at_k(
                &test_scores,
                &test.y,
                test_budget,
            ),
        });
    }
    results
}

fn fit_and_score(alt: AlternativeModel, train: &Dataset, test: &Dataset) -> (Vec<f64>, Vec<f64>) {
    match alt {
        AlternativeModel::Logistic => {
            let (x_train, stats) = standardize(&train.x, None);
            let (x_test, _) = standardize(&test.x, Some(&stats));
            let model = LogisticRegression { ridge: 1e-3, ..LogisticRegression::default() }
                .fit(&x_train, &train.y);
            let score = |rows: &[Vec<f64>]| -> Vec<f64> {
                rows.iter().map(|r| model.probability(r)).collect()
            };
            (score(&x_train), score(&x_test))
        }
        AlternativeModel::NaiveBayes => {
            let model = GaussianNb::fit(train);
            (model.log_odds_batch(&train.x), model.log_odds_batch(&test.x))
        }
        AlternativeModel::DeepTree => {
            let cfg = TreeConfig {
                max_depth: 16,
                min_samples_split: 2,
                min_samples_leaf: 1,
                n_candidates: 32,
            };
            let model = DecisionTree::fit(train, &cfg);
            (model.probabilities(&train.x), model.probabilities(&test.x))
        }
        AlternativeModel::ShallowTree => {
            let cfg = TreeConfig { max_depth: 4, ..TreeConfig::default() };
            let model = DecisionTree::fit(train, &cfg);
            (model.probabilities(&train.x), model.probabilities(&test.x))
        }
    }
}

/// Column standardization (z-scores) with NaN → 0 after centering, so a
/// missing feature contributes nothing to a linear score. Returns the rows
/// and the (mean, sd) statistics used; pass stats back in to apply a fitted
/// standardization to new data.
fn standardize(
    x: &FeatureMatrix,
    stats: Option<&Vec<(f64, f64)>>,
) -> (Vec<Vec<f64>>, Vec<(f64, f64)>) {
    let p = x.n_cols();
    let stats: Vec<(f64, f64)> = match stats {
        Some(s) => s.clone(),
        None => {
            let mut ms = vec![RunningMoments::new(); p];
            for r in 0..x.n_rows() {
                for (c, m) in ms.iter_mut().enumerate() {
                    m.push(f64::from(x.get(r, c)));
                }
            }
            ms.iter().map(|m| (m.mean(), m.std_dev().max(1e-9))).collect()
        }
    };
    let rows: Vec<Vec<f64>> = (0..x.n_rows())
        .map(|r| {
            (0..p)
                .map(|c| {
                    let v = f64::from(x.get(r, c));
                    if v.is_nan() {
                        0.0
                    } else {
                        (v - stats[c].0) / stats[c].1
                    }
                })
                .collect()
        })
        .collect();
    (rows, stats)
}

/// Ranks the test population with an alternative model trained on the
/// predictor's feature space — useful for downstream comparisons that need
/// the full [`RankedPredictions`] API rather than just precision numbers.
pub fn rank_with_alternative(
    data: &ExperimentData,
    split: &SplitSpec,
    config: &PredictorConfig,
    predictor: &TicketPredictor,
    alt: AlternativeModel,
) -> RankedPredictions {
    let encoder = data.encoder(config.encoder.clone());
    let base_train = encoder.encode(&split.train_days);
    let base_test = encoder.encode(&split.test_days);
    let train = predictor.assemble(&base_train);
    let test = predictor.assemble(&base_test);
    let (_, scores) = fit_and_score(alt, &train, &test);
    RankedPredictions::from_scores(base_test.rows, scores, test.y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nevermind_dslsim::SimConfig;

    fn setup() -> (ExperimentData, SplitSpec, PredictorConfig, TicketPredictor) {
        let mut sim = SimConfig::small(303);
        sim.n_lines = 2_500;
        let data = ExperimentData::simulate(sim);
        let split = SplitSpec::paper_like(&data).expect("horizon fits the protocol");
        let cfg = PredictorConfig {
            iterations: 80,
            selection_iterations: 4,
            n_base: 20,
            n_quadratic: 8,
            n_product: 8,
            selection_row_cap: 6_000,
            ..PredictorConfig::default()
        };
        let (p, _) = TicketPredictor::fit(&data, &split, &cfg).expect("well-formed training data");
        (data, split, cfg, p)
    }

    #[test]
    fn comparison_covers_all_models_with_valid_precisions() {
        let (data, split, cfg, predictor) = setup();
        let results = compare_models(&data, &split, &cfg, &predictor);
        assert_eq!(results.len(), 1 + AlternativeModel::ALL.len());
        assert_eq!(results[0].model, "BStump (paper)");
        for r in &results {
            assert!(
                r.train_precision.is_nan() || (0.0..=1.0).contains(&r.train_precision),
                "{}: train {}",
                r.model,
                r.train_precision
            );
            assert!(
                (0.0..=1.0).contains(&r.test_precision),
                "{}: test {}",
                r.model,
                r.test_precision
            );
        }
    }

    #[test]
    fn deep_tree_shows_larger_generalization_gap_than_bstump() {
        let (data, split, cfg, predictor) = setup();
        let results = compare_models(&data, &split, &cfg, &predictor);
        let get = |label: &str| {
            results
                .iter()
                .find(|r| r.model.contains(label))
                .unwrap_or_else(|| panic!("{label} missing"))
        };
        let bstump = get("BStump");
        let deep = get("deep CART");
        let gap = |r: &ModelResult| r.train_precision - r.test_precision;
        assert!(
            gap(deep) > gap(bstump) - 1e-9,
            "deep tree gap {:.3} vs BStump gap {:.3}",
            gap(deep),
            gap(bstump)
        );
        // And the paper's model must be the better ranker out of sample
        // than the deliberately-overfit tree.
        assert!(
            bstump.test_precision >= deep.test_precision - 0.02,
            "BStump {:.3} vs deep tree {:.3}",
            bstump.test_precision,
            deep.test_precision
        );
    }

    #[test]
    fn alternative_ranking_api_aligns_with_population() {
        let (data, split, cfg, predictor) = setup();
        let ranking =
            rank_with_alternative(&data, &split, &cfg, &predictor, AlternativeModel::NaiveBayes);
        assert_eq!(ranking.len(), data.config.n_lines * split.test_days.len());
        let budget = cfg.budget(ranking.len());
        let p = ranking.precision_at(budget);
        assert!((0.0..=1.0).contains(&p));
    }
}
