//! Recoverable pipeline errors.
//!
//! The operational loop runs unattended every Saturday; a malformed week of
//! measurements (a truncated horizon, an empty evaluation window, a NaN
//! margin from a corrupted reading) must surface as an error the caller can
//! log and skip, never as a panic mid-dispatch. Everything that used to
//! `assert!` on operational data in this crate now returns
//! [`PipelineError`].

use nevermind_ml::CalibrateError;

/// Why training, splitting or an operational trial was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The horizon cannot fit the paper's split protocol (train →
    /// selection-eval → test, each with label-complete Saturdays).
    SplitTooShort {
        /// Which window could not be carved.
        window: &'static str,
        /// Human-readable detail (counts, boundary days).
        detail: String,
    },
    /// A calibration fit was rejected — see [`CalibrateError`].
    Calibration(CalibrateError),
    /// A model was asked to train on zero examples.
    NoTrainingExamples {
        /// Which model had nothing to train on.
        model: &'static str,
    },
    /// A trial's warm-up window consumed the whole simulated horizon.
    WarmupExceedsHorizon {
        /// First day the proactive policy would switch on.
        policy_start_day: u32,
        /// Simulated horizon length in days.
        days: u32,
    },
    /// A resume checkpoint's feature store does not fit this trial —
    /// different encoder configuration, population size, or lane set.
    StoreMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SplitTooShort { window, detail } => {
                write!(f, "horizon too short for the {window} window: {detail}")
            }
            Self::Calibration(e) => write!(f, "calibration failed: {e}"),
            Self::NoTrainingExamples { model } => {
                write!(f, "no training examples for the {model}")
            }
            Self::WarmupExceedsHorizon { policy_start_day, days } => {
                write!(
                    f,
                    "warm-up longer than the horizon: policy would start day \
                     {policy_start_day} of {days}"
                )
            }
            Self::StoreMismatch { detail } => {
                write!(f, "resume store does not match this trial: {detail}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Calibration(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CalibrateError> for PipelineError {
    fn from(e: CalibrateError) -> Self {
        Self::Calibration(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_cause() {
        let e = PipelineError::from(CalibrateError::NonFiniteMargin { index: 7 });
        assert!(e.to_string().contains("non-finite margin at index 7"), "{e}");
        let e = PipelineError::WarmupExceedsHorizon { policy_start_day: 90, days: 60 };
        assert!(e.to_string().contains("90"), "{e}");
    }

    #[test]
    fn source_chains_to_calibrate_error() {
        use std::error::Error;
        let e = PipelineError::from(CalibrateError::Empty);
        assert!(e.source().is_some());
        assert!(PipelineError::NoTrainingExamples { model: "locator" }.source().is_none());
    }
}
