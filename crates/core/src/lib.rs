//! # nevermind
//!
//! Reproduction of **NEVERMIND** (Jin, Duffield, Gerber, Haffner, Sen,
//! Zhang — *"NEVERMIND, the problem is already fixed: proactively detecting
//! and troubleshooting customer DSL problems"*, ACM CoNEXT 2010).
//!
//! NEVERMIND replaces the reactive wait-for-the-customer-to-call DSL
//! troubleshooting loop with a proactive one built from two components:
//!
//! * the **ticket predictor** ([`predictor`]) encodes each line's sparse
//!   weekly measurements (Table 3), selects features by **top-N average
//!   precision** (Sec. 4.3), trains a **BStump** boosted-stump classifier
//!   (Sec. 4.4) and ranks the whole population by the calibrated
//!   probability of a customer ticket within four weeks; the operator
//!   dispatches the top-`B` lines (the ATDS weekly budget — 20K in the
//!   paper's network) before the customers call;
//! * the **trouble locator** ([`locator`]) gives the dispatched technician
//!   a ranked list of the 52 repair dispositions, via a flat
//!   one-vs-rest model or the **combined model** (Eq. 2) that fuses each
//!   disposition's classifier with its parent major-location classifier.
//!
//! [`analysis`] reproduces the paper's evaluation analyses (time-to-ticket
//! CDFs, the Table-5 outage/IVR attribution, the not-on-site traffic
//! check), [`comparison`] measures the Sec.-4.4 model-choice claim
//! (BStump vs linear, Naive Bayes and CART under label noise), [`scoring`]
//! holds the incremental weekly scoring engine (streaming encoder +
//! compiled parallel scorer + partial top-`B` selection) that the
//! operational loop re-ranks the population with, [`telemetry`] watches the
//! fitted model for input-feature drift, score-distribution shift and
//! calibration decay against its training-window reference, and
//! [`pipeline`] wires everything to the simulator for the operational
//! proactive loop.
//!
//! ## Quickstart
//!
//! ```no_run
//! use nevermind::pipeline::{ExperimentData, SplitSpec};
//! use nevermind::predictor::{PredictorConfig, TicketPredictor};
//! use nevermind_dslsim::SimConfig;
//!
//! // Simulate a year of a 20k-line DSL network and split it like the paper.
//! let data = ExperimentData::simulate(SimConfig::default());
//! let split = SplitSpec::paper_like(&data).expect("default horizon fits the protocol");
//!
//! // Train the predictor and rank the test population.
//! let cfg = PredictorConfig::default();
//! let (predictor, report) = TicketPredictor::fit(&data, &split, &cfg).expect("training data is well-formed");
//! let ranking = predictor.rank(&data, &split.test_days);
//! let budget = cfg.budget(ranking.len());
//! println!("precision@{budget}: {:.3}", ranking.precision_at(budget));
//! println!("{} features selected", report.n_selected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod comparison;
pub mod error;
pub mod locator;
pub mod pipeline;
pub mod predictor;
pub mod provenance;
pub mod scoring;
pub mod telemetry;

pub use error::PipelineError;
pub use locator::{LocatorConfig, TroubleLocator};
pub use pipeline::{ExperimentData, SplitSpec, TrialOptions, TrialResult};
pub use predictor::{PredictorConfig, RankedPredictions, TicketPredictor};
pub use scoring::WeeklyScorer;
pub use telemetry::{HealthStatus, ModelHealthMonitor, TelemetryConfig, TelemetryReport};
