//! The trouble locator (Sec. 6): ranking the 52 dispositions for a
//! dispatched technician.
//!
//! Three rankers are implemented, exactly as compared in the paper:
//!
//! * **basic** — the simple experience model: dispositions ordered by their
//!   historical frequency (prior probability);
//! * **flat** — a one-vs-rest BStump per disposition, logistic-calibrated,
//!   ranked by `P(C_ij | x)`;
//! * **combined** — Eq. 2: for each disposition, a logistic regression
//!   fuses the disposition classifier's score with its parent major
//!   location classifier's score, exploiting the HN/F2/F1/DS hierarchy so
//!   rare dispositions borrow strength from their location.

use crate::error::PipelineError;
use crate::pipeline::ExperimentData;
use nevermind_dslsim::dispatch::DispositionNote;
use nevermind_dslsim::disposition::{DispositionId, MajorLocation, N_DISPOSITIONS};
use nevermind_dslsim::LineId;
use nevermind_features::encode::{all_quadratics, EncodedDataset, EncoderConfig, RowKey};
use nevermind_features::registry::DerivedFeature;
use nevermind_ml::boost::{BStump, BoostConfig};
use nevermind_ml::calibrate::PlattScale;
use nevermind_ml::cv::k_folds;
use nevermind_ml::data::Dataset;
use nevermind_ml::logistic::{LogisticModel, LogisticRegression};
use serde::{Deserialize, Serialize};

/// Trouble-locator hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocatorConfig {
    /// Boosting iterations per one-vs-rest model (paper: 200 via CV).
    pub iterations: usize,
    /// Minimum training examples for a disposition to get its own model
    /// (paper: dispositions appearing ≥ 20 times).
    pub min_examples: usize,
    /// Stump threshold-search bins.
    pub n_bins: usize,
    /// Include quadratic derived features ("all the line features presented
    /// in Table 3").
    pub include_quadratics: bool,
    /// Feature-encoder settings.
    pub encoder: EncoderConfig,
}

impl Default for LocatorConfig {
    fn default() -> Self {
        Self {
            iterations: 200,
            min_examples: 20,
            n_bins: 64,
            include_quadratics: true,
            encoder: EncoderConfig::default(),
        }
    }
}

/// One labelled dispatch: the line, the Saturday whose measurements the
/// technician would have had, and the recorded disposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchExample {
    /// The dispatched line.
    pub line: LineId,
    /// The most recent test Saturday at or before the dispatch.
    pub day: u32,
    /// The technician's recorded disposition (noisy ground truth).
    pub disposition: DispositionId,
}

/// Extracts labelled dispatch examples from disposition notes whose day
/// falls in `[from, to)`. Notes without a disposition (no trouble found)
/// are skipped, as are dispatches too early to have a preceding Saturday.
pub fn collect_dispatch_examples(
    notes: &[DispositionNote],
    from: u32,
    to: u32,
) -> Vec<DispatchExample> {
    notes
        .iter()
        .filter(|n| n.day >= from && n.day < to)
        .filter_map(|n| {
            let disposition = n.disposition?;
            let day = saturday_at_or_before(n.day)?;
            Some(DispatchExample { line: n.line, day, disposition })
        })
        .collect()
}

/// The most recent Saturday at or before `day` (`None` if none exists yet).
pub fn saturday_at_or_before(day: u32) -> Option<u32> {
    let r = day % 7;
    let sat = if r == 6 { day } else { day.checked_sub(r + 1)? };
    Some(sat)
}

/// A per-disposition posterior, ready to be ranked.
#[derive(Debug, Clone, Copy)]
pub struct DispositionScore {
    /// The disposition.
    pub disposition: DispositionId,
    /// Posterior probability (model or prior fallback).
    pub probability: f64,
}

/// A fitted trouble locator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TroubleLocator {
    /// Dispositions with enough examples to carry their own model.
    modeled: Vec<DispositionId>,
    flat_models: Vec<BStump>,
    flat_cal: Vec<PlattScale>,
    location_models: Vec<BStump>,
    location_cal: Vec<PlattScale>,
    /// Eq.-2 fusion per modeled disposition.
    combine: Vec<LogisticModel>,
    /// Training frequency per disposition (basic ranks + fallback scores).
    priors: Vec<f64>,
    selected_derived: Vec<DerivedFeature>,
    encoder_config: EncoderConfig,
    config: LocatorConfig,
}

impl TroubleLocator {
    /// Fits flat and combined models on dispatches in `[from, to)`.
    ///
    /// # Errors
    /// Returns [`PipelineError::NoTrainingExamples`] when the window holds
    /// no usable dispatch examples, or [`PipelineError::Calibration`] when
    /// a per-disposition calibration fit is rejected.
    pub fn fit(
        data: &ExperimentData,
        from: u32,
        to: u32,
        config: &LocatorConfig,
    ) -> Result<Self, PipelineError> {
        let _span = nevermind_obs::span!("locator/fit");
        let examples = collect_dispatch_examples(&data.output.notes, from, to);
        if examples.is_empty() {
            return Err(PipelineError::NoTrainingExamples { model: "trouble locator" });
        }

        let encoder = data.encoder(config.encoder.clone());
        let keys: Vec<RowKey> =
            examples.iter().map(|e| RowKey { line: e.line, day: e.day }).collect();
        let base = encoder.encode_rows(&keys);
        let selected_derived: Vec<DerivedFeature> =
            if config.include_quadratics { all_quadratics(&base) } else { Vec::new() };
        let assembled = assemble(&base, &selected_derived);

        // Priors = training frequency.
        let mut priors = vec![0f64; N_DISPOSITIONS];
        for e in &examples {
            priors[e.disposition.0 as usize] += 1.0;
        }
        let total = examples.len() as f64;

        let boost_cfg = BoostConfig {
            iterations: config.iterations,
            n_bins: config.n_bins,
            smoothing: None,
            parallel: true,
        };

        // One-vs-rest flat models for modeled dispositions. Calibration
        // (and the Eq.-2 fusion below) must NOT see training margins — a
        // boosted model separates its own training set almost perfectly, so
        // Platt fitted in-sample turns every rare-class model into an
        // overconfident 0-or-1 oracle and cross-class ranking collapses.
        // Out-of-fold margins give honest score distributions.
        let modeled: Vec<DispositionId> = (0..N_DISPOSITIONS as u8)
            .map(DispositionId)
            .filter(|d| priors[d.0 as usize] >= config.min_examples as f64)
            .collect();
        let mut flat_models = Vec::with_capacity(modeled.len());
        let mut flat_cal = Vec::with_capacity(modeled.len());
        let mut flat_oof = Vec::with_capacity(modeled.len());
        for &d in &modeled {
            let y: Vec<bool> = examples.iter().map(|e| e.disposition == d).collect();
            let (model, oof) =
                fit_with_oof_margins(&assembled, &y, &boost_cfg, 0xD15_0000 + d.0 as u64);
            flat_cal.push(PlattScale::fit(&oof, &y)?);
            flat_models.push(model);
            flat_oof.push(oof);
        }

        // Major-location models (always enough data: four classes).
        let mut location_models = Vec::with_capacity(4);
        let mut location_cal = Vec::with_capacity(4);
        let mut location_oof = Vec::with_capacity(4);
        for loc in MajorLocation::ALL {
            let y: Vec<bool> = examples.iter().map(|e| e.disposition.location() == loc).collect();
            let (model, oof) =
                fit_with_oof_margins(&assembled, &y, &boost_cfg, 0x10C_0000 + loc as u64);
            location_cal.push(PlattScale::fit(&oof, &y)?);
            location_models.push(model);
            location_oof.push(oof);
        }

        // Eq. 2: logistic fusion of (disposition margin, location margin),
        // fitted on the out-of-fold margins.
        let mut combine = Vec::with_capacity(modeled.len());
        for (mi, &d) in modeled.iter().enumerate() {
            let loc_idx = location_index(d.location());
            let x: Vec<Vec<f64>> = flat_oof[mi]
                .iter()
                .zip(&location_oof[loc_idx])
                .map(|(&a, &b)| vec![a, b])
                .collect();
            let y: Vec<bool> = examples.iter().map(|e| e.disposition == d).collect();
            combine.push(LogisticRegression::default().fit(&x, &y));
        }

        for p in priors.iter_mut() {
            *p /= total;
        }

        Ok(Self {
            modeled,
            flat_models,
            flat_cal,
            location_models,
            location_cal,
            combine,
            priors,
            selected_derived,
            encoder_config: config.encoder.clone(),
            config: config.clone(),
        })
    }

    /// Dispositions that carry their own model.
    pub fn modeled_dispositions(&self) -> &[DispositionId] {
        &self.modeled
    }

    /// Training prevalence of each disposition.
    pub fn priors(&self) -> &[f64] {
        &self.priors
    }

    /// The basic (experience-model) ranking: dispositions by descending
    /// training frequency, ties by table order.
    pub fn basic_ranking(&self) -> Vec<DispositionId> {
        let mut ids: Vec<usize> = (0..N_DISPOSITIONS).collect();
        ids.sort_by(|&a, &b| self.priors[b].total_cmp(&self.priors[a]).then(a.cmp(&b)));
        ids.into_iter().map(|i| DispositionId(i as u8)).collect()
    }

    /// Encodes dispatch examples into the locator's feature space.
    pub fn encode_examples(&self, data: &ExperimentData, examples: &[DispatchExample]) -> Dataset {
        let encoder = data.encoder(self.encoder_config.clone());
        let keys: Vec<RowKey> =
            examples.iter().map(|e| RowKey { line: e.line, day: e.day }).collect();
        let base = encoder.encode_rows(&keys);
        assemble(&base, &self.selected_derived)
    }

    /// Flat-model posterior ranking for one assembled feature row,
    /// descending. Unmodeled dispositions fall back to their prior rate.
    pub fn rank_flat(&self, row: &[f32]) -> Vec<DispositionScore> {
        let _span = nevermind_obs::span!("locator/rank_flat");
        nevermind_obs::counter_add!("locator/inferences", 1);
        let mut scores = self.prior_scores();
        for (mi, &d) in self.modeled.iter().enumerate() {
            let margin = self.flat_models[mi].margin(row);
            scores[d.0 as usize].probability = self.flat_cal[mi].probability(margin);
        }
        sort_scores(scores)
    }

    /// Combined-model (Eq. 2) posterior ranking for one assembled row.
    pub fn rank_combined(&self, row: &[f32]) -> Vec<DispositionScore> {
        self.rank_combined_traced(row, None)
    }

    /// [`Self::rank_combined`] with decision provenance: while tracing is
    /// enabled, emits one `"locate"` event per modeled disposition with
    /// the flat-vs-combined posterior terms (flat margin and posterior,
    /// location margin, fused posterior), keyed by `provenance`'s
    /// `(line, day)` when given. The returned ranking is bit-identical to
    /// [`Self::rank_combined`]; with tracing disabled the extra cost is
    /// one relaxed atomic load.
    pub fn rank_combined_traced(
        &self,
        row: &[f32],
        provenance: Option<(u32, u32)>,
    ) -> Vec<DispositionScore> {
        let _span = nevermind_obs::span!("locator/rank_combined");
        nevermind_obs::counter_add!("locator/inferences", 1);
        let tracing = nevermind_obs::trace::enabled();
        let mut scores = self.prior_scores();
        let loc_margins: Vec<f64> = self.location_models.iter().map(|m| m.margin(row)).collect();
        for (mi, &d) in self.modeled.iter().enumerate() {
            let flat_margin = self.flat_models[mi].margin(row);
            let loc_margin = loc_margins[location_index(d.location())];
            let combined = self.combine[mi].probability(&[flat_margin, loc_margin]);
            scores[d.0 as usize].probability = combined;
            if tracing {
                let mut event = nevermind_obs::trace::TraceEvent::new("locate")
                    .attr("disposition", d.info().code)
                    .attr("location", d.location().label())
                    .attr("flat_margin", flat_margin)
                    .attr("flat_probability", self.flat_cal[mi].probability(flat_margin))
                    .attr("loc_margin", loc_margin)
                    .attr("combined_probability", combined);
                if let Some((line, day)) = provenance {
                    event = event.line(line).day(day);
                }
                nevermind_obs::trace::global().emit(event);
            }
        }
        sort_scores(scores)
    }

    /// Cost-aware ranking — the paper's *second improvement* (Sec. 6.1),
    /// which it leaves as future work: "if these locations have equal prior
    /// probabilities of being the cause of failures, a technician will save
    /// time by starting with the one which is the fastest to test." We
    /// implement it here: dispositions ordered by expected value per minute,
    /// `P(C_ij|x) / test_minutes(C_ij)`, using the combined-model
    /// posteriors. This is the greedy optimum for minimizing expected total
    /// testing time when test outcomes are independent.
    pub fn rank_cost_aware(&self, row: &[f32]) -> Vec<DispositionScore> {
        let mut scores = self.rank_combined(row);
        scores.sort_by(|a, b| {
            let ua = a.probability / a.disposition.info().test_minutes;
            let ub = b.probability / b.disposition.info().test_minutes;
            ub.total_cmp(&ua).then(a.disposition.0.cmp(&b.disposition.0))
        });
        scores
    }

    /// Calibrated major-location posteriors for one assembled row.
    pub fn location_probabilities(&self, row: &[f32]) -> [(MajorLocation, f64); 4] {
        let mut out = [(MajorLocation::HomeNetwork, 0.0); 4];
        for (i, loc) in MajorLocation::ALL.into_iter().enumerate() {
            let m = self.location_models[i].margin(row);
            out[i] = (loc, self.location_cal[i].probability(m));
        }
        out
    }

    /// The flat model and location model backing one disposition, if
    /// modeled — used to render the Fig. 9 combined-model structure.
    pub fn model_pair(&self, d: DispositionId) -> Option<(&BStump, &BStump, &LogisticModel)> {
        let mi = self.modeled.iter().position(|&m| m == d)?;
        Some((
            &self.flat_models[mi],
            &self.location_models[location_index(d.location())],
            &self.combine[mi],
        ))
    }

    fn prior_scores(&self) -> Vec<DispositionScore> {
        (0..N_DISPOSITIONS)
            .map(|i| DispositionScore {
                disposition: DispositionId(i as u8),
                // Prior-rate fallback: on an uninformative row a modeled
                // disposition's calibrated posterior also reverts to its
                // base rate, so the mixed ranking degrades gracefully to
                // the basic (experience) order.
                probability: self.priors[i],
            })
            .collect()
    }

    /// The configuration used at fit time.
    pub fn config(&self) -> &LocatorConfig {
        &self.config
    }
}

/// Trains a model on all rows and returns it together with 3-fold
/// out-of-fold margins (honest score estimates for calibration/fusion).
fn fit_with_oof_margins(
    data: &Dataset,
    y: &[bool],
    boost_cfg: &BoostConfig,
    seed: u64,
) -> (BStump, Vec<f64>) {
    let n = data.x.n_rows();
    let ds = Dataset::new(data.x.clone(), y.to_vec());
    let final_model = BStump::fit(&ds, boost_cfg);

    let k = 3.min(n);
    if k < 2 {
        return (final_model.clone(), final_model.margins(&ds.x));
    }
    let mut oof = vec![0.0f64; n];
    for fold in k_folds(n, k, seed) {
        let train = ds.select_rows(&fold.train);
        // A fold may lose every positive of a rare class; the resulting
        // single-class fit simply emits strongly negative margins, which is
        // an honest "not this class" signal for the held-out rows.
        let model = BStump::fit(&train, boost_cfg);
        for &row in &fold.validation {
            oof[row] = model.margin(ds.x.row(row));
        }
    }
    (final_model, oof)
}

fn assemble(base: &EncodedDataset, derived_feats: &[DerivedFeature]) -> Dataset {
    if derived_feats.is_empty() {
        base.data.clone()
    } else {
        let derived = nevermind_features::encode::derive(base, derived_feats);
        base.hconcat(&derived).data
    }
}

fn location_index(loc: MajorLocation) -> usize {
    // lint:allow(no-panic-in-lib) -- every MajorLocation is a member of ALL by definition
    MajorLocation::ALL.iter().position(|&l| l == loc).expect("location in ALL")
}

fn sort_scores(mut scores: Vec<DispositionScore>) -> Vec<DispositionScore> {
    scores.sort_by(|a, b| {
        b.probability.total_cmp(&a.probability).then(a.disposition.0.cmp(&b.disposition.0))
    });
    scores
}

/// Ranks of the true disposition under each ranker, for one test dispatch.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExampleRanks {
    /// The recorded (true) disposition.
    pub disposition: DispositionId,
    /// 1-based rank under the basic experience model.
    pub basic: usize,
    /// 1-based rank under the flat model.
    pub flat: usize,
    /// 1-based rank under the combined model.
    pub combined: usize,
    /// 1-based rank under the cost-aware extension.
    pub cost_aware: usize,
    /// Major location of the true disposition.
    pub true_location: MajorLocation,
    /// Major location of the combined model's top-1 disposition.
    pub predicted_location: MajorLocation,
    /// Minutes a technician walking the basic order would spend testing.
    pub basic_minutes: f64,
    /// Minutes under the flat model's order.
    pub flat_minutes: f64,
    /// Minutes under the combined model's order.
    pub combined_minutes: f64,
    /// Minutes under the cost-aware order.
    pub cost_aware_minutes: f64,
}

/// Minutes spent testing while walking `order` until `truth` is found: the
/// sum of each tested disposition's
/// [`test_minutes`](nevermind_dslsim::disposition::DispositionInfo::test_minutes).
fn minutes_walked(order: impl Iterator<Item = DispositionId>, truth: DispositionId) -> f64 {
    let mut minutes = 0.0;
    for d in order {
        minutes += d.info().test_minutes;
        if d == truth {
            break;
        }
    }
    minutes
}

/// Locator evaluation over a set of test dispatches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocatorEvaluation {
    /// Per-dispatch ranks.
    pub per_example: Vec<ExampleRanks>,
}

impl LocatorEvaluation {
    /// Evaluates a locator on dispatches in `[from, to)`.
    pub fn run(
        locator: &TroubleLocator,
        data: &ExperimentData,
        from: u32,
        to: u32,
    ) -> LocatorEvaluation {
        let examples = collect_dispatch_examples(&data.output.notes, from, to);
        let ds = locator.encode_examples(data, &examples);
        let basic = locator.basic_ranking();
        let per_example = examples
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let row = ds.x.row(i);
                let truth = e.disposition;
                let flat_scores = locator.rank_flat(row);
                let combined_scores = locator.rank_combined(row);
                let cost_scores = locator.rank_cost_aware(row);
                let flat = rank_of(&flat_scores, truth);
                let combined = rank_of(&combined_scores, truth);
                let cost_aware = rank_of(&cost_scores, truth);
                let basic_rank =
                    // lint:allow(no-panic-in-lib) -- basic_ranking always ranks all 52 dispositions
                    basic.iter().position(|&d| d == truth).expect("all dispositions ranked") + 1;
                ExampleRanks {
                    disposition: truth,
                    basic: basic_rank,
                    flat,
                    combined,
                    cost_aware,
                    true_location: truth.location(),
                    predicted_location: combined_scores[0].disposition.location(),
                    basic_minutes: minutes_walked(basic.iter().copied(), truth),
                    flat_minutes: minutes_walked(flat_scores.iter().map(|s| s.disposition), truth),
                    combined_minutes: minutes_walked(
                        combined_scores.iter().map(|s| s.disposition),
                        truth,
                    ),
                    cost_aware_minutes: minutes_walked(
                        cost_scores.iter().map(|s| s.disposition),
                        truth,
                    ),
                }
            })
            .collect();
        LocatorEvaluation { per_example }
    }

    /// 4x4 confusion matrix over major locations: rows = true location,
    /// columns = the combined model's top-1 location, both in
    /// [`MajorLocation::ALL`] order. The paper motivates the locator with
    /// exactly this decision ("if the technician has enough evidence to
    /// believe a problem happens at DS, she can save time by skipping
    /// testing other three locations").
    pub fn location_confusion(&self) -> [[usize; 4]; 4] {
        let idx = |l: MajorLocation| {
            // lint:allow(no-panic-in-lib) -- every MajorLocation is a member of ALL by definition
            MajorLocation::ALL.iter().position(|&m| m == l).expect("known location")
        };
        let mut m = [[0usize; 4]; 4];
        for e in &self.per_example {
            m[idx(e.true_location)][idx(e.predicted_location)] += 1;
        }
        m
    }

    /// Fraction of dispatches whose top-1 predicted location matches the
    /// true one.
    pub fn location_accuracy(&self) -> f64 {
        if self.per_example.is_empty() {
            return f64::NAN;
        }
        let hits =
            self.per_example.iter().filter(|e| e.true_location == e.predicted_location).count();
        hits as f64 / self.per_example.len() as f64
    }

    /// Mean technician testing minutes under each ranking:
    /// `(basic, flat, combined, cost_aware)`.
    pub fn mean_minutes(&self) -> (f64, f64, f64, f64) {
        let n = self.per_example.len().max(1) as f64;
        let sum =
            |f: &dyn Fn(&ExampleRanks) -> f64| self.per_example.iter().map(f).sum::<f64>() / n;
        (
            sum(&|e| e.basic_minutes),
            sum(&|e| e.flat_minutes),
            sum(&|e| e.combined_minutes),
            sum(&|e| e.cost_aware_minutes),
        )
    }

    /// Smallest number of tests that locates at least `fraction` of the
    /// problems, per ranker: `(basic, flat, combined)`.
    pub fn tests_to_locate(&self, fraction: f64) -> (usize, usize, usize) {
        (
            quantile_rank(self.per_example.iter().map(|e| e.basic), fraction),
            quantile_rank(self.per_example.iter().map(|e| e.flat), fraction),
            quantile_rank(self.per_example.iter().map(|e| e.combined), fraction),
        )
    }

    /// Fig.-10 series: for each basic-rank bin `[lo, hi]`, the mean rank
    /// improvement (basic − model) under the flat and combined models.
    pub fn rank_change_by_bin(&self, bins: &[(usize, usize)]) -> Vec<RankChangeBin> {
        bins.iter()
            .map(|&(lo, hi)| {
                let in_bin: Vec<&ExampleRanks> =
                    self.per_example.iter().filter(|e| e.basic >= lo && e.basic <= hi).collect();
                let n = in_bin.len();
                let mean = |f: &dyn Fn(&ExampleRanks) -> f64| {
                    if n == 0 {
                        f64::NAN
                    } else {
                        in_bin.iter().map(|e| f(e)).sum::<f64>() / n as f64
                    }
                };
                RankChangeBin {
                    lo,
                    hi,
                    n,
                    flat_boost: mean(&|e| e.basic as f64 - e.flat as f64),
                    combined_boost: mean(&|e| e.basic as f64 - e.combined as f64),
                }
            })
            .collect()
    }
}

/// One Fig.-10 bin.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RankChangeBin {
    /// Bin lower bound (basic rank, inclusive).
    pub lo: usize,
    /// Bin upper bound (inclusive).
    pub hi: usize,
    /// Dispatches in the bin.
    pub n: usize,
    /// Mean rank boost of the flat model over basic.
    pub flat_boost: f64,
    /// Mean rank boost of the combined model over basic.
    pub combined_boost: f64,
}

fn rank_of(scores: &[DispositionScore], d: DispositionId) -> usize {
    // lint:allow(no-panic-in-lib) -- rank lists always cover all 52 dispositions
    scores.iter().position(|s| s.disposition == d).expect("all dispositions scored") + 1
}

fn quantile_rank(ranks: impl Iterator<Item = usize>, fraction: f64) -> usize {
    let mut v: Vec<usize> = ranks.collect();
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    let idx = ((v.len() as f64 * fraction).ceil() as usize).clamp(1, v.len());
    v[idx - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nevermind_dslsim::SimConfig;

    fn quick_cfg() -> LocatorConfig {
        LocatorConfig { iterations: 40, min_examples: 10, ..LocatorConfig::default() }
    }

    /// A denser world than `SimConfig::small`: the locator trains one model
    /// per disposition, so it needs a realistic dispatch volume (the paper
    /// has 7 weeks of a multi-million-line network).
    fn locator_world(seed: u64) -> ExperimentData {
        let mut cfg = SimConfig::small(seed);
        cfg.n_lines = 6_000;
        cfg.faults_per_line_year = 1.3;
        ExperimentData::simulate(cfg)
    }

    fn fitted() -> (ExperimentData, TroubleLocator) {
        let data = locator_world(91);
        let days = data.config.days;
        let locator =
            TroubleLocator::fit(&data, 30, days / 2, &quick_cfg()).expect("window has dispatches");
        (data, locator)
    }

    #[test]
    fn saturday_helper() {
        assert_eq!(saturday_at_or_before(6), Some(6));
        assert_eq!(saturday_at_or_before(7), Some(6));
        assert_eq!(saturday_at_or_before(12), Some(6));
        assert_eq!(saturday_at_or_before(13), Some(13));
        assert_eq!(saturday_at_or_before(3), None);
    }

    #[test]
    fn collects_examples_in_window() {
        let data = ExperimentData::simulate(SimConfig::small(92));
        let ex = collect_dispatch_examples(&data.output.notes, 30, 200);
        assert!(!ex.is_empty());
        for e in &ex {
            assert_eq!(e.day % 7, 6);
        }
    }

    #[test]
    fn rankings_cover_all_dispositions_once() {
        let (data, locator) = fitted();
        let days = data.config.days;
        let ex = collect_dispatch_examples(&data.output.notes, days / 2, days);
        let ds = locator.encode_examples(&data, &ex[..1.min(ex.len())]);
        let row = ds.x.row(0);
        for ranking in [locator.rank_flat(row), locator.rank_combined(row)] {
            assert_eq!(ranking.len(), N_DISPOSITIONS);
            let mut seen: Vec<u8> = ranking.iter().map(|s| s.disposition.0).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), N_DISPOSITIONS);
            // Descending probabilities.
            for w in ranking.windows(2) {
                assert!(w[0].probability >= w[1].probability);
            }
        }
        assert_eq!(locator.basic_ranking().len(), N_DISPOSITIONS);
    }

    #[test]
    fn models_beat_basic_ranking() {
        let (data, locator) = fitted();
        let days = data.config.days;
        let eval = LocatorEvaluation::run(&locator, &data, days / 2, days);
        assert!(!eval.per_example.is_empty());
        let mean = |f: &dyn Fn(&ExampleRanks) -> usize| {
            eval.per_example.iter().map(|e| f(e) as f64).sum::<f64>()
                / eval.per_example.len() as f64
        };
        let basic = mean(&|e| e.basic);
        let flat = mean(&|e| e.flat);
        let combined = mean(&|e| e.combined);
        assert!(flat < basic, "flat {flat} vs basic {basic}");
        assert!(combined < basic, "combined {combined} vs basic {basic}");
    }

    #[test]
    fn tests_to_locate_half() {
        let (data, locator) = fitted();
        let days = data.config.days;
        let eval = LocatorEvaluation::run(&locator, &data, days / 2, days);
        let (basic, flat, combined) = eval.tests_to_locate(0.5);
        assert!(basic >= 1 && flat >= 1 && combined >= 1);
        assert!(flat <= basic);
        assert!(combined <= basic);
    }

    #[test]
    fn rank_change_bins_partition() {
        let (data, locator) = fitted();
        let days = data.config.days;
        let eval = LocatorEvaluation::run(&locator, &data, days / 2, days);
        let bins = eval.rank_change_by_bin(&[(1, 5), (6, 10), (11, 20), (21, 52)]);
        let total: usize = bins.iter().map(|b| b.n).sum();
        assert_eq!(total, eval.per_example.len());
    }

    #[test]
    fn cost_aware_reduces_expected_minutes() {
        let (data, locator) = fitted();
        let days = data.config.days;
        let eval = LocatorEvaluation::run(&locator, &data, days / 2, days);
        let (basic_min, _, combined_min, cost_min) = eval.mean_minutes();
        assert!(combined_min < basic_min, "combined {combined_min} vs basic {basic_min}");
        // The cost-aware order optimizes minutes, so it must not be worse
        // than the combined order it reweights (allowing small noise).
        assert!(
            cost_min <= combined_min * 1.05,
            "cost-aware {cost_min} vs combined {combined_min}"
        );
    }

    #[test]
    fn cost_aware_is_a_permutation_of_dispositions() {
        let (data, locator) = fitted();
        let days = data.config.days;
        let ex = collect_dispatch_examples(&data.output.notes, days / 2, days);
        let ds = locator.encode_examples(&data, &ex[..1]);
        let ranking = locator.rank_cost_aware(ds.x.row(0));
        assert_eq!(ranking.len(), N_DISPOSITIONS);
        let mut seen: Vec<u8> = ranking.iter().map(|s| s.disposition.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), N_DISPOSITIONS);
        // Expected-value-per-minute must descend along the list.
        for w in ranking.windows(2) {
            let ua = w[0].probability / w[0].disposition.info().test_minutes;
            let ub = w[1].probability / w[1].disposition.info().test_minutes;
            assert!(ua >= ub - 1e-12);
        }
    }

    #[test]
    fn location_confusion_sums_and_beats_prior() {
        let (data, locator) = fitted();
        let days = data.config.days;
        let eval = LocatorEvaluation::run(&locator, &data, days / 2, days);
        let m = eval.location_confusion();
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, eval.per_example.len());
        let acc = eval.location_accuracy();
        // The majority class share is the accuracy of always guessing the
        // most common location; the model must beat it.
        let mut true_counts = [0usize; 4];
        for row in 0..4 {
            true_counts[row] = m[row].iter().sum();
        }
        let majority = *true_counts.iter().max().expect("4 rows") as f64 / total as f64;
        assert!(acc > majority, "location accuracy {acc:.3} vs majority {majority:.3}");
    }

    #[test]
    fn minutes_walked_accumulates_prefix() {
        let order: Vec<DispositionId> = (0..3).map(DispositionId).collect();
        let truth = DispositionId(1);
        let expected: f64 = order[..2].iter().map(|d| d.info().test_minutes).sum();
        assert!((minutes_walked(order.iter().copied(), truth) - expected).abs() < 1e-12);
    }

    #[test]
    fn location_probabilities_are_probabilities() {
        let (data, locator) = fitted();
        let days = data.config.days;
        let ex = collect_dispatch_examples(&data.output.notes, days / 2, days);
        let ds = locator.encode_examples(&data, &ex[..1]);
        let probs = locator.location_probabilities(ds.x.row(0));
        for (_, p) in probs {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn model_pair_available_for_modeled() {
        let (_, locator) = fitted();
        let d = locator.modeled_dispositions()[0];
        assert!(locator.model_pair(d).is_some());
    }

    #[test]
    fn quantile_rank_math() {
        let ranks = vec![1usize, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(quantile_rank(ranks.iter().copied(), 0.5), 5);
        assert_eq!(quantile_rank(ranks.iter().copied(), 1.0), 10);
        assert_eq!(quantile_rank(std::iter::empty(), 0.5), 0);
    }
}
