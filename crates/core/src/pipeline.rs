//! Experiment plumbing: simulated datasets, paper-style time splits, and
//! the operational proactive loop.
//!
//! The paper's timeline (Sec. 5): measurements from 01/01–07/31 are history
//! for the time-series features; 08/01–09/30 is training; four contiguous
//! weeks from 10/31 are the test period. [`SplitSpec::paper_like`] carves
//! the simulated horizon with the same proportions and ordering — training
//! strictly precedes selection evaluation, which strictly precedes the test
//! window.

use crate::error::PipelineError;
use nevermind_dslsim::topology::Topology;
use nevermind_dslsim::{SimConfig, SimOutput, World};
use nevermind_features::encode::EncoderConfig;
use nevermind_features::BaseEncoder;
use serde::{Deserialize, Serialize};

/// A simulated dataset plus the plant it came from.
///
/// Serializable as one JSON document, which is how the CLI persists a
/// dataset between `simulate`, `train` and `rank` invocations.
#[derive(Serialize, Deserialize)]
pub struct ExperimentData {
    /// Simulator configuration used.
    pub config: SimConfig,
    /// The static plant (lines, DSLAMs, BRAS hierarchy).
    pub topology: Topology,
    /// The year of operational logs.
    pub output: SimOutput,
}

impl ExperimentData {
    /// Simulates a full reactive horizon (the paper's offline setting).
    pub fn simulate(config: SimConfig) -> Self {
        Self::simulate_sharded(config, 1)
    }

    /// [`ExperimentData::simulate`] stepping the plant `shards` DSLAM-subtree
    /// shards at a time. Bit-identical to the serial run for any shard
    /// count (`0` is treated as `1`); pinned by the dslsim equivalence
    /// tests.
    pub fn simulate_sharded(config: SimConfig, shards: usize) -> Self {
        let world = World::generate(config.clone()).with_shards(shards.max(1));
        let topology = world.topology().clone();
        let output = world.run();
        Self { config, topology, output }
    }

    /// Builds the feature encoder over these logs.
    pub fn encoder(&self, encoder_config: EncoderConfig) -> BaseEncoder<'_> {
        BaseEncoder::new(
            &self.topology.lines,
            &self.output.measurements,
            &self.output.tickets,
            encoder_config,
        )
    }

    /// All Saturdays inside the horizon, ascending.
    pub fn saturdays(&self) -> Vec<u32> {
        (0..self.config.days).filter(|d| d % 7 == 6).collect()
    }

    /// Saturdays whose 4-week label window fits inside the horizon.
    pub fn label_complete_saturdays(&self, horizon_days: u32) -> Vec<u32> {
        self.saturdays().into_iter().filter(|&d| d + horizon_days <= self.config.days).collect()
    }
}

/// The three time windows of the paper's evaluation protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitSpec {
    /// Training Saturdays (the paper's 08/01–09/30, nine Saturdays).
    pub train_days: Vec<u32>,
    /// Held-out Saturdays used to *evaluate single-feature models* during
    /// feature selection (selection must reward generalization).
    pub selection_eval_days: Vec<u32>,
    /// Final test Saturdays (the paper's four contiguous weeks).
    pub test_days: Vec<u32>,
}

impl SplitSpec {
    /// Paper-proportioned split: the last four label-complete Saturdays
    /// test; four Saturdays whose label windows end before the test period
    /// drive selection; the nine Saturdays before those train. Earlier
    /// weeks remain as history for the time-series features.
    ///
    /// # Errors
    /// Returns [`PipelineError::SplitTooShort`] if the horizon cannot fit
    /// the protocol — e.g. a truncated week of measurements whose last
    /// label window never closes.
    pub fn paper_like(data: &ExperimentData) -> Result<Self, PipelineError> {
        Self::with_horizon(data, 28)
    }

    /// [`SplitSpec::paper_like`] with an explicit label horizon.
    ///
    /// # Errors
    /// Returns [`PipelineError::SplitTooShort`] if the horizon is too
    /// short for any of the three windows.
    pub fn with_horizon(data: &ExperimentData, horizon_days: u32) -> Result<Self, PipelineError> {
        let usable = data.label_complete_saturdays(horizon_days);
        if usable.len() < 2 {
            return Err(PipelineError::SplitTooShort {
                window: "test",
                detail: format!("only {} label-complete Saturdays", usable.len()),
            });
        }
        let n_test = 4.min(usable.len() / 4).max(1);
        let test_days: Vec<u32> = usable[usable.len() - n_test..].to_vec();
        let test_start = test_days[0];

        // Selection-eval windows must close before testing begins.
        let eval_candidates: Vec<u32> =
            usable.iter().copied().filter(|&d| d + horizon_days <= test_start).collect();
        if eval_candidates.is_empty() {
            return Err(PipelineError::SplitTooShort {
                window: "selection-eval",
                detail: format!("no label window closes before test day {test_start}"),
            });
        }
        let n_eval = 4.min(eval_candidates.len() / 2).max(1);
        let selection_eval_days: Vec<u32> =
            eval_candidates[eval_candidates.len() - n_eval..].to_vec();
        let eval_start = selection_eval_days[0];

        let train_candidates: Vec<u32> =
            eval_candidates.iter().copied().filter(|&d| d < eval_start).collect();
        if train_candidates.is_empty() {
            return Err(PipelineError::SplitTooShort {
                window: "training",
                detail: format!("no Saturday left before selection-eval day {eval_start}"),
            });
        }
        let n_train = 9.min(train_candidates.len());
        let train_days: Vec<u32> = train_candidates[train_candidates.len() - n_train..].to_vec();

        Ok(Self { train_days, selection_eval_days, test_days })
    }
}

/// Outcome of a proactive-vs-reactive operational trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProactiveOutcome {
    /// Day the proactive policy switched on.
    pub policy_start_day: u32,
    /// Customer-edge tickets after the policy start, reactive baseline.
    pub reactive_tickets: usize,
    /// Customer-edge tickets after the policy start, proactive run.
    pub proactive_tickets: usize,
    /// Proactive dispatches sent.
    pub proactive_dispatches: usize,
    /// Proactive dispatches that found (and fixed) a real fault.
    pub proactive_hits: usize,
    /// Customers lost to churn after the policy start, reactive baseline.
    pub reactive_churn: usize,
    /// Customers lost to churn after the policy start, proactive run.
    pub proactive_churn: usize,
}

impl ProactiveOutcome {
    /// Fractional reduction in customer-edge tickets.
    pub fn ticket_reduction(&self) -> f64 {
        if self.reactive_tickets == 0 {
            return 0.0;
        }
        1.0 - self.proactive_tickets as f64 / self.reactive_tickets as f64
    }

    /// Fraction of proactive dispatches that found a real fault, or `None`
    /// when no dispatch was sent — the accessor JSON consumers should use,
    /// since the quotient is undefined (and JSON cannot represent NaN).
    pub fn dispatch_precision_checked(&self) -> Option<f64> {
        (self.proactive_dispatches > 0)
            .then(|| self.proactive_hits as f64 / self.proactive_dispatches as f64)
    }

    /// Fraction of proactive dispatches that found a real fault. Returns a
    /// `NaN` sentinel when no dispatch was sent; display code should prefer
    /// [`ProactiveOutcome::dispatch_precision_checked`] and print `n/a`.
    pub fn dispatch_precision(&self) -> f64 {
        self.dispatch_precision_checked().unwrap_or(f64::NAN)
    }
}

/// Optional behaviors of [`run_proactive_trial_with`] beyond the paper's
/// basic twin-world loop.
#[derive(Debug, Clone, Default)]
pub struct TrialOptions {
    /// Simulator configuration for a *separate* training world. `None`
    /// (the default, and the paper's protocol) trains on the live world's
    /// own warm-up logs. `Some` generates an independent world from this
    /// configuration, steps it through the same warm-up window, and trains
    /// there — the drift-injection setup: a model trained on (say) the
    /// baseline plant scoring an overprovisioned or storm-season live
    /// world, which the model-health telemetry must flag.
    pub train_config: Option<SimConfig>,
    /// Thresholds and sizing for the model-health monitor. The monitor
    /// itself runs only while [`nevermind_obs::enabled`] — with recording
    /// off the trial is telemetry-free (and bit-identical either way).
    pub telemetry: crate::telemetry::TelemetryConfig,
    /// Shard-parallelism degree for the simulated worlds and the weekly
    /// scoring engine. `0` (the default) runs everything serial; `n >= 1`
    /// steps the plant `n` DSLAM-subtree shards at a time and pins `n`-way
    /// parallelism on every weekly stage. Outcomes are bit-identical for
    /// every setting — sharding is an execution detail.
    pub shards: usize,
    /// Stop the trial after ranking calendar week `w` (the Saturday `7w +
    /// 6`) instead of running the full horizon — the checkpointing half of
    /// mid-horizon resume. `None` runs to the end. Both simulated worlds
    /// stop at the same frontier, so the partial outcome is still a fair
    /// proactive-vs-reactive comparison over the truncated window.
    pub stop_after_week: Option<u32>,
    /// Frames from a previous (stopped) trial's store. Each ranked
    /// Saturday whose frame is present is *adopted* instead of re-encoded
    /// — reproducing the checkpointed run bit-for-bit — and later weeks
    /// fall back to encoding. The store must match the resumed trial's
    /// encoder configuration, population and lane set
    /// ([`PipelineError::StoreMismatch`] otherwise).
    pub resume_store: Option<nevermind_features::FeatureStore>,
    /// Retain every ranked week's frame and return the store in
    /// [`TrialResult::store`] (for `--store-out` export). The default
    /// keeps only the latest frame resident.
    pub keep_store: bool,
}

/// What [`run_proactive_trial_with`] hands back.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// The proactive-vs-reactive outcome.
    pub outcome: ProactiveOutcome,
    /// Model-health summary; `None` when observability was disabled (the
    /// full per-week series live in the global metrics registry).
    pub telemetry: Option<crate::telemetry::TelemetryReport>,
    /// Every ranked week's feature frame, when [`TrialOptions::keep_store`]
    /// asked for it — export with `FeatureStore::export` to checkpoint.
    pub store: Option<nevermind_features::FeatureStore>,
}

/// Runs the operational NEVERMIND loop against a twin reactive baseline.
///
/// Both runs share the simulator seed, so the plant, customers, faults and
/// weather are identical; the only difference is the weekly proactive
/// dispatches. The predictor is trained once, on the logs available at the
/// end of the warm-up window, then applied every following Saturday.
///
/// # Errors
/// Returns [`PipelineError`] when the warm-up exceeds the horizon or the
/// warm-up logs cannot support training (split or calibration failure).
pub fn run_proactive_trial(
    sim_config: SimConfig,
    predictor_config: &crate::predictor::PredictorConfig,
    warmup_weeks: u32,
) -> Result<ProactiveOutcome, PipelineError> {
    run_proactive_trial_with(sim_config, predictor_config, warmup_weeks, &TrialOptions::default())
        .map(|r| r.outcome)
}

/// [`run_proactive_trial`] with [`TrialOptions`]: an optional separate
/// training world (drift injection) and model-health telemetry. While
/// observability is enabled, a [`crate::telemetry::ModelHealthMonitor`]
/// snapshots the training reference at fit time and compares every scored
/// week against it; the monitor only reads the scoring path, so rankings
/// and dispatches are bit-identical with telemetry on or off.
///
/// # Errors
/// Returns [`PipelineError`] when the warm-up exceeds the horizon or the
/// warm-up logs cannot support training (split or calibration failure).
pub fn run_proactive_trial_with(
    sim_config: SimConfig,
    predictor_config: &crate::predictor::PredictorConfig,
    warmup_weeks: u32,
    options: &TrialOptions,
) -> Result<TrialResult, PipelineError> {
    // Named to read cleanly under the CLI's `cli/trial` wrapper span
    // (`cli/trial/proactive_trial/...`) and standalone alike.
    let _trial_span = nevermind_obs::span!("proactive_trial");
    let shards = options.shards.max(1);
    let policy_start_day = warmup_weeks * 7;
    if policy_start_day >= sim_config.days {
        return Err(PipelineError::WarmupExceedsHorizon {
            policy_start_day,
            days: sim_config.days,
        });
    }
    // A stop-after-week checkpoint truncates both worlds at the day after
    // its Saturday; `None` runs the configured horizon. The simulator
    // config is untouched either way, so a resumed trial regenerates the
    // *identical* world and the stored frames line up bit-for-bit.
    let end_day = match options.stop_after_week {
        Some(w) => sim_config.days.min((w + 1) * 7),
        None => sim_config.days,
    };

    // Reactive baseline. The twin is a counterfactual: its technician
    // visits answer to no rank or dispatch decision an operator could ask
    // about, and at scale they would flood the bounded trace ring before
    // the proactive world even starts — so decision tracing is suspended
    // for its lifetime (deterministically: plain flag save/restore).
    let baseline = {
        let _s = nevermind_obs::span!("baseline_world");
        let tracing = nevermind_obs::trace::enabled();
        nevermind_obs::trace::set_enabled(false);
        // Likewise the metrics-history ring: the twin's days would otherwise
        // interleave with (and displace) the live world's windows.
        let history = nevermind_obs::history::enabled();
        nevermind_obs::history::set_enabled(false);
        let mut baseline_world = World::generate(sim_config.clone()).with_shards(shards);
        while baseline_world.day() < end_day {
            baseline_world.step_day();
        }
        let out = baseline_world.into_output();
        nevermind_obs::history::set_enabled(history);
        nevermind_obs::trace::set_enabled(tracing);
        out
    };
    let reactive_tickets =
        baseline.customer_edge_tickets().filter(|t| t.day >= policy_start_day).count();
    let reactive_churn = baseline.churn_events.iter().filter(|c| c.day >= policy_start_day).count();

    // Proactive run.
    let mut world = World::generate(sim_config.clone()).with_shards(shards);
    {
        let _s = nevermind_obs::span!("warmup");
        while world.day() < policy_start_day {
            world.step_day();
        }
    }

    // Train on warm-up logs: the live world's own (paper protocol), or a
    // separately simulated world's (drift injection).
    let train_data = match &options.train_config {
        None => ExperimentData {
            config: sim_config.clone(),
            topology: world.topology().clone(),
            output: world.output().clone(),
        },
        Some(train_cfg) => {
            let _s = nevermind_obs::span!("train_world");
            let mut train_cfg = train_cfg.clone();
            // The training world only needs to exist through the warm-up.
            train_cfg.days = train_cfg.days.min(sim_config.days);
            // Like the baseline: a drift-injection world's visits are not
            // part of the live policy's story, so they are not traced.
            let tracing = nevermind_obs::trace::enabled();
            nevermind_obs::trace::set_enabled(false);
            let history = nevermind_obs::history::enabled();
            nevermind_obs::history::set_enabled(false);
            let mut train_world = World::generate(train_cfg.clone()).with_shards(shards);
            while train_world.day() < policy_start_day {
                train_world.step_day();
            }
            nevermind_obs::history::set_enabled(history);
            nevermind_obs::trace::set_enabled(tracing);
            ExperimentData {
                config: train_cfg,
                topology: train_world.topology().clone(),
                output: train_world.output().clone(),
            }
        }
    };
    let mut train_for_split = train_data;
    // The split machinery needs the horizon to reflect data actually seen.
    train_for_split.config.days = policy_start_day;
    let split = SplitSpec::paper_like(&train_for_split)?;
    let (predictor, _) = {
        let _s = nevermind_obs::span!("train");
        crate::predictor::TicketPredictor::fit(&train_for_split, &split, predictor_config)?
    };

    let mut monitor = nevermind_obs::enabled().then(|| {
        crate::telemetry::ModelHealthMonitor::from_training(
            &predictor,
            &train_for_split,
            &split,
            world.topology().lines.len(),
            &options.telemetry,
        )
    });

    // The incremental weekly scoring engine: rolling encoder state fed only
    // each week's fresh log events, compiled parallel stump evaluation, and
    // partial top-budget selection — bit-identical to ranking from scratch
    // with `predictor.rank`, without the weekly clone of the growing logs.
    let lines = world.topology().lines.clone();
    let mut scorer = crate::scoring::WeeklyScorer::new(&predictor, &lines);
    scorer.set_shards(options.shards);
    // The health monitor's watched columns ride in the weekly store frames
    // (one lane each) so it can bin them zero-copy. Tracked whether or not
    // observability is on: the lane set — and any exported store bytes —
    // must be a function of the configuration alone.
    let monitored: Vec<usize> =
        predictor.selected_base().iter().take(options.telemetry.max_features).copied().collect();
    scorer.track_columns(&monitored);
    if options.keep_store {
        scorer.set_retention(nevermind_features::Retention::All);
    }
    if let Some(resume) = &options.resume_store {
        if !resume.matches_config(predictor.encoder_config()) {
            return Err(PipelineError::StoreMismatch {
                detail: "checkpoint was written under a different encoder configuration".into(),
            });
        }
        if resume.n_lines() != lines.len() {
            return Err(PipelineError::StoreMismatch {
                detail: format!(
                    "checkpoint covers {} lines, this trial has {}",
                    resume.n_lines(),
                    lines.len()
                ),
            });
        }
        if resume.cols() != scorer.store().cols() {
            return Err(PipelineError::StoreMismatch {
                detail:
                    "checkpoint tracks a different lane set (model or telemetry sizing changed)"
                        .into(),
            });
        }
        for frame in resume.clone().into_frames() {
            scorer.preload_frame(frame);
        }
    }
    let budget = predictor_config.budget(lines.len());
    let _policy_span = nevermind_obs::span!("policy_loop");
    while world.day() < end_day {
        world.step_day();
        let just_finished = world.day() - 1;
        if just_finished % 7 == 6 {
            // Rank on everything measured so far, dispatch the top budget.
            // The stopwatch is inert (no clock read) while observability is
            // off, so timing can never perturb the model path.
            let week_timer = nevermind_obs::Stopwatch::start();
            let ranking = {
                let out = world.output();
                scorer.observe(&out.measurements, &out.tickets);
                scorer.rank_week(just_finished)
            };
            let to_dispatch: Vec<_> = ranking
                .top_rows_sharded(budget, shards)
                .into_iter()
                .map(|(key, _, _)| key.line)
                .collect();
            nevermind_obs::counter_add!("weekly/lines_dispatched", to_dispatch.len());
            if let Some(rank_ms) = week_timer.elapsed_ms() {
                // Per-week trajectory: how long each Saturday re-rank took
                // and how many trucks it sent, keyed by the finished day.
                let reg = nevermind_obs::global();
                reg.series("trial/week_rank_ms").push(f64::from(just_finished), rank_ms);
                reg.series("trial/week_dispatches")
                    .push(f64::from(just_finished), to_dispatch.len() as f64);
            }
            if let Some(mon) = monitor.as_mut() {
                // The monitor bins its watched lanes straight out of the
                // week's store frame — the same memory the ranking was
                // scored from; it never feeds back into the ranking.
                mon.observe_week(just_finished, &ranking, scorer.store(), &world.output().tickets);
            }
            // Decision provenance: the week's cutoff decision plus per-line
            // stump/calibration/rank chains for the dispatched head and a
            // sampled reservoir. Reads the ranking; never changes it.
            crate::provenance::emit_week_trace(
                &scorer,
                &predictor,
                &ranking,
                budget,
                just_finished,
            );
            for line in to_dispatch {
                world.schedule_proactive_dispatch(line, 2);
            }
        }
    }
    drop(_policy_span);

    let telemetry = monitor.map(|m| m.finish(&world.output().tickets, end_day.saturating_sub(1)));
    let store = options.keep_store.then(|| scorer.into_store());

    let out = world.into_output();
    let proactive_tickets =
        out.customer_edge_tickets().filter(|t| t.day >= policy_start_day).count();
    let proactive_notes: Vec<_> = out.notes.iter().filter(|n| n.proactive).collect();
    let proactive_dispatches = proactive_notes.len();
    let proactive_hits = proactive_notes.iter().filter(|n| n.disposition.is_some()).count();
    let proactive_churn = out.churn_events.iter().filter(|c| c.day >= policy_start_day).count();

    Ok(TrialResult {
        outcome: ProactiveOutcome {
            policy_start_day,
            reactive_tickets,
            proactive_tickets,
            proactive_dispatches,
            proactive_hits,
            reactive_churn,
            proactive_churn,
        },
        telemetry,
        store,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_data() -> ExperimentData {
        ExperimentData::simulate(SimConfig::small(31))
    }

    #[test]
    fn split_windows_are_ordered_and_disjoint() {
        let data = small_data();
        let split = SplitSpec::paper_like(&data).expect("horizon fits");
        assert!(!split.train_days.is_empty());
        assert!(!split.selection_eval_days.is_empty());
        assert!(!split.test_days.is_empty());
        let last_train = *split.train_days.last().expect("non-empty");
        let first_eval = split.selection_eval_days[0];
        let last_eval = *split.selection_eval_days.last().expect("non-empty");
        let first_test = split.test_days[0];
        assert!(last_train < first_eval, "training must precede selection eval");
        assert!(last_eval + 28 <= first_test, "eval labels must close before testing");
    }

    #[test]
    fn split_days_are_saturdays_with_complete_labels() {
        let data = small_data();
        let split = SplitSpec::paper_like(&data).expect("horizon fits");
        for &d in split.train_days.iter().chain(&split.selection_eval_days).chain(&split.test_days)
        {
            assert_eq!(d % 7, 6, "day {d} not a Saturday");
            assert!(d + 28 <= data.config.days, "label window of {d} is truncated");
        }
    }

    #[test]
    fn full_default_horizon_gets_paper_sized_windows() {
        // Default 420-day horizon should afford the full 9/4/4 protocol.
        let data = ExperimentData {
            config: SimConfig::default(),
            topology: Topology::generate(&SimConfig::default(), 1),
            output: SimOutput {
                measurements: vec![],
                tickets: vec![],
                notes: vec![],
                outage_events: vec![],
                traffic: nevermind_dslsim::traffic::TrafficTable::new(vec![], 420),
                ivr_calls: vec![],
                churn_events: vec![],
                days: 420,
            },
        };
        let split = SplitSpec::paper_like(&data).expect("horizon fits");
        assert_eq!(split.train_days.len(), 9);
        assert_eq!(split.selection_eval_days.len(), 4);
        assert_eq!(split.test_days.len(), 4);
    }

    #[test]
    fn saturday_enumeration() {
        let data = small_data();
        let sats = data.saturdays();
        assert!(sats.iter().all(|d| d % 7 == 6));
        // Exactly the days d < horizon with d % 7 == 6: one per started
        // week that reaches its seventh day, i.e. floor(days / 7).
        assert_eq!(sats.len(), (data.config.days / 7) as usize);
        assert!(sats.windows(2).all(|w| w[1] == w[0] + 7), "consecutive Saturdays, ascending");
        assert_eq!(sats.first().copied(), Some(6));
        let usable = data.label_complete_saturdays(28);
        assert!(usable.len() < sats.len());
    }

    #[test]
    fn proactive_outcome_math() {
        let outcome = ProactiveOutcome {
            policy_start_day: 100,
            reactive_tickets: 200,
            proactive_tickets: 150,
            proactive_dispatches: 80,
            proactive_hits: 40,
            reactive_churn: 20,
            proactive_churn: 12,
        };
        assert!((outcome.ticket_reduction() - 0.25).abs() < 1e-12);
        assert!((outcome.dispatch_precision() - 0.5).abs() < 1e-12);
        assert_eq!(outcome.dispatch_precision_checked(), Some(0.5));

        let degenerate = ProactiveOutcome {
            policy_start_day: 0,
            reactive_tickets: 0,
            proactive_tickets: 0,
            proactive_dispatches: 0,
            proactive_hits: 0,
            reactive_churn: 0,
            proactive_churn: 0,
        };
        assert_eq!(degenerate.ticket_reduction(), 0.0);
        assert!(degenerate.dispatch_precision().is_nan());
        assert_eq!(degenerate.dispatch_precision_checked(), None);
    }

    #[test]
    fn split_rejects_tiny_horizons() {
        // A malformed (truncated) week of measurements: the horizon ends
        // before enough label windows close. This must surface as an error
        // the weekly loop can log and skip — never a panic mid-dispatch.
        let mut cfg = SimConfig::small(1);
        cfg.days = 60;
        let data = ExperimentData {
            config: cfg.clone(),
            topology: Topology::generate(&cfg, 1),
            output: SimOutput {
                measurements: vec![],
                tickets: vec![],
                notes: vec![],
                outage_events: vec![],
                traffic: nevermind_dslsim::traffic::TrafficTable::new(vec![], 60),
                ivr_calls: vec![],
                churn_events: vec![],
                days: 60,
            },
        };
        let err = SplitSpec::paper_like(&data).expect_err("60 days cannot fit the protocol");
        assert!(matches!(err, PipelineError::SplitTooShort { .. }), "unexpected error: {err}");
        assert!(err.to_string().contains("horizon too short"), "{err}");
    }

    #[test]
    fn trial_rejects_warmup_past_horizon() {
        let cfg = SimConfig::small(31);
        let err = run_proactive_trial(cfg, &crate::predictor::PredictorConfig::default(), 600)
            .expect_err("warm-up of 600 weeks cannot fit a 31-line small world");
        assert!(matches!(err, PipelineError::WarmupExceedsHorizon { .. }), "{err}");
    }
}
