//! The ticket predictor (Sec. 4): top-N-AP feature selection + BStump +
//! logistic calibration + budgeted ranking.
//!
//! Fitting follows the paper's recipe exactly:
//!
//! 1. encode the training and selection-evaluation windows into the Table-3
//!    base (history + customer) features;
//! 2. score every base feature by training a *single-feature* model on the
//!    training window and computing its **AP(N)** on the evaluation window,
//!    with `N` equal to the operational budget (Sec. 4.3);
//! 3. do the same for every derived quadratic and pairwise-product feature
//!    (Fig. 4's three histograms), keeping the best of each class;
//! 4. train the full BStump on the union of the selected columns;
//! 5. calibrate the margins into probabilities with Platt scaling on the
//!    evaluation window.
//!
//! Ranking the population is then a single pass: encode, assemble the
//! selected columns, sum stump scores, calibrate, sort.

use crate::error::PipelineError;
use crate::pipeline::{ExperimentData, SplitSpec};
use nevermind_features::encode::{
    all_products, all_quadratics, derive, EncodedDataset, EncoderConfig, RowKey,
};
use nevermind_features::registry::{DerivedFeature, FeatureClass};
use nevermind_ml::boost::{BStump, BoostConfig};
use nevermind_ml::calibrate::PlattScale;
use nevermind_ml::data::Dataset;
use nevermind_ml::metrics;
use nevermind_ml::rank::{top_k, top_k_sharded};
use nevermind_ml::select::{score_features, FeatureScore, SelectConfig, SelectionCriterion};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Ticket-predictor hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// ATDS weekly capacity as a fraction of the ranked population. The
    /// paper's 20K against millions of lines is ≈0.5–1%; the default keeps
    /// that ratio at simulated scale.
    pub budget_fraction: f64,
    /// Boosting iterations for the final model (paper: 800 via CV).
    pub iterations: usize,
    /// Boosting iterations for each single-feature selection model.
    pub selection_iterations: usize,
    /// How many base (history + customer) features to keep.
    pub n_base: usize,
    /// How many quadratic features to keep.
    pub n_quadratic: usize,
    /// How many product features to keep.
    pub n_product: usize,
    /// Whether to use derived features at all (Fig. 7 ablates this).
    pub use_derived: bool,
    /// Row cap per window during feature selection (selection runs on a
    /// deterministic subsample for tractability over ~1.5k product
    /// features).
    pub selection_row_cap: usize,
    /// Stump threshold-search bins.
    pub n_bins: usize,
    /// Feature-encoder settings.
    pub encoder: EncoderConfig,
    /// Seed for the selection subsample.
    pub seed: u64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            budget_fraction: 0.01,
            iterations: 300,
            selection_iterations: 8,
            n_base: 40,
            n_quadratic: 25,
            n_product: 25,
            use_derived: true,
            selection_row_cap: 25_000,
            n_bins: 64,
            encoder: EncoderConfig::default(),
            seed: 0xBEEF,
        }
    }
}

impl PredictorConfig {
    /// The absolute budget for a ranked population of `n` rows.
    pub fn budget(&self, n: usize) -> usize {
        ((n as f64) * self.budget_fraction).ceil().max(1.0) as usize
    }
}

/// One scored feature in the selection report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoredFeature {
    /// Feature name (encoder naming scheme).
    pub name: String,
    /// Table-3 class.
    pub class: FeatureClass,
    /// AP(N) of its single-feature model on the evaluation window.
    pub score: f64,
}

/// Everything the Fig. 4 histograms need, plus the final selection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionReport {
    /// Scores of every base (history + customer) feature.
    pub base: Vec<ScoredFeature>,
    /// Scores of every quadratic feature.
    pub quadratic: Vec<ScoredFeature>,
    /// Scores of every product feature.
    pub product: Vec<ScoredFeature>,
    /// Selected base column indices.
    pub selected_base: Vec<usize>,
    /// Selected derived features.
    pub selected_derived: Vec<DerivedFeature>,
    /// The `N` used inside AP(N) during selection.
    pub selection_budget: usize,
}

impl SelectionReport {
    /// Total number of selected features.
    pub fn n_selected(&self) -> usize {
        self.selected_base.len() + self.selected_derived.len()
    }
}

/// A ranked population with labels, ready for precision@K evaluation.
#[derive(Debug, Clone)]
pub struct RankedPredictions {
    /// Row provenance.
    pub rows: Vec<RowKey>,
    /// Calibrated ticket probabilities.
    pub probabilities: Vec<f64>,
    /// Ground-truth labels (ticket within the horizon).
    pub labels: Vec<bool>,
}

impl RankedPredictions {
    fn new(rows: Vec<RowKey>, probabilities: Vec<f64>, labels: Vec<bool>) -> Self {
        Self { rows, probabilities, labels }
    }

    /// Builds a ranking from raw scores (any monotone score works; they are
    /// stored in the `probabilities` field uncalibrated). Used by the model
    /// comparison to reuse the precision@K machinery for alternative models.
    pub fn from_scores(rows: Vec<RowKey>, scores: Vec<f64>, labels: Vec<bool>) -> Self {
        assert_eq!(rows.len(), scores.len(), "row/score mismatch");
        assert_eq!(rows.len(), labels.len(), "row/label mismatch");
        Self::new(rows, scores, labels)
    }

    /// Number of ranked rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the ranking is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The paper's "accuracy": precision within the top `n`.
    pub fn precision_at(&self, n: usize) -> f64 {
        metrics::precision_at_k(&self.probabilities, &self.labels, n)
    }

    /// True predictions within the top `n`.
    pub fn hits_at(&self, n: usize) -> usize {
        metrics::hits_at_k(&self.probabilities, &self.labels, n)
    }

    /// Precision at each cutoff (Fig. 6 / Fig. 7 curves).
    pub fn precision_curve(&self, cutoffs: &[usize]) -> Vec<(usize, f64)> {
        metrics::precision_curve(&self.probabilities, &self.labels, cutoffs)
    }

    /// The top `n` rows, best first, with probability and label.
    ///
    /// Uses partial selection (`O(rows + n log n)`) rather than a full sort:
    /// the weekly operational loop asks for ~1% of the population. The
    /// result is identical to taking the first `n` of a stable descending
    /// argsort — ties keep row order, `NaN` sorts last.
    pub fn top_rows(&self, n: usize) -> Vec<(RowKey, f64, bool)> {
        top_k(&self.probabilities, n)
            .into_iter()
            .map(|i| (self.rows[i], self.probabilities[i], self.labels[i]))
            .collect()
    }

    /// [`Self::top_rows`] with the selection fanned out over `shards`
    /// scoped threads (merge-based top-`B`). Bit-identical to the serial
    /// result for any shard count — see `nevermind_ml::rank::top_k_sharded`.
    pub fn top_rows_sharded(&self, n: usize, shards: usize) -> Vec<(RowKey, f64, bool)> {
        top_k_sharded(&self.probabilities, n, shards)
            .into_iter()
            .map(|i| (self.rows[i], self.probabilities[i], self.labels[i]))
            .collect()
    }

    /// Rows in the top `n` whose label is `false` — the paper's "incorrect
    /// predictions" that Sec. 5.2 dissects.
    pub fn incorrect_in_top(&self, n: usize) -> Vec<RowKey> {
        self.top_rows(n).into_iter().filter(|(_, _, y)| !y).map(|(k, _, _)| k).collect()
    }

    /// Rows in the top `n` whose label is `true`.
    pub fn correct_in_top(&self, n: usize) -> Vec<RowKey> {
        self.top_rows(n).into_iter().filter(|(_, _, y)| *y).map(|(k, _, _)| k).collect()
    }
}

/// One feature's additive contribution to a prediction's margin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureContribution {
    /// Feature name (encoder naming scheme).
    pub name: String,
    /// The feature's value on this row (`NaN` = missing, zero contribution).
    pub value: f64,
    /// Sum of this feature's stump scores (positive pushes toward a
    /// predicted ticket).
    pub contribution: f64,
}

/// The fitted ticket predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TicketPredictor {
    model: BStump,
    calibration: PlattScale,
    selected_base: Vec<usize>,
    selected_derived: Vec<DerivedFeature>,
    encoder_config: EncoderConfig,
}

impl TicketPredictor {
    /// Fits the full paper pipeline on the given split.
    ///
    /// # Errors
    /// Returns [`PipelineError::Calibration`] when the selection-eval
    /// window yields no calibratable margins (empty window or a non-finite
    /// margin from corrupted measurements).
    pub fn fit(
        data: &ExperimentData,
        split: &SplitSpec,
        config: &PredictorConfig,
    ) -> Result<(Self, SelectionReport), PipelineError> {
        let _fit_span = nevermind_obs::span!("predictor/fit");
        let encoder = data.encoder(config.encoder.clone());
        let (base_train, base_eval) = {
            let _s = nevermind_obs::span!("encode_windows");
            (encoder.encode(&split.train_days), encoder.encode(&split.selection_eval_days))
        };

        // Deterministic selection subsamples. The *training* subsample keeps
        // every positive (they are <1% and single-feature models need them);
        // the *evaluation* subsample must stay uniform — AP(N) is a ranking
        // metric and enriching positives would distort exactly the head of
        // the ranking the criterion is supposed to measure.
        let train_sub =
            subsample_keep_positives(&base_train, config.selection_row_cap, config.seed);
        let eval_sub = subsample_uniform(&base_eval, config.selection_row_cap, config.seed ^ 1);
        let selection_budget = config.budget(eval_sub.data.len());

        let select_cfg = SelectConfig {
            model_iterations: config.selection_iterations,
            n_bins: config.n_bins,
            threads: 0,
        };
        let criterion = SelectionCriterion::TopNAp { n: selection_budget };

        // --- base features ---
        let base_scores = {
            let _s = nevermind_obs::span!("select_base");
            score_features(&train_sub.data, &eval_sub.data, criterion, &select_cfg)
        };
        let selected_base = top_scores(&base_scores, config.n_base);

        // --- derived features ---
        let mut report_quadratic = Vec::new();
        let mut report_product = Vec::new();
        let mut selected_derived = Vec::new();
        if config.use_derived {
            let quads = all_quadratics(&base_train);
            let quad_scores = {
                let _s = nevermind_obs::span!("select_quadratic");
                score_derived(&train_sub, &eval_sub, &quads, criterion, &select_cfg)
            };
            for (f, s) in quads.iter().zip(&quad_scores) {
                report_quadratic.push(scored(&base_train, *f, *s));
            }
            selected_derived.extend(top_derived(&quads, &quad_scores, config.n_quadratic));

            let prods = all_products(&base_train);
            let prod_scores = {
                let _s = nevermind_obs::span!("select_product");
                score_derived(&train_sub, &eval_sub, &prods, criterion, &select_cfg)
            };
            for (f, s) in prods.iter().zip(&prod_scores) {
                report_product.push(scored(&base_train, *f, *s));
            }
            selected_derived.extend(top_derived(&prods, &prod_scores, config.n_product));
        }

        let report = SelectionReport {
            base: base_scores
                .iter()
                .map(|fs| ScoredFeature {
                    name: base_train.data.x.meta()[fs.feature].name.clone(),
                    class: base_train.classes[fs.feature],
                    score: fs.score,
                })
                .collect(),
            quadratic: report_quadratic,
            product: report_product,
            selected_base: selected_base.clone(),
            selected_derived: selected_derived.clone(),
            selection_budget,
        };

        // --- final model ---
        let train_assembled = assemble_with(&base_train, &selected_base, &selected_derived);
        let boost_cfg = BoostConfig {
            iterations: config.iterations,
            n_bins: config.n_bins,
            smoothing: None,
            parallel: true,
        };
        let model = {
            let _s = nevermind_obs::span!("boost_final");
            BStump::fit(&train_assembled, &boost_cfg)
        };

        // Calibrate on the (unsubsampled) evaluation window.
        let calibration = {
            let _s = nevermind_obs::span!("calibrate");
            let eval_assembled = assemble_with(&base_eval, &selected_base, &selected_derived);
            let eval_margins = model.margins(&eval_assembled.x);
            PlattScale::fit(&eval_margins, &eval_assembled.y)?
        };
        nevermind_obs::counter_add!(
            "predictor/features_selected",
            selected_base.len() + selected_derived.len()
        );

        let predictor = Self {
            model,
            calibration,
            selected_base,
            selected_derived,
            encoder_config: config.encoder.clone(),
        };
        Ok((predictor, report))
    }

    /// Selects the boosting iteration count by k-fold cross-validation on
    /// the training window, scored by AP(budget) — the paper's procedure
    /// for fixing `T` ("the number of iterations is set to 800 based on
    /// cross-validation", footnote 4). Returns the winning candidate;
    /// pass it back through `config.iterations` before [`Self::fit`].
    ///
    /// Feature selection is run once on the full candidate space first, so
    /// the CV sees the same feature set the final model will use.
    ///
    /// # Errors
    /// Returns [`PipelineError`] when the preparatory fit fails (see
    /// [`TicketPredictor::fit`]).
    pub fn select_iterations_cv(
        data: &ExperimentData,
        split: &SplitSpec,
        config: &PredictorConfig,
        candidates: &[usize],
        k_folds: usize,
    ) -> Result<usize, PipelineError> {
        let (predictor, _) =
            Self::fit(data, split, &PredictorConfig { iterations: 1, ..config.clone() })?;
        let encoder = data.encoder(config.encoder.clone());
        let base_train = encoder.encode(&split.train_days);
        let assembled = predictor.assemble(&base_train);
        let boost_cfg = BoostConfig {
            iterations: 0, // overridden inside select_iterations
            n_bins: config.n_bins,
            smoothing: None,
            parallel: true,
        };
        Ok(nevermind_ml::cv::select_iterations(
            &assembled,
            candidates,
            k_folds,
            config.budget_fraction,
            &boost_cfg,
            config.seed ^ 0xCF,
        ))
    }

    /// Fits with a fixed base-only feature set chosen by an arbitrary
    /// Table-4 criterion — the Fig. 6 comparison ("for each feature
    /// selection method, the top 50 features are selected ... and a
    /// classifier is constructed using these 50 features").
    ///
    /// # Errors
    /// Returns [`PipelineError::Calibration`] when the selection-eval
    /// window yields no calibratable margins.
    pub fn fit_base_only(
        data: &ExperimentData,
        split: &SplitSpec,
        config: &PredictorConfig,
        criterion: SelectionCriterion,
        top_k: usize,
    ) -> Result<Self, PipelineError> {
        let encoder = data.encoder(config.encoder.clone());
        let base_train = encoder.encode(&split.train_days);
        let base_eval = encoder.encode(&split.selection_eval_days);
        let train_sub =
            subsample_keep_positives(&base_train, config.selection_row_cap, config.seed);
        let eval_sub = subsample_uniform(&base_eval, config.selection_row_cap, config.seed ^ 1);

        let select_cfg = SelectConfig {
            model_iterations: config.selection_iterations,
            n_bins: config.n_bins,
            threads: 0,
        };
        let scores = score_features(&train_sub.data, &eval_sub.data, criterion, &select_cfg);
        let selected_base = top_scores(&scores, top_k);

        let train_assembled = assemble_with(&base_train, &selected_base, &[]);
        let boost_cfg = BoostConfig {
            iterations: config.iterations,
            n_bins: config.n_bins,
            smoothing: None,
            parallel: true,
        };
        let model = BStump::fit(&train_assembled, &boost_cfg);
        let eval_assembled = assemble_with(&base_eval, &selected_base, &[]);
        let margins = model.margins(&eval_assembled.x);
        let calibration = PlattScale::fit(&margins, &eval_assembled.y)?;
        Ok(Self {
            model,
            calibration,
            selected_base,
            selected_derived: Vec::new(),
            encoder_config: config.encoder.clone(),
        })
    }

    /// Projects a base-encoded dataset onto the selected feature space
    /// (selected base columns followed by materialized derived columns).
    pub fn assemble(&self, base: &EncodedDataset) -> Dataset {
        assemble_with(base, &self.selected_base, &self.selected_derived)
    }

    /// Encodes and ranks the whole population at the given Saturdays.
    pub fn rank(&self, data: &ExperimentData, days: &[u32]) -> RankedPredictions {
        let encoder = data.encoder(self.encoder_config.clone());
        let base = encoder.encode(days);
        self.rank_encoded(&base)
    }

    /// Ranks an already base-encoded dataset.
    pub fn rank_encoded(&self, base: &EncodedDataset) -> RankedPredictions {
        let _span = nevermind_obs::span!("predictor/rank");
        nevermind_obs::counter_add!("predictor/rows_ranked", base.rows.len());
        let assembled = self.assemble(base);
        let margins = self.model.margins(&assembled.x);
        let probabilities = self.calibration.probabilities(&margins);
        RankedPredictions::new(base.rows.clone(), probabilities, assembled.y)
    }

    /// Explains one ranked row: per-feature margin contributions, strongest
    /// first. The BStump margin is a plain sum of stump scores, so grouping
    /// the scores by feature gives an exact additive decomposition — the
    /// operator-facing answer to "why is this line in the top 20K?".
    ///
    /// `assembled_row` must come from [`Self::assemble`]'s feature space.
    pub fn explain(&self, assembled_row: &[f32]) -> Vec<FeatureContribution> {
        let names = self.assembled_feature_names();
        let mut by_feature: Vec<f64> = vec![0.0; names.len()];
        for stump in self.model.stumps() {
            by_feature[stump.feature] += stump.score(assembled_row);
        }
        let mut out: Vec<FeatureContribution> = names
            .into_iter()
            .zip(by_feature)
            .zip(assembled_row)
            .filter(|((_, c), _)| *c != 0.0)
            .map(|((name, contribution), &value)| FeatureContribution {
                name,
                value: f64::from(value),
                contribution,
            })
            .collect();
        out.sort_by(|a, b| b.contribution.abs().total_cmp(&a.contribution.abs()));
        out
    }

    /// Names of the assembled feature space (selected base columns followed
    /// by derived columns), in column order.
    pub fn assembled_feature_names(&self) -> Vec<String> {
        let (meta, _) = nevermind_features::BaseEncoder::base_meta();
        let mut names: Vec<String> =
            self.selected_base.iter().map(|&c| meta[c].name.clone()).collect();
        for d in &self.selected_derived {
            names.push(match d {
                DerivedFeature::Quadratic { col } => format!("quad:{}^2", meta[*col].name),
                DerivedFeature::Product { a, b } => {
                    format!("prod:{}*{}", meta[*a].name, meta[*b].name)
                }
            });
        }
        names
    }

    /// The trained boosting model.
    pub fn model(&self) -> &BStump {
        &self.model
    }

    /// The calibration map.
    pub fn calibration(&self) -> &PlattScale {
        &self.calibration
    }

    /// Selected base column indices (into the encoder's base space).
    pub fn selected_base(&self) -> &[usize] {
        &self.selected_base
    }

    /// Selected derived features.
    pub fn selected_derived(&self) -> &[DerivedFeature] {
        &self.selected_derived
    }

    /// The encoder configuration the predictor was fitted with (the weekly
    /// scoring engine reuses it for its incremental encoder).
    pub fn encoder_config(&self) -> &EncoderConfig {
        &self.encoder_config
    }
}

/// Projects a base-encoded dataset onto a feature set: selected base
/// columns followed by materialized derived columns.
fn assemble_with(
    base: &EncodedDataset,
    selected_base: &[usize],
    selected_derived: &[DerivedFeature],
) -> Dataset {
    let mut ds = base.select_columns(selected_base);
    if !selected_derived.is_empty() {
        let derived = derive(base, selected_derived);
        ds = ds.hconcat(&derived);
    }
    ds.data
}

/// Deterministic row subsample that keeps every positive example (they are
/// rare and single-feature *training* needs them) and fills the remainder
/// with a seeded shuffle of the negatives.
fn subsample_keep_positives(ds: &EncodedDataset, cap: usize, seed: u64) -> EncodedDataset {
    if ds.data.len() <= cap {
        return ds.clone();
    }
    let positives: Vec<usize> = (0..ds.data.len()).filter(|&i| ds.data.y[i]).collect();
    let mut negatives: Vec<usize> = (0..ds.data.len()).filter(|&i| !ds.data.y[i]).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    negatives.shuffle(&mut rng);
    let room = cap.saturating_sub(positives.len());
    let mut rows: Vec<usize> = positives;
    rows.extend(negatives.into_iter().take(room));
    rows.sort_unstable();
    take_rows(ds, rows)
}

/// Deterministic *uniform* row subsample, preserving the natural class
/// balance — used for the selection-evaluation window, where AP(N) must be
/// computed under real prevalence.
fn subsample_uniform(ds: &EncodedDataset, cap: usize, seed: u64) -> EncodedDataset {
    if ds.data.len() <= cap {
        return ds.clone();
    }
    let mut rows: Vec<usize> = (0..ds.data.len()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rows.shuffle(&mut rng);
    rows.truncate(cap);
    rows.sort_unstable();
    take_rows(ds, rows)
}

fn take_rows(ds: &EncodedDataset, rows: Vec<usize>) -> EncodedDataset {
    EncodedDataset {
        data: ds.data.select_rows(&rows),
        rows: rows.iter().map(|&r| ds.rows[r]).collect(),
        classes: ds.classes.clone(),
    }
}

/// Top-`k` feature indices by score (positive scores only).
fn top_scores(scores: &[FeatureScore], k: usize) -> Vec<usize> {
    let mut ranked: Vec<&FeatureScore> = scores.iter().filter(|s| s.score > 0.0).collect();
    ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.feature.cmp(&b.feature)));
    ranked.into_iter().take(k).map(|s| s.feature).collect()
}

fn top_derived(feats: &[DerivedFeature], scores: &[f64], k: usize) -> Vec<DerivedFeature> {
    let mut idx: Vec<usize> = (0..feats.len()).filter(|&i| scores[i] > 0.0).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx.into_iter().take(k).map(|i| feats[i]).collect()
}

fn scored(base: &EncodedDataset, f: DerivedFeature, score: f64) -> ScoredFeature {
    let name = match f {
        DerivedFeature::Quadratic { col } => {
            format!("quad:{}^2", base.data.x.meta()[col].name)
        }
        DerivedFeature::Product { a, b } => {
            format!("prod:{}*{}", base.data.x.meta()[a].name, base.data.x.meta()[b].name)
        }
    };
    ScoredFeature { name, class: f.class(), score }
}

/// Scores derived features in bounded-memory chunks: materialize ≤256
/// columns at a time on the selection subsamples, score them, drop them.
fn score_derived(
    train_sub: &EncodedDataset,
    eval_sub: &EncodedDataset,
    feats: &[DerivedFeature],
    criterion: SelectionCriterion,
    select_cfg: &SelectConfig,
) -> Vec<f64> {
    const CHUNK: usize = 256;
    let mut scores = Vec::with_capacity(feats.len());
    for chunk in feats.chunks(CHUNK) {
        let train_d = derive(train_sub, chunk);
        let eval_d = derive(eval_sub, chunk);
        let chunk_scores = score_features(&train_d.data, &eval_d.data, criterion, select_cfg);
        scores.extend(chunk_scores.into_iter().map(|s| s.score));
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use nevermind_dslsim::SimConfig;

    fn quick_config() -> PredictorConfig {
        PredictorConfig {
            iterations: 60,
            selection_iterations: 4,
            n_base: 20,
            n_quadratic: 8,
            n_product: 8,
            selection_row_cap: 6_000,
            ..PredictorConfig::default()
        }
    }

    fn fitted() -> (ExperimentData, SplitSpec, TicketPredictor, SelectionReport) {
        let data = ExperimentData::simulate(SimConfig::small(77));
        let split = SplitSpec::paper_like(&data).expect("horizon fits the protocol");
        let cfg = quick_config();
        let (p, r) = TicketPredictor::fit(&data, &split, &cfg).expect("well-formed training data");
        (data, split, p, r)
    }

    #[test]
    fn fit_selects_features_and_beats_base_rate() {
        let (data, split, predictor, report) = fitted();
        assert!(report.n_selected() > 10, "selected {}", report.n_selected());
        assert!(!report.base.is_empty());
        assert!(!report.quadratic.is_empty());
        assert!(!report.product.is_empty());

        let ranking = predictor.rank(&data, &split.test_days);
        let budget = quick_config().budget(ranking.len());
        let p_at_budget = ranking.precision_at(budget);
        let base_rate =
            ranking.labels.iter().filter(|&&y| y).count() as f64 / ranking.labels.len() as f64;
        assert!(
            p_at_budget > 3.0 * base_rate,
            "precision@{budget} = {p_at_budget}, base rate {base_rate}"
        );
    }

    #[test]
    fn ranking_is_deterministic() {
        let (data, split, predictor, _) = fitted();
        let a = predictor.rank(&data, &split.test_days);
        let b = predictor.rank(&data, &split.test_days);
        assert_eq!(a.probabilities, b.probabilities);
        assert_eq!(a.top_rows(10), b.top_rows(10));
    }

    #[test]
    fn sharded_top_rows_match_serial() {
        let (data, split, predictor, _) = fitted();
        let ranking = predictor.rank(&data, &split.test_days);
        let serial = ranking.top_rows(50);
        for shards in [1usize, 2, 7, 16] {
            assert_eq!(serial, ranking.top_rows_sharded(50, shards), "{shards} shards");
        }
    }

    #[test]
    fn probabilities_are_calibrated_probabilities() {
        let (data, split, predictor, _) = fitted();
        let ranking = predictor.rank(&data, &split.test_days);
        assert!(ranking.probabilities.iter().all(|p| (0.0..=1.0).contains(p)));
        // Mean predicted probability should be within a factor of ~3 of the
        // realized rate (calibration was on an earlier window).
        let mean_p: f64 =
            ranking.probabilities.iter().sum::<f64>() / ranking.probabilities.len() as f64;
        let rate =
            ranking.labels.iter().filter(|&&y| y).count() as f64 / ranking.labels.len() as f64;
        assert!(mean_p < rate * 4.0 + 0.02 && mean_p > rate / 5.0, "mean {mean_p} vs rate {rate}");
    }

    #[test]
    fn incorrect_and_correct_partition_the_top() {
        let (data, split, predictor, _) = fitted();
        let ranking = predictor.rank(&data, &split.test_days);
        let n = 100;
        let inc = ranking.incorrect_in_top(n).len();
        let cor = ranking.correct_in_top(n).len();
        assert_eq!(inc + cor, n.min(ranking.len()));
        assert_eq!(cor, ranking.hits_at(n));
    }

    #[test]
    fn serde_roundtrip_preserves_ranking() {
        let (data, split, predictor, _) = fitted();
        let json = serde_json::to_string(&predictor).expect("serialize");
        let back: TicketPredictor = serde_json::from_str(&json).expect("deserialize");
        let a = predictor.rank(&data, &split.test_days);
        let b = back.rank(&data, &split.test_days);
        assert_eq!(a.probabilities, b.probabilities);
    }

    #[test]
    fn budget_math() {
        let cfg = PredictorConfig { budget_fraction: 0.01, ..PredictorConfig::default() };
        assert_eq!(cfg.budget(20_000), 200);
        assert_eq!(cfg.budget(50), 1);
    }

    #[test]
    fn base_only_fit_works_for_all_criteria() {
        let data = ExperimentData::simulate(SimConfig::small(78));
        let split = SplitSpec::paper_like(&data).expect("horizon fits the protocol");
        let mut cfg = quick_config();
        cfg.iterations = 30;
        for criterion in [
            SelectionCriterion::TopNAp { n: 100 },
            SelectionCriterion::Auc,
            SelectionCriterion::AveragePrecision,
            SelectionCriterion::Pca { components: 5 },
            SelectionCriterion::GainRatio { bins: 16 },
        ] {
            let p = TicketPredictor::fit_base_only(&data, &split, &cfg, criterion, 15)
                .expect("well-formed training data");
            let ranking = p.rank(&data, &split.test_days);
            assert_eq!(ranking.len(), data.config.n_lines * split.test_days.len());
            assert_eq!(p.selected_base().len(), 15);
            assert!(p.selected_derived().is_empty());
        }
    }

    #[test]
    fn explanations_decompose_the_margin_exactly() {
        let (data, split, predictor, _) = fitted();
        let encoder = data.encoder(nevermind_features::encode::EncoderConfig::default());
        let base = encoder.encode(&[split.test_days[0]]);
        let assembled = predictor.assemble(&base);
        for r in (0..assembled.len()).step_by(assembled.len() / 10 + 1) {
            let row = assembled.x.row(r);
            let contributions = predictor.explain(row);
            let total: f64 = contributions.iter().map(|c| c.contribution).sum();
            let margin = predictor.model().margin(row);
            assert!((total - margin).abs() < 1e-9, "row {r}: {total} vs {margin}");
            // Sorted by |contribution| descending.
            for w in contributions.windows(2) {
                assert!(w[0].contribution.abs() >= w[1].contribution.abs());
            }
        }
        // Feature names align with the assembled space.
        assert_eq!(predictor.assembled_feature_names().len(), assembled.x.n_cols());
    }

    #[test]
    fn cv_iteration_selection_prefers_nontrivial_depth() {
        let data = ExperimentData::simulate(SimConfig::small(80));
        let split = SplitSpec::paper_like(&data).expect("horizon fits the protocol");
        let mut cfg = quick_config();
        cfg.iterations = 40;
        let best = TicketPredictor::select_iterations_cv(&data, &split, &cfg, &[1, 60], 3)
            .expect("well-formed training data");
        // A single-stump model ranks by one feature only and cannot cover
        // the multi-metric signal; CV must pick the deeper candidate.
        assert_eq!(best, 60);
    }

    #[test]
    fn subsample_keeps_positives() {
        let data = ExperimentData::simulate(SimConfig::small(79));
        let split = SplitSpec::paper_like(&data).expect("horizon fits the protocol");
        let encoder = data.encoder(EncoderConfig::default());
        let base = encoder.encode(&split.train_days);
        let n_pos = base.data.n_positive();
        let sub = subsample_keep_positives(&base, n_pos + 50, 3);
        assert_eq!(sub.data.len(), n_pos + 50);
        assert_eq!(sub.data.n_positive(), n_pos, "all positives retained");
    }
}
