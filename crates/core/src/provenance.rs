//! Decision-provenance emission for the weekly proactive loop.
//!
//! Every ranked Saturday, [`emit_week_trace`] writes the events that let
//! `nevermind explain` reconstruct a line's causal chain afterwards:
//!
//! * one `dispatch_week` event with the cutoff decision (population,
//!   budget, the last dispatched probability);
//! * per traced line: a `score` event (ensemble margin), up to
//!   [`TOP_STUMPS`] `stump` events (feature id/name, value, threshold,
//!   vote — the stump-level margin contributions), a `calibrate` event
//!   (emitted by [`PlattScale::probability_traced`]) and a `rank` event
//!   (rank position, calibrated probability, dispatched or not).
//!
//! Traced lines follow the sampling policy in [`nevermind_obs::trace`]:
//! the dispatched head is always traced, plus a deterministic
//! day-seeded reservoir of non-dispatched lines.
//!
//! Everything here *reads* the scoring path — the narrow matrix the week's
//! margins were computed from, retained by
//! [`WeeklyScorer::traced_assembled_row`] — so rankings and dispatches are
//! bit-identical with tracing on or off, and the reconstructed margin is
//! bit-identical to the ranked one (pinned by the root `trace` tests).
//!
//! [`PlattScale::probability_traced`]: nevermind_ml::calibrate::PlattScale::probability_traced

use crate::predictor::{RankedPredictions, TicketPredictor};
use crate::scoring::WeeklyScorer;
use nevermind_features::encode::RowKey;
use nevermind_obs::trace::{self, TraceEvent};

/// Stump-level contributions traced per line, strongest first.
pub const TOP_STUMPS: usize = 5;

/// Salt mixed into the day-seeded reservoir draw so the trace sample is
/// decorrelated from every simulator RNG stream.
const RESERVOIR_SALT: u64 = 0x7472_6163_655F_7631; // "trace_v1"

/// Emits the week's provenance events for a just-computed ranking. No-op
/// (one relaxed atomic load) while tracing is disabled; never perturbs the
/// ranking it describes.
pub fn emit_week_trace(
    scorer: &WeeklyScorer<'_>,
    predictor: &TicketPredictor,
    ranking: &RankedPredictions,
    budget: usize,
    day: u32,
) {
    if !trace::enabled() || ranking.is_empty() {
        return;
    }
    let top = ranking.top_rows(budget);
    let mut week = TraceEvent::new("dispatch_week")
        .day(day)
        .attr("population", ranking.len())
        .attr("budget", budget)
        .attr("dispatched", top.len());
    if let Some(&(_, cutoff, _)) = top.last() {
        week = week.attr("cutoff_probability", cutoff);
    }
    trace::global().emit(week);

    // The dispatched head is always traced, ...
    let mut traced: Vec<(usize, usize, bool)> = Vec::new(); // (row, rank, dispatched)
    for (pos, (key, _, _)) in top.iter().enumerate() {
        if let Some(row) = row_index(&ranking.rows, key) {
            traced.push((row, pos + 1, true));
        }
    }
    // ... plus a deterministic reservoir of the rest, so the export can
    // also explain lines the policy chose *not* to dispatch.
    let k = trace::global().policy().reservoir_per_week;
    for row in trace::sample_indices(u64::from(day) ^ RESERVOIR_SALT, ranking.len(), k) {
        if traced.iter().any(|&(r, _, _)| r == row) {
            continue;
        }
        let p = ranking.probabilities[row];
        let rank = 1 + ranking.probabilities.iter().filter(|&&q| q > p).count();
        traced.push((row, rank, false));
    }

    let names = predictor.assembled_feature_names();
    for &(row, rank, dispatched) in &traced {
        let Some(assembled) = scorer.traced_assembled_row(row) else {
            continue;
        };
        let key = ranking.rows[row];
        emit_scored_line(
            predictor,
            &names,
            &assembled,
            (key.line.0, day),
            (rank, ranking.probabilities[row], dispatched),
        );
    }
}

/// Emits one line's `score` → `stump`* → `calibrate` → `rank` provenance
/// chain from its assembled feature row. `key` is `(line, day)`;
/// `outcome` is `(rank, ranked probability, dispatched)`. Shared by the
/// weekly loop ([`emit_week_trace`]) and the CLI's batch `rank` path.
pub fn emit_scored_line(
    predictor: &TicketPredictor,
    names: &[String],
    assembled: &[f32],
    key: (u32, u32),
    outcome: (usize, f64, bool),
) {
    if !trace::enabled() {
        return;
    }
    let (line, day) = key;
    let (rank, ranked_probability, dispatched) = outcome;
    let margin = predictor.model().margin(assembled);
    trace::global().emit(
        TraceEvent::new("score")
            .line(line)
            .day(day)
            .attr("margin", margin)
            .attr("stumps", predictor.model().stumps().len()),
    );

    // Stump-level contributions: every stump that voted (NaN features
    // abstain with vote 0), strongest |vote| first, index-stable ties.
    let stumps = predictor.model().stumps();
    let mut votes: Vec<(usize, f64)> = stumps
        .iter()
        .enumerate()
        .map(|(i, s)| (i, s.score(assembled)))
        .filter(|&(_, v)| v != 0.0)
        .collect();
    votes.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then(a.0.cmp(&b.0)));
    for (order, &(si, vote)) in votes.iter().take(TOP_STUMPS).enumerate() {
        let stump = &stumps[si];
        let name = names.get(stump.feature).map_or("?", String::as_str);
        let value = assembled.get(stump.feature).copied().unwrap_or(f32::NAN);
        trace::global().emit(
            TraceEvent::new("stump")
                .line(line)
                .day(day)
                .attr("order", order)
                .attr("feature", stump.feature)
                .attr("name", name)
                .attr("value", value)
                .attr("threshold", stump.threshold)
                .attr("vote", vote),
        );
    }

    // The calibration step emits its own "calibrate" event; its output is
    // bit-identical to the ranked probability (same margin, same sigmoid).
    let _ = predictor.calibration().probability_traced(margin, line, day);
    trace::global().emit(
        TraceEvent::new("rank")
            .line(line)
            .day(day)
            .attr("rank", rank)
            .attr("probability", ranked_probability)
            .attr("dispatched", dispatched),
    );
}

/// Index of `key` in `rows`: binary search over the encoder's
/// line-ordered layout, with a linear fallback so a different layout
/// degrades to O(n) rather than to a wrong answer.
fn row_index(rows: &[RowKey], key: &RowKey) -> Option<usize> {
    match rows.binary_search_by(|r| r.line.cmp(&key.line).then(r.day.cmp(&key.day))) {
        Ok(i) => Some(i),
        Err(_) => rows.iter().position(|r| r == key),
    }
}
