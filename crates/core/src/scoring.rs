//! The incremental weekly scoring engine behind the operational loop.
//!
//! Every Saturday the proactive policy re-ranks the entire line population
//! with the (fixed, already-trained) ticket predictor and dispatches the
//! top-`B`. Done naively — clone the accumulated logs, rebuild the
//! encoder's indexes, walk every stump for every row, fully sort the
//! population — the weekly cost grows with elapsed time and is dominated by
//! work whose result never changes.
//!
//! [`WeeklyScorer`] glues together the incremental pieces:
//!
//! * [`IncrementalEncoder`] — per-line rolling state fed only the *new*
//!   log events each week, borrowed straight from the world's output
//!   (cursors remember how far previous weeks got; nothing is cloned);
//! * [`FeatureStore`] — the engine's single per-week materialization: the
//!   encoder writes the week's tracked base columns into the store's
//!   lane-major frame once, and every downstream reader — stump scoring,
//!   telemetry PSI binning, provenance re-expansion — borrows lane slices
//!   from that same frame instead of keeping its own copy;
//! * [`BatchScorer`] — the predictor's stump ensemble compiled once into
//!   per-stump bin→score lookup tables, evaluated straight off the store's
//!   lanes via [`BatchScorer::margins_gather_parallel`] (derived features
//!   computed on the fly by the same `f32` arithmetic as the batch
//!   `derive` pass), bit-identical to the serial per-row path;
//! * partial top-`B` selection — [`RankedPredictions::top_rows`] selects
//!   the budgeted head without sorting the whole population.
//!
//! Each piece is individually bit-compatible with its batch counterpart, so
//! a [`WeeklyScorer`] ranking is exactly what [`TicketPredictor::rank`]
//! would produce over the same logs — pinned by the tests below.
//!
//! The store also makes the weekly loop checkpointable:
//! [`WeeklyScorer::preload_frame`] queues frames imported from a
//! `nevermind-store/v1` document, and [`WeeklyScorer::rank_week`] adopts a
//! queued frame in place of encoding when the days match — reproducing the
//! uninterrupted run's rankings byte-for-byte (the frame carries exactly
//! the values and labels the encoder would have produced).

use crate::predictor::{RankedPredictions, TicketPredictor};
use nevermind_dslsim::topology::Line;
use nevermind_dslsim::{LineId, LineTest, Ticket};
use nevermind_features::encode::RowKey;
use nevermind_features::{DerivedFeature, FeatureStore, IncrementalEncoder, Retention, WeekFrame};
use nevermind_ml::score::BatchScorer;
use std::collections::VecDeque;

/// Where one of the ensemble's used features comes from — the gather plan
/// that lets [`WeeklyScorer::rank_week`] score straight off the store's
/// lanes without materialising the assembled feature space.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// A selected base column, verbatim.
    Base(usize),
    /// `row[c] * row[c]` over base columns, exactly as `derive` computes it.
    Quadratic(usize),
    /// `row[a] * row[b]` over base columns, exactly as `derive` computes it.
    Product(usize, usize),
}

/// Streaming population ranker for the weekly proactive loop.
pub struct WeeklyScorer<'a> {
    predictor: &'a TicketPredictor,
    lines: &'a [Line],
    encoder: IncrementalEncoder<'a>,
    scorer: BatchScorer,
    /// Per used-feature slot, in *base-column* space — the invariant form
    /// the lane-space plan is rebuilt from when the tracked set changes.
    plan_base: Vec<Source>,
    /// Per used-feature slot: how to compute it from the store's lanes.
    plan: Vec<Source>,
    /// Assembled-space column index per used-feature slot — the key for
    /// re-expanding a scored row for explanation.
    used: Vec<usize>,
    /// Width of the predictor's assembled feature space.
    n_assembled: usize,
    /// The week-major columnar store every reader borrows from.
    store: FeatureStore,
    /// Checkpointed frames waiting to be adopted, ascending by day.
    pending: VecDeque<WeekFrame>,
    /// Shard-parallelism degree. `0` (the default) keeps the legacy
    /// behaviour: serial ingest/encode, auto-threaded margins, serial
    /// top-`B`. `>= 1` pins that many shards on every stage. Every stage
    /// is bit-identical across settings, so this is pure execution policy.
    shards: usize,
    meas_cursor: usize,
    ticket_cursor: usize,
}

impl<'a> WeeklyScorer<'a> {
    /// Builds the engine for a trained predictor over a fixed plant. The
    /// stump ensemble is compiled to lookup tables here, once, along with a
    /// gather plan mapping each used feature back to the base columns it is
    /// derived from; the store tracks exactly those columns (until
    /// [`WeeklyScorer::track_columns`] widens it) — the full assembled
    /// feature space is never materialised per week.
    pub fn new(predictor: &'a TicketPredictor, lines: &'a [Line]) -> Self {
        let scorer = BatchScorer::new(predictor.model());
        let n_base = predictor.selected_base().len();
        let plan_base: Vec<Source> = scorer
            .used_columns()
            .map(|c| {
                if c < n_base {
                    Source::Base(predictor.selected_base()[c])
                } else {
                    match predictor.selected_derived()[c - n_base] {
                        DerivedFeature::Quadratic { col } => Source::Quadratic(col),
                        DerivedFeature::Product { a, b } => Source::Product(a, b),
                    }
                }
            })
            .collect();
        // The distinct base columns the plan reads become the store's lanes.
        let mut needed: Vec<usize> = plan_base
            .iter()
            .flat_map(|src| match *src {
                Source::Base(c) | Source::Quadratic(c) => vec![c],
                Source::Product(a, b) => vec![a, b],
            })
            .collect();
        needed.sort_unstable();
        needed.dedup();
        let store = FeatureStore::new(lines.len(), &needed, predictor.encoder_config());
        let plan = Self::lane_plan(&plan_base, &store);
        let used: Vec<usize> = scorer.used_columns().collect();
        let n_assembled = n_base + predictor.selected_derived().len();
        Self {
            predictor,
            lines,
            encoder: IncrementalEncoder::new(lines, predictor.encoder_config().clone()),
            scorer,
            plan_base,
            plan,
            used,
            n_assembled,
            store,
            pending: VecDeque::new(),
            shards: 0,
            meas_cursor: 0,
            ticket_cursor: 0,
        }
    }

    /// Rewrites a base-column plan against the store's lane space.
    fn lane_plan(plan_base: &[Source], store: &FeatureStore) -> Vec<Source> {
        // lint:allow(no-panic-in-lib) -- the store's lanes are built as a superset of the plan's columns
        let lane = |c: usize| store.lane_of(c).expect("store tracks every plan column");
        plan_base
            .iter()
            .map(|src| match *src {
                Source::Base(c) => Source::Base(lane(c)),
                Source::Quadratic(c) => Source::Quadratic(lane(c)),
                Source::Product(a, b) => Source::Product(lane(a), lane(b)),
            })
            .collect()
    }

    /// Widens the store to additionally track the given base columns —
    /// how the model-health monitor gets its watched features into the
    /// weekly frame so it can bin them without a second encode. The lane
    /// set (and with it the store's exported bytes) is the sorted union of
    /// the ensemble's needs and these extras.
    ///
    /// # Panics
    /// Panics if a week has already been ranked or preloaded — the lane
    /// layout must be fixed before the first frame exists.
    pub fn track_columns(&mut self, cols: &[usize]) {
        assert!(
            self.store.frames().is_empty() && self.pending.is_empty(),
            "track columns before the first ranked or preloaded week"
        );
        let mut all: Vec<usize> = self.store.cols().to_vec();
        all.extend_from_slice(cols);
        all.sort_unstable();
        all.dedup();
        let retention = self.store.retention();
        self.store = FeatureStore::new(self.lines.len(), &all, self.predictor.encoder_config());
        self.store.set_retention(retention);
        self.plan = Self::lane_plan(&self.plan_base, &self.store);
    }

    /// Sets the store's frame retention ([`Retention::Latest`] by default;
    /// [`Retention::All`] keeps every ranked week for checkpoint export).
    pub fn set_retention(&mut self, retention: Retention) {
        self.store.set_retention(retention);
    }

    /// The engine's feature store (its lanes, frames, and export).
    pub fn store(&self) -> &FeatureStore {
        &self.store
    }

    /// Consumes the engine, yielding the store — how a checkpointing trial
    /// takes the retained frames without copying them.
    pub fn into_store(self) -> FeatureStore {
        self.store
    }

    /// Resident bytes of retained per-week feature state. Under
    /// [`Retention::Latest`] this is one frame regardless of tracing —
    /// the regression guard for the old traced-clone double retention.
    pub fn retained_bytes(&self) -> usize {
        self.store.resident_bytes()
            + self.pending.iter().map(WeekFrame::resident_bytes).sum::<usize>()
    }

    /// Queues a checkpointed frame for adoption: when
    /// [`WeeklyScorer::rank_week`] reaches the frame's day it uses the
    /// frame instead of encoding, skipping the encode cost and reproducing
    /// the checkpointed run's ranking bit-for-bit. Frames whose day the
    /// loop has already passed are silently discarded at rank time.
    ///
    /// # Panics
    /// Panics if the frame's shape does not match the store's lanes and
    /// population, its day is not a Saturday, or preloads are not ascending
    /// by day.
    pub fn preload_frame(&mut self, frame: WeekFrame) {
        assert_eq!(frame.n_lines(), self.lines.len(), "preloaded frame must cover the plant");
        assert!(
            frame.n_lines() == 0 || frame.n_lanes() == self.store.n_lanes(),
            "preloaded frame must carry one lane per tracked column"
        );
        assert_eq!(frame.day() % 7, 6, "preloaded frame day {} is not a Saturday", frame.day());
        if let Some(back) = self.pending.back() {
            assert!(
                frame.day() > back.day(),
                "preloaded frames must ascend by day ({} after {})",
                frame.day(),
                back.day()
            );
        }
        self.pending.push_back(frame);
    }

    /// Sets the shard-parallelism degree for every weekly stage (ingest,
    /// encode, margins, top-`B`). `0` restores the legacy policy (serial
    /// ingest/encode, auto-threaded margins). Rankings are bit-identical
    /// for every setting — shard count is an execution detail, pinned by
    /// the equivalence tests below.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards;
    }

    /// The configured shard-parallelism degree (`0` = legacy/auto).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Ingests whatever the logs have accrued since the last call. Pass the
    /// world's full (growing) log slices each week; internal cursors skip
    /// everything already seen, so only the fresh suffix is processed.
    ///
    /// # Panics
    /// Panics if a log slice shrank since the previous call.
    pub fn observe(&mut self, measurements: &[LineTest], tickets: &[Ticket]) {
        let _span = nevermind_obs::span!("weekly/observe");
        assert!(
            measurements.len() >= self.meas_cursor && tickets.len() >= self.ticket_cursor,
            "logs must only grow between observations"
        );
        self.encoder.ingest_sharded(
            &measurements[self.meas_cursor..],
            &tickets[self.ticket_cursor..],
            self.shards.max(1),
        );
        self.meas_cursor = measurements.len();
        self.ticket_cursor = tickets.len();
    }

    /// Encodes and ranks the whole population at the given Saturday, from
    /// rolling state. Equivalent to [`TicketPredictor::rank`] over the
    /// observed logs, at a per-week cost independent of elapsed time.
    ///
    /// The encoder writes the store's tracked lanes for the week (one
    /// frame; time-series z-score lanes are independent Welford streams,
    /// so the subset stays bit-identical per column) — or, if a
    /// checkpointed frame for this day was preloaded, that frame is
    /// adopted and the encode skipped. Margins are then gathered straight
    /// off the frame's lanes: base features read the lane (missing bits
    /// restore the encoder's `NaN`), derived features multiply lane values
    /// with the same `f32` arithmetic as the batch `derive` pass, so the
    /// margins stay bit-identical to the batch ranking. No per-week matrix
    /// is materialised, traced or not.
    pub fn rank_week(&mut self, day: u32) -> RankedPredictions {
        let _span = nevermind_obs::span!("weekly/rank_week");
        while self.pending.front().is_some_and(|f| f.day() < day) {
            self.pending.pop_front();
        }
        if self.pending.front().is_some_and(|f| f.day() == day) {
            // lint:allow(no-panic-in-lib) -- the front's presence was checked on the line above
            let frame = self.pending.pop_front().expect("front frame checked");
            nevermind_obs::counter_add!("weekly/frames_adopted", 1);
            self.store.adopt_frame(frame);
        } else {
            let ds =
                self.encoder.encode_day_cols_sharded(day, self.store.cols(), self.shards.max(1));
            self.store.ingest_frame(day, &ds);
        }
        let n_rows = self.lines.len();
        nevermind_obs::counter_add!("weekly/lines_scored", n_rows);
        // lint:allow(no-panic-in-lib) -- this week's frame was ingested or adopted just above
        let frame = self.store.latest().expect("frame for the ranked week");
        let plan = &self.plan;
        let fill = |slot: usize, rows: std::ops::Range<usize>, out: &mut [f32]| match plan[slot] {
            Source::Base(l) => frame.fill_restored(l, rows, out),
            Source::Quadratic(l) => {
                frame.fill_restored(l, rows, out);
                for o in out.iter_mut() {
                    *o = *o * *o;
                }
            }
            Source::Product(a, b) => {
                frame.fill_restored(a, rows.clone(), out);
                frame.mul_restored(b, rows, out);
            }
        };
        let margins = self.scorer.margins_gather_parallel(n_rows, self.shards, &fill);
        let probabilities = self.predictor.calibration().probabilities(&margins);
        let rows: Vec<RowKey> = self.lines.iter().map(|l| RowKey { line: l.id, day }).collect();
        RankedPredictions::from_scores(rows, probabilities, frame.labels_vec())
    }

    /// Re-expands row `row` of the most recent [`Self::rank_week`] frame
    /// into the predictor's assembled feature space, for
    /// [`TicketPredictor::explain`]. Columns the ensemble never reads come
    /// back as `NaN` (no stump touches them, so their contribution is
    /// exactly zero); used columns are regathered from the store's lanes by
    /// the very plan the week's margins were computed with, so the
    /// reconstructed margin is bit-identical to the ranking's. Returns
    /// `None` before the first ranked week or when `row` is out of range.
    pub fn traced_assembled_row(&self, row: usize) -> Option<Vec<f32>> {
        let frame = self.store.latest()?;
        if row >= frame.n_lines() {
            return None;
        }
        let mut assembled = vec![f32::NAN; self.n_assembled];
        for (slot, &col) in self.used.iter().enumerate() {
            assembled[col] = match self.plan[slot] {
                Source::Base(l) => frame.value(l, row),
                Source::Quadratic(l) => {
                    let v = frame.value(l, row);
                    v * v
                }
                Source::Product(a, b) => frame.value(a, row) * frame.value(b, row),
            };
        }
        Some(assembled)
    }

    /// The week's top-`budget` lines, best first — the dispatch list.
    pub fn top_lines(&mut self, day: u32, budget: usize) -> Vec<LineId> {
        let shards = self.shards.max(1);
        let top: Vec<LineId> = self
            .rank_week(day)
            .top_rows_sharded(budget, shards)
            .into_iter()
            .map(|(key, _, _)| key.line)
            .collect();
        nevermind_obs::counter_add!("weekly/lines_dispatched", top.len());
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{ExperimentData, SplitSpec};
    use crate::predictor::PredictorConfig;
    use nevermind_dslsim::SimConfig;

    #[test]
    fn weekly_engine_matches_batch_ranking() {
        let data = ExperimentData::simulate(SimConfig::small(88));
        let split = SplitSpec::paper_like(&data).expect("horizon fits the protocol");
        let cfg = PredictorConfig {
            iterations: 40,
            selection_iterations: 4,
            n_base: 15,
            n_quadratic: 6,
            n_product: 6,
            selection_row_cap: 5_000,
            ..PredictorConfig::default()
        };
        let (predictor, _) =
            TicketPredictor::fit(&data, &split, &cfg).expect("well-formed training data");

        let mut engine = WeeklyScorer::new(&predictor, &data.topology.lines);
        engine.observe(&data.output.measurements, &data.output.tickets);
        // A second engine running every stage shard-parallel — and tracking
        // extra telemetry lanes, which widens the store but must not perturb
        // the plan's values — must agree bit-for-bit with both the legacy
        // engine and the batch ranking.
        let mut sharded = WeeklyScorer::new(&predictor, &data.topology.lines);
        sharded.track_columns(&predictor.selected_base()[..4.min(predictor.selected_base().len())]);
        sharded.set_shards(7);
        sharded.observe(&data.output.measurements, &data.output.tickets);

        for &day in split.test_days.iter().take(2) {
            let batch = predictor.rank(&data, &[day]);
            let streaming = engine.rank_week(day);
            assert_eq!(batch.rows, streaming.rows, "day {day}: rows");
            assert_eq!(batch.labels, streaming.labels, "day {day}: labels");
            for (r, (a, b)) in batch.probabilities.iter().zip(&streaming.probabilities).enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "day {day} row {r}: {a} vs {b}");
            }
            let budget = cfg.budget(batch.len());
            assert_eq!(batch.top_rows(budget), streaming.top_rows(budget), "day {day}");

            let shard_ranked = sharded.rank_week(day);
            assert_eq!(batch.rows, shard_ranked.rows, "day {day}: sharded rows");
            for (r, (a, b)) in
                batch.probabilities.iter().zip(&shard_ranked.probabilities).enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "day {day} sharded row {r}: {a} vs {b}");
            }
            assert_eq!(
                batch.top_rows(budget),
                shard_ranked.top_rows_sharded(budget, 7),
                "day {day}: sharded top-B"
            );
        }
        // Steady-state retention is exactly one frame per engine, and the
        // widened store's frame is bigger only by its extra lanes.
        assert_eq!(engine.store().frames().len(), 1);
        assert_eq!(sharded.store().frames().len(), 1);
        assert!(sharded.retained_bytes() >= engine.retained_bytes());
    }

    #[test]
    fn observe_is_cursor_idempotent() {
        let data = ExperimentData::simulate(SimConfig::small(89));
        let split = SplitSpec::paper_like(&data).expect("horizon fits the protocol");
        let cfg = PredictorConfig {
            iterations: 20,
            selection_iterations: 3,
            n_base: 10,
            n_quadratic: 4,
            n_product: 4,
            selection_row_cap: 4_000,
            ..PredictorConfig::default()
        };
        let (predictor, _) =
            TicketPredictor::fit(&data, &split, &cfg).expect("well-formed training data");

        // Observing the same grown slices repeatedly must not double-ingest.
        let mut engine = WeeklyScorer::new(&predictor, &data.topology.lines);
        let half_m = data.output.measurements.len() / 2;
        let half_t = data.output.tickets.len() / 2;
        engine.observe(&data.output.measurements[..half_m], &data.output.tickets[..half_t]);
        engine.observe(&data.output.measurements[..half_m], &data.output.tickets[..half_t]);
        engine.observe(&data.output.measurements, &data.output.tickets);
        engine.observe(&data.output.measurements, &data.output.tickets);

        let day = *split.test_days.last().expect("non-empty");
        let batch = predictor.rank(&data, &[day]);
        let streaming = engine.rank_week(day);
        assert_eq!(batch.probabilities, streaming.probabilities);
    }

    #[test]
    fn preloaded_frames_reproduce_encoded_rankings() {
        let data = ExperimentData::simulate(SimConfig::small(90));
        let split = SplitSpec::paper_like(&data).expect("horizon fits the protocol");
        let cfg = PredictorConfig {
            iterations: 25,
            selection_iterations: 3,
            n_base: 12,
            n_quadratic: 4,
            n_product: 4,
            selection_row_cap: 4_000,
            ..PredictorConfig::default()
        };
        let (predictor, _) =
            TicketPredictor::fit(&data, &split, &cfg).expect("well-formed training data");
        let days: Vec<u32> = split.test_days.iter().copied().take(3).collect();
        assert!(days.len() >= 2, "need at least two test Saturdays");

        // Reference run, retaining every frame (the checkpoint writer).
        let mut reference = WeeklyScorer::new(&predictor, &data.topology.lines);
        reference.set_retention(Retention::All);
        reference.observe(&data.output.measurements, &data.output.tickets);
        let reference_ranks: Vec<RankedPredictions> =
            days.iter().map(|&d| reference.rank_week(d)).collect();

        // Resumed run: adopt the exported frames via the binary format
        // instead of encoding, plus one stale frame that must be skipped.
        let bytes = reference.store().export();
        let imported = FeatureStore::import(&bytes).expect("checkpoint parses");
        let mut resumed = WeeklyScorer::new(&predictor, &data.topology.lines);
        resumed.observe(&data.output.measurements, &data.output.tickets);
        for frame in imported.into_frames() {
            resumed.preload_frame(frame);
        }
        for (day, reference_rank) in days.iter().skip(1).zip(reference_ranks.iter().skip(1)) {
            let resumed_rank = resumed.rank_week(*day);
            assert_eq!(reference_rank.rows, resumed_rank.rows, "day {day}: rows");
            assert_eq!(reference_rank.labels, resumed_rank.labels, "day {day}: labels");
            for (r, (a, b)) in
                reference_rank.probabilities.iter().zip(&resumed_rank.probabilities).enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "day {day} row {r}: {a} vs {b}");
            }
        }
        // Past the preloaded horizon the engine falls back to encoding and
        // still matches a fresh engine.
        if let Some(&later) = split.test_days.get(3) {
            let mut fresh = WeeklyScorer::new(&predictor, &data.topology.lines);
            fresh.observe(&data.output.measurements, &data.output.tickets);
            for &d in &days {
                fresh.rank_week(d);
            }
            assert_eq!(
                fresh.rank_week(later).probabilities,
                resumed.rank_week(later).probabilities,
                "post-checkpoint weeks must re-encode identically"
            );
        }
    }
}
