//! The incremental weekly scoring engine behind the operational loop.
//!
//! Every Saturday the proactive policy re-ranks the entire line population
//! with the (fixed, already-trained) ticket predictor and dispatches the
//! top-`B`. Done naively — clone the accumulated logs, rebuild the
//! encoder's indexes, walk every stump for every row, fully sort the
//! population — the weekly cost grows with elapsed time and is dominated by
//! work whose result never changes.
//!
//! [`WeeklyScorer`] glues together the three incremental pieces:
//!
//! * [`IncrementalEncoder`] — per-line rolling state fed only the *new*
//!   log events each week, borrowed straight from the world's output
//!   (cursors remember how far previous weeks got; nothing is cloned);
//! * [`BatchScorer`] — the predictor's stump ensemble compiled once into
//!   per-stump bin→score lookup tables, evaluated over row chunks on
//!   scoped threads, bit-identical to the serial per-row path;
//! * partial top-`B` selection — [`RankedPredictions::top_rows`] selects
//!   the budgeted head without sorting the whole population.
//!
//! Each piece is individually bit-compatible with its batch counterpart, so
//! a [`WeeklyScorer`] ranking is exactly what [`TicketPredictor::rank`]
//! would produce over the same logs — pinned by the tests below.

use crate::predictor::{RankedPredictions, TicketPredictor};
use nevermind_dslsim::topology::Line;
use nevermind_dslsim::{LineId, LineTest, Ticket};
use nevermind_features::encode::EncodedDataset;
use nevermind_features::{DerivedFeature, IncrementalEncoder};
use nevermind_ml::data::{FeatureMatrix, FeatureMeta};
use nevermind_ml::score::BatchScorer;

/// Where one of the ensemble's used features comes from, in terms of the
/// *base* encoding — the gather plan that lets [`WeeklyScorer::rank_week`]
/// skip materialising the full assembled matrix.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// A selected base column, verbatim.
    Base(usize),
    /// `row[c] * row[c]` over base columns, exactly as `derive` computes it.
    Quadratic(usize),
    /// `row[a] * row[b]` over base columns, exactly as `derive` computes it.
    Product(usize, usize),
}

/// Streaming population ranker for the weekly proactive loop.
pub struct WeeklyScorer<'a> {
    predictor: &'a TicketPredictor,
    encoder: IncrementalEncoder<'a>,
    scorer: BatchScorer,
    /// Per used-feature slot: how to compute it from a *needed-column* row.
    plan: Vec<Source>,
    /// The distinct base columns the plan reads, sorted — the only columns
    /// the encoder is asked to materialise each week.
    needed: Vec<usize>,
    /// Column metadata for the narrow gathered matrix.
    narrow_meta: Vec<FeatureMeta>,
    /// Assembled-space column index per narrow slot (the ensemble's used
    /// columns, in slot order) — the key for re-expanding a narrow row.
    used: Vec<usize>,
    /// Width of the predictor's assembled feature space.
    n_assembled: usize,
    /// The most recent week's narrow matrix, retained only while decision
    /// tracing is enabled so [`Self::traced_assembled_row`] can explain
    /// lines without re-encoding anything.
    last_narrow: Option<FeatureMatrix>,
    /// Shard-parallelism degree. `0` (the default) keeps the legacy
    /// behaviour: serial ingest/encode, auto-threaded margins, serial
    /// top-`B`. `>= 1` pins that many shards on every stage. Every stage
    /// is bit-identical across settings, so this is pure execution policy.
    shards: usize,
    meas_cursor: usize,
    ticket_cursor: usize,
}

impl<'a> WeeklyScorer<'a> {
    /// Builds the engine for a trained predictor over a fixed plant. The
    /// stump ensemble is compiled to lookup tables here, once, along with a
    /// gather plan mapping each used feature back to the base columns it is
    /// derived from — the full assembled feature space (all selected base +
    /// derived columns) is never materialised per week.
    pub fn new(predictor: &'a TicketPredictor, lines: &'a [Line]) -> Self {
        let scorer = BatchScorer::new(predictor.model());
        let n_base = predictor.selected_base().len();
        let plan: Vec<Source> = scorer
            .used_columns()
            .map(|c| {
                if c < n_base {
                    Source::Base(predictor.selected_base()[c])
                } else {
                    match predictor.selected_derived()[c - n_base] {
                        DerivedFeature::Quadratic { col } => Source::Quadratic(col),
                        DerivedFeature::Product { a, b } => Source::Product(a, b),
                    }
                }
            })
            .collect();
        // Collapse the plan's base-column references to the distinct set the
        // encoder must produce, then rewrite the plan against that narrow
        // column space.
        let mut needed: Vec<usize> = plan
            .iter()
            .flat_map(|src| match *src {
                Source::Base(c) | Source::Quadratic(c) => vec![c],
                Source::Product(a, b) => vec![a, b],
            })
            .collect();
        needed.sort_unstable();
        needed.dedup();
        // lint:allow(no-panic-in-lib) -- needed was built as the sorted union of plan columns above
        let slot_of = |c: usize| needed.binary_search(&c).expect("needed covers the plan");
        let plan: Vec<Source> = plan
            .iter()
            .map(|src| match *src {
                Source::Base(c) => Source::Base(slot_of(c)),
                Source::Quadratic(c) => Source::Quadratic(slot_of(c)),
                Source::Product(a, b) => Source::Product(slot_of(a), slot_of(b)),
            })
            .collect();
        let narrow_meta =
            (0..plan.len()).map(|i| FeatureMeta::continuous(format!("used{i}"))).collect();
        let used: Vec<usize> = scorer.used_columns().collect();
        let n_assembled = n_base + predictor.selected_derived().len();
        Self {
            predictor,
            encoder: IncrementalEncoder::new(lines, predictor.encoder_config().clone()),
            scorer,
            plan,
            needed,
            narrow_meta,
            used,
            n_assembled,
            last_narrow: None,
            shards: 0,
            meas_cursor: 0,
            ticket_cursor: 0,
        }
    }

    /// Sets the shard-parallelism degree for every weekly stage (ingest,
    /// encode, margins, top-`B`). `0` restores the legacy policy (serial
    /// ingest/encode, auto-threaded margins). Rankings are bit-identical
    /// for every setting — shard count is an execution detail, pinned by
    /// the equivalence tests below.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards;
    }

    /// The configured shard-parallelism degree (`0` = legacy/auto).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Ingests whatever the logs have accrued since the last call. Pass the
    /// world's full (growing) log slices each week; internal cursors skip
    /// everything already seen, so only the fresh suffix is processed.
    ///
    /// # Panics
    /// Panics if a log slice shrank since the previous call.
    pub fn observe(&mut self, measurements: &[LineTest], tickets: &[Ticket]) {
        let _span = nevermind_obs::span!("weekly/observe");
        assert!(
            measurements.len() >= self.meas_cursor && tickets.len() >= self.ticket_cursor,
            "logs must only grow between observations"
        );
        self.encoder.ingest_sharded(
            &measurements[self.meas_cursor..],
            &tickets[self.ticket_cursor..],
            self.shards.max(1),
        );
        self.meas_cursor = measurements.len();
        self.ticket_cursor = tickets.len();
    }

    /// Encodes and ranks the whole population at the given Saturday, from
    /// rolling state. Equivalent to [`TicketPredictor::rank`] over the
    /// observed logs, at a per-week cost independent of elapsed time.
    ///
    /// Instead of assembling the predictor's full feature space, the encoder
    /// materialises only the base columns the ensemble reads (time-series
    /// z-score lanes are independent Welford streams, so the subset stays
    /// bit-identical per column), and only the ensemble's used features are
    /// gathered from them (with derived columns computed by the same `f32`
    /// arithmetic as the batch `derive` pass, so margins stay bit-identical)
    /// into a narrow matrix scored via
    /// [`BatchScorer::margins_compact_parallel`].
    pub fn rank_week(&mut self, day: u32) -> RankedPredictions {
        let _span = nevermind_obs::span!("weekly/rank_week");
        let base = self.encoder.encode_day_cols_sharded(day, &self.needed, self.shards.max(1));
        let n_rows = base.data.len();
        nevermind_obs::counter_add!("weekly/lines_scored", n_rows);
        let mut values = Vec::with_capacity(n_rows * self.plan.len());
        for r in 0..n_rows {
            let row = base.data.x.row(r);
            values.extend(self.plan.iter().map(|src| match *src {
                Source::Base(c) => row[c],
                Source::Quadratic(c) => row[c] * row[c],
                Source::Product(a, b) => row[a] * row[b],
            }));
        }
        let narrow = FeatureMatrix::new(n_rows, self.narrow_meta.clone(), values);
        let margins = self.scorer.margins_compact_parallel(&narrow, self.shards);
        let probabilities = self.predictor.calibration().probabilities(&margins);
        // Retain the narrow matrix only while decision tracing wants to
        // explain lines afterwards; with tracing off this is one relaxed
        // atomic load and the matrix drops as before.
        self.last_narrow = nevermind_obs::trace::enabled().then_some(narrow);
        RankedPredictions::from_scores(base.rows, probabilities, base.data.y)
    }

    /// Re-expands row `row` of the most recent traced [`Self::rank_week`]
    /// into the predictor's assembled feature space, for
    /// [`TicketPredictor::explain`]. Columns the ensemble never reads come
    /// back as `NaN` (no stump touches them, so their contribution is
    /// exactly zero); used columns carry the very values the week's
    /// margins were computed from, so the reconstructed margin is
    /// bit-identical to the ranking's. Returns `None` when tracing was off
    /// during the last ranking or `row` is out of range.
    pub fn traced_assembled_row(&self, row: usize) -> Option<Vec<f32>> {
        let narrow = self.last_narrow.as_ref()?;
        if row >= narrow.n_rows() {
            return None;
        }
        let mut assembled = vec![f32::NAN; self.n_assembled];
        for (slot, &col) in self.used.iter().enumerate() {
            assembled[col] = narrow.get(row, slot);
        }
        Some(assembled)
    }

    /// Encodes the requested base columns at `day` from the rolling state —
    /// the model-health monitor's window into the live feature values.
    ///
    /// Re-encoding a day the engine already ranked is idempotent (the
    /// incremental encoder's per-line state only prunes history that no
    /// later window can read), so calling this after [`Self::rank_week`]
    /// for the same Saturday cannot perturb that or any later ranking.
    pub fn encode_features(&mut self, day: u32, cols: &[usize]) -> EncodedDataset {
        self.encoder.encode_day_cols(day, cols)
    }

    /// The week's top-`budget` lines, best first — the dispatch list.
    pub fn top_lines(&mut self, day: u32, budget: usize) -> Vec<LineId> {
        let shards = self.shards.max(1);
        let top: Vec<LineId> = self
            .rank_week(day)
            .top_rows_sharded(budget, shards)
            .into_iter()
            .map(|(key, _, _)| key.line)
            .collect();
        nevermind_obs::counter_add!("weekly/lines_dispatched", top.len());
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{ExperimentData, SplitSpec};
    use crate::predictor::PredictorConfig;
    use nevermind_dslsim::SimConfig;

    #[test]
    fn weekly_engine_matches_batch_ranking() {
        let data = ExperimentData::simulate(SimConfig::small(88));
        let split = SplitSpec::paper_like(&data).expect("horizon fits the protocol");
        let cfg = PredictorConfig {
            iterations: 40,
            selection_iterations: 4,
            n_base: 15,
            n_quadratic: 6,
            n_product: 6,
            selection_row_cap: 5_000,
            ..PredictorConfig::default()
        };
        let (predictor, _) =
            TicketPredictor::fit(&data, &split, &cfg).expect("well-formed training data");

        let mut engine = WeeklyScorer::new(&predictor, &data.topology.lines);
        engine.observe(&data.output.measurements, &data.output.tickets);
        // A second engine running every stage shard-parallel must agree
        // bit-for-bit with both the legacy engine and the batch ranking.
        let mut sharded = WeeklyScorer::new(&predictor, &data.topology.lines);
        sharded.set_shards(7);
        sharded.observe(&data.output.measurements, &data.output.tickets);

        for &day in split.test_days.iter().take(2) {
            let batch = predictor.rank(&data, &[day]);
            let streaming = engine.rank_week(day);
            assert_eq!(batch.rows, streaming.rows, "day {day}: rows");
            assert_eq!(batch.labels, streaming.labels, "day {day}: labels");
            for (r, (a, b)) in batch.probabilities.iter().zip(&streaming.probabilities).enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "day {day} row {r}: {a} vs {b}");
            }
            let budget = cfg.budget(batch.len());
            assert_eq!(batch.top_rows(budget), streaming.top_rows(budget), "day {day}");

            let shard_ranked = sharded.rank_week(day);
            assert_eq!(batch.rows, shard_ranked.rows, "day {day}: sharded rows");
            for (r, (a, b)) in
                batch.probabilities.iter().zip(&shard_ranked.probabilities).enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "day {day} sharded row {r}: {a} vs {b}");
            }
            assert_eq!(
                batch.top_rows(budget),
                shard_ranked.top_rows_sharded(budget, 7),
                "day {day}: sharded top-B"
            );
        }
    }

    #[test]
    fn observe_is_cursor_idempotent() {
        let data = ExperimentData::simulate(SimConfig::small(89));
        let split = SplitSpec::paper_like(&data).expect("horizon fits the protocol");
        let cfg = PredictorConfig {
            iterations: 20,
            selection_iterations: 3,
            n_base: 10,
            n_quadratic: 4,
            n_product: 4,
            selection_row_cap: 4_000,
            ..PredictorConfig::default()
        };
        let (predictor, _) =
            TicketPredictor::fit(&data, &split, &cfg).expect("well-formed training data");

        // Observing the same grown slices repeatedly must not double-ingest.
        let mut engine = WeeklyScorer::new(&predictor, &data.topology.lines);
        let half_m = data.output.measurements.len() / 2;
        let half_t = data.output.tickets.len() / 2;
        engine.observe(&data.output.measurements[..half_m], &data.output.tickets[..half_t]);
        engine.observe(&data.output.measurements[..half_m], &data.output.tickets[..half_t]);
        engine.observe(&data.output.measurements, &data.output.tickets);
        engine.observe(&data.output.measurements, &data.output.tickets);

        let day = *split.test_days.last().expect("non-empty");
        let batch = predictor.rank(&data, &[day]);
        let streaming = engine.rank_week(day);
        assert_eq!(batch.probabilities, streaming.probabilities);
    }
}
