//! Model-health telemetry: is the fitted ranker still operating under the
//! conditions it was trained on?
//!
//! The paper trains once on a two-month window and shows prediction quality
//! varying month to month as plant and seasonal conditions shift (Sec. 5).
//! Operationally that is a silent failure mode: nothing in the weekly loop
//! notices that the input distributions have walked away from the training
//! window until dispatch precision has already sunk. [`ModelHealthMonitor`]
//! closes that gap with the standard scorecard-monitoring recipe:
//!
//! * **Reference snapshot** ([`ModelHealthMonitor::from_training`]): right
//!   after [`TicketPredictor`] is fitted, re-encode the *last* training
//!   Saturday — a single whole-population snapshot, shaped exactly like
//!   every weekly snapshot the monitor will compare against (earlier
//!   training Saturdays can sit so close to the start of history that
//!   windowed features are still NaN, which would read as huge permanent
//!   drift) — and freeze per-feature quantile binnings and bin counts for
//!   the monitored features, the calibrated-score distribution, and the
//!   reference calibration quality (ECE).
//! * **Weekly comparison** ([`ModelHealthMonitor::observe_week`]): every
//!   scored Saturday, bin the live feature values and scores into the
//!   *reference* bins and emit one PSI point per monitored feature
//!   (`telemetry/psi/<feature>`) plus one for the score distribution
//!   (`telemetry/score_psi`).
//! * **Label maturation**: ticket labels for week `d` only close at
//!   `d + horizon`; scored weeks are parked until their window closes, then
//!   realized calibration is emitted (`telemetry/ece`, `telemetry/brier`,
//!   keyed by the *scored* day).
//! * **Health status**: each observation is classified against configurable
//!   thresholds ([`TelemetryConfig`]), with a persistence debounce — a PSI
//!   metric must stay over threshold for `persistence_weeks` consecutive
//!   weeks before it escalates the status (drift persists; outage blips and
//!   sparse-feature sampling noise do not). Per-week statuses land in the
//!   `telemetry/health` series and the worst status seen is held sticky in
//!   the `telemetry/health_status` gauge, which the JSON dump's `telemetry`
//!   section and the `nevermind report` command surface.
//!
//! Everything is recorded through the global [`nevermind_obs`] registry, so
//! any `--metrics` dump carries the full telemetry without extra plumbing.
//! The monitor only ever *reads* the scoring path — its weekly feature
//! values are borrowed straight from the week's
//! [`nevermind_features::FeatureStore`] frame (the very lanes the ranking
//! was scored from; no second encode) — so rankings and dispatch decisions
//! are bit-identical with and without it, pinned by the equivalence test
//! in `tests/observability.rs`.
//!
//! A week can be *empty* — zero lines, or a population whose scored
//! distribution carries no mass — and a PSI against an empty population is
//! undefined ([`nevermind_ml::drift::PsiError`]). The monitor records such
//! weeks in the `telemetry/psi_skipped` counter, leaves the persistence
//! streaks untouched, and keeps the trial alive instead of panicking.

use crate::pipeline::{ExperimentData, SplitSpec};
use crate::predictor::{RankedPredictions, TicketPredictor};
use nevermind_dslsim::Ticket;
use nevermind_features::{BaseEncoder, FeatureStore};
use nevermind_ml::calibrate::{brier_score, expected_calibration_error};
use nevermind_ml::drift::{bin_counts, bin_counts_from, psi, quantile_edges};

/// Thresholds and sizing for the model-health monitor.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// PSI at or above this is a `warning` (scorecard convention: 0.1).
    pub psi_warning: f64,
    /// PSI at or above this is an `alert` (scorecard convention: 0.25).
    pub psi_alert: f64,
    /// Matured ECE at or above this is a `warning`.
    pub ece_warning: f64,
    /// Matured ECE at or above this is an `alert`.
    pub ece_alert: f64,
    /// Target in-range bin count for the PSI quantile binnings.
    pub n_bins: usize,
    /// How many of the predictor's selected base features to monitor
    /// (selection order, i.e. strongest AP(N) first).
    pub max_features: usize,
    /// Consecutive over-threshold weeks required before a drift (PSI)
    /// metric escalates the health status and counts a breach. Drift is
    /// persistent by definition; single-week excursions (an outage event,
    /// sampling noise on a sparse feature) stay visible in the series but
    /// do not trip the status. `1` escalates immediately.
    pub persistence_weeks: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            psi_warning: 0.1,
            psi_alert: 0.25,
            ece_warning: 0.05,
            ece_alert: 0.15,
            n_bins: 10,
            max_features: 12,
            persistence_weeks: 2,
        }
    }
}

/// Traffic-light model-health classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// Everything within thresholds.
    Healthy,
    /// At least one metric crossed its warning threshold.
    Warning,
    /// At least one metric crossed its alert threshold.
    Alert,
}

impl HealthStatus {
    /// The gauge/series encoding (0 / 1 / 2), matching
    /// [`nevermind_obs::json::health_status_name`].
    pub fn as_f64(self) -> f64 {
        match self {
            HealthStatus::Healthy => 0.0,
            HealthStatus::Warning => 1.0,
            HealthStatus::Alert => 2.0,
        }
    }

    /// Lower-case display name, identical to the JSON dump's `status`.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Warning => "warning",
            HealthStatus::Alert => "alert",
        }
    }

    /// The inverse of [`Self::as_f64`]: decodes a gauge/series value
    /// back into a status (`None` for anything outside the encoding).
    pub fn from_f64(v: f64) -> Option<HealthStatus> {
        if v == 0.0 {
            Some(HealthStatus::Healthy)
        } else if v == 1.0 {
            Some(HealthStatus::Warning)
        } else if v == 2.0 {
            Some(HealthStatus::Alert)
        } else {
            None
        }
    }

    /// The status currently held in the global registry's sticky
    /// `telemetry/health_status` gauge — the same value the live
    /// plane's `GET /health` endpoint maps to an HTTP status code —
    /// or `None` when no model-health monitor has recorded yet.
    pub fn live() -> Option<HealthStatus> {
        let snap = nevermind_obs::global().snapshot();
        snap.gauges
            .get(nevermind_obs::json::TELEMETRY_STATUS_GAUGE)
            .copied()
            .and_then(Self::from_f64)
    }

    fn classify(value: f64, warning: f64, alert: f64) -> Self {
        if value >= alert {
            HealthStatus::Alert
        } else if value >= warning {
            HealthStatus::Warning
        } else {
            HealthStatus::Healthy
        }
    }
}

/// Reference state for one monitored feature. The corresponding base
/// column index lives at the same position in
/// [`ModelHealthMonitor::monitored_columns`].
struct FeatureRef {
    /// Encoder feature name (`ts:...`, `basic:...`).
    name: String,
    /// Quantile edges frozen from the training window.
    edges: Vec<f64>,
    /// Training-window counts over those edges (plus the NaN bucket).
    ref_counts: Vec<u64>,
    /// Consecutive weeks this feature's PSI has been over the warning
    /// threshold (the persistence debounce).
    streak: usize,
}

/// A scored week waiting for its label window to close.
struct PendingWeek {
    day: u32,
    /// Row-aligned line indices and calibrated probabilities.
    line_indices: Vec<usize>,
    probabilities: Vec<f64>,
}

/// End-of-trial telemetry summary (the registry holds the full series).
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Worst status seen across all weeks and metrics.
    pub status: HealthStatus,
    /// Scored weeks compared against the reference.
    pub weeks_observed: usize,
    /// Individual warning/alert threshold crossings, summed over weeks.
    pub breaches: u64,
    /// The monitored feature with the largest PSI seen, if any week ran.
    pub worst_feature: Option<(String, f64)>,
    /// Largest score-distribution PSI seen.
    pub max_score_psi: f64,
    /// ECE of the most recently matured week, if any matured.
    pub last_ece: Option<f64>,
    /// Brier score of the most recently matured week, if any matured.
    pub last_brier: Option<f64>,
    /// ECE of the reference (training-window) ranking.
    pub reference_ece: f64,
}

impl TelemetryReport {
    /// One-line operator summary for CLI output.
    pub fn summary(&self) -> String {
        let worst = match &self.worst_feature {
            Some((name, p)) => format!("worst feature PSI {p:.3} ({name})"),
            None => "no weeks observed".to_string(),
        };
        let ece = match self.last_ece {
            Some(e) => format!("{e:.4}"),
            None => "pending".to_string(),
        };
        format!(
            "model health: {} over {} weeks ({} breaches; {}; score PSI {:.3}; ECE {} vs {:.4} at fit)",
            self.status.as_str(),
            self.weeks_observed,
            self.breaches,
            worst,
            self.max_score_psi,
            ece,
            self.reference_ece,
        )
    }
}

/// Drift/calibration monitor comparing every scored week against a frozen
/// training-window reference. See the module docs for the design.
pub struct ModelHealthMonitor {
    config: TelemetryConfig,
    horizon_days: u32,
    features: Vec<FeatureRef>,
    monitored_cols: Vec<usize>,
    score_edges: Vec<f64>,
    score_ref_counts: Vec<u64>,
    score_streak: usize,
    reference_ece: f64,
    /// Per-line customer-edge ticket days, appended in arrival order.
    ticket_days: Vec<Vec<u32>>,
    ticket_cursor: usize,
    pending: Vec<PendingWeek>,
    weeks_observed: usize,
    breaches: u64,
    worst: HealthStatus,
    worst_feature: Option<(String, f64)>,
    max_score_psi: f64,
    last_ece: Option<f64>,
    last_brier: Option<f64>,
}

impl ModelHealthMonitor {
    /// Captures the reference snapshot for a freshly fitted predictor:
    /// re-encodes the last training Saturday of `train_data` (a single
    /// population snapshot, directly comparable to each future weekly
    /// snapshot), freezes quantile binnings for the monitored features and
    /// the calibrated scores, and records the reference distributions and
    /// thresholds into the global registry. `n_live_lines` sizes the ticket
    /// index for the population the monitor will observe (which may come
    /// from a different world than the training data — that mismatch is
    /// exactly what it detects).
    pub fn from_training(
        predictor: &TicketPredictor,
        train_data: &ExperimentData,
        split: &SplitSpec,
        n_live_lines: usize,
        config: &TelemetryConfig,
    ) -> Self {
        let _span = nevermind_obs::span!("telemetry/reference");
        let encoder = train_data.encoder(predictor.encoder_config().clone());
        // lint:allow(no-panic-in-lib) -- SplitSpec constructors reject empty training windows
        let reference_day = *split.train_days.last().expect("empty training window");
        let base = encoder.encode(&[reference_day]);
        let (meta, _) = BaseEncoder::base_meta();

        let monitored_cols: Vec<usize> =
            predictor.selected_base().iter().take(config.max_features).copied().collect();
        let n_rows = base.data.len();
        let features: Vec<FeatureRef> = monitored_cols
            .iter()
            .map(|&col| {
                let values: Vec<f64> =
                    (0..n_rows).map(|r| f64::from(base.data.x.row(r)[col])).collect();
                let edges = quantile_edges(&values, config.n_bins);
                let ref_counts = bin_counts(&edges, &values);
                let name = meta[col].name.clone();
                record_reference_distribution(&format!("telemetry/ref/{name}"), &values);
                FeatureRef { name, edges, ref_counts, streak: 0 }
            })
            .collect();

        let ranking = predictor.rank_encoded(&base);
        let score_edges = quantile_edges(&ranking.probabilities, config.n_bins);
        let score_ref_counts = bin_counts(&score_edges, &ranking.probabilities);
        record_reference_distribution("telemetry/ref/score", &ranking.probabilities);
        let reference_ece =
            expected_calibration_error(&ranking.probabilities, &ranking.labels, config.n_bins);

        let reg = nevermind_obs::global();
        reg.gauge("telemetry/threshold/psi_warning").set(config.psi_warning);
        reg.gauge("telemetry/threshold/psi_alert").set(config.psi_alert);
        reg.gauge("telemetry/threshold/ece_warning").set(config.ece_warning);
        reg.gauge("telemetry/threshold/ece_alert").set(config.ece_alert);
        reg.gauge("telemetry/reference_ece").set(reference_ece);
        reg.gauge("telemetry/health_status").set(HealthStatus::Healthy.as_f64());

        Self {
            config: config.clone(),
            horizon_days: predictor.encoder_config().horizon_days,
            features,
            monitored_cols,
            score_edges,
            score_ref_counts,
            score_streak: 0,
            reference_ece,
            ticket_days: vec![Vec::new(); n_live_lines],
            ticket_cursor: 0,
            pending: Vec::new(),
            weeks_observed: 0,
            breaches: 0,
            worst: HealthStatus::Healthy,
            worst_feature: None,
            max_score_psi: 0.0,
            last_ece: None,
            last_brier: None,
        }
    }

    /// The base columns the monitor bins each week, aligned with the
    /// monitored features — pass to `WeeklyScorer::track_columns` so the
    /// weekly store frames carry these lanes.
    pub fn monitored_columns(&self) -> &[usize] {
        &self.monitored_cols
    }

    /// Compares one scored Saturday against the reference. `ranking` is the
    /// week's population ranking, `store` the weekly scorer's feature store
    /// — the monitor borrows the ranked day's frame and bins each monitored
    /// column's lane directly, so the week's values are read zero-copy from
    /// the same memory the ranking was scored from. `tickets` is the
    /// world's full growing ticket log (a cursor skips what was already
    /// seen). Returns the week's PSI-based status; calibration (ECE/Brier)
    /// is emitted later, once the week's label window closes.
    ///
    /// A PSI that is undefined for the week — an empty population, a
    /// scored distribution with no mass — is counted in
    /// `telemetry/psi_skipped` and leaves that metric's persistence streak
    /// untouched (an empty week is no evidence of drift either way).
    ///
    /// # Panics
    /// Panics if the store does not hold `day`'s frame or does not track
    /// every monitored column — wiring errors, not data states.
    pub fn observe_week(
        &mut self,
        day: u32,
        ranking: &RankedPredictions,
        store: &FeatureStore,
        tickets: &[Ticket],
    ) -> HealthStatus {
        let _span = nevermind_obs::span!("telemetry/observe_week");
        self.ingest_tickets(tickets);

        let frame = store
            .latest()
            .filter(|f| f.day() == day)
            // lint:allow(no-panic-in-lib) -- the weekly loop always ranks `day` (filling its frame) before observing it
            .expect("the observed day's frame must be resident in the store");

        let reg = nevermind_obs::global();
        let persistence = self.config.persistence_weeks.max(1);
        let mut week_status = HealthStatus::Healthy;
        let mut week_breaches = 0u64;
        for (j, feat) in self.features.iter_mut().enumerate() {
            let lane = store
                .lane_of(self.monitored_cols[j])
                // lint:allow(no-panic-in-lib) -- the pipeline tracks every monitored column in the store
                .expect("store tracks every monitored column");
            let counts = bin_counts_from(&feat.edges, frame.lane_f64(lane));
            let Ok(p) = psi(&feat.ref_counts, &counts) else {
                reg.counter("telemetry/psi_skipped").inc();
                continue;
            };
            reg.series(&format!("telemetry/psi/{}", feat.name)).push(f64::from(day), p);
            let raw = HealthStatus::classify(p, self.config.psi_warning, self.config.psi_alert);
            feat.streak = if raw > HealthStatus::Healthy { feat.streak + 1 } else { 0 };
            if feat.streak >= persistence {
                week_status = week_status.max(raw);
                week_breaches += 1;
            }
            if self.worst_feature.as_ref().map_or(true, |(_, worst)| p > *worst) {
                self.worst_feature = Some((feat.name.clone(), p));
            }
        }

        let live_scores = reg.distribution("telemetry/live/score", 0.0, 1.0, self.config.n_bins);
        live_scores.record_all(&ranking.probabilities);
        match psi(&self.score_ref_counts, &bin_counts(&self.score_edges, &ranking.probabilities)) {
            Ok(score_psi) => {
                reg.series("telemetry/score_psi").push(f64::from(day), score_psi);
                let raw = HealthStatus::classify(
                    score_psi,
                    self.config.psi_warning,
                    self.config.psi_alert,
                );
                self.score_streak =
                    if raw > HealthStatus::Healthy { self.score_streak + 1 } else { 0 };
                if self.score_streak >= persistence {
                    week_status = week_status.max(raw);
                    week_breaches += 1;
                }
                self.max_score_psi = self.max_score_psi.max(score_psi);
            }
            Err(_) => {
                reg.counter("telemetry/psi_skipped").inc();
            }
        }
        self.breaches += week_breaches;
        reg.counter("telemetry/breaches").add(week_breaches);

        reg.series("telemetry/health").push(f64::from(day), week_status.as_f64());
        reg.counter("telemetry/weeks_observed").inc();
        self.weeks_observed += 1;
        self.worst = self.worst.max(week_status);
        reg.gauge("telemetry/health_status").set(self.worst.as_f64());

        self.pending.push(PendingWeek {
            day,
            line_indices: ranking.rows.iter().map(|k| k.line.index()).collect(),
            probabilities: ranking.probabilities.clone(),
        });
        self.mature_through(day);
        week_status
    }

    /// Ingests any remaining tickets, matures every week whose label window
    /// closed by `frontier_day` (the last simulated day), records the final
    /// gauges, and returns the summary.
    pub fn finish(mut self, tickets: &[Ticket], frontier_day: u32) -> TelemetryReport {
        self.ingest_tickets(tickets);
        self.mature_through(frontier_day);
        let reg = nevermind_obs::global();
        reg.gauge("telemetry/health_status").set(self.worst.as_f64());
        TelemetryReport {
            status: self.worst,
            weeks_observed: self.weeks_observed,
            breaches: self.breaches,
            worst_feature: self.worst_feature,
            max_score_psi: self.max_score_psi,
            last_ece: self.last_ece,
            last_brier: self.last_brier,
            reference_ece: self.reference_ece,
        }
    }

    fn ingest_tickets(&mut self, tickets: &[Ticket]) {
        assert!(tickets.len() >= self.ticket_cursor, "ticket log must only grow");
        for t in &tickets[self.ticket_cursor..] {
            if t.is_customer_edge() {
                let days = &mut self.ticket_days[t.line.index()];
                // The simulator emits tickets in day order; keep the
                // per-line lists sorted even if a source does not.
                match days.last() {
                    Some(&last) if last > t.day => {
                        let at = days.partition_point(|&d| d <= t.day);
                        days.insert(at, t.day);
                    }
                    _ => days.push(t.day),
                }
            }
        }
        self.ticket_cursor = tickets.len();
    }

    /// Emits realized calibration for every pending week whose label window
    /// `(day, day + horizon]` lies fully within the ingested ticket range.
    fn mature_through(&mut self, frontier_day: u32) {
        let reg = nevermind_obs::global();
        let horizon = self.horizon_days;
        let mut still_pending = Vec::new();
        for week in self.pending.drain(..) {
            if week.day + horizon > frontier_day {
                still_pending.push(week);
                continue;
            }
            let labels: Vec<bool> = week
                .line_indices
                .iter()
                .map(|&li| {
                    let days = &self.ticket_days[li];
                    let cut = days.partition_point(|&d| d <= week.day);
                    days.get(cut).is_some_and(|&d| d <= week.day + horizon)
                })
                .collect();
            let ece = expected_calibration_error(&week.probabilities, &labels, self.config.n_bins);
            let brier = brier_score(&week.probabilities, &labels);
            reg.series("telemetry/ece").push(f64::from(week.day), ece);
            reg.series("telemetry/brier").push(f64::from(week.day), brier);
            let status =
                HealthStatus::classify(ece, self.config.ece_warning, self.config.ece_alert);
            if status > HealthStatus::Healthy {
                self.breaches += 1;
                reg.counter("telemetry/breaches").inc();
            }
            self.worst = self.worst.max(status);
            self.last_ece = Some(ece);
            self.last_brier = Some(brier);
        }
        self.pending = still_pending;
        reg.gauge("telemetry/health_status").set(self.worst.as_f64());
    }
}

/// Records a value sample as a fixed-bin [`nevermind_obs::Distribution`]
/// so the JSON dump's `distributions` section carries the actual reference
/// shapes (the PSI math uses quantile bins; the dump uses equal-width bins
/// over the finite value range, which is what a human wants to look at).
fn record_reference_distribution(name: &str, values: &[f64]) {
    let finite = values.iter().copied().filter(|v| v.is_finite());
    let lo = finite.clone().fold(f64::INFINITY, f64::min);
    let hi = finite.fold(f64::NEG_INFINITY, f64::max);
    let (lo, hi) = if lo.is_finite() && hi.is_finite() && lo < hi { (lo, hi) } else { (0.0, 1.0) };
    // Nudge the top edge so the observed maximum lands inside the last bin
    // rather than in overflow.
    let hi = hi + (hi - lo) * 1e-9 + f64::MIN_POSITIVE;
    nevermind_obs::global().distribution(name, lo, hi, 20).record_all(values);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_status_orders_and_classifies() {
        assert!(HealthStatus::Healthy < HealthStatus::Warning);
        assert!(HealthStatus::Warning < HealthStatus::Alert);
        assert_eq!(HealthStatus::classify(0.05, 0.1, 0.25), HealthStatus::Healthy);
        assert_eq!(HealthStatus::classify(0.1, 0.1, 0.25), HealthStatus::Warning);
        assert_eq!(HealthStatus::classify(0.3, 0.1, 0.25), HealthStatus::Alert);
        assert_eq!(HealthStatus::Alert.as_str(), "alert");
        assert_eq!(HealthStatus::Warning.as_f64(), 1.0);
    }

    #[test]
    fn default_thresholds_are_the_scorecard_convention() {
        let cfg = TelemetryConfig::default();
        assert_eq!(cfg.psi_warning, 0.1);
        assert_eq!(cfg.psi_alert, 0.25);
        assert!(cfg.max_features > 0 && cfg.n_bins >= 2);
    }

    #[test]
    fn report_summary_mentions_the_status() {
        let report = TelemetryReport {
            status: HealthStatus::Warning,
            weeks_observed: 4,
            breaches: 3,
            worst_feature: Some(("ts:snr_dn:mean".into(), 0.17)),
            max_score_psi: 0.08,
            last_ece: Some(0.004),
            last_brier: Some(0.01),
            reference_ece: 0.002,
        };
        let line = report.summary();
        assert!(line.contains("warning"), "{line}");
        assert!(line.contains("ts:snr_dn:mean"), "{line}");
        assert!(line.contains("4 weeks"), "{line}");
    }
}
