//! Simulation configuration.
//!
//! Every knob has a default calibrated so that a year-long run produces
//! paper-shaped operational data: weekly ticket volume around 0.2–0.3% of
//! lines, a Monday peak / weekend trough, measurement degradation that
//! precedes tickets, occasional DSLAM outages with IVR suppression, and a
//! population of customers who are sometimes away from home.

use serde::{Deserialize, Serialize};

/// Top-level simulator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed; every subsystem derives its own ChaCha8 stream from it.
    pub seed: u64,
    /// Number of subscriber lines.
    pub n_lines: usize,
    /// Lines terminated per DSLAM (the paper: "several tens").
    pub lines_per_dslam: usize,
    /// Crossboxes per DSLAM serving disjoint line groups.
    pub crossboxes_per_dslam: usize,
    /// DSLAMs aggregated per BRAS.
    pub dslams_per_bras: usize,
    /// Number of geographic regions (weather/construction scope).
    pub n_regions: usize,
    /// Number of simulated days (paper: a full year; default adds margin
    /// so the last prediction window still has 4 weeks of label horizon).
    pub days: u32,
    /// Expected component-fault onsets per line per year (before weather
    /// and loop-length modifiers).
    pub faults_per_line_year: f64,
    /// Expected outages per DSLAM per year.
    pub outages_per_dslam_year: f64,
    /// Days of DSLAM-wide measurement degradation preceding an outage
    /// (a failing card degrades many lines before it dies — this is what
    /// makes outages predictable from Saturday tests and produces the
    /// Table-5 correlation).
    pub outage_precursor_days: f64,
    /// Fraction of lines whose modem is habitually off outside active use.
    pub off_when_idle_fraction: f64,
    /// Probability that a customer is on vacation in any given week.
    pub vacation_week_prob: f64,
    /// Number of BRAS servers whose lines get daily traffic counters
    /// (the paper collects bytes under two BRAS servers).
    pub traffic_bras_sample: usize,
    /// Base probability per day that a customer who has noticed a problem
    /// places the call (before day-of-week and severity weighting).
    pub report_base_prob: f64,
    /// Rate of non-technical (billing etc.) tickets per line per year;
    /// these carry a non-customer-edge category label.
    pub non_technical_tickets_per_line_year: f64,
    /// Added to the probability that a line is sold a fast profile
    /// regardless of its loop length (0 = realistic provisioning checks;
    /// higher values model aggressive sales and feed `DS-SPEED-DOWN`).
    pub overprovision_bias: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED_CA11,
            n_lines: 20_000,
            lines_per_dslam: 48,
            crossboxes_per_dslam: 4,
            dslams_per_bras: 40,
            n_regions: 4,
            days: 420,
            faults_per_line_year: 0.55,
            outages_per_dslam_year: 1.2,
            outage_precursor_days: 14.0,
            off_when_idle_fraction: 0.25,
            vacation_week_prob: 0.045,
            traffic_bras_sample: 2,
            report_base_prob: 0.22,
            non_technical_tickets_per_line_year: 0.05,
            overprovision_bias: 0.0,
        }
    }
}

impl SimConfig {
    /// A small configuration for unit/integration tests: ~2k lines, one
    /// simulated half-year, same behavioural knobs.
    pub fn small(seed: u64) -> Self {
        Self { seed, n_lines: 2_000, days: 240, ..Self::default() }
    }

    /// Number of DSLAMs implied by the line count.
    pub fn n_dslams(&self) -> usize {
        self.n_lines.div_ceil(self.lines_per_dslam)
    }

    /// Number of BRAS servers implied by the DSLAM count.
    pub fn n_bras(&self) -> usize {
        self.n_dslams().div_ceil(self.dslams_per_bras)
    }

    /// Validates internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_lines == 0 {
            return Err("n_lines must be positive".into());
        }
        if self.lines_per_dslam == 0 || self.crossboxes_per_dslam == 0 {
            return Err("lines_per_dslam and crossboxes_per_dslam must be positive".into());
        }
        if self.dslams_per_bras == 0 || self.n_regions == 0 {
            return Err("dslams_per_bras and n_regions must be positive".into());
        }
        if self.days < 60 {
            return Err("need at least 60 simulated days".into());
        }
        if !(0.0..=1.0).contains(&self.off_when_idle_fraction) {
            return Err("off_when_idle_fraction must be a probability".into());
        }
        if !(0.0..=1.0).contains(&self.vacation_week_prob) {
            return Err("vacation_week_prob must be a probability".into());
        }
        if !(0.0..=1.0).contains(&self.report_base_prob) {
            return Err("report_base_prob must be a probability".into());
        }
        if self.faults_per_line_year < 0.0 || self.outages_per_dslam_year < 0.0 {
            return Err("rates must be non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.overprovision_bias) {
            return Err("overprovision_bias must be in [0, 1]".into());
        }
        Ok(())
    }
}

/// Day-of-week helper: the simulation starts on a Sunday, so
/// `day % 7` yields 0=Sun, 1=Mon, …, 6=Sat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DayOfWeek {
    /// Sunday.
    Sunday,
    /// Monday.
    Monday,
    /// Tuesday.
    Tuesday,
    /// Wednesday.
    Wednesday,
    /// Thursday.
    Thursday,
    /// Friday.
    Friday,
    /// Saturday — line-test day.
    Saturday,
}

impl DayOfWeek {
    /// Day-of-week of a simulation day index.
    pub fn of(day: u32) -> Self {
        match day % 7 {
            0 => DayOfWeek::Sunday,
            1 => DayOfWeek::Monday,
            2 => DayOfWeek::Tuesday,
            3 => DayOfWeek::Wednesday,
            4 => DayOfWeek::Thursday,
            5 => DayOfWeek::Friday,
            _ => DayOfWeek::Saturday,
        }
    }

    /// Whether line tests run on this day.
    pub fn is_test_day(self) -> bool {
        self == DayOfWeek::Saturday
    }

    /// Relative propensity to *place a call* on this day, normalized so the
    /// mean over the week is ≈ 1. Reproduces the paper's observation that
    /// tickets peak on Monday and bottom out over the weekend.
    pub fn call_weight(self) -> f64 {
        match self {
            DayOfWeek::Sunday => 0.55,
            DayOfWeek::Monday => 1.65,
            DayOfWeek::Tuesday => 1.30,
            DayOfWeek::Wednesday => 1.15,
            DayOfWeek::Thursday => 1.05,
            DayOfWeek::Friday => 0.90,
            DayOfWeek::Saturday => 0.40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SimConfig::default().validate().is_ok());
        assert!(SimConfig::small(1).validate().is_ok());
    }

    #[test]
    fn derived_counts() {
        let cfg = SimConfig {
            n_lines: 1000,
            lines_per_dslam: 48,
            dslams_per_bras: 10,
            ..SimConfig::default()
        };
        assert_eq!(cfg.n_dslams(), 21);
        assert_eq!(cfg.n_bras(), 3);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = SimConfig { n_lines: 0, ..SimConfig::default() };
        assert!(cfg.validate().is_err());

        let cfg = SimConfig { days: 10, ..SimConfig::default() };
        assert!(cfg.validate().is_err());

        let cfg = SimConfig { report_base_prob: 1.5, ..SimConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn week_starts_sunday_tests_saturday() {
        assert_eq!(DayOfWeek::of(0), DayOfWeek::Sunday);
        assert_eq!(DayOfWeek::of(1), DayOfWeek::Monday);
        assert_eq!(DayOfWeek::of(6), DayOfWeek::Saturday);
        assert_eq!(DayOfWeek::of(13), DayOfWeek::Saturday);
        assert!(DayOfWeek::of(6).is_test_day());
        assert!(!DayOfWeek::of(5).is_test_day());
    }

    #[test]
    fn monday_peaks_weekend_troughs() {
        let monday = DayOfWeek::Monday.call_weight();
        for d in 0..7 {
            let w = DayOfWeek::of(d).call_weight();
            assert!(w <= monday, "day {d} outweighs Monday");
        }
        assert!(DayOfWeek::Saturday.call_weight() < DayOfWeek::Wednesday.call_weight());
        assert!(DayOfWeek::Sunday.call_weight() < DayOfWeek::Wednesday.call_weight());
        // Mean weight ≈ 1 so the weekly volume knob stays interpretable.
        let mean: f64 = (0..7).map(|d| DayOfWeek::of(d).call_weight()).sum::<f64>() / 7.0;
        assert!((mean - 1.0).abs() < 0.01, "mean weight {mean}");
    }
}
