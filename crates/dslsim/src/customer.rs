//! Customer behaviour: usage, presence, tolerance, and reporting.
//!
//! Two behaviours matter for the paper's analyses:
//!
//! * customers only notice problems **while using the service**, and many
//!   are away from home for stretches (vacations) — the Sec. 5.2 "customer
//!   not on site" scenario where a real problem never becomes a ticket;
//! * once a problem is noticed, the *call* happens with a day-of-week
//!   pattern (Monday peak) and a severity-dependent urgency — hard outages
//!   are reported within a day or two, slow-speed problems linger for weeks
//!   (the Fig. 8 time-to-ticket CDF).

use crate::config::{DayOfWeek, SimConfig};
use crate::ids::LineId;
use rand::{Rng, RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One subscriber's behavioural profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Customer {
    /// The customer's line.
    pub line: LineId,
    /// Probability of actively using the service on a weekday.
    pub usage_rate: f64,
    /// Whether the modem is habitually powered off when idle.
    pub off_when_idle: bool,
    /// Perceived-severity threshold above which the customer considers the
    /// service broken.
    pub tolerance: f64,
    /// Vacation windows `[start, end)` in simulation days.
    pub vacations: Vec<(u32, u32)>,
    /// Weekend-heavy usage pattern (weekday usage discounted).
    pub weekend_heavy: bool,
    /// Propensity to terminate the contract when a problem drags on
    /// unresolved (the paper's churn motivation).
    pub churn_propensity: f64,
}

impl Customer {
    /// Whether the customer is away on `day`.
    pub fn is_away(&self, day: u32) -> bool {
        self.vacations.iter().any(|&(s, e)| day >= s && day < e)
    }

    /// Effective probability of using the service on `day` (0 when away).
    pub fn usage_prob(&self, day: u32) -> f64 {
        if self.is_away(day) {
            return 0.0;
        }
        let dow = DayOfWeek::of(day);
        let weekend = matches!(dow, DayOfWeek::Saturday | DayOfWeek::Sunday);
        match (self.weekend_heavy, weekend) {
            (true, true) => (self.usage_rate * 1.6).min(1.0),
            (true, false) => self.usage_rate * 0.7,
            (false, _) => self.usage_rate,
        }
    }

    /// Draws whether the customer actively uses the service on `day`.
    pub fn uses_service<R: Rng>(&self, day: u32, rng: &mut R) -> bool {
        rng.random_bool(self.usage_prob(day))
    }

    /// Probability the modem is off (does not answer the line test) on
    /// `day`, before any fault effects, given whether the customer used the
    /// service around test time.
    pub fn modem_off_prob(&self, day: u32, used_today: bool) -> f64 {
        if self.is_away(day) {
            // Most households leave the modem powered while away; the line
            // stays measurable even though nobody would notice a problem.
            if self.off_when_idle {
                0.85
            } else {
                0.10
            }
        } else if self.off_when_idle {
            if used_today {
                0.15
            } else {
                0.65
            }
        } else {
            0.02
        }
    }

    /// Probability of placing the call on `day` once the problem has been
    /// noticed, combining the base rate, the weekly calling pattern and the
    /// problem's perceived severity.
    pub fn call_prob(&self, day: u32, perceived_severity: f64, base_prob: f64) -> f64 {
        if self.is_away(day) {
            return 0.0;
        }
        let urgency = (0.25 + 0.75 * perceived_severity.clamp(0.0, 1.0)).min(1.0);
        (base_prob * DayOfWeek::of(day).call_weight() * urgency).clamp(0.0, 1.0)
    }
}

/// Generates the customer population deterministically.
pub fn generate_customers(config: &SimConfig, seed: u64) -> Vec<Customer> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weeks = config.days.div_ceil(7);
    (0..config.n_lines as u32)
        .map(|i| {
            // A slice of lines is nearly dark (seasonal homes, vacant
            // premises, lines kept for a fax that never rings). Nobody is
            // there to report their problems, so faults accumulate and the
            // predictor flags them — the paper's "conservative metric"
            // population and most of its not-on-site cases.
            let dark = rng.random_bool(0.05);
            let usage_rate =
                if dark { rng.random_range(0.005..0.05) } else { rng.random_range(0.15..0.95) };
            let off_when_idle = rng.random_bool(config.off_when_idle_fraction);
            let tolerance = rng.random_range(0.08..0.55);
            let weekend_heavy = rng.random_bool(0.3);

            // Vacation windows: per week a small chance to start a 1-2 week
            // absence; a few customers (snowbirds, long work trips) leave
            // for a month or more — the population behind the paper's
            // "customer not on site" false-incorrect predictions.
            let mut vacations = Vec::new();
            if rng.random_bool(0.06) {
                let len_weeks = rng.random_range(3..=8u32);
                let start_week = rng.random_range(0..weeks.max(1));
                let start = start_week * 7 + rng.random_range(0..7u32);
                vacations.push((start, start + len_weeks * 7));
            }
            let mut w = 0u32;
            while w < weeks {
                let in_long =
                    vacations.iter().any(|&(s, e)| w * 7 >= s.saturating_sub(7) && w * 7 < e);
                if !in_long && rng.random_bool(config.vacation_week_prob) {
                    let len_weeks = rng.random_range(1..=2u32);
                    let start = w * 7 + rng.random_range(0..7u32);
                    vacations.push((start, start + len_weeks * 7));
                    w += len_weeks;
                } else {
                    w += 1;
                }
            }

            Customer {
                line: LineId(i),
                usage_rate,
                off_when_idle,
                tolerance,
                vacations,
                weekend_heavy,
                churn_propensity: rng.random_range(0.05..0.5),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_customer() -> Customer {
        Customer {
            line: LineId(0),
            usage_rate: 0.6,
            off_when_idle: false,
            tolerance: 0.2,
            vacations: vec![(10, 17)],
            weekend_heavy: false,
            churn_propensity: 0.2,
        }
    }

    #[test]
    fn away_window_is_half_open() {
        let c = base_customer();
        assert!(!c.is_away(9));
        assert!(c.is_away(10));
        assert!(c.is_away(16));
        assert!(!c.is_away(17));
    }

    #[test]
    fn no_usage_while_away() {
        let c = base_customer();
        assert_eq!(c.usage_prob(12), 0.0);
        assert!(c.usage_prob(20) > 0.0);
    }

    #[test]
    fn weekend_heavy_users_shift_usage() {
        let mut c = base_customer();
        c.weekend_heavy = true;
        c.vacations.clear();
        let saturday = 6;
        let wednesday = 3;
        assert!(c.usage_prob(saturday) > c.usage_prob(wednesday));
    }

    #[test]
    fn modem_off_probability_orders_sensibly() {
        let mut c = base_customer();
        c.vacations.clear();
        // Always-on household barely ever misses a test.
        assert!(c.modem_off_prob(20, false) < 0.05);
        c.off_when_idle = true;
        let idle_off = c.modem_off_prob(20, false);
        let used_off = c.modem_off_prob(20, true);
        assert!(idle_off > used_off, "idle {idle_off} vs used {used_off}");
        c.vacations = vec![(18, 25)];
        assert!(c.modem_off_prob(20, false) > idle_off, "vacation maximizes off-prob");
    }

    #[test]
    fn call_prob_peaks_monday_scales_with_severity() {
        let mut c = base_customer();
        c.vacations.clear();
        let monday = 1u32;
        let saturday = 6u32;
        let base = 0.4;
        assert!(c.call_prob(monday, 0.8, base) > c.call_prob(saturday, 0.8, base));
        assert!(c.call_prob(monday, 0.9, base) > c.call_prob(monday, 0.1, base));
        c.vacations = vec![(10, 17)];
        assert_eq!(c.call_prob(12, 1.0, base), 0.0, "no calls from vacation");
    }

    #[test]
    fn generation_is_deterministic_and_sized() {
        let cfg = SimConfig::small(5);
        let a = generate_customers(&cfg, 11);
        let b = generate_customers(&cfg, 11);
        assert_eq!(a.len(), cfg.n_lines);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.usage_rate, y.usage_rate);
            assert_eq!(x.vacations, y.vacations);
        }
    }

    #[test]
    fn population_has_behavioural_diversity() {
        let cfg = SimConfig::small(6);
        let cs = generate_customers(&cfg, 12);
        let off_idle = cs.iter().filter(|c| c.off_when_idle).count();
        assert!(off_idle > 0 && off_idle < cs.len());
        let with_vacation = cs.iter().filter(|c| !c.vacations.is_empty()).count();
        assert!(with_vacation > 0, "someone must take a vacation");
        let frac = with_vacation as f64 / cs.len() as f64;
        assert!(frac < 0.9, "vacations should be occasional, got {frac}");
    }
}
