//! Field dispatches: technicians, test ordering, repairs, and the
//! disposition notes they leave behind.
//!
//! A technician arrives with a ranked list of candidate dispositions and
//! tests them in order until the culprit is found (or the list is
//! exhausted — a "no trouble found" dispatch). The number of tests and the
//! minutes burned are recorded: the trouble locator's entire value
//! proposition (Sec. 6) is shrinking those numbers by reordering the list.
//!
//! Label noise follows the paper: the recorded code is sometimes a
//! neighbouring disposition at the same location, and when several faults
//! are live the note names the one **closest to the end host**.

use crate::disposition::{dispositions_at, DispositionId, DISPOSITIONS, N_DISPOSITIONS};
use crate::fault::Fault;
use crate::ids::LineId;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Probability that the recorded disposition is a same-location neighbour
/// of the true one (technician shorthand, ambiguous repairs).
pub const LABEL_NOISE_PROB: f64 = 0.10;

/// Probability that a test of the *correct* disposition fails to detect the
/// fault (intermittent faults hide from meters). A missed fault leaves the
/// customer calling again — the paper's second-round-dispatch path in the
/// ATDS flow (Fig. 3).
pub const TEST_MISS_PROB: f64 = 0.06;

/// Outcome summary a technician files after a dispatch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DispositionNote {
    /// Ticket that triggered the dispatch (`None` for proactive dispatches).
    pub ticket: Option<u32>,
    /// The visited line.
    pub line: LineId,
    /// Day of the dispatch.
    pub day: u32,
    /// Recorded disposition (`None` = no trouble found).
    pub disposition: Option<DispositionId>,
    /// Number of location tests performed.
    pub tests_performed: u32,
    /// Minutes spent testing.
    pub minutes_spent: f64,
    /// Whether this was a NEVERMIND-style proactive dispatch.
    pub proactive: bool,
}

/// Result of running one dispatch against the line's live faults.
#[derive(Debug, Clone)]
pub struct DispatchOutcome {
    /// The filed note.
    pub note: DispositionNote,
    /// Index (into the line's fault list) of the repaired fault, if any.
    pub repaired_fault: Option<usize>,
    /// The *true* disposition of the repaired fault before label noise.
    pub true_disposition: Option<DispositionId>,
}

/// A deterministic "experience" ordering: dispositions by descending prior
/// weight (the paper's simple experience model — rank by historical
/// frequency). Ties break by table order.
pub fn basic_order(prior_counts: &[f64; N_DISPOSITIONS]) -> Vec<DispositionId> {
    let mut ids: Vec<usize> = (0..N_DISPOSITIONS).collect();
    ids.sort_by(|&a, &b| prior_counts[b].total_cmp(&prior_counts[a]).then(a.cmp(&b)));
    ids.into_iter().map(|i| DispositionId(i as u8)).collect()
}

/// Prior counts seeded from the static taxonomy weights (before any notes
/// have been observed).
pub fn taxonomy_priors() -> [f64; N_DISPOSITIONS] {
    let mut w = [0f64; N_DISPOSITIONS];
    for (i, d) in DISPOSITIONS.iter().enumerate() {
        w[i] = d.weight;
    }
    w
}

/// Runs one dispatch.
///
/// `faults` is the line's full fault history; only unrepaired, past-onset
/// faults are considered live. The technician walks `order` and stops at
/// the first disposition matching a live fault; that fault is repaired on
/// the spot. If several live faults exist and the walked order reaches one
/// of them, the *recorded* code is the live fault closest to the end host
/// (the paper's noise rule), with additional same-location label noise.
pub fn run_dispatch<R: Rng>(
    line: LineId,
    faults: &mut [Fault],
    day: u32,
    order: &[DispositionId],
    ticket: Option<u32>,
    proactive: bool,
    rng: &mut R,
) -> DispatchOutcome {
    let live: Vec<usize> = (0..faults.len()).filter(|&i| faults[i].active(day)).collect();

    let mut tests = 0u32;
    let mut minutes = 0.0f64;
    let mut hit: Option<usize> = None;
    for d in order {
        tests += 1;
        minutes += d.info().test_minutes;
        if let Some(&fi) = live.iter().find(|&&fi| faults[fi].disposition == *d) {
            // Even the right test can miss an intermittent fault; the
            // technician moves on and the visit may end "no trouble found",
            // leaving the customer to call again (second-round dispatch).
            if rng.random_bool(TEST_MISS_PROB) {
                continue;
            }
            hit = Some(fi);
            break;
        }
    }

    let Some(found_idx) = hit else {
        // Nothing found (either no live fault, or the order missed every
        // live disposition — impossible with a complete order).
        return DispatchOutcome {
            note: DispositionNote {
                ticket,
                line,
                day,
                disposition: None,
                tests_performed: tests,
                minutes_spent: minutes,
                proactive,
            },
            repaired_fault: None,
            true_disposition: None,
        };
    };

    // Repair the found fault. If other live faults share the line, the
    // paper's rule says the note records the one closest to the end host —
    // the technician fixes what they found but attributes the visit to the
    // host-nearest symptom source.
    faults[found_idx].repaired_day = Some(day);
    let true_disposition = faults[found_idx].disposition;
    let closest = live
        .iter()
        .map(|&fi| faults[fi].disposition)
        .min_by_key(|d| d.location())
        // lint:allow(no-panic-in-lib) -- found_idx above proves live holds at least one fault
        .expect("live is non-empty");

    let mut recorded =
        if closest.location() < true_disposition.location() { closest } else { true_disposition };

    // Same-location label noise.
    if rng.random_bool(LABEL_NOISE_PROB) {
        let peers = dispositions_at(recorded.location());
        let pick = rng.random_range(0..peers.len());
        recorded = peers[pick];
    }

    DispatchOutcome {
        note: DispositionNote {
            ticket,
            line,
            day,
            disposition: Some(recorded),
            tests_performed: tests,
            minutes_spent: minutes,
            proactive,
        },
        repaired_fault: Some(found_idx),
        true_disposition: Some(true_disposition),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disposition::by_code;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fault(code: &str, onset: u32) -> Fault {
        Fault {
            disposition: by_code(code).expect("exists"),
            onset_day: onset,
            ramp_days: 1.0,
            severity_cap: 1.0,
            repaired_day: None,
        }
    }

    #[test]
    fn basic_order_sorts_by_prior() {
        let mut priors = taxonomy_priors();
        priors[5] = 100.0;
        let order = basic_order(&priors);
        assert_eq!(order[0], DispositionId(5));
        assert_eq!(order.len(), N_DISPOSITIONS);
    }

    #[test]
    fn technician_stops_at_first_hit() {
        let mut faults = vec![fault("F1-WET-CONDUCTOR", 0)];
        let order = basic_order(&taxonomy_priors());
        let pos = order
            .iter()
            .position(|d| *d == by_code("F1-WET-CONDUCTOR").expect("exists"))
            .expect("in order") as u32;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = run_dispatch(LineId(0), &mut faults, 30, &order, Some(7), false, &mut rng);
        assert_eq!(out.note.tests_performed, pos + 1);
        assert_eq!(out.repaired_fault, Some(0));
        assert!(faults[0].repaired_day == Some(30));
        assert!(out.note.minutes_spent > 0.0);
    }

    #[test]
    fn better_order_means_fewer_tests() {
        let target = by_code("F1-BRIDGE-TAP").expect("exists");
        let mut faults_a = vec![fault("F1-BRIDGE-TAP", 0)];
        let mut faults_b = vec![fault("F1-BRIDGE-TAP", 0)];
        let mut good_order = vec![target];
        good_order.extend(basic_order(&taxonomy_priors()).into_iter().filter(|d| *d != target));
        let bad_order = basic_order(&taxonomy_priors());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let good = run_dispatch(LineId(0), &mut faults_a, 10, &good_order, None, true, &mut rng);
        let bad = run_dispatch(LineId(0), &mut faults_b, 10, &bad_order, None, true, &mut rng);
        assert_eq!(good.note.tests_performed, 1);
        assert!(bad.note.tests_performed >= good.note.tests_performed);
    }

    #[test]
    fn no_trouble_found_walks_whole_list() {
        let mut faults: Vec<Fault> = Vec::new();
        let order = basic_order(&taxonomy_priors());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let out = run_dispatch(LineId(1), &mut faults, 5, &order, None, true, &mut rng);
        assert!(out.note.disposition.is_none());
        assert_eq!(out.note.tests_performed, N_DISPOSITIONS as u32);
        assert!(out.repaired_fault.is_none());
    }

    #[test]
    fn closest_to_host_rule() {
        // Live faults at DS and HN; even if the DS fault is hit first, the
        // note must record an HN-location code (the paper's rule).
        let mut faults = vec![fault("DS-WIRING", 0), fault("HN-JACK", 0)];
        // Order that reaches the DSLAM fault first.
        let first = by_code("DS-WIRING").expect("exists");
        let mut order = vec![first];
        order.extend(basic_order(&taxonomy_priors()).into_iter().filter(|d| *d != first));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // Run repeatedly to see through label noise: the recorded location
        // must be HN in the (1 - noise) majority of runs.
        let mut hn_records = 0;
        let mut found_runs = 0;
        let runs = 60;
        for _ in 0..runs {
            let mut fs = faults.clone();
            let out = run_dispatch(LineId(0), &mut fs, 20, &order, None, false, &mut rng);
            // The miss path can skip the DS fault (finding HN instead) or
            // find nothing at all; only completed finds are in scope here.
            let Some(rec) = out.note.disposition else { continue };
            found_runs += 1;
            if rec.location() == crate::disposition::MajorLocation::HomeNetwork {
                hn_records += 1;
            }
        }
        assert!(found_runs > runs * 3 / 4, "most dispatches find something");
        assert!(hn_records > found_runs * 7 / 10, "HN recorded {hn_records}/{found_runs}");
        let _ = &mut faults;
    }

    #[test]
    fn label_noise_stays_in_location() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let order = basic_order(&taxonomy_priors());
        let truth = by_code("F2-PROTECTOR").expect("exists");
        let mut mismatches = 0;
        let mut found = 0;
        let runs = 300;
        for _ in 0..runs {
            let mut faults = vec![fault("F2-PROTECTOR", 0)];
            let out = run_dispatch(LineId(0), &mut faults, 9, &order, None, false, &mut rng);
            // Missed-detection runs end with no disposition; skip them.
            let Some(rec) = out.note.disposition else { continue };
            found += 1;
            assert_eq!(rec.location(), truth.location(), "noise must stay in-location");
            if rec != truth {
                mismatches += 1;
            }
        }
        let rate = mismatches as f64 / found as f64;
        assert!(rate > 0.02 && rate < 0.25, "label-noise rate {rate}");
    }

    #[test]
    fn tests_sometimes_miss_and_leave_the_fault_live() {
        // Over many dispatches against the same single fault, a few visits
        // must end "no trouble found" (the miss path), and in those cases
        // the fault must remain unrepaired for the second-round dispatch.
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let order = basic_order(&taxonomy_priors());
        let mut misses = 0;
        let runs = 400;
        for _ in 0..runs {
            let mut faults = vec![fault("F2-PROTECTOR", 0)];
            let out = run_dispatch(LineId(0), &mut faults, 30, &order, None, false, &mut rng);
            if out.note.disposition.is_none() {
                misses += 1;
                assert!(faults[0].repaired_day.is_none(), "missed fault must stay live");
                assert_eq!(out.note.tests_performed, N_DISPOSITIONS as u32);
            } else {
                assert_eq!(faults[0].repaired_day, Some(30));
            }
        }
        let rate = misses as f64 / runs as f64;
        assert!(rate > 0.01 && rate < 0.2, "miss rate {rate}");
    }

    #[test]
    fn repaired_faults_are_not_rediscovered() {
        let mut faults = vec![fault("HN-MODEM", 0)];
        let order = basic_order(&taxonomy_priors());
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let first = run_dispatch(LineId(0), &mut faults, 10, &order, None, false, &mut rng);
        assert!(first.repaired_fault.is_some());
        let second = run_dispatch(LineId(0), &mut faults, 11, &order, None, false, &mut rng);
        assert!(second.note.disposition.is_none(), "fault already repaired");
    }
}
