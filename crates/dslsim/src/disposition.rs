//! The disposition taxonomy — Table 1 / Fig. 2 of the paper.
//!
//! Field technicians close every dispatch with a *disposition code* naming
//! the repaired component or the configuration change. The paper groups 52
//! such codes (those appearing ≥ 20 times, covering 81.9% of customer-edge
//! problems) into four *major locations* along the line:
//!
//! * **HN** — the home network (modem, filters, inside wiring, jacks, …);
//! * **F2** — the path from the home network to the crossbox (drop wire,
//!   protector, DEMARC, …);
//! * **F1** — the path from the crossbox to the DSLAM (cable pairs,
//!   bridge taps, wet conductors, …);
//! * **DS** — the DSLAM itself (cards, wiring, transport, speed profile).
//!
//! The paper lists representative dispositions per location; this module
//! fills the taxonomy out to the full 52 codes with operationally plausible
//! variants, each carrying the attributes the simulator and the trouble
//! locator need: prevalence weight, symptom class, degradation ramp, and
//! the technician's per-test cost.

use serde::{Deserialize, Serialize};

/// The four major trouble locations (Fig. 2), ordered by distance from the
/// end host — the order matters for the paper's label-noise rule ("if a
/// problem is caused by multiple devices, the code is always associated with
/// the device closest to the end host").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MajorLocation {
    /// Home network.
    HomeNetwork,
    /// Between the home network and the crossbox.
    F2,
    /// Between the crossbox and the DSLAM.
    F1,
    /// The DSLAM (and immediate upstream transport).
    Dslam,
}

impl MajorLocation {
    /// All four locations, closest-to-host first.
    pub const ALL: [MajorLocation; 4] =
        [MajorLocation::HomeNetwork, MajorLocation::F2, MajorLocation::F1, MajorLocation::Dslam];

    /// Short operator label ("HN", "F2", "F1", "DS").
    pub fn label(self) -> &'static str {
        match self {
            MajorLocation::HomeNetwork => "HN",
            MajorLocation::F2 => "F2",
            MajorLocation::F1 => "F1",
            MajorLocation::Dslam => "DS",
        }
    }

    /// Whether the location is on the outside plant (exposed to weather).
    pub fn is_outside(self) -> bool {
        matches!(self, MajorLocation::F2 | MajorLocation::F1)
    }
}

/// How a fully-developed fault manifests to the customer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// Connection is lost outright (pair cut, dead modem): noticed on first
    /// use, reported quickly.
    Hard,
    /// Connection drops sporadically (moisture, corrosion, flaky card):
    /// noticed probabilistically, tolerated for a while, repeat tickets.
    Intermittent,
    /// Line stays up but slow/unstable (bridge tap, profile mismatch):
    /// noticed slowly, reported late or never.
    Degraded,
}

/// Index into [`DISPOSITIONS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DispositionId(pub u8);

impl DispositionId {
    /// The static record for this disposition.
    #[inline]
    pub fn info(self) -> &'static DispositionInfo {
        &DISPOSITIONS[self.0 as usize]
    }

    /// The disposition's major location.
    #[inline]
    pub fn location(self) -> MajorLocation {
        self.info().location
    }
}

/// Static attributes of one disposition code.
#[derive(Debug, Clone, Serialize)]
pub struct DispositionInfo {
    /// Operator short code, e.g. `HN-MODEM`.
    pub code: &'static str,
    /// Major location the repair happens at.
    pub location: MajorLocation,
    /// Free-text description, in the style of Table 1.
    pub description: &'static str,
    /// Customer-facing symptom class.
    pub class: FaultClass,
    /// Relative prevalence weight (arbitrary units; larger = more common).
    pub weight: f64,
    /// Mean days from fault onset to full development (the degradation ramp
    /// that makes proactive prediction possible).
    pub ramp_days: f64,
    /// Whether weather (rain/moisture episodes) multiplies this fault's
    /// hazard. Only meaningful for outside-plant locations.
    pub weather_sensitive: bool,
    /// Minutes a technician needs to test for (and if found, fix) this
    /// disposition during a dispatch.
    pub test_minutes: f64,
}

/// Number of disposition codes (the paper's 52).
pub const N_DISPOSITIONS: usize = 52;

macro_rules! d {
    ($code:literal, $loc:ident, $desc:literal, $class:ident, $w:literal, $ramp:literal, $wx:literal, $mins:literal) => {
        DispositionInfo {
            code: $code,
            location: MajorLocation::$loc,
            description: $desc,
            class: FaultClass::$class,
            weight: $w,
            ramp_days: $ramp,
            weather_sensitive: $wx,
            test_minutes: $mins,
        }
    };
}

/// The full disposition table. Order groups the four major locations
/// (HN 0–13, F2 14–26, F1 27–39, DS 40–51); code strings are stable and
/// used in exported datasets.
pub const DISPOSITIONS: [DispositionInfo; N_DISPOSITIONS] = [
    // --- Home network (14) ---
    d!(
        "HN-MODEM",
        HomeNetwork,
        "Defective DSL modem replaced",
        Intermittent,
        6.0,
        10.0,
        false,
        10.0
    ),
    d!(
        "HN-MODEM-CFG",
        HomeNetwork,
        "DSL modem reconfigured / firmware reloaded",
        Degraded,
        3.5,
        6.0,
        false,
        8.0
    ),
    d!(
        "HN-FILTER",
        HomeNetwork,
        "Missing or defective micro-filter",
        Degraded,
        4.0,
        4.0,
        false,
        5.0
    ),
    d!("HN-SPLITTER", HomeNetwork, "Defective POTS splitter", Degraded, 2.5, 7.0, false, 6.0),
    d!(
        "HN-NETCABLE",
        HomeNetwork,
        "Defective network cable between modem and host",
        Hard,
        2.5,
        2.0,
        false,
        5.0
    ),
    d!(
        "HN-IW-WET",
        HomeNetwork,
        "Inside wire wet or water damaged",
        Intermittent,
        3.0,
        12.0,
        true,
        20.0
    ),
    d!("HN-IW-CORRODED", HomeNetwork, "Inside wire corroded", Intermittent, 3.0, 21.0, false, 20.0),
    d!("HN-IW-CUT", HomeNetwork, "Inside wire cut or broken", Hard, 2.0, 1.0, false, 18.0),
    d!(
        "HN-JACK",
        HomeNetwork,
        "Defective wall jack re-terminated",
        Intermittent,
        2.5,
        9.0,
        false,
        8.0
    ),
    d!("HN-NIC", HomeNetwork, "Defective network interface card", Hard, 1.5, 3.0, false, 12.0),
    d!(
        "HN-SOFTWARE",
        HomeNetwork,
        "Host software or driver misconfiguration",
        Degraded,
        3.0,
        2.0,
        false,
        15.0
    ),
    d!(
        "HN-ROUTER",
        HomeNetwork,
        "Defective home router or gateway",
        Intermittent,
        2.5,
        8.0,
        false,
        10.0
    ),
    d!("HN-POWER", HomeNetwork, "Modem power supply failure", Hard, 1.5, 2.0, false, 6.0),
    d!(
        "HN-WIRING-REARRANGE",
        HomeNetwork,
        "Home wiring rearranged, extension removed",
        Degraded,
        2.0,
        5.0,
        false,
        16.0
    ),
    // --- F2: home network to crossbox (13) ---
    d!("F2-AERIAL-DROP", F2, "Aerial drop wire replaced", Intermittent, 2.5, 14.0, true, 25.0),
    d!(
        "F2-BURIED-DROP",
        F2,
        "Repaired existing buried service wire",
        Intermittent,
        2.0,
        18.0,
        true,
        30.0
    ),
    d!("F2-DEMARC", F2, "Access point (DEMARC/NID) repaired", Intermittent, 2.5, 10.0, true, 12.0),
    d!("F2-PROTECTOR", F2, "Defect in protector unit", Intermittent, 2.0, 12.0, true, 12.0),
    d!(
        "F2-PROT-DEMARC-WIRE",
        F2,
        "Wire from protector to DEMARC replaced",
        Degraded,
        1.5,
        9.0,
        false,
        14.0
    ),
    d!("F2-JUMPER", F2, "Jumper wire re-terminated", Degraded, 1.5, 8.0, false, 10.0),
    d!("F2-MTU", F2, "Defective MTU removed", Degraded, 1.0, 11.0, false, 12.0),
    d!(
        "F2-TERMINAL",
        F2,
        "Defective ready-access terminal on the drop side",
        Intermittent,
        1.5,
        13.0,
        true,
        18.0
    ),
    d!("F2-DROP-CONN", F2, "Corroded drop connector resealed", Intermittent, 1.5, 16.0, true, 10.0),
    d!(
        "F2-SQUIRREL",
        F2,
        "Drop wire chewed or abraded (wildlife damage)",
        Hard,
        1.0,
        5.0,
        false,
        22.0
    ),
    d!("F2-TREE", F2, "Drop wire strained by vegetation", Intermittent, 1.0, 15.0, true, 20.0),
    d!("F2-GROUND", F2, "Faulty grounding at the NID", Degraded, 1.0, 14.0, true, 12.0),
    d!(
        "F2-SPLICE",
        F2,
        "Defective splice in the service wire",
        Intermittent,
        1.0,
        17.0,
        true,
        24.0
    ),
    // --- F1: crossbox to DSLAM (13) ---
    d!(
        "F1-PAIR-TRANSFER",
        F1,
        "Transferred service to another cable pair",
        Intermittent,
        2.5,
        15.0,
        true,
        28.0
    ),
    d!(
        "F1-BRIDGE-TAP",
        F1,
        "Bridge tap removed from the customer's facilities",
        Degraded,
        2.0,
        25.0,
        false,
        26.0
    ),
    d!(
        "F1-WET-CONDUCTOR",
        F1,
        "Wet or corroded wire conductor dried or replaced",
        Intermittent,
        3.0,
        14.0,
        true,
        24.0
    ),
    d!(
        "F1-CROSSBOX",
        F1,
        "Defect found and repaired in a crossbox",
        Intermittent,
        2.0,
        12.0,
        true,
        18.0
    ),
    d!(
        "F1-BURIED-TERM",
        F1,
        "Defective buried ready-access terminal",
        Intermittent,
        1.5,
        16.0,
        true,
        26.0
    ),
    d!("F1-PAIR-CUT", F1, "Cable pair cut repaired", Hard, 2.0, 1.0, false, 30.0),
    d!(
        "F1-DEFECT-CABLE",
        F1,
        "Defective cable section replaced",
        Intermittent,
        1.5,
        13.0,
        true,
        32.0
    ),
    d!("F1-STUB", F1, "Cable stub removed", Degraded, 1.0, 22.0, false, 24.0),
    d!(
        "F1-BINDER",
        F1,
        "Binder-group noise isolated (crosstalk)",
        Degraded,
        1.5,
        18.0,
        false,
        22.0
    ),
    d!("F1-LOAD-COIL", F1, "Load coil removed", Degraded, 1.0, 20.0, false, 25.0),
    d!(
        "F1-SPLICE-CASE",
        F1,
        "Water pumped out of a splice case and resealed",
        Intermittent,
        1.5,
        11.0,
        true,
        28.0
    ),
    d!("F1-XBOX-JUMPER", F1, "Crossbox jumper re-run", Degraded, 1.0, 10.0, false, 15.0),
    d!("F1-PRESSURE", F1, "Cable pressurization restored", Intermittent, 1.0, 13.0, true, 26.0),
    // --- DSLAM (12) ---
    d!(
        "DS-SPEED-DOWN",
        Dslam,
        "Reduced speed to stabilize the line (profile downgrade)",
        Degraded,
        3.0,
        20.0,
        false,
        10.0
    ),
    d!(
        "DS-TRANSPORT",
        Dslam,
        "Digital stream transport repaired",
        Intermittent,
        1.5,
        8.0,
        false,
        20.0
    ),
    d!(
        "DS-WIRING",
        Dslam,
        "Wiring at the DSLAM re-terminated",
        Intermittent,
        2.0,
        10.0,
        false,
        16.0
    ),
    d!(
        "DS-PRONTO-ABCU",
        Dslam,
        "DSLAM pronto card ABCU replaced",
        Intermittent,
        1.5,
        9.0,
        false,
        18.0
    ),
    d!(
        "DS-PRONTO-ADLU",
        Dslam,
        "DSLAM pronto card ADLU replaced",
        Intermittent,
        1.5,
        9.0,
        false,
        18.0
    ),
    d!(
        "DS-PORT",
        Dslam,
        "Moved subscriber to another DSLAM port",
        Intermittent,
        1.5,
        7.0,
        false,
        14.0
    ),
    d!("DS-ATM", Dslam, "ATM switch or uplink issue resolved", Intermittent, 1.0, 6.0, false, 20.0),
    d!("DS-DIGITAL-STREAM", Dslam, "Digital stream reprovisioned", Degraded, 1.0, 8.0, false, 15.0),
    d!(
        "DS-PROFILE-CFG",
        Dslam,
        "Port profile misconfiguration corrected",
        Degraded,
        1.5,
        5.0,
        false,
        10.0
    ),
    d!("DS-CARD-SEAT", Dslam, "Line card reseated", Intermittent, 1.0, 6.0, false, 12.0),
    d!("DS-SHELF-POWER", Dslam, "Shelf power or fan fault serviced", Hard, 0.8, 4.0, false, 20.0),
    d!("DS-SYNC", Dslam, "Port resynchronization / firmware reset", Degraded, 1.2, 5.0, false, 8.0),
];

/// All disposition ids, in table order.
pub fn all_dispositions() -> impl Iterator<Item = DispositionId> {
    (0..N_DISPOSITIONS as u8).map(DispositionId)
}

/// Disposition ids belonging to a major location, in table order.
pub fn dispositions_at(location: MajorLocation) -> Vec<DispositionId> {
    all_dispositions().filter(|d| d.location() == location).collect()
}

/// Looks up a disposition by its code string.
pub fn by_code(code: &str) -> Option<DispositionId> {
    DISPOSITIONS.iter().position(|d| d.code == code).map(|i| DispositionId(i as u8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_52_dispositions() {
        assert_eq!(DISPOSITIONS.len(), 52);
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<&str> = DISPOSITIONS.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 52, "duplicate disposition codes");
    }

    #[test]
    fn every_location_has_multiple_dispositions() {
        for loc in MajorLocation::ALL {
            let n = dispositions_at(loc).len();
            assert!(n >= 10, "{} has only {n} dispositions", loc.label());
        }
        let total: usize = MajorLocation::ALL.iter().map(|&l| dispositions_at(l).len()).sum();
        assert_eq!(total, 52);
    }

    #[test]
    fn no_dominant_disposition_within_location() {
        // Paper: "there is no dominant disposition in these major locations".
        for loc in MajorLocation::ALL {
            let ids = dispositions_at(loc);
            let total: f64 = ids.iter().map(|d| d.info().weight).sum();
            for d in ids {
                assert!(
                    d.info().weight / total < 0.5,
                    "{} dominates {}",
                    d.info().code,
                    loc.label()
                );
            }
        }
    }

    #[test]
    fn location_order_is_closest_to_host_first() {
        assert!(MajorLocation::HomeNetwork < MajorLocation::F2);
        assert!(MajorLocation::F2 < MajorLocation::F1);
        assert!(MajorLocation::F1 < MajorLocation::Dslam);
    }

    #[test]
    fn outside_plant_flag() {
        assert!(!MajorLocation::HomeNetwork.is_outside());
        assert!(MajorLocation::F2.is_outside());
        assert!(MajorLocation::F1.is_outside());
        assert!(!MajorLocation::Dslam.is_outside());
    }

    #[test]
    fn weather_sensitivity_only_on_outside_or_home_moisture() {
        for d in &DISPOSITIONS {
            if d.weather_sensitive {
                assert!(
                    d.location.is_outside() || d.code == "HN-IW-WET",
                    "{} is weather sensitive but inside",
                    d.code
                );
            }
        }
    }

    #[test]
    fn lookup_by_code() {
        let id = by_code("F1-BRIDGE-TAP").expect("exists");
        assert_eq!(id.location(), MajorLocation::F1);
        assert_eq!(id.info().class, FaultClass::Degraded);
        assert!(by_code("NOPE").is_none());
    }

    #[test]
    fn hard_faults_have_short_ramps() {
        for d in &DISPOSITIONS {
            if d.class == FaultClass::Hard {
                assert!(d.ramp_days <= 5.0, "{} is Hard but ramps {} days", d.code, d.ramp_days);
            }
        }
    }

    #[test]
    fn positive_attributes() {
        for d in &DISPOSITIONS {
            assert!(d.weight > 0.0);
            assert!(d.ramp_days > 0.0);
            assert!(d.test_minutes > 0.0);
        }
    }
}
