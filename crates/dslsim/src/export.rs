//! Dataset export and import.
//!
//! A downstream user of this reproduction will want the synthetic logs
//! outside the process: to eyeball them, to feed another learning stack, or
//! to archive the exact dataset behind a result. Two formats are provided:
//!
//! * **CSV** — one file per table (measurements, tickets, notes, outages),
//!   headers included, RFC-4180-style quoting where needed;
//! * **JSONL** — one serde-serialized record per line, which round-trips
//!   losslessly through [`import_measurements_jsonl`] and friends.
//!
//! Exports are plain functions over `io::Write`, so they work with files,
//! buffers, or pipes; no paths are hard-coded.

use crate::dispatch::DispositionNote;
use crate::measurement::{LineMetric, LineTest};
use crate::outage::OutageEvent;
use crate::ticket::{Ticket, TicketCategory};
use crate::world::SimOutput;
use std::io::{self, BufRead, Write};

/// Writes the measurement table as CSV: `line,day,<25 metric columns>`.
pub fn export_measurements_csv<W: Write>(out: &mut W, tests: &[LineTest]) -> io::Result<()> {
    write!(out, "line,day")?;
    for m in LineMetric::ALL {
        write!(out, ",{}", m.name())?;
    }
    writeln!(out)?;
    for t in tests {
        write!(out, "{},{}", t.line.0, t.day)?;
        for v in t.values {
            write!(out, ",{v}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Writes the ticket table as CSV: `id,line,day,category`.
pub fn export_tickets_csv<W: Write>(out: &mut W, tickets: &[Ticket]) -> io::Result<()> {
    writeln!(out, "id,line,day,category")?;
    for t in tickets {
        writeln!(out, "{},{},{},{}", t.id, t.line.0, t.day, category_label(t.category))?;
    }
    Ok(())
}

/// Writes the disposition-note table as CSV:
/// `ticket,line,day,disposition,tests_performed,minutes_spent,proactive`.
pub fn export_notes_csv<W: Write>(out: &mut W, notes: &[DispositionNote]) -> io::Result<()> {
    writeln!(out, "ticket,line,day,disposition,tests_performed,minutes_spent,proactive")?;
    for n in notes {
        let ticket = n.ticket.map_or(String::new(), |t| t.to_string());
        let disposition = n.disposition.map_or("NO_TROUBLE_FOUND", |d| d.info().code);
        writeln!(
            out,
            "{},{},{},{},{},{},{}",
            ticket, n.line.0, n.day, disposition, n.tests_performed, n.minutes_spent, n.proactive
        )?;
    }
    Ok(())
}

/// Writes the outage table as CSV: `dslam,start,end`.
pub fn export_outages_csv<W: Write>(out: &mut W, outages: &[OutageEvent]) -> io::Result<()> {
    writeln!(out, "dslam,start,end")?;
    for e in outages {
        writeln!(out, "{},{},{}", e.dslam.0, e.start, e.end)?;
    }
    Ok(())
}

/// Writes every table of a [`SimOutput`] into the given directory as
/// `measurements.csv`, `tickets.csv`, `notes.csv`, `outages.csv`.
pub fn export_csv_dir(dir: &std::path::Path, output: &SimOutput) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join("measurements.csv"))?);
    export_measurements_csv(&mut f, &output.measurements)?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join("tickets.csv"))?);
    export_tickets_csv(&mut f, &output.tickets)?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join("notes.csv"))?);
    export_notes_csv(&mut f, &output.notes)?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join("outages.csv"))?);
    export_outages_csv(&mut f, &output.outage_events)?;
    Ok(())
}

fn category_label(c: TicketCategory) -> &'static str {
    match c {
        TicketCategory::CustomerEdge => "customer_edge",
        TicketCategory::Outage => "outage",
        TicketCategory::NonTechnical => "non_technical",
    }
}

/// Writes records as JSON Lines via serde (lossless round-trip).
pub fn export_jsonl<W: Write, T: serde::Serialize>(out: &mut W, records: &[T]) -> io::Result<()> {
    for r in records {
        let line =
            serde_json::to_string(r).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        writeln!(out, "{line}")?;
    }
    Ok(())
}

/// Reads serde records back from JSON Lines. Empty lines are skipped;
/// malformed lines produce an error naming the line number.
pub fn import_jsonl<R: BufRead, T: serde::de::DeserializeOwned>(input: R) -> io::Result<Vec<T>> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record: T = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", i + 1))
        })?;
        out.push(record);
    }
    Ok(out)
}

/// Convenience: round-trips measurements through JSONL.
pub fn import_measurements_jsonl<R: BufRead>(input: R) -> io::Result<Vec<LineTest>> {
    import_jsonl(input)
}

/// Convenience: round-trips tickets through JSONL.
pub fn import_tickets_jsonl<R: BufRead>(input: R) -> io::Result<Vec<Ticket>> {
    import_jsonl(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::world::World;
    use std::io::BufReader;

    fn sample_output() -> SimOutput {
        let mut cfg = SimConfig::small(17);
        cfg.n_lines = 300;
        cfg.days = 120;
        World::generate(cfg).run()
    }

    #[test]
    fn measurements_csv_has_header_and_rows() {
        let out = sample_output();
        let mut buf = Vec::new();
        export_measurements_csv(&mut buf, &out.measurements).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let mut lines = text.lines();
        let header = lines.next().expect("header");
        assert!(header.starts_with("line,day,state,dnbr,"));
        assert_eq!(header.split(',').count(), 2 + 25);
        let n_rows = lines.count();
        assert_eq!(n_rows, out.measurements.len());
    }

    #[test]
    fn tickets_csv_categories_are_labelled() {
        let out = sample_output();
        let mut buf = Vec::new();
        export_tickets_csv(&mut buf, &out.tickets).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.lines().count() == out.tickets.len() + 1);
        assert!(text.contains("customer_edge"));
    }

    #[test]
    fn notes_csv_handles_no_trouble_found() {
        let out = sample_output();
        let mut buf = Vec::new();
        export_notes_csv(&mut buf, &out.notes).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().count(), out.notes.len() + 1);
        // Every data row has the full column count.
        for row in text.lines().skip(1) {
            assert_eq!(row.split(',').count(), 7, "row {row}");
        }
    }

    #[test]
    fn jsonl_roundtrip_measurements() {
        let out = sample_output();
        let sample = &out.measurements[..100.min(out.measurements.len())];
        let mut buf = Vec::new();
        export_jsonl(&mut buf, sample).expect("write");
        let back = import_measurements_jsonl(BufReader::new(&buf[..])).expect("read");
        assert_eq!(back.len(), sample.len());
        for (a, b) in sample.iter().zip(&back) {
            assert_eq!(a.line, b.line);
            assert_eq!(a.day, b.day);
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn jsonl_roundtrip_tickets() {
        let out = sample_output();
        let mut buf = Vec::new();
        export_jsonl(&mut buf, &out.tickets).expect("write");
        let back = import_tickets_jsonl(BufReader::new(&buf[..])).expect("read");
        assert_eq!(back.len(), out.tickets.len());
        for (a, b) in out.tickets.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.category, b.category);
        }
    }

    #[test]
    fn jsonl_skips_blank_lines_and_reports_bad_ones() {
        let good = r#"{"id":1,"line":2,"day":3,"category":"CustomerEdge"}

{"id":2,"line":5,"day":9,"category":"Outage"}"#;
        let back: Vec<Ticket> = import_jsonl(BufReader::new(good.as_bytes())).expect("parse");
        assert_eq!(back.len(), 2);

        let bad = "{\"id\":1}\nnot json\n";
        let err = import_jsonl::<_, Ticket>(BufReader::new(bad.as_bytes())).expect_err("must fail");
        assert!(err.to_string().contains("line 1"), "error names the line: {err}");
    }

    #[test]
    fn csv_dir_writes_all_tables() {
        let out = sample_output();
        let dir = std::env::temp_dir().join(format!("nevermind-export-{}", std::process::id()));
        export_csv_dir(&dir, &out).expect("export dir");
        for name in ["measurements.csv", "tickets.csv", "notes.csv", "outages.csv"] {
            let p = dir.join(name);
            assert!(p.exists(), "{name} missing");
            assert!(std::fs::metadata(&p).expect("meta").len() > 0, "{name} empty");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
