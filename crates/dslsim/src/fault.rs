//! Component faults: lifecycle, hazards, and measurement signatures.
//!
//! The central modelling commitment — the one the whole reproduction leans
//! on — is that faults are *progressive*: a component degrades over a ramp
//! of days-to-weeks before it is fully symptomatic. During the ramp the
//! Saturday line test already shows elevated code violations, depressed
//! noise margin, reduced sync rate, etc., while the customer has not yet
//! complained. That gap between measurable degradation and the eventual
//! ticket is precisely the window NEVERMIND's ticket predictor exploits.

use crate::disposition::{DispositionId, FaultClass, MajorLocation, DISPOSITIONS, N_DISPOSITIONS};
use crate::topology::Line;
use serde::{Deserialize, Serialize};

/// One fault instance on a line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fault {
    /// What a technician would ultimately record.
    pub disposition: DispositionId,
    /// Day degradation begins.
    pub onset_day: u32,
    /// Realized ramp length in days (onset → full severity).
    pub ramp_days: f64,
    /// Severity at full development, in (0, 1].
    pub severity_cap: f64,
    /// Day the fault was repaired (dispatch outcome), if any.
    pub repaired_day: Option<u32>,
}

impl Fault {
    /// Severity at a given day: 0 before onset and after repair, ramping
    /// linearly up to [`Fault::severity_cap`] over [`Fault::ramp_days`].
    pub fn severity(&self, day: u32) -> f64 {
        if day < self.onset_day {
            return 0.0;
        }
        if let Some(r) = self.repaired_day {
            if day >= r {
                return 0.0;
            }
        }
        let elapsed = (day - self.onset_day) as f64;
        let frac = if self.ramp_days <= 0.0 { 1.0 } else { (elapsed / self.ramp_days).min(1.0) };
        self.severity_cap * frac
    }

    /// Whether the fault is unrepaired and past onset at `day`.
    pub fn active(&self, day: u32) -> bool {
        self.severity(day) > 0.0
    }

    /// Customer-perceived symptom severity at `day` (class-dependent: a
    /// hard fault at full severity is far more noticeable than a slowdown).
    pub fn perceived_severity(&self, day: u32) -> f64 {
        let s = self.severity(day);
        match self.disposition.info().class {
            FaultClass::Hard => s,
            FaultClass::Intermittent => 0.55 * s,
            FaultClass::Degraded => 0.28 * s,
        }
    }
}

/// How a fully developed fault perturbs the 25 line metrics; the physics
/// model scales every field by the current severity.
#[derive(Debug, Clone, Copy)]
pub struct FaultSignature {
    /// Multiplies the achievable sync rate (≤ 1; 0 = line down).
    pub rate_factor: f64,
    /// Multiplies the max attainable rate estimate.
    pub attain_factor: f64,
    /// dB subtracted from the noise margin.
    pub nmr_delta_db: f64,
    /// Multiplies the code-violation rate.
    pub cv_mult: f64,
    /// Multiplies the errored-seconds rate.
    pub es_mult: f64,
    /// Multiplies the FEC-event rate.
    pub fec_mult: f64,
    /// Probability the modem fails to answer the Saturday test at full
    /// severity (dead modem / power fault / line fully cut).
    pub no_answer_prob: f64,
    /// Probability the test completes but reports `state = 0` (modem
    /// answering erratically).
    pub state_flap_prob: f64,
    /// dB added to the measured signal attenuation (series resistance from
    /// moisture, corrosion, or bad splices on the copper path).
    pub aten_delta_db: f64,
    /// Feet added to the *estimated* loop length (impedance anomalies skew
    /// the estimator).
    pub loop_est_bias_ft: f64,
    /// Whether the test detects a bridge tap.
    pub sets_bt: bool,
    /// Whether the test detects crosstalk.
    pub sets_crosstalk: bool,
    /// Multiplies the rolling cell counts (customers use a broken line
    /// less; a dead line passes no cells).
    pub cells_factor: f64,
}

impl Default for FaultSignature {
    fn default() -> Self {
        Self {
            rate_factor: 1.0,
            attain_factor: 1.0,
            nmr_delta_db: 0.0,
            cv_mult: 1.0,
            es_mult: 1.0,
            fec_mult: 1.0,
            no_answer_prob: 0.0,
            state_flap_prob: 0.0,
            aten_delta_db: 0.0,
            loop_est_bias_ft: 0.0,
            sets_bt: false,
            sets_crosstalk: false,
            cells_factor: 1.0,
        }
    }
}

/// The measurement signature of a disposition, derived from its class and
/// location plus a few code-specific touches.
pub fn signature_of(d: DispositionId) -> FaultSignature {
    let info = d.info();
    let mut sig = match info.class {
        FaultClass::Hard => FaultSignature {
            rate_factor: 0.05,
            attain_factor: 0.4,
            nmr_delta_db: 12.0,
            cv_mult: 30.0,
            es_mult: 40.0,
            fec_mult: 15.0,
            no_answer_prob: 0.75,
            state_flap_prob: 0.2,
            cells_factor: 0.05,
            ..FaultSignature::default()
        },
        FaultClass::Intermittent => FaultSignature {
            rate_factor: 0.6,
            attain_factor: 0.75,
            nmr_delta_db: 7.0,
            cv_mult: 18.0,
            es_mult: 22.0,
            fec_mult: 10.0,
            no_answer_prob: 0.12,
            state_flap_prob: 0.25,
            cells_factor: 0.55,
            ..FaultSignature::default()
        },
        FaultClass::Degraded => FaultSignature {
            rate_factor: 0.75,
            attain_factor: 0.8,
            nmr_delta_db: 4.0,
            cv_mult: 8.0,
            es_mult: 8.0,
            fec_mult: 6.0,
            no_answer_prob: 0.0,
            state_flap_prob: 0.05,
            cells_factor: 0.8,
            ..FaultSignature::default()
        },
    };

    // Location flavour — this is what the trouble locator has to learn.
    // Home-network faults live behind the modem: the copper itself looks
    // healthy from the DSLAM (muted line-error counters) but the modem
    // answers erratically and usage collapses. Outside-plant faults add
    // series resistance (attenuation) and skew the loop estimator, more so
    // on F1 (longer exposed section) than F2. DSLAM-side faults spike FEC
    // and eat noise margin while the copper metrics stay clean.
    match info.location {
        MajorLocation::HomeNetwork => {
            sig.cv_mult = 1.0 + (sig.cv_mult - 1.0) * 0.35;
            sig.es_mult = 1.0 + (sig.es_mult - 1.0) * 0.35;
            sig.fec_mult = 1.0 + (sig.fec_mult - 1.0) * 0.3;
            sig.nmr_delta_db *= 0.4;
            sig.state_flap_prob = (sig.state_flap_prob + 0.15).min(0.6);
            sig.cells_factor *= 0.75;
        }
        MajorLocation::F2 => {
            sig.aten_delta_db = 2.0;
            sig.loop_est_bias_ft = 900.0;
            sig.cv_mult *= 1.3;
        }
        MajorLocation::F1 => {
            sig.aten_delta_db = 3.5;
            sig.loop_est_bias_ft = 2_200.0;
            sig.es_mult *= 1.5;
        }
        MajorLocation::Dslam => {
            sig.nmr_delta_db += 2.5;
            sig.fec_mult *= 2.2;
        }
    }

    // Code-specific touches that give the locator something to separate
    // dispositions within a location.
    match info.code {
        "HN-MODEM" | "HN-POWER" => {
            sig.no_answer_prob = sig.no_answer_prob.max(0.5);
            sig.state_flap_prob = 0.4;
        }
        "HN-MODEM-CFG" | "HN-SOFTWARE" => {
            // Line metrics look almost healthy; only throughput suffers.
            sig.nmr_delta_db = 1.0;
            sig.cv_mult = 2.0;
            sig.es_mult = 2.0;
            sig.cells_factor = 0.5;
        }
        "HN-FILTER" | "HN-SPLITTER" => {
            sig.cv_mult *= 1.6;
            sig.nmr_delta_db += 1.5;
        }
        "F1-BRIDGE-TAP" | "F1-STUB" => {
            sig.sets_bt = true;
            sig.attain_factor = 0.6;
            sig.loop_est_bias_ft = 2_500.0;
        }
        "F1-BINDER" => {
            sig.sets_crosstalk = true;
            sig.cv_mult *= 1.5;
        }
        "F1-LOAD-COIL" => {
            sig.attain_factor = 0.5;
            sig.loop_est_bias_ft = 3_000.0;
        }
        "DS-SPEED-DOWN" => {
            // Profile/loop mismatch: chronically thin margin, high relative
            // capacity, bursts of violations under load.
            sig.rate_factor = 0.9;
            sig.nmr_delta_db = 5.0;
            sig.cv_mult = 12.0;
            sig.es_mult = 10.0;
        }
        "F1-PAIR-CUT" | "F2-SQUIRREL" | "HN-IW-CUT" => {
            sig.no_answer_prob = 0.9;
            sig.rate_factor = 0.0;
            sig.cells_factor = 0.0;
        }
        _ => {}
    }

    sig
}

/// Per-line relative hazard weights over the 52 dispositions, folding in
/// the line's static attributes. Returned weights are unnormalized.
pub fn disposition_weights(line: &Line) -> [f64; N_DISPOSITIONS] {
    let mut w = [0f64; N_DISPOSITIONS];
    let mismatch = line.loop_length_ft / line.profile.marginal_loop_ft();
    for (i, info) in DISPOSITIONS.iter().enumerate() {
        let mut weight = info.weight;
        match info.code {
            // Speed downgrades concentrate on over-provisioned long loops.
            "DS-SPEED-DOWN" => {
                weight *= if mismatch > 1.0 { 6.0 * mismatch * mismatch } else { 0.15 };
            }
            // Bridge-tap removals need a bridge tap to exist.
            "F1-BRIDGE-TAP" => {
                weight *= if line.has_bridge_tap { 6.0 } else { 0.0 };
            }
            _ => {}
        }
        // Long outside plant is proportionally more exposed.
        if info.location.is_outside() {
            weight *= 0.5 + line.loop_length_ft / 12_000.0;
        }
        w[i] = weight;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disposition::by_code;
    use crate::ids::{CrossboxId, DslamId, LineId};
    use crate::profile::ServiceProfile;

    fn fault(code: &str, onset: u32, ramp: f64) -> Fault {
        Fault {
            disposition: by_code(code).expect("code exists"),
            onset_day: onset,
            ramp_days: ramp,
            severity_cap: 1.0,
            repaired_day: None,
        }
    }

    fn line(loop_ft: f64, profile: ServiceProfile, bt: bool) -> Line {
        Line {
            id: LineId(0),
            dslam: DslamId(0),
            crossbox: CrossboxId(0),
            loop_length_ft: loop_ft,
            profile,
            has_bridge_tap: bt,
        }
    }

    #[test]
    fn severity_ramps_linearly() {
        let f = fault("F1-WET-CONDUCTOR", 10, 10.0);
        assert_eq!(f.severity(9), 0.0);
        assert!((f.severity(15) - 0.5).abs() < 1e-12);
        assert!((f.severity(20) - 1.0).abs() < 1e-12);
        assert!((f.severity(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn severity_zero_after_repair() {
        let mut f = fault("HN-MODEM", 5, 4.0);
        f.repaired_day = Some(12);
        assert!(f.severity(11) > 0.0);
        assert_eq!(f.severity(12), 0.0);
        assert!(!f.active(12));
    }

    #[test]
    fn zero_ramp_means_immediate() {
        let f = fault("F1-PAIR-CUT", 8, 0.0);
        assert_eq!(f.severity(8), 1.0);
    }

    #[test]
    fn perceived_severity_orders_classes() {
        let hard = fault("F1-PAIR-CUT", 0, 0.0);
        let inter = fault("F1-WET-CONDUCTOR", 0, 0.0);
        let degr = fault("F1-BRIDGE-TAP", 0, 0.0);
        let day = 60;
        assert!(hard.perceived_severity(day) > inter.perceived_severity(day));
        assert!(inter.perceived_severity(day) > degr.perceived_severity(day));
    }

    #[test]
    fn hard_signatures_kill_the_line() {
        let sig = signature_of(by_code("F1-PAIR-CUT").expect("exists"));
        assert!(sig.no_answer_prob > 0.8);
        assert_eq!(sig.rate_factor, 0.0);
        assert_eq!(sig.cells_factor, 0.0);
    }

    #[test]
    fn degraded_signatures_keep_line_up() {
        let sig = signature_of(by_code("DS-SPEED-DOWN").expect("exists"));
        assert_eq!(sig.no_answer_prob, 0.0);
        assert!(sig.rate_factor > 0.5);
        assert!(sig.cv_mult > 5.0, "should still be measurably noisy");
    }

    #[test]
    fn bridge_tap_signature_sets_flag() {
        let sig = signature_of(by_code("F1-BRIDGE-TAP").expect("exists"));
        assert!(sig.sets_bt);
        assert!(sig.attain_factor < 0.8);
    }

    #[test]
    fn every_disposition_has_a_nontrivial_signature() {
        for (i, disposition) in DISPOSITIONS.iter().enumerate() {
            let sig = signature_of(DispositionId(i as u8));
            let perturbs = sig.rate_factor < 1.0
                || sig.nmr_delta_db > 0.0
                || sig.cv_mult > 1.0
                || sig.no_answer_prob > 0.0
                || sig.sets_bt
                || sig.sets_crosstalk;
            assert!(perturbs, "{} has a no-op signature", disposition.code);
        }
    }

    #[test]
    fn speed_downgrade_targets_mismatched_lines() {
        let idx = by_code("DS-SPEED-DOWN").expect("exists").0 as usize;
        let matched = line(5_000.0, ServiceProfile::Basic, false);
        let mismatched = line(16_000.0, ServiceProfile::Advanced, false);
        let w_ok = disposition_weights(&matched)[idx];
        let w_bad = disposition_weights(&mismatched)[idx];
        assert!(w_bad > 10.0 * w_ok, "mismatch weight {w_bad} vs {w_ok}");
    }

    #[test]
    fn bridge_tap_removal_requires_tap() {
        let idx = by_code("F1-BRIDGE-TAP").expect("exists").0 as usize;
        let no_tap = line(8_000.0, ServiceProfile::Basic, false);
        let tap = line(8_000.0, ServiceProfile::Basic, true);
        assert_eq!(disposition_weights(&no_tap)[idx], 0.0);
        assert!(disposition_weights(&tap)[idx] > 0.0);
    }

    #[test]
    fn long_loops_raise_outside_hazard() {
        let short = line(2_000.0, ServiceProfile::Basic, false);
        let long = line(18_000.0, ServiceProfile::Basic, false);
        let ws = disposition_weights(&short);
        let wl = disposition_weights(&long);
        let outside = |w: &[f64; N_DISPOSITIONS]| -> f64 {
            DISPOSITIONS
                .iter()
                .enumerate()
                .filter(|(_, d)| d.location.is_outside())
                .map(|(i, _)| w[i])
                .sum()
        };
        assert!(outside(&wl) > outside(&ws));
    }
}
