//! Strongly-typed identifiers for plant elements.
//!
//! Newtypes keep line/DSLAM/BRAS indices from being mixed up across the
//! simulator and the learning pipeline (the Table-5 analysis groups
//! predictions by DSLAM; the traffic analysis samples by BRAS).

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($inner:ty)) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "#{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A dedicated DSL line (equivalently, a subscriber).
    LineId(u32)
);
id_type!(
    /// A DSL access multiplexer terminating a few dozen lines.
    DslamId(u32)
);
id_type!(
    /// A crossbox on the F1/F2 boundary serving a subset of a DSLAM's lines.
    CrossboxId(u32)
);
id_type!(
    /// A broadband remote access server aggregating many DSLAMs.
    BrasId(u16)
);
id_type!(
    /// A geographic region (weather and construction act at this scope).
    RegionId(u16)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compare_and_display() {
        assert_eq!(LineId(3), LineId(3));
        assert_ne!(LineId(3), LineId(4));
        assert!(DslamId(1) < DslamId(2));
        assert_eq!(LineId(7).to_string(), "LineId#7");
        assert_eq!(BrasId(2).index(), 2);
    }
}
