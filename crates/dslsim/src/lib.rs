//! # nevermind-dslsim
//!
//! A generative simulator of a DSL access network, built as the data
//! substrate for the NEVERMIND reproduction (CoNEXT 2010). The paper's
//! evaluation runs on a year of proprietary operational data from a major US
//! DSL provider; this crate synthesizes the same *kinds* of records with the
//! same statistical couplings the paper relies on:
//!
//! * a hierarchical plant — region → BRAS → DSLAM → crossbox → line → home
//!   network ([`topology`]);
//! * progressive component faults whose measurable degradation *precedes*
//!   customer complaints ([`fault`], [`weather`]);
//! * weekly Saturday line tests producing the paper's 25 Table-2 metrics,
//!   with records missing whenever the modem is off ([`physics`],
//!   [`measurement`]);
//! * customers who only notice problems when they use the service, tolerate
//!   soft symptoms for a while, go on vacation, and call mostly on Mondays
//!   ([`customer`], [`ticket`]);
//! * DSLAM outages with IVR suppression of subsequent calls ([`outage`]);
//! * ATDS-style dispatches where a technician tests locations in rank order
//!   and writes a (noisy) disposition note ([`dispatch`], [`disposition`]);
//! * per-line daily traffic counters for a sample of BRAS servers
//!   ([`traffic`]).
//!
//! The whole simulation is deterministic given [`config::SimConfig::seed`]:
//! every (subsystem, DSLAM subtree) pair draws from its own ChaCha8 stream,
//! so changing one subsystem's draw pattern does not perturb the others —
//! and the draw sequence is a property of the plant, not of how it is
//! partitioned across threads.
//!
//! The entry point is [`world::World`]: build one with
//! [`world::World::generate`], then either [`world::World::run`] it for a
//! full reactive year (the paper's offline setting) or drive it day by day
//! with [`world::World::step_day`] and inject proactive dispatches (the
//! operational NEVERMIND loop). [`world::World::with_shards`] steps the
//! plant as N DSLAM-subtree shards on scoped threads, bit-identical to the
//! serial run for every shard count (see `tests/sharding.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod customer;
pub mod dispatch;
pub mod disposition;
pub mod export;
pub mod fault;
pub mod ids;
pub mod measurement;
pub mod outage;
pub mod physics;
pub mod profile;
pub mod scenario;
pub mod summary;
pub mod ticket;
pub mod topology;
pub mod traffic;
pub mod weather;
pub mod world;

pub use config::SimConfig;
pub use disposition::{DispositionId, MajorLocation, DISPOSITIONS, N_DISPOSITIONS};
pub use ids::{BrasId, CrossboxId, DslamId, LineId, RegionId};
pub use measurement::{LineMetric, LineTest, N_METRICS};
pub use ticket::{Ticket, TicketCategory};
pub use world::{SimOutput, World};
