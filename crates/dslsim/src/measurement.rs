//! The weekly line test and its 25 metrics (Table 2).
//!
//! Every Saturday each DSLAM initiates a short conversation with the modem
//! on each of its lines and derives the metrics below. If the modem does not
//! answer (off, unpowered, or dead), there is **no record** for that line
//! that week — the missingness itself is informative and is consumed by the
//! encoder's "modem" customer feature.

use crate::ids::LineId;
use serde::{Deserialize, Serialize};

/// Number of per-test metrics.
pub const N_METRICS: usize = 25;

/// The 25 line features of Table 2. Prefixes `Dn`/`Up` are the paper's
/// `dn`/`up` (downstream/upstream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // Each variant documented via `description()`.
pub enum LineMetric {
    State,
    DnBr,
    UpBr,
    DnPwr,
    UpPwr,
    DnNmr,
    UpNmr,
    DnAten,
    UpAten,
    DnRelCap,
    UpRelCap,
    DnCvCnt1,
    DnCvCnt2,
    DnCvCnt3,
    DnEsCnt1,
    DnEsCnt2,
    DnFecCnt1,
    HiCar,
    Bt,
    Crosstalk,
    LoopLength,
    DnMaxAttainFbr,
    UpMaxAttainFbr,
    DnCells,
    UpCells,
}

impl LineMetric {
    /// All metrics in canonical (array-index) order.
    pub const ALL: [LineMetric; N_METRICS] = [
        LineMetric::State,
        LineMetric::DnBr,
        LineMetric::UpBr,
        LineMetric::DnPwr,
        LineMetric::UpPwr,
        LineMetric::DnNmr,
        LineMetric::UpNmr,
        LineMetric::DnAten,
        LineMetric::UpAten,
        LineMetric::DnRelCap,
        LineMetric::UpRelCap,
        LineMetric::DnCvCnt1,
        LineMetric::DnCvCnt2,
        LineMetric::DnCvCnt3,
        LineMetric::DnEsCnt1,
        LineMetric::DnEsCnt2,
        LineMetric::DnFecCnt1,
        LineMetric::HiCar,
        LineMetric::Bt,
        LineMetric::Crosstalk,
        LineMetric::LoopLength,
        LineMetric::DnMaxAttainFbr,
        LineMetric::UpMaxAttainFbr,
        LineMetric::DnCells,
        LineMetric::UpCells,
    ];

    /// Index of this metric in the canonical order.
    #[inline]
    pub fn index(self) -> usize {
        // lint:allow(no-panic-in-lib) -- every Metric is a member of ALL by definition
        Self::ALL.iter().position(|&m| m == self).expect("metric in ALL")
    }

    /// The paper's lowercase feature name (Table 2).
    pub fn name(self) -> &'static str {
        match self {
            LineMetric::State => "state",
            LineMetric::DnBr => "dnbr",
            LineMetric::UpBr => "upbr",
            LineMetric::DnPwr => "dnpwr",
            LineMetric::UpPwr => "uppwr",
            LineMetric::DnNmr => "dnnmr",
            LineMetric::UpNmr => "upnmr",
            LineMetric::DnAten => "dnaten",
            LineMetric::UpAten => "upaten",
            LineMetric::DnRelCap => "dnrelcap",
            LineMetric::UpRelCap => "uprelcap",
            LineMetric::DnCvCnt1 => "dncvcnt1",
            LineMetric::DnCvCnt2 => "dncvcnt2",
            LineMetric::DnCvCnt3 => "dncvcnt3",
            LineMetric::DnEsCnt1 => "dnescnt1",
            LineMetric::DnEsCnt2 => "dnescnt2",
            LineMetric::DnFecCnt1 => "dnfeccnt1",
            LineMetric::HiCar => "hicar",
            LineMetric::Bt => "bt",
            LineMetric::Crosstalk => "crosstalk",
            LineMetric::LoopLength => "looplength",
            LineMetric::DnMaxAttainFbr => "dnmaxattainfbr",
            LineMetric::UpMaxAttainFbr => "upmaxattainfbr",
            LineMetric::DnCells => "dncells",
            LineMetric::UpCells => "upcells",
        }
    }

    /// Table-2 description.
    pub fn description(self) -> &'static str {
        match self {
            LineMetric::State => "if the modem is on",
            LineMetric::DnBr | LineMetric::UpBr => "bit rate (kbps)",
            LineMetric::DnPwr | LineMetric::UpPwr => "signal power",
            LineMetric::DnNmr | LineMetric::UpNmr => "noise margin",
            LineMetric::DnAten | LineMetric::UpAten => "signal attenuation",
            LineMetric::DnRelCap | LineMetric::UpRelCap => "relative capacity",
            LineMetric::DnCvCnt1 | LineMetric::DnCvCnt2 | LineMetric::DnCvCnt3 => {
                "code violation interval counts with different thresholds"
            }
            LineMetric::DnEsCnt1 | LineMetric::DnEsCnt2 => {
                "the number of seconds in which code violations occurred"
            }
            LineMetric::DnFecCnt1 => {
                "downstream forward error correction counts with value not less than 50"
            }
            LineMetric::HiCar => "the biggest carrier number",
            LineMetric::Bt => "the existence of a bridge tap",
            LineMetric::Crosstalk => "the existence of cross talk",
            LineMetric::LoopLength => "estimated loop length",
            LineMetric::DnMaxAttainFbr | LineMetric::UpMaxAttainFbr => {
                "maximum attainable fast bit rate"
            }
            LineMetric::DnCells | LineMetric::UpCells => "rolling count of cells",
        }
    }

    /// Whether the metric is categorical (binary) rather than continuous.
    /// Categorical metrics are binary-expanded by the feature encoder
    /// (paper, footnote 2).
    pub fn is_categorical(self) -> bool {
        matches!(self, LineMetric::State | LineMetric::Bt | LineMetric::Crosstalk)
    }
}

/// One completed line test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LineTest {
    /// The tested line.
    pub line: LineId,
    /// Simulation day of the test (always a Saturday).
    pub day: u32,
    /// Metric values in [`LineMetric::ALL`] order.
    pub values: [f32; N_METRICS],
}

impl LineTest {
    /// Value of one metric.
    #[inline]
    pub fn get(&self, metric: LineMetric) -> f32 {
        self.values[metric.index()]
    }

    /// Week index (Saturday tests: week = day / 7).
    #[inline]
    pub fn week(&self) -> u32 {
        self.day / 7
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_five_metrics() {
        assert_eq!(LineMetric::ALL.len(), 25);
        assert_eq!(N_METRICS, 25);
    }

    #[test]
    fn names_unique_and_lowercase() {
        let mut names: Vec<&str> = LineMetric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 25);
        for n in names {
            assert_eq!(n, n.to_lowercase());
        }
    }

    #[test]
    fn index_roundtrip() {
        for (i, m) in LineMetric::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn three_categorical_metrics() {
        let cats: Vec<LineMetric> =
            LineMetric::ALL.iter().copied().filter(|m| m.is_categorical()).collect();
        assert_eq!(cats, vec![LineMetric::State, LineMetric::Bt, LineMetric::Crosstalk]);
    }

    #[test]
    fn line_test_accessors() {
        let mut values = [0f32; N_METRICS];
        values[LineMetric::DnBr.index()] = 768.0;
        let t = LineTest { line: LineId(3), day: 13, values };
        assert_eq!(t.get(LineMetric::DnBr), 768.0);
        assert_eq!(t.week(), 1);
    }
}
