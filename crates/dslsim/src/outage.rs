//! DSLAM outages and their precursors.
//!
//! An outage takes down every line behind a DSLAM for a day or three. Two
//! paper-relevant behaviours hang off this module:
//!
//! * **precursor stress** — a failing card degrades the whole DSLAM's line
//!   metrics for about a week *before* the outage. Saturday tests pick this
//!   up, the ticket predictor flags many lines at that DSLAM, and then the
//!   outage (not individual line problems) materializes. This is the causal
//!   chain behind the paper's Table-5 observation that "incorrect"
//!   predictions concentrate at DSLAMs with imminent outages;
//! * **IVR suppression** — once the outage is known (after the first few
//!   calls), subsequent callers hear an automated announcement and *no
//!   ticket is issued*, so the prediction is counted as incorrect even
//!   though the customer did have a real problem.

use crate::ids::DslamId;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One DSLAM outage `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageEvent {
    /// The failing DSLAM.
    pub dslam: DslamId,
    /// First day of the hard outage.
    pub start: u32,
    /// First day after restoration.
    pub end: u32,
}

/// Pre-scheduled outages with fast per-day stress lookup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutageSchedule {
    events: Vec<OutageEvent>,
    /// Event indices per DSLAM.
    by_dslam: Vec<Vec<usize>>,
    precursor_days: f64,
}

impl OutageSchedule {
    /// Schedules outages: each DSLAM fails as a Poisson process with the
    /// given annual rate; outages last 1–3 days.
    pub fn generate(
        n_dslams: usize,
        days: u32,
        outages_per_year: f64,
        precursor_days: f64,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let daily_p = (outages_per_year / 365.0).clamp(0.0, 1.0);
        let mut events = Vec::new();
        let mut by_dslam = vec![Vec::new(); n_dslams];
        for (d, dslam_events) in by_dslam.iter_mut().enumerate() {
            let mut day = 0u32;
            while day < days {
                if rng.random_bool(daily_p) {
                    let len = rng.random_range(1..=3u32);
                    let ev = OutageEvent {
                        dslam: DslamId(d as u32),
                        start: day,
                        end: (day + len).min(days),
                    };
                    dslam_events.push(events.len());
                    events.push(ev);
                    // Refractory period: a freshly repaired DSLAM doesn't
                    // fail again immediately.
                    day += len + 30;
                } else {
                    day += 1;
                }
            }
        }
        Self { events, by_dslam, precursor_days }
    }

    /// All scheduled events.
    pub fn events(&self) -> &[OutageEvent] {
        &self.events
    }

    /// Stress level of a DSLAM on `day`: 1.0 during the outage, ramping
    /// from 0 toward ~0.8 over the precursor window, 0 otherwise.
    pub fn stress(&self, dslam: DslamId, day: u32) -> f64 {
        let mut s: f64 = 0.0;
        for &idx in &self.by_dslam[dslam.index()] {
            let ev = &self.events[idx];
            if day >= ev.start && day < ev.end {
                return 1.0;
            }
            if day < ev.start && self.precursor_days > 0.0 {
                let lead = (ev.start - day) as f64;
                if lead <= self.precursor_days {
                    // Square-root ramp: degradation is already substantial
                    // early in the precursor window (a card does not fail
                    // linearly), which is what lets the Saturday tests a
                    // week or two out see it.
                    s = s.max(0.85 * (1.0 - lead / self.precursor_days).sqrt());
                }
            }
        }
        s
    }

    /// Whether the DSLAM has at least one outage starting in `[from, to)`.
    pub fn outage_starting_within(&self, dslam: DslamId, from: u32, to: u32) -> bool {
        self.by_dslam[dslam.index()]
            .iter()
            .any(|&i| self.events[i].start >= from && self.events[i].start < to)
    }

    /// Whether the DSLAM is hard-down on `day`.
    pub fn is_down(&self, dslam: DslamId, day: u32) -> bool {
        self.by_dslam[dslam.index()]
            .iter()
            .any(|&i| day >= self.events[i].start && day < self.events[i].end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule_with_event() -> (OutageSchedule, OutageEvent) {
        for seed in 0..100 {
            let s = OutageSchedule::generate(30, 365, 0.8, 10.0, seed);
            if let Some(&ev) = s.events().iter().find(|e| e.start > 15) {
                return (s, ev);
            }
        }
        panic!("no outage generated in 100 seeds");
    }

    #[test]
    fn stress_profile_around_outage() {
        let (s, ev) = schedule_with_event();
        // Hard-down during the event.
        assert_eq!(s.stress(ev.dslam, ev.start), 1.0);
        assert!(s.is_down(ev.dslam, ev.start));
        // Ramping precursor before it.
        let two_before = s.stress(ev.dslam, ev.start - 2);
        let nine_before = s.stress(ev.dslam, ev.start.saturating_sub(9));
        assert!(two_before > 0.4, "close precursor stress {two_before}");
        assert!(two_before > nine_before, "{two_before} vs {nine_before}");
        // Calm long before.
        if ev.start > 40 {
            assert_eq!(s.stress(ev.dslam, ev.start - 40), 0.0);
        }
    }

    #[test]
    fn outage_window_queries() {
        let (s, ev) = schedule_with_event();
        assert!(s.outage_starting_within(ev.dslam, ev.start, ev.start + 1));
        assert!(s.outage_starting_within(ev.dslam, ev.start.saturating_sub(5), ev.start + 1));
        assert!(!s.outage_starting_within(ev.dslam, ev.end + 1, ev.end + 2));
    }

    #[test]
    fn annual_rate_is_respected() {
        let s = OutageSchedule::generate(200, 365, 0.8, 10.0, 3);
        let per_dslam = s.events().len() as f64 / 200.0;
        // Refractory period slightly depresses the effective rate.
        assert!(per_dslam > 0.3 && per_dslam < 1.2, "outages/DSLAM/yr = {per_dslam}");
    }

    #[test]
    fn unaffected_dslams_are_calm() {
        let s = OutageSchedule::generate(50, 365, 0.8, 10.0, 5);
        if let Some(calm) = (0..50).map(DslamId).find(|d| !s.events().iter().any(|e| e.dslam == *d))
        {
            for day in (0..365).step_by(13) {
                assert_eq!(s.stress(calm, day), 0.0);
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = OutageSchedule::generate(40, 365, 0.8, 10.0, 9);
        let b = OutageSchedule::generate(40, 365, 0.8, 10.0, 9);
        assert_eq!(a.events(), b.events());
    }
}
