//! Physical-layer model: from loop length, profile, active faults and
//! DSLAM stress to the 25 Table-2 metrics.
//!
//! This is deliberately a *behavioural* model, not an ADSL transceiver
//! simulation: what matters for the reproduction is that the metric
//! couplings the paper's operators rely on hold —
//!
//! * attenuation grows with loop length, attainable rate falls with it;
//! * sync rate is the provisioned rate unless the copper can't carry it;
//! * relative capacity near 100% and loop estimates past 15 kft mark
//!   marginal lines (the operators' manual escalation rules, Sec. 3.3);
//! * developing faults raise code violations / errored seconds / FEC
//!   counts and depress the noise margin *before* customers complain;
//! * dead lines stop answering the test at all.

use crate::disposition::MajorLocation;
use crate::fault::{signature_of, Fault};
use crate::measurement::{LineMetric, N_METRICS};
use crate::topology::Line;
use rand::{Rng, RngExt};

/// Max attainable downstream rate (kbps) for a clean loop of given length.
///
/// Calibrated so the profile marginal lengths in
/// [`crate::profile::ServiceProfile::marginal_loop_ft`] hold: the curve
/// crosses 768 kbps near 17 kft and 2.56 Mbps near 11.5 kft.
pub fn attainable_down_kbps(loop_ft: f64) -> f64 {
    (31_600.0 * (-loop_ft / 4_570.0).exp()).min(9_500.0)
}

/// Max attainable upstream rate (kbps) for a clean loop.
pub fn attainable_up_kbps(loop_ft: f64) -> f64 {
    (3_500.0 * (-loop_ft / 6_500.0).exp()).min(1_200.0)
}

/// Aggregate severity-scaled effect of all active faults plus DSLAM stress.
#[derive(Debug, Clone, Copy)]
pub struct Effects {
    /// Multiplies sync rates (1 = healthy, 0 = dead).
    pub rate_factor: f64,
    /// Multiplies attainable-rate estimates.
    pub attain_factor: f64,
    /// dB knocked off the noise margin.
    pub nmr_delta_db: f64,
    /// Multiplies code-violation intensity.
    pub cv_mult: f64,
    /// Multiplies errored-seconds intensity.
    pub es_mult: f64,
    /// Multiplies FEC-event intensity.
    pub fec_mult: f64,
    /// Probability the modem does not answer the test.
    pub no_answer_prob: f64,
    /// Probability the test reports `state = 0`.
    pub state_flap_prob: f64,
    /// dB added to measured attenuation.
    pub aten_delta_db: f64,
    /// Bias added to the loop-length estimate (ft).
    pub loop_est_bias_ft: f64,
    /// Bridge tap detected.
    pub bt: bool,
    /// Crosstalk detected.
    pub crosstalk: bool,
    /// Multiplies rolling cell counts.
    pub cells_factor: f64,
}

impl Effects {
    /// The no-fault, no-stress identity.
    pub fn healthy() -> Self {
        Self {
            rate_factor: 1.0,
            attain_factor: 1.0,
            nmr_delta_db: 0.0,
            cv_mult: 1.0,
            es_mult: 1.0,
            fec_mult: 1.0,
            no_answer_prob: 0.0,
            state_flap_prob: 0.0,
            aten_delta_db: 0.0,
            loop_est_bias_ft: 0.0,
            bt: false,
            crosstalk: false,
            cells_factor: 1.0,
        }
    }
}

/// Linear interpolation of a multiplicative factor by severity.
#[inline]
fn lerp_factor(factor: f64, severity: f64) -> f64 {
    1.0 + (factor - 1.0) * severity
}

/// Combines every active fault (severity-scaled) and the DSLAM-level stress
/// (0 = healthy, 1 = outage in progress) into one [`Effects`].
pub fn combine_effects(line: &Line, faults: &[Fault], day: u32, dslam_stress: f64) -> Effects {
    let mut e = Effects::healthy();
    e.bt = line.has_bridge_tap;

    for fault in faults {
        let s = fault.severity(day);
        if s <= 0.0 {
            continue;
        }
        let sig = signature_of(fault.disposition);
        e.rate_factor *= lerp_factor(sig.rate_factor, s);
        e.attain_factor *= lerp_factor(sig.attain_factor, s);
        e.nmr_delta_db += sig.nmr_delta_db * s;
        e.cv_mult *= lerp_factor(sig.cv_mult, s);
        e.es_mult *= lerp_factor(sig.es_mult, s);
        e.fec_mult *= lerp_factor(sig.fec_mult, s);
        e.no_answer_prob = 1.0 - (1.0 - e.no_answer_prob) * (1.0 - sig.no_answer_prob * s);
        e.state_flap_prob = 1.0 - (1.0 - e.state_flap_prob) * (1.0 - sig.state_flap_prob * s);
        e.aten_delta_db += sig.aten_delta_db * s;
        e.loop_est_bias_ft += sig.loop_est_bias_ft * s;
        e.cells_factor *= lerp_factor(sig.cells_factor, s);
        if s > 0.3 {
            e.bt |= sig.sets_bt;
            e.crosstalk |= sig.sets_crosstalk;
        }
        // A developed DSLAM-side fault can also take the modem's answer
        // path down occasionally — handled by the class signature already.
        let _ = MajorLocation::Dslam;
    }

    if dslam_stress > 0.0 {
        // Precursor stress is deliberately calibrated to *resemble* an
        // ordinary intermittent line fault rather than a distinctive
        // DSLAM-wide pattern: if it were separable, the ticket predictor
        // would learn that the pattern yields no customer-edge ticket and
        // avoid it — the opposite of the paper's Table-5 observation.
        let s = dslam_stress.clamp(0.0, 1.0);
        e.nmr_delta_db += 6.0 * s;
        e.cv_mult *= 1.0 + 20.0 * s;
        e.es_mult *= 1.0 + 22.0 * s;
        e.fec_mult *= 1.0 + 10.0 * s;
        e.rate_factor *= 1.0 - 0.45 * s;
        // A full outage stops the test from completing for most lines.
        if s >= 0.99 {
            e.no_answer_prob = 1.0 - (1.0 - e.no_answer_prob) * 0.1;
        }
        e.cells_factor *= 1.0 - 0.7 * s;
    }

    e
}

/// Standard-normal draw (Box–Muller).
pub fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(1e-12..1.0);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Poisson draw: Knuth's method for small λ, normal approximation above.
pub fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0f64;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numerical guard; unreachable for λ < 30
            }
        }
    }
    let x = lambda + lambda.sqrt() * gauss(rng);
    x.max(0.0).round() as u32
}

/// Whether the modem answers the Saturday test, given the combined effects.
/// (Customer-side reasons for silence — modem habitually off, vacation —
/// are decided by the caller before asking the physics.)
pub fn modem_answers<R: Rng>(effects: &Effects, rng: &mut R) -> bool {
    !rng.random_bool(effects.no_answer_prob.clamp(0.0, 1.0))
}

/// Synthesizes the 25 metric values for one completed test.
///
/// `weekly_usage` is the fraction of the past week the customer actively
/// used the service (drives the rolling cell counts).
pub fn synthesize<R: Rng>(
    line: &Line,
    effects: &Effects,
    weekly_usage: f64,
    rng: &mut R,
) -> [f32; N_METRICS] {
    let l_ft = line.loop_length_ft;
    let mut v = [0f32; N_METRICS];
    let mut set = |m: LineMetric, x: f64| v[m.index()] = x as f32;

    // Attenuation: dB, grows with loop length; path faults add series
    // resistance on top.
    let dnaten = 0.75 * l_ft / 1000.0 * (1.0 + 0.02 * gauss(rng)) + effects.aten_delta_db;
    let upaten = 0.50 * l_ft / 1000.0 * (1.0 + 0.02 * gauss(rng)) + effects.aten_delta_db * 0.8;

    // Attainable rates: clean-loop curve × fault-degraded factor.
    let attain_dn_raw = attainable_down_kbps(l_ft);
    let attain_up_raw = attainable_up_kbps(l_ft);
    let attain_dn = attain_dn_raw * effects.attain_factor * (1.0 + 0.03 * gauss(rng));
    let attain_up = attain_up_raw * effects.attain_factor * (1.0 + 0.03 * gauss(rng));

    // Sync rates: provisioned rate unless the copper or a fault caps it.
    let dn_br = (line.profile.down_kbps().min(attain_dn * 0.95) * effects.rate_factor).max(0.0);
    let up_br = (line.profile.up_kbps().min(attain_up * 0.95) * effects.rate_factor).max(0.0);

    // Noise margin: headroom between clean-loop attainable and provisioned
    // rate, minus fault/stress-induced noise.
    let headroom_db = 10.0 * (attain_dn_raw.max(1.0) / line.profile.down_kbps()).log10();
    let dnnmr = (6.0 + headroom_db - effects.nmr_delta_db + 0.8 * gauss(rng)).clamp(-2.0, 32.0);
    let upnmr = (6.0 + 10.0 * (attain_up_raw.max(1.0) / line.profile.up_kbps()).log10()
        - effects.nmr_delta_db * 0.8
        + 0.8 * gauss(rng))
    .clamp(-2.0, 32.0);

    // Relative capacity (%): used rate over what the line can currently do.
    let dnrelcap = (100.0 * line.profile.down_kbps() / attain_dn.max(1.0)).clamp(0.0, 130.0);
    let uprelcap = (100.0 * line.profile.up_kbps() / attain_up.max(1.0)).clamp(0.0, 130.0);

    // Error counters over the test interval.
    let cv1 = poisson(rng, 1.5 * effects.cv_mult) as f64;
    let cv2 = poisson(rng, 0.35 * effects.cv_mult) as f64;
    let cv3 = poisson(rng, 0.10 * effects.cv_mult) as f64;
    let es1 = poisson(rng, 1.0 * effects.es_mult) as f64;
    let es2 = poisson(rng, 0.25 * effects.es_mult) as f64;
    let fec = poisson(rng, 3.0 * effects.fec_mult) as f64;

    // Rolling cell counts: proportional to realized usage and sync rate.
    let usage = weekly_usage.clamp(0.0, 1.0);
    let dncells =
        (dn_br * usage * effects.cells_factor * 90.0 * (0.6 + 0.4 * rng.random::<f64>())).max(0.0);
    let upcells = dncells * 0.15 * (0.8 + 0.4 * rng.random::<f64>());

    let state = if rng.random_bool(effects.state_flap_prob.clamp(0.0, 1.0)) { 0.0 } else { 1.0 };

    set(LineMetric::State, state);
    set(LineMetric::DnBr, dn_br);
    set(LineMetric::UpBr, up_br);
    set(LineMetric::DnPwr, 19.0 - 0.10 * dnaten + 0.5 * gauss(rng));
    set(LineMetric::UpPwr, 12.0 - 0.08 * upaten + 0.5 * gauss(rng));
    set(LineMetric::DnNmr, dnnmr);
    set(LineMetric::UpNmr, upnmr);
    set(LineMetric::DnAten, dnaten);
    set(LineMetric::UpAten, upaten);
    set(LineMetric::DnRelCap, dnrelcap);
    set(LineMetric::UpRelCap, uprelcap);
    set(LineMetric::DnCvCnt1, cv1);
    set(LineMetric::DnCvCnt2, cv2);
    set(LineMetric::DnCvCnt3, cv3);
    set(LineMetric::DnEsCnt1, es1);
    set(LineMetric::DnEsCnt2, es2);
    set(LineMetric::DnFecCnt1, fec);
    set(LineMetric::HiCar, (440.0 - 14.0 * dnaten + 5.0 * gauss(rng)).clamp(60.0, 480.0));
    set(LineMetric::Bt, if effects.bt { 1.0 } else { 0.0 });
    set(LineMetric::Crosstalk, if effects.crosstalk || rng.random_bool(0.02) { 1.0 } else { 0.0 });
    set(LineMetric::LoopLength, l_ft * (1.0 + 0.03 * gauss(rng)) + effects.loop_est_bias_ft);
    set(LineMetric::DnMaxAttainFbr, attain_dn.max(0.0));
    set(LineMetric::UpMaxAttainFbr, attain_up.max(0.0));
    set(LineMetric::DnCells, dncells);
    set(LineMetric::UpCells, upcells);

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disposition::by_code;
    use crate::ids::{CrossboxId, DslamId, LineId};
    use crate::profile::ServiceProfile;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn line(loop_ft: f64, profile: ServiceProfile) -> Line {
        Line {
            id: LineId(0),
            dslam: DslamId(0),
            crossbox: CrossboxId(0),
            loop_length_ft: loop_ft,
            profile,
            has_bridge_tap: false,
        }
    }

    fn developed(code: &str) -> Fault {
        Fault {
            disposition: by_code(code).expect("exists"),
            onset_day: 0,
            ramp_days: 1.0,
            severity_cap: 1.0,
            repaired_day: None,
        }
    }

    #[test]
    fn attainable_matches_profile_margins() {
        // Curve crosses the provisioned rate near each tier's marginal loop.
        for p in ServiceProfile::ALL {
            let at_margin = attainable_down_kbps(p.marginal_loop_ft());
            let ratio = at_margin / p.down_kbps();
            assert!(
                (0.8..=1.3).contains(&ratio),
                "{:?}: attainable at marginal loop = {at_margin}, ratio {ratio}",
                p
            );
        }
    }

    #[test]
    fn attainable_decreases_with_length() {
        let a = attainable_down_kbps(2_000.0);
        let b = attainable_down_kbps(10_000.0);
        let c = attainable_down_kbps(18_000.0);
        assert!(a > b && b > c);
        let ua = attainable_up_kbps(2_000.0);
        let uc = attainable_up_kbps(18_000.0);
        assert!(ua > uc);
    }

    #[test]
    fn healthy_short_line_syncs_at_profile() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let l = line(3_000.0, ServiceProfile::Advanced);
        let e = combine_effects(&l, &[], 0, 0.0);
        let v = synthesize(&l, &e, 0.5, &mut rng);
        let dn = v[LineMetric::DnBr.index()] as f64;
        assert!((dn - 2560.0).abs() < 1.0, "dnbr = {dn}");
        assert!(v[LineMetric::State.index()] == 1.0);
        assert!(v[LineMetric::DnNmr.index()] > 6.0, "healthy margin should have headroom");
        assert!(v[LineMetric::DnRelCap.index()] < 60.0);
    }

    #[test]
    fn long_mismatched_line_shows_marginal_metrics() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let l = line(15_000.0, ServiceProfile::Advanced);
        let e = combine_effects(&l, &[], 0, 0.0);
        let v = synthesize(&l, &e, 0.5, &mut rng);
        assert!(
            (v[LineMetric::DnBr.index()] as f64) < ServiceProfile::Advanced.down_kbps(),
            "long loop cannot sustain the advanced profile"
        );
        assert!(
            v[LineMetric::DnRelCap.index()] > 85.0,
            "relcap = {}",
            v[LineMetric::DnRelCap.index()]
        );
        assert!(v[LineMetric::DnNmr.index()] < 6.0, "thin margin expected");
    }

    #[test]
    fn developing_fault_degrades_before_full_severity() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let l = line(5_000.0, ServiceProfile::Mid);
        let f = Fault {
            disposition: by_code("F1-WET-CONDUCTOR").expect("exists"),
            onset_day: 10,
            ramp_days: 14.0,
            severity_cap: 1.0,
            repaired_day: None,
        };
        let healthy = combine_effects(&l, std::slice::from_ref(&f), 5, 0.0);
        let halfway = combine_effects(&l, std::slice::from_ref(&f), 17, 0.0);
        let full = combine_effects(&l, std::slice::from_ref(&f), 40, 0.0);
        assert_eq!(healthy.cv_mult, 1.0);
        assert!(halfway.cv_mult > 2.0, "partial development must be measurable");
        assert!(full.cv_mult > halfway.cv_mult);

        // And the measurable degradation shows up in the counters.
        let v_half = synthesize(&l, &halfway, 0.5, &mut rng);
        let mut cv_healthy_total = 0f32;
        let mut rng2 = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..20 {
            let v = synthesize(&l, &healthy, 0.5, &mut rng2);
            cv_healthy_total += v[LineMetric::DnCvCnt1.index()];
        }
        assert!(
            v_half[LineMetric::DnCvCnt1.index()] > cv_healthy_total / 20.0,
            "halfway-fault CV count should exceed the healthy mean"
        );
    }

    #[test]
    fn hard_fault_usually_prevents_answer() {
        let l = line(5_000.0, ServiceProfile::Basic);
        let f = developed("F1-PAIR-CUT");
        let e = combine_effects(&l, std::slice::from_ref(&f), 30, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let answers = (0..200).filter(|_| modem_answers(&e, &mut rng)).count();
        assert!(answers < 60, "dead line answered {answers}/200 tests");
    }

    #[test]
    fn bridge_tap_fault_sets_flag_and_cuts_attainable() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let l = line(6_000.0, ServiceProfile::Basic);
        let f = developed("F1-BRIDGE-TAP");
        let e = combine_effects(&l, std::slice::from_ref(&f), 60, 0.0);
        let v = synthesize(&l, &e, 0.5, &mut rng);
        assert_eq!(v[LineMetric::Bt.index()], 1.0);
        let clean = combine_effects(&l, &[], 0, 0.0);
        let v_clean = synthesize(&l, &clean, 0.5, &mut rng);
        assert!(
            v[LineMetric::DnMaxAttainFbr.index()] < v_clean[LineMetric::DnMaxAttainFbr.index()]
        );
        assert!(
            v[LineMetric::LoopLength.index()] > v_clean[LineMetric::LoopLength.index()],
            "bridge tap skews the loop estimate upward"
        );
    }

    #[test]
    fn dslam_stress_degrades_all_error_counters() {
        let l = line(4_000.0, ServiceProfile::Mid);
        let calm = combine_effects(&l, &[], 0, 0.0);
        let stressed = combine_effects(&l, &[], 0, 0.6);
        assert!(stressed.cv_mult > 5.0 * calm.cv_mult);
        assert!(stressed.nmr_delta_db > 2.0);
        let outage = combine_effects(&l, &[], 0, 1.0);
        assert!(outage.no_answer_prob > 0.85);
    }

    #[test]
    fn cells_track_usage() {
        let l = line(4_000.0, ServiceProfile::Mid);
        let e = combine_effects(&l, &[], 0, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut heavy = 0f64;
        let mut light = 0f64;
        for _ in 0..30 {
            heavy += synthesize(&l, &e, 1.0, &mut rng)[LineMetric::DnCells.index()] as f64;
            light += synthesize(&l, &e, 0.1, &mut rng)[LineMetric::DnCells.index()] as f64;
        }
        assert!(heavy > 3.0 * light, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for &lambda in &[0.5f64, 5.0, 80.0] {
            let n = 4000;
            let total: f64 = (0..n).map(|_| poisson(&mut rng, lambda) as f64).sum();
            let mean = total / n as f64;
            assert!((mean - lambda).abs() < lambda.max(1.0) * 0.1, "lambda {lambda}: mean {mean}");
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn gauss_has_zero_mean_unit_var() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gauss(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
