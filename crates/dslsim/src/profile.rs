//! Subscriber service profiles (Sec. 3.3, item 4).
//!
//! A profile specifies the expected values of rate-like line features for
//! the service tier a customer subscribed to — the paper's examples are a
//! basic 768/384 kbps tier and an advanced 2.5 Mbps/768 kbps tier. Profiles
//! matter twice: the physics model syncs a line at
//! `min(profile rate, attainable rate)`, and the feature encoder divides
//! measured values by profile expectations ("profile features", Table 3).

use serde::{Deserialize, Serialize};

/// Service tier of a subscriber line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceProfile {
    /// 768 kbps down / 384 kbps up (the paper's basic profile).
    Basic,
    /// 1.5 Mbps down / 512 kbps up.
    Mid,
    /// 2.5 Mbps down / 768 kbps up (the paper's advanced profile).
    Advanced,
}

impl ServiceProfile {
    /// All tiers, slowest first.
    pub const ALL: [ServiceProfile; 3] =
        [ServiceProfile::Basic, ServiceProfile::Mid, ServiceProfile::Advanced];

    /// Provisioned downstream rate in kbps.
    pub fn down_kbps(self) -> f64 {
        match self {
            ServiceProfile::Basic => 768.0,
            ServiceProfile::Mid => 1536.0,
            ServiceProfile::Advanced => 2560.0,
        }
    }

    /// Provisioned upstream rate in kbps.
    pub fn up_kbps(self) -> f64 {
        match self {
            ServiceProfile::Basic => 384.0,
            ServiceProfile::Mid => 512.0,
            ServiceProfile::Advanced => 768.0,
        }
    }

    /// Loop length (ft) beyond which this tier is marginal: attainable rate
    /// at that distance roughly equals the provisioned rate, so longer loops
    /// run with no margin and tend to need a speed downgrade (the paper's
    /// 15,000 ft rule of thumb for unsupported profiles).
    pub fn marginal_loop_ft(self) -> f64 {
        match self {
            ServiceProfile::Basic => 17_000.0,
            ServiceProfile::Mid => 14_000.0,
            ServiceProfile::Advanced => 11_500.0,
        }
    }

    /// Short label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            ServiceProfile::Basic => "basic",
            ServiceProfile::Mid => "mid",
            ServiceProfile::Advanced => "advanced",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_increase_with_tier() {
        let rates: Vec<f64> = ServiceProfile::ALL.iter().map(|p| p.down_kbps()).collect();
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
        let ups: Vec<f64> = ServiceProfile::ALL.iter().map(|p| p.up_kbps()).collect();
        assert!(ups.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn faster_tiers_need_shorter_loops() {
        let margins: Vec<f64> = ServiceProfile::ALL.iter().map(|p| p.marginal_loop_ft()).collect();
        assert!(margins.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn paper_example_rates() {
        assert_eq!(ServiceProfile::Basic.down_kbps(), 768.0);
        assert_eq!(ServiceProfile::Basic.up_kbps(), 384.0);
        assert_eq!(ServiceProfile::Advanced.down_kbps(), 2560.0);
        assert_eq!(ServiceProfile::Advanced.up_kbps(), 768.0);
    }
}
