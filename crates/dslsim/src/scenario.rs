//! Named scenario presets.
//!
//! Each preset is a [`SimConfig`] tuned to stress a different part of the
//! system, so users (and the CLI) can explore behaviour beyond the baseline
//! without hand-tuning a dozen knobs.

use crate::config::SimConfig;

/// A named simulation scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// The calibrated default: the paper-shaped operational year.
    Baseline,
    /// Frequent rain and construction: outside-plant (F1/F2) faults
    /// dominate, rewarding the locator's location models.
    StormSeason,
    /// Aging plant: higher fault rates everywhere and more DSLAM outages —
    /// a stress test for the ATDS budget and the Table-5 radar.
    AgingPlant,
    /// Aggressive sales on long loops: many over-provisioned lines, so
    /// `DS-SPEED-DOWN` and chronic marginality dominate the predictions.
    Overprovisioned,
    /// A quiet, healthy network: low fault volume; tests behaviour when
    /// positives are extremely rare.
    QuietNetwork,
}

impl Scenario {
    /// All presets.
    pub const ALL: [Scenario; 5] = [
        Scenario::Baseline,
        Scenario::StormSeason,
        Scenario::AgingPlant,
        Scenario::Overprovisioned,
        Scenario::QuietNetwork,
    ];

    /// Parses a scenario name (kebab-case, as the CLI exposes them).
    pub fn parse(name: &str) -> Option<Scenario> {
        match name {
            "baseline" => Some(Scenario::Baseline),
            "storm-season" => Some(Scenario::StormSeason),
            "aging-plant" => Some(Scenario::AgingPlant),
            "overprovisioned" => Some(Scenario::Overprovisioned),
            "quiet-network" => Some(Scenario::QuietNetwork),
            _ => None,
        }
    }

    /// The preset's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::StormSeason => "storm-season",
            Scenario::AgingPlant => "aging-plant",
            Scenario::Overprovisioned => "overprovisioned",
            Scenario::QuietNetwork => "quiet-network",
        }
    }

    /// One-line description.
    pub fn description(self) -> &'static str {
        match self {
            Scenario::Baseline => "the calibrated paper-shaped operational year",
            Scenario::StormSeason => "wet regions and digging crews: outside plant suffers",
            Scenario::AgingPlant => "worn plant: more faults, more DSLAM outages",
            Scenario::Overprovisioned => "fast profiles sold onto long loops",
            Scenario::QuietNetwork => "healthy plant with rare problems",
        }
    }

    /// Materializes the preset into a configuration.
    pub fn config(self, seed: u64, n_lines: usize, days: u32) -> SimConfig {
        let base = SimConfig { seed, n_lines, days, ..SimConfig::default() };
        match self {
            Scenario::Baseline => base,
            Scenario::StormSeason => SimConfig {
                // Wetter year: weather-sensitive hazards fire more often
                // (the calendar itself is seeded; raising the base fault
                // rate plus more regions concentrates episodes).
                faults_per_line_year: base.faults_per_line_year * 1.5,
                n_regions: 2,
                ..base
            },
            Scenario::AgingPlant => SimConfig {
                faults_per_line_year: base.faults_per_line_year * 2.0,
                outages_per_dslam_year: base.outages_per_dslam_year * 2.5,
                ..base
            },
            Scenario::Overprovisioned => SimConfig {
                // Aggressive sales: fast profiles pushed onto loops that
                // cannot carry them, feeding the DS-SPEED-DOWN disposition.
                overprovision_bias: 0.6,
                faults_per_line_year: base.faults_per_line_year * 1.2,
                ..base
            },
            Scenario::QuietNetwork => SimConfig {
                faults_per_line_year: base.faults_per_line_year * 0.35,
                outages_per_dslam_year: base.outages_per_dslam_year * 0.3,
                ..base
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::OutputSummary;
    use crate::world::World;

    #[test]
    fn names_roundtrip() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::parse(s.name()), Some(s));
            assert!(!s.description().is_empty());
        }
        assert_eq!(Scenario::parse("nope"), None);
    }

    #[test]
    fn all_presets_validate_and_run() {
        for s in Scenario::ALL {
            let cfg = s.config(5, 800, 120);
            assert!(cfg.validate().is_ok(), "{} invalid", s.name());
            let out = World::generate(cfg.clone()).run();
            assert!(!out.measurements.is_empty(), "{} produced no measurements", s.name());
            let _ = OutputSummary::compute(&out, cfg.n_lines);
        }
    }

    #[test]
    fn aging_plant_is_busier_than_quiet_network() {
        let aging = World::generate(Scenario::AgingPlant.config(9, 1_500, 180)).run();
        let quiet = World::generate(Scenario::QuietNetwork.config(9, 1_500, 180)).run();
        let ce = |o: &crate::world::SimOutput| o.customer_edge_tickets().count();
        assert!(ce(&aging) > 2 * ce(&quiet), "aging {} vs quiet {}", ce(&aging), ce(&quiet));
        assert!(aging.outage_events.len() > quiet.outage_events.len());
    }
}
