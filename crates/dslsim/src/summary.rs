//! One-stop descriptive statistics over a simulation's logs.
//!
//! Useful for sanity-checking a configuration before spending compute on
//! model training, and for the dataset documentation the export module
//! ships alongside the CSV tables.

use crate::config::DayOfWeek;
use crate::disposition::{MajorLocation, N_DISPOSITIONS};
use crate::ticket::TicketCategory;
use crate::world::SimOutput;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutputSummary {
    /// Simulated horizon in days.
    pub days: u32,
    /// Number of lines the summary was computed against.
    pub n_lines: usize,
    /// Completed line tests.
    pub n_measurements: usize,
    /// Fraction of expected weekly tests that completed (modems answer).
    pub measurement_coverage: f64,
    /// Customer-edge tickets.
    pub customer_edge_tickets: usize,
    /// Outage tickets.
    pub outage_tickets: usize,
    /// Non-technical tickets.
    pub non_technical_tickets: usize,
    /// Customer-edge tickets per line per week.
    pub weekly_ce_rate: f64,
    /// Customer-edge tickets by day of week (Sun..Sat).
    pub dow_histogram: [usize; 7],
    /// Disposition notes filed.
    pub notes_total: usize,
    /// Notes where a fault was found and repaired.
    pub notes_found: usize,
    /// "No trouble found" dispatches.
    pub notes_no_trouble: usize,
    /// Remote (zero-test) resolutions.
    pub remote_fixes: usize,
    /// Found-note counts per disposition (table order).
    pub disposition_counts: Vec<usize>,
    /// Found-note counts per major location (HN, F2, F1, DS).
    pub location_counts: [usize; 4],
    /// DSLAM outages inside the horizon.
    pub outages: usize,
    /// IVR-suppressed calls.
    pub ivr_calls: usize,
    /// Customers who terminated their contracts.
    pub churned: usize,
}

impl OutputSummary {
    /// Computes the summary.
    pub fn compute(output: &SimOutput, n_lines: usize) -> Self {
        let n_saturdays = (0..output.days).filter(|&d| DayOfWeek::of(d).is_test_day()).count();
        let expected_tests = n_lines * n_saturdays;

        let mut ce = 0;
        let mut outage_t = 0;
        let mut nt = 0;
        let mut dow = [0usize; 7];
        for t in &output.tickets {
            match t.category {
                TicketCategory::CustomerEdge => {
                    ce += 1;
                    dow[(t.day % 7) as usize] += 1;
                }
                TicketCategory::Outage => outage_t += 1,
                TicketCategory::NonTechnical => nt += 1,
            }
        }

        let mut disposition_counts = vec![0usize; N_DISPOSITIONS];
        let mut location_counts = [0usize; 4];
        let mut found = 0;
        let mut no_trouble = 0;
        let mut remote = 0;
        for n in &output.notes {
            match n.disposition {
                Some(d) => {
                    found += 1;
                    disposition_counts[d.0 as usize] += 1;
                    let li = MajorLocation::ALL
                        .iter()
                        .position(|&l| l == d.location())
                        // lint:allow(no-panic-in-lib) -- every MajorLocation is a member of ALL by definition
                        .expect("known location");
                    location_counts[li] += 1;
                    if n.tests_performed == 0 {
                        remote += 1;
                    }
                }
                None => no_trouble += 1,
            }
        }

        let weeks = f64::from(output.days) / 7.0;
        Self {
            days: output.days,
            n_lines,
            n_measurements: output.measurements.len(),
            measurement_coverage: if expected_tests == 0 {
                0.0
            } else {
                output.measurements.len() as f64 / expected_tests as f64
            },
            customer_edge_tickets: ce,
            outage_tickets: outage_t,
            non_technical_tickets: nt,
            weekly_ce_rate: if n_lines == 0 || weeks == 0.0 {
                0.0
            } else {
                ce as f64 / weeks / n_lines as f64
            },
            dow_histogram: dow,
            notes_total: output.notes.len(),
            notes_found: found,
            notes_no_trouble: no_trouble,
            remote_fixes: remote,
            disposition_counts,
            location_counts,
            outages: output.outage_events.len(),
            ivr_calls: output.ivr_calls.len(),
            churned: output.churn_events.len(),
        }
    }
}

impl std::fmt::Display for OutputSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "simulated {} lines over {} days", self.n_lines, self.days)?;
        writeln!(
            f,
            "line tests: {} ({:.1}% of scheduled Saturdays answered)",
            self.n_measurements,
            100.0 * self.measurement_coverage
        )?;
        writeln!(
            f,
            "tickets: {} customer-edge ({:.2}%/line/week), {} outage, {} non-technical",
            self.customer_edge_tickets,
            100.0 * self.weekly_ce_rate,
            self.outage_tickets,
            self.non_technical_tickets
        )?;
        writeln!(
            f,
            "dispatch notes: {} ({} found, {} no-trouble, {} remote fixes)",
            self.notes_total, self.notes_found, self.notes_no_trouble, self.remote_fixes
        )?;
        writeln!(
            f,
            "found by location: HN {} / F2 {} / F1 {} / DS {}",
            self.location_counts[0],
            self.location_counts[1],
            self.location_counts[2],
            self.location_counts[3]
        )?;
        write!(
            f,
            "outages: {} (IVR swallowed {} calls); churned customers: {}",
            self.outages, self.ivr_calls, self.churned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::world::World;

    fn summary() -> (SimConfig, OutputSummary) {
        let cfg = SimConfig::small(23);
        let out = World::generate(cfg.clone()).run();
        let s = OutputSummary::compute(&out, cfg.n_lines);
        (cfg, s)
    }

    #[test]
    fn counts_are_internally_consistent() {
        let (_, s) = summary();
        assert_eq!(s.notes_total, s.notes_found + s.notes_no_trouble);
        assert_eq!(s.dow_histogram.iter().sum::<usize>(), s.customer_edge_tickets);
        assert_eq!(
            s.disposition_counts.iter().sum::<usize>(),
            s.notes_found,
            "dispositions partition the found notes"
        );
        assert_eq!(s.location_counts.iter().sum::<usize>(), s.notes_found);
        assert!(s.remote_fixes <= s.notes_found);
    }

    #[test]
    fn coverage_and_rates_are_plausible() {
        let (_, s) = summary();
        assert!(s.measurement_coverage > 0.5 && s.measurement_coverage < 1.0);
        assert!(s.weekly_ce_rate > 0.0005 && s.weekly_ce_rate < 0.02);
    }

    #[test]
    fn display_renders_every_section() {
        let (_, s) = summary();
        let text = s.to_string();
        for needle in ["line tests", "tickets", "dispatch notes", "by location", "outages"] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
    }

    #[test]
    fn empty_output_is_safe() {
        let out = SimOutput {
            measurements: vec![],
            tickets: vec![],
            notes: vec![],
            outage_events: vec![],
            traffic: crate::traffic::TrafficTable::new(vec![], 0),
            ivr_calls: vec![],
            churn_events: vec![],
            days: 0,
        };
        let s = OutputSummary::compute(&out, 0);
        assert_eq!(s.n_measurements, 0);
        assert_eq!(s.weekly_ce_rate, 0.0);
        assert_eq!(s.measurement_coverage, 0.0);
    }
}
