//! Trouble tickets, as issued by customer agents.
//!
//! Agents assign each ticket a coarse category label; the learning pipeline
//! keeps only [`TicketCategory::CustomerEdge`] tickets, mirroring the
//! paper's use of the agent label to separate customer-edge problems from
//! billing issues and network outages.

use crate::ids::LineId;
use serde::{Deserialize, Serialize};

/// Coarse agent-assigned ticket category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TicketCategory {
    /// A customer-edge technical problem (the paper's subject).
    CustomerEdge,
    /// A report attributed to a known/emerging DSLAM outage.
    Outage,
    /// Billing or other non-technical issue.
    NonTechnical,
}

/// One customer trouble ticket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ticket {
    /// Unique ticket id (issue order).
    pub id: u32,
    /// The reporting customer's line.
    pub line: LineId,
    /// Day the ticket was issued.
    pub day: u32,
    /// Agent-assigned category.
    pub category: TicketCategory,
}

impl Ticket {
    /// Whether this ticket counts as a customer-edge problem for labelling.
    pub fn is_customer_edge(&self) -> bool {
        self.category == TicketCategory::CustomerEdge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_filter() {
        let t = Ticket { id: 0, line: LineId(1), day: 5, category: TicketCategory::CustomerEdge };
        assert!(t.is_customer_edge());
        let b = Ticket { id: 1, line: LineId(1), day: 6, category: TicketCategory::NonTechnical };
        assert!(!b.is_customer_edge());
        let o = Ticket { id: 2, line: LineId(1), day: 7, category: TicketCategory::Outage };
        assert!(!o.is_customer_edge());
    }
}
