//! Plant topology: region → BRAS → DSLAM → crossbox → line.
//!
//! Loop lengths follow a right-skewed distribution with a tail past the
//! paper's 15,000 ft rule-of-thumb (long loops can't sustain fast profiles
//! and end up needing speed downgrades). Profile assignment is loosely
//! anti-correlated with loop length — as in practice, where provisioning
//! checks are imperfect and some customers are sold more speed than their
//! copper can carry. Those mismatched lines are exactly the ones the paper's
//! `DS-SPEED-DOWN` disposition exists for.

use crate::config::SimConfig;
use crate::ids::{BrasId, CrossboxId, DslamId, LineId, RegionId};
use crate::profile::ServiceProfile;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One subscriber line and its static plant attributes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Line {
    /// Line id (== index in [`Topology::lines`]).
    pub id: LineId,
    /// Terminating DSLAM.
    pub dslam: DslamId,
    /// Crossbox on the way to the DSLAM.
    pub crossbox: CrossboxId,
    /// True physical loop length in feet.
    pub loop_length_ft: f64,
    /// Subscribed service tier.
    pub profile: ServiceProfile,
    /// Whether the plant has a legacy bridge tap on this pair.
    pub has_bridge_tap: bool,
}

/// A DSLAM and its position in the hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dslam {
    /// DSLAM id (== index in [`Topology::dslams`]).
    pub id: DslamId,
    /// Upstream BRAS.
    pub bras: BrasId,
    /// Geographic region.
    pub region: RegionId,
    /// Lines terminated here (contiguous id range).
    pub first_line: LineId,
    /// Number of lines terminated here.
    pub n_lines: u32,
}

impl Dslam {
    /// Iterator over the line ids this DSLAM terminates.
    pub fn lines(&self) -> impl Iterator<Item = LineId> {
        (self.first_line.0..self.first_line.0 + self.n_lines).map(LineId)
    }
}

/// The full static plant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// All lines, indexed by [`LineId`].
    pub lines: Vec<Line>,
    /// All DSLAMs, indexed by [`DslamId`].
    pub dslams: Vec<Dslam>,
    /// Number of BRAS servers.
    pub n_bras: usize,
    /// Number of regions.
    pub n_regions: usize,
    /// Number of crossboxes.
    pub n_crossboxes: usize,
}

impl Topology {
    /// Generates the plant deterministically from the configuration.
    pub fn generate(config: &SimConfig, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n_dslams = config.n_dslams();
        let n_bras = config.n_bras();

        let mut dslams = Vec::with_capacity(n_dslams);
        let mut lines = Vec::with_capacity(config.n_lines);
        let mut crossbox_counter = 0u32;

        for d in 0..n_dslams {
            let first_line = LineId(lines.len() as u32);
            let remaining = config.n_lines - lines.len();
            let n_here = config.lines_per_dslam.min(remaining) as u32;
            let bras = BrasId((d / config.dslams_per_bras) as u16);
            let region = RegionId((bras.0 as usize % config.n_regions) as u16);
            let dslam_id = DslamId(d as u32);

            // Crossboxes for this DSLAM: contiguous block.
            let first_crossbox = crossbox_counter;
            crossbox_counter += config.crossboxes_per_dslam as u32;

            // A per-DSLAM central loop length: DSLAMs serve neighbourhoods,
            // so loop lengths cluster within one.
            let hub_ft: f64 = rng.random_range(2_000.0..12_000.0);

            for l in 0..n_here {
                let id = LineId(first_line.0 + l);
                let crossbox =
                    CrossboxId(first_crossbox + (l as usize % config.crossboxes_per_dslam) as u32);
                // Right-skewed spread around the hub: some subscribers sit
                // much further out than the neighbourhood center.
                let spread: f64 = rng.random_range(0.0f64..1.0);
                let loop_length_ft =
                    (hub_ft + 8_000.0 * spread * spread * spread + rng.random_range(0.0..1_500.0))
                        .clamp(500.0, 24_000.0);

                // Profile assignment: longer loops skew toward slower tiers,
                // but provisioning is imperfect — a fraction of long loops
                // still get fast profiles (future speed-downgrade cases).
                let p_fast =
                    (1.2 - loop_length_ft / 16_000.0 + config.overprovision_bias).clamp(0.05, 0.95);
                let profile = if rng.random_bool(p_fast) {
                    if rng.random_bool(0.5) {
                        ServiceProfile::Advanced
                    } else {
                        ServiceProfile::Mid
                    }
                } else {
                    ServiceProfile::Basic
                };

                let has_bridge_tap = rng.random_bool(0.08);

                lines.push(Line {
                    id,
                    dslam: dslam_id,
                    crossbox,
                    loop_length_ft,
                    profile,
                    has_bridge_tap,
                });
            }

            dslams.push(Dslam { id: dslam_id, bras, region, first_line, n_lines: n_here });
            if lines.len() >= config.n_lines {
                break;
            }
        }

        Self {
            lines,
            dslams,
            n_bras,
            n_regions: config.n_regions,
            n_crossboxes: crossbox_counter as usize,
        }
    }

    /// The line record for an id.
    #[inline]
    pub fn line(&self, id: LineId) -> &Line {
        &self.lines[id.index()]
    }

    /// The DSLAM record for an id.
    #[inline]
    pub fn dslam(&self, id: DslamId) -> &Dslam {
        &self.dslams[id.index()]
    }

    /// DSLAM terminating a given line.
    #[inline]
    pub fn dslam_of(&self, line: LineId) -> DslamId {
        self.line(line).dslam
    }

    /// BRAS above a given line.
    #[inline]
    pub fn bras_of(&self, line: LineId) -> BrasId {
        self.dslam(self.line(line).dslam).bras
    }

    /// Region of a given line.
    #[inline]
    pub fn region_of(&self, line: LineId) -> RegionId {
        self.dslam(self.line(line).dslam).region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (SimConfig, Topology) {
        let cfg = SimConfig::small(42);
        let topo = Topology::generate(&cfg, 7);
        (cfg, topo)
    }

    #[test]
    fn line_count_matches_config() {
        let (cfg, topo) = small();
        assert_eq!(topo.lines.len(), cfg.n_lines);
    }

    #[test]
    fn line_ids_are_indices() {
        let (_, topo) = small();
        for (i, line) in topo.lines.iter().enumerate() {
            assert_eq!(line.id.index(), i);
        }
    }

    #[test]
    fn dslam_ranges_partition_lines() {
        let (_, topo) = small();
        let mut covered = vec![false; topo.lines.len()];
        for dslam in &topo.dslams {
            for lid in dslam.lines() {
                assert!(!covered[lid.index()], "line {} in two DSLAMs", lid);
                covered[lid.index()] = true;
                assert_eq!(topo.line(lid).dslam, dslam.id);
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn dslam_size_is_several_tens() {
        let (cfg, topo) = small();
        for dslam in &topo.dslams[..topo.dslams.len() - 1] {
            assert_eq!(dslam.n_lines as usize, cfg.lines_per_dslam);
        }
    }

    #[test]
    fn hierarchy_is_consistent() {
        let (cfg, topo) = small();
        for dslam in &topo.dslams {
            assert!(dslam.bras.index() < topo.n_bras);
            assert!(dslam.region.index() < cfg.n_regions);
            assert_eq!(dslam.bras.0 as usize, dslam.id.index() / cfg.dslams_per_bras);
        }
    }

    #[test]
    fn loop_lengths_are_plausible_with_long_tail() {
        let (_, topo) = small();
        let lengths: Vec<f64> = topo.lines.iter().map(|l| l.loop_length_ft).collect();
        assert!(lengths.iter().all(|&ft| (500.0..=24_000.0).contains(&ft)));
        let long = lengths.iter().filter(|&&ft| ft > 15_000.0).count();
        assert!(long > 0, "expected some loops past 15kft");
        assert!((long as f64) < 0.35 * lengths.len() as f64, "tail too heavy: {long}");
    }

    #[test]
    fn some_fast_profiles_on_long_loops() {
        // The provisioning mismatch that feeds DS-SPEED-DOWN must exist.
        let (_, topo) = small();
        let mismatched =
            topo.lines.iter().filter(|l| l.loop_length_ft > l.profile.marginal_loop_ft()).count();
        assert!(mismatched > 0, "no profile/loop mismatches generated");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SimConfig::small(9);
        let a = Topology::generate(&cfg, 3);
        let b = Topology::generate(&cfg, 3);
        assert_eq!(a.lines.len(), b.lines.len());
        for (la, lb) in a.lines.iter().zip(&b.lines) {
            assert_eq!(la.loop_length_ft, lb.loop_length_ft);
            assert_eq!(la.profile, lb.profile);
        }
        let c = Topology::generate(&cfg, 4);
        assert!(
            a.lines.iter().zip(&c.lines).any(|(x, y)| x.loop_length_ft != y.loop_length_ft),
            "different seed should change the plant"
        );
    }

    #[test]
    fn crossboxes_subdivide_dslams() {
        let (cfg, topo) = small();
        for dslam in &topo.dslams {
            let mut boxes: Vec<u32> = dslam.lines().map(|l| topo.line(l).crossbox.0).collect();
            boxes.sort_unstable();
            boxes.dedup();
            assert!(boxes.len() <= cfg.crossboxes_per_dslam);
            assert!(!boxes.is_empty());
        }
    }
}
