//! Per-line daily traffic counters for a sample of BRAS servers.
//!
//! The paper collects "daily aggregated byte information for individual
//! customers under two BRAS servers" and uses it to show that ~16.7% of the
//! predictor's "incorrect" predictions belong to customers who were simply
//! not on site (no traffic for a week on either side of the prediction).
//! This table is the synthetic counterpart.

use crate::ids::LineId;
use serde::{Deserialize, Serialize};

/// Daily byte counters for a covered subset of lines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficTable {
    days: u32,
    /// Covered lines in ascending id order.
    lines: Vec<LineId>,
    /// `bytes[line_slot * days + day]`, kilobytes (fits u32 comfortably).
    kilobytes: Vec<u32>,
}

impl TrafficTable {
    /// Creates an empty table covering the given lines.
    pub fn new(mut lines: Vec<LineId>, days: u32) -> Self {
        lines.sort_unstable();
        lines.dedup();
        let kilobytes = vec![0u32; lines.len() * days as usize];
        Self { days, lines, kilobytes }
    }

    /// Number of covered lines.
    pub fn n_lines(&self) -> usize {
        self.lines.len()
    }

    /// The covered lines.
    pub fn lines(&self) -> &[LineId] {
        &self.lines
    }

    /// Whether a line is covered by the sample.
    pub fn covers(&self, line: LineId) -> bool {
        self.slot(line).is_some()
    }

    fn slot(&self, line: LineId) -> Option<usize> {
        self.lines.binary_search(&line).ok()
    }

    /// Records a day's traffic for a covered line (no-op otherwise).
    pub fn record(&mut self, line: LineId, day: u32, kilobytes: u32) {
        if day >= self.days {
            return;
        }
        if let Some(s) = self.slot(line) {
            self.kilobytes[s * self.days as usize + day as usize] = kilobytes;
        }
    }

    /// Kilobytes on one day, if the line is covered.
    pub fn kilobytes_on(&self, line: LineId, day: u32) -> Option<u32> {
        if day >= self.days {
            return None;
        }
        self.slot(line).map(|s| self.kilobytes[s * self.days as usize + day as usize])
    }

    /// Total kilobytes in `[from, to)`, if the line is covered.
    pub fn total_in_window(&self, line: LineId, from: u32, to: u32) -> Option<u64> {
        let s = self.slot(line)?;
        let from = from.min(self.days);
        let to = to.min(self.days);
        let base = s * self.days as usize;
        Some(
            self.kilobytes[base + from as usize..base + to as usize]
                .iter()
                .map(|&k| k as u64)
                .sum(),
        )
    }

    /// The paper's "not on site" test: zero traffic from one week before
    /// `day` to one week after. `None` when the line is not covered.
    pub fn not_on_site(&self, line: LineId, day: u32) -> Option<bool> {
        let from = day.saturating_sub(7);
        let to = day + 8;
        self.total_in_window(line, from, to).map(|total| total == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_and_recording() {
        let mut t = TrafficTable::new(vec![LineId(5), LineId(2)], 30);
        assert!(t.covers(LineId(2)));
        assert!(!t.covers(LineId(3)));
        t.record(LineId(2), 10, 500);
        t.record(LineId(3), 10, 999); // uncovered: ignored
        assert_eq!(t.kilobytes_on(LineId(2), 10), Some(500));
        assert_eq!(t.kilobytes_on(LineId(3), 10), None);
        assert_eq!(t.kilobytes_on(LineId(2), 11), Some(0));
    }

    #[test]
    fn window_totals() {
        let mut t = TrafficTable::new(vec![LineId(0)], 20);
        t.record(LineId(0), 3, 10);
        t.record(LineId(0), 4, 20);
        t.record(LineId(0), 10, 100);
        assert_eq!(t.total_in_window(LineId(0), 0, 5), Some(30));
        assert_eq!(t.total_in_window(LineId(0), 5, 20), Some(100));
        assert_eq!(t.total_in_window(LineId(0), 0, 100), Some(130), "clamps to table end");
    }

    #[test]
    fn not_on_site_detection() {
        let mut t = TrafficTable::new(vec![LineId(1)], 40);
        // Active before day 10, silent afterwards.
        for d in 0..10 {
            t.record(LineId(1), d, 50);
        }
        assert_eq!(t.not_on_site(LineId(1), 5), Some(false));
        assert_eq!(t.not_on_site(LineId(1), 25), Some(true));
        assert_eq!(t.not_on_site(LineId(99), 25), None);
    }

    #[test]
    fn out_of_range_days_are_safe() {
        let mut t = TrafficTable::new(vec![LineId(0)], 10);
        t.record(LineId(0), 50, 10); // ignored
        assert_eq!(t.kilobytes_on(LineId(0), 50), None);
        assert_eq!(t.total_in_window(LineId(0), 5, 50), Some(0));
    }

    #[test]
    fn duplicate_lines_deduped() {
        let t = TrafficTable::new(vec![LineId(1), LineId(1), LineId(0)], 5);
        assert_eq!(t.n_lines(), 2);
        assert_eq!(t.lines(), &[LineId(0), LineId(1)]);
    }
}
