//! Exogenous hazard drivers: regional weather and local construction.
//!
//! Moisture is the classic enemy of outside plant — wet episodes multiply
//! the hazard of every weather-sensitive disposition (wet conductors,
//! corroded drops, flooded splice cases). Construction and digging episodes
//! near a DSLAM multiply the hazard of cut-type dispositions. Both are
//! pre-scheduled at world generation so the day loop only does lookups.

use crate::disposition::{DispositionId, FaultClass};
use crate::ids::{DslamId, RegionId};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Hazard multiplier applied to weather-sensitive dispositions on wet days.
pub const WET_MULTIPLIER: f64 = 4.0;
/// Hazard multiplier applied to cut-type dispositions during construction.
pub const CONSTRUCTION_MULTIPLIER: f64 = 10.0;

/// Pre-computed wet/construction day masks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExogenousCalendar {
    days: u32,
    /// `wet[region][day]`.
    wet: Vec<Vec<bool>>,
    /// `construction[dslam][day]`.
    construction: Vec<Vec<bool>>,
}

impl ExogenousCalendar {
    /// Schedules weather and construction episodes deterministically.
    pub fn generate(n_regions: usize, n_dslams: usize, days: u32, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let mut wet = vec![vec![false; days as usize]; n_regions];
        for region in wet.iter_mut() {
            let mut day = 0u32;
            while day < days {
                // Rain episode starts ~ every 2 weeks and lasts 1–5 days.
                if rng.random_bool(0.07) {
                    let len = rng.random_range(1..=5u32);
                    for d in day..(day + len).min(days) {
                        region[d as usize] = true;
                    }
                    day += len;
                } else {
                    day += 1;
                }
            }
        }

        let mut construction = vec![vec![false; days as usize]; n_dslams];
        for site in construction.iter_mut() {
            let mut day = 0u32;
            while day < days {
                // A dig near this DSLAM every few years; lasts 3–10 days.
                if rng.random_bool(0.002) {
                    let len = rng.random_range(3..=10u32);
                    for d in day..(day + len).min(days) {
                        site[d as usize] = true;
                    }
                    day += len;
                } else {
                    day += 1;
                }
            }
        }

        Self { days, wet, construction }
    }

    /// Whether the region is in a wet episode on `day`.
    pub fn is_wet(&self, region: RegionId, day: u32) -> bool {
        day < self.days && self.wet[region.index()][day as usize]
    }

    /// Whether construction is active near the DSLAM on `day`.
    pub fn is_construction(&self, dslam: DslamId, day: u32) -> bool {
        day < self.days && self.construction[dslam.index()][day as usize]
    }

    /// Hazard multiplier for one disposition given the local conditions.
    pub fn hazard_multiplier(
        &self,
        disposition: DispositionId,
        region: RegionId,
        dslam: DslamId,
        day: u32,
    ) -> f64 {
        let info = disposition.info();
        let mut m = 1.0;
        if info.weather_sensitive && self.is_wet(region, day) {
            m *= WET_MULTIPLIER;
        }
        if info.class == FaultClass::Hard
            && info.location.is_outside()
            && self.is_construction(dslam, day)
        {
            m *= CONSTRUCTION_MULTIPLIER;
        }
        m
    }

    /// Fraction of region-days that are wet (for calibration checks).
    pub fn wet_fraction(&self) -> f64 {
        let total: usize = self.wet.iter().map(|r| r.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let wet: usize = self.wet.iter().map(|r| r.iter().filter(|&&w| w).count()).sum();
        wet as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disposition::by_code;

    #[test]
    fn wet_fraction_is_moderate() {
        let cal = ExogenousCalendar::generate(4, 50, 365, 1);
        let f = cal.wet_fraction();
        assert!(f > 0.05 && f < 0.45, "wet fraction {f}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ExogenousCalendar::generate(3, 20, 200, 7);
        let b = ExogenousCalendar::generate(3, 20, 200, 7);
        for r in 0..3 {
            for d in 0..200 {
                assert_eq!(a.is_wet(RegionId(r), d), b.is_wet(RegionId(r), d));
            }
        }
    }

    #[test]
    fn multiplier_applies_only_when_wet_and_sensitive() {
        let cal = ExogenousCalendar::generate(2, 10, 365, 3);
        let wet_day =
            (0..365).find(|&d| cal.is_wet(RegionId(0), d)).expect("some wet day in a year");
        let dry_day =
            (0..365).find(|&d| !cal.is_wet(RegionId(0), d)).expect("some dry day in a year");

        let sensitive = by_code("F1-WET-CONDUCTOR").expect("exists");
        let insensitive = by_code("HN-SOFTWARE").expect("exists");
        let dslam = DslamId(0);
        // Pick a construction-free day for the cut check below if needed.
        assert_eq!(
            cal.hazard_multiplier(sensitive, RegionId(0), dslam, wet_day)
                / cal.hazard_multiplier(sensitive, RegionId(0), dslam, dry_day),
            WET_MULTIPLIER
        );
        assert_eq!(cal.hazard_multiplier(insensitive, RegionId(0), dslam, wet_day), 1.0);
    }

    #[test]
    fn construction_boosts_outside_cuts_only() {
        // Build a calendar and force a construction day by searching; if a
        // small sample has none, regenerate with another seed.
        let mut found = None;
        for seed in 0..50 {
            let cal = ExogenousCalendar::generate(1, 30, 365, seed);
            if let Some((dslam, day)) = (0..30)
                .flat_map(|ds| (0..365).map(move |d| (ds, d)))
                .find(|&(ds, d)| cal.is_construction(DslamId(ds), d))
            {
                found = Some((cal, dslam, day));
                break;
            }
        }
        let (cal, dslam, day) = found.expect("some construction episode in 50 calendars");
        let cut = by_code("F1-PAIR-CUT").expect("exists");
        let inside_cut = by_code("HN-IW-CUT").expect("exists");
        let region = RegionId(0);
        let m = cal.hazard_multiplier(cut, region, DslamId(dslam), day);
        assert!(m >= CONSTRUCTION_MULTIPLIER, "outside cut multiplier {m}");
        // HN cuts are inside and unaffected by street construction.
        assert_eq!(cal.hazard_multiplier(inside_cut, region, DslamId(dslam), day), 1.0);
    }

    #[test]
    fn out_of_range_days_are_calm() {
        let cal = ExogenousCalendar::generate(1, 1, 10, 1);
        assert!(!cal.is_wet(RegionId(0), 10_000));
        assert!(!cal.is_construction(DslamId(0), 10_000));
    }
}
