//! The simulated world: a day-by-day event loop over the whole plant.
//!
//! Each simulated day the world advances customers (usage, awareness,
//! calls), fault processes (onsets, self-healing), outages (precursor
//! stress, hard-down, IVR), dispatches (technician visits, repairs,
//! disposition notes), traffic counters, and — on Saturdays — the weekly
//! line tests.
//!
//! Two modes of use:
//!
//! * **Offline (the paper's evaluation setting):** [`World::run`] simulates
//!   the full horizon reactively and returns the accumulated [`SimOutput`]
//!   logs, which the learning pipeline then splits into train/test windows.
//! * **Operational (the NEVERMIND loop):** drive [`World::step_day`]
//!   yourself, inspect [`World::output`] after each Saturday, and inject
//!   [`World::schedule_proactive_dispatch`] calls for the predictor's
//!   top-ranked lines.
//!
//! # Sharded stepping
//!
//! The plant is partitioned by DSLAM subtree into [`World::with_shards`]
//! contiguous shards. Every DSLAM owns five ChaCha8 streams (fault,
//! customer, measure, dispatch, misc), each seeded
//! `subseed(subseed(world_seed, subsystem), dslam_id)` — so the draw
//! sequence behind any line depends only on its DSLAM, never on how many
//! shards the plant happens to be split into. `step_day` steps shards on
//! scoped threads, each writing tickets, notes, measurements, traffic and
//! trace events into a private per-day buffer; the buffers are merged in
//! shard order (= plant line order) with ticket ids renumbered at the
//! merge. The one-shard path runs the identical buffer-and-merge code
//! inline, which is what makes `--shards N` bit-identical to serial for
//! every `N` (see `tests/sharding.rs`).

use crate::config::{DayOfWeek, SimConfig};
use crate::customer::{generate_customers, Customer};
use crate::dispatch::{basic_order, run_dispatch, taxonomy_priors, DispositionNote};
use crate::disposition::{DispositionId, FaultClass, N_DISPOSITIONS};
use crate::fault::{disposition_weights, Fault};
use crate::ids::{DslamId, LineId};
use crate::measurement::LineTest;
use crate::outage::{OutageEvent, OutageSchedule};
use crate::physics::{combine_effects, modem_answers, synthesize};
use crate::ticket::{Ticket, TicketCategory};
use crate::topology::Topology;
use crate::traffic::TrafficTable;
use crate::weather::{ExogenousCalendar, CONSTRUCTION_MULTIPLIER, WET_MULTIPLIER};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A customer call suppressed by the outage IVR (the call happened, the
/// ticket did not — Sec. 5.2's first scenario).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IvrCall {
    /// Calling customer's line.
    pub line: LineId,
    /// Day of the suppressed call.
    pub day: u32,
}

/// A customer terminating their contract after a problem dragged on —
/// the churn the paper's proactive approach is motivated by ("a lengthy
/// resolution can lead to customer dissatisfaction and ultimately lead to
/// churn").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// The departing customer's line.
    pub line: LineId,
    /// Day of the termination.
    pub day: u32,
}

/// Accumulated logs of one simulation run — the synthetic counterparts of
/// the paper's four data sources (plus the outage and IVR side-channels).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutput {
    /// Completed weekly line tests.
    pub measurements: Vec<LineTest>,
    /// All tickets (customer edge, outage, non-technical).
    pub tickets: Vec<Ticket>,
    /// Disposition notes from dispatches and remote resolutions.
    pub notes: Vec<DispositionNote>,
    /// Scheduled DSLAM outages that fell inside the horizon.
    pub outage_events: Vec<OutageEvent>,
    /// Daily traffic counters for the sampled BRAS servers.
    pub traffic: TrafficTable,
    /// IVR-suppressed calls.
    pub ivr_calls: Vec<IvrCall>,
    /// Contract terminations after unresolved problems.
    pub churn_events: Vec<ChurnEvent>,
    /// Simulated horizon in days.
    pub days: u32,
}

impl SimOutput {
    /// Customer-edge tickets only (what the predictor trains against).
    pub fn customer_edge_tickets(&self) -> impl Iterator<Item = &Ticket> {
        self.tickets.iter().filter(|t| t.is_customer_edge())
    }
}

#[derive(Debug, Clone)]
struct PendingDispatch {
    due_day: u32,
    line: LineId,
    ticket: Option<u32>,
    proactive: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct LineHazard {
    /// Σ of base disposition weights.
    sum_base: f64,
    /// Extra weight when the region is wet: (mult−1)·Σ weather-sensitive.
    extra_wet: f64,
    /// Extra weight during construction: (mult−1)·Σ outside hard cuts.
    extra_construction: f64,
}

/// One DSLAM subtree's RNG streams, derived `seed → subsystem → dslam`.
///
/// Deriving per-DSLAM (not per-shard) is what makes the draw sequence a
/// property of the plant rather than of the partition: shard boundaries
/// can move freely without perturbing a single sample.
struct SubtreeRngs {
    fault: ChaCha8Rng,
    customer: ChaCha8Rng,
    measure: ChaCha8Rng,
    dispatch: ChaCha8Rng,
    misc: ChaCha8Rng,
}

impl SubtreeRngs {
    fn new(seed: u64, dslam: u32) -> Self {
        let stream =
            |s: u64| ChaCha8Rng::seed_from_u64(subseed(subseed(seed, s), u64::from(dslam)));
        Self {
            fault: stream(5),
            customer: stream(6),
            measure: stream(7),
            dispatch: stream(8),
            misc: stream(9),
        }
    }
}

/// Mutable per-line and per-DSLAM state, split into shard slices each day.
struct PlantState {
    /// Per line: fault history.
    faults: Vec<Vec<Fault>>,
    /// Per line: first day the customer noticed the current problem.
    aware_since: Vec<Option<u32>>,
    /// Per line: contract terminated.
    churned: Vec<bool>,
    /// Per line: trailing 8-day usage window (bit 0 = today).
    usage_bits: Vec<u8>,
    /// Per line: the at-most-one scheduled truck roll.
    pending: Vec<Option<PendingDispatch>>,
    /// Per DSLAM: subsystem RNG streams.
    rngs: Vec<SubtreeRngs>,
    /// Per DSLAM: outage calls that became tickets (u16 + saturation so a
    /// very large DSLAM in a long outage can neither wrap nor panic).
    outage_reports: Vec<u16>,
    /// Per DSLAM: the IVR announcement is up.
    outage_known: Vec<bool>,
}

/// The running simulation.
pub struct World {
    config: SimConfig,
    topology: Topology,
    customers: Vec<Customer>,
    calendar: ExogenousCalendar,
    outages: OutageSchedule,

    hazards: Vec<LineHazard>,
    mean_base_hazard: f64,
    /// Per line: covered by the BRAS traffic sample.
    traffic_covered: Vec<bool>,

    state: PlantState,
    priors: [f64; N_DISPOSITIONS],

    shards: usize,
    day: u32,
    next_ticket: u32,
    out: SimOutput,
}

/// Read-only context shared by all shards during one day.
#[derive(Clone, Copy)]
struct StepCtx<'a> {
    config: &'a SimConfig,
    topology: &'a Topology,
    customers: &'a [Customer],
    calendar: &'a ExogenousCalendar,
    outages: &'a OutageSchedule,
    hazards: &'a [LineHazard],
    traffic_covered: &'a [bool],
    mean_base_hazard: f64,
    /// Day-start snapshot: every shard triages with the same priors.
    priors: [f64; N_DISPOSITIONS],
    day: u32,
    trace: bool,
}

/// One shard's slice of the mutable plant state: a contiguous DSLAM range
/// and the contiguous line range it terminates.
struct ShardMut<'a> {
    first_dslam: usize,
    first_line: usize,
    faults: &'a mut [Vec<Fault>],
    aware_since: &'a mut [Option<u32>],
    churned: &'a mut [bool],
    usage_bits: &'a mut [u8],
    pending: &'a mut [Option<PendingDispatch>],
    rngs: &'a mut [SubtreeRngs],
    outage_reports: &'a mut [u16],
    outage_known: &'a mut [bool],
}

/// Everything a shard produced in one day, merged in shard order.
///
/// Ticket ids are shard-local indices into `tickets` until the merge
/// assigns each shard a contiguous global id block; `remote_notes` and
/// `new_pending` carry the local index so the merge can patch them.
struct DayBuffer {
    tickets: Vec<(LineId, TicketCategory)>,
    /// Remote-fix notes (advance phase), with the local ticket index.
    remote_notes: Vec<(DispositionNote, u32)>,
    /// Truck-roll notes (dispatch phase); their tickets are already global.
    visit_notes: Vec<DispositionNote>,
    /// Reactive dispatches queued today, with the local ticket index.
    new_pending: Vec<(PendingDispatch, u32)>,
    ivr_calls: Vec<IvrCall>,
    churn_events: Vec<ChurnEvent>,
    measurements: Vec<LineTest>,
    traffic: Vec<(LineId, u32)>,
    trace: Vec<nevermind_obs::trace::TraceEvent>,
    /// Disposition prior increments, replayed as exact `+1.0` sequences at
    /// the merge so the f64 op sequence is identical for any shard count.
    prior_counts: [u32; N_DISPOSITIONS],
}

impl Default for DayBuffer {
    fn default() -> Self {
        Self {
            tickets: Vec::new(),
            remote_notes: Vec::new(),
            visit_notes: Vec::new(),
            new_pending: Vec::new(),
            ivr_calls: Vec::new(),
            churn_events: Vec::new(),
            measurements: Vec::new(),
            traffic: Vec::new(),
            trace: Vec::new(),
            prior_counts: [0; N_DISPOSITIONS],
        }
    }
}

/// Samples the disposition for a new fault under current conditions.
fn sample_new_fault(
    line: &crate::topology::Line,
    existing: &[Fault],
    day: u32,
    wet: bool,
    constr: bool,
    rng: &mut ChaCha8Rng,
) -> Option<Fault> {
    let mut w = disposition_weights(line);
    for (i, info) in crate::disposition::DISPOSITIONS.iter().enumerate() {
        if wet && info.weather_sensitive {
            w[i] *= WET_MULTIPLIER;
        }
        if constr && info.class == FaultClass::Hard && info.location.is_outside() {
            w[i] *= CONSTRUCTION_MULTIPLIER;
        }
    }
    // Avoid stacking a second copy of an already-active disposition.
    for f in existing {
        if f.active(day) {
            w[f.disposition.0 as usize] = 0.0;
        }
    }
    let total: f64 = w.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut pick = rng.random_range(0.0..total);
    let mut chosen = N_DISPOSITIONS - 1;
    for (i, &wi) in w.iter().enumerate() {
        if pick < wi {
            chosen = i;
            break;
        }
        pick -= wi;
    }
    let disposition = DispositionId(chosen as u8);
    let info = disposition.info();
    let ramp = info.ramp_days * rng.random_range(0.5..1.5);
    let severity_cap = rng.random_range(0.7..1.0);
    Some(Fault { disposition, onset_day: day, ramp_days: ramp, severity_cap, repaired_day: None })
}

/// Per-line susceptibility to DSLAM-level stress, in [0.25, 1.0].
///
/// A failing card does not degrade every port equally; heterogeneity keeps
/// the precursor pattern from being a trivially separable DSLAM-wide
/// signature (see `physics::combine_effects`).
fn stress_susceptibility(line: LineId) -> f64 {
    let h = subseed(0xCAFE_F00D, line.0 as u64);
    0.5 + 0.5 * (h as f64 / u64::MAX as f64)
}

/// Derives a subsystem seed from the master seed (SplitMix64 step).
fn subseed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fraction of the trailing seven days the customer was online, in [0, 1].
///
/// The `u8` window holds eight days of history; the Saturday test reads
/// only the trailing seven. (Bug fix: the eighth bit used to leak into the
/// count, so an always-on customer measured 8/7 ≈ 1.14.)
fn weekly_usage(bits: u8) -> f64 {
    f64::from((bits & 0x7F).count_ones()) / 7.0
}

/// Daily fault-onset probability under the hazard normalization.
///
/// Guards the degenerate all-zero-hazard plant: `mean_base_hazard == 0`
/// would otherwise turn the division into NaN and poison `random_bool`.
fn fault_onset_prob(daily_rate: f64, total_hazard: f64, mean_base_hazard: f64) -> f64 {
    if mean_base_hazard <= 0.0 {
        return 0.0;
    }
    (daily_rate * total_hazard / mean_base_hazard).clamp(0.0, 1.0)
}

/// Splits `n_dslams` DSLAMs into at most `n_shards` contiguous,
/// near-equal, non-empty ranges.
fn shard_bounds(n_dslams: usize, n_shards: usize) -> Vec<(usize, usize)> {
    let k = n_shards.clamp(1, n_dslams.max(1));
    (0..k).map(|s| (s * n_dslams / k, (s + 1) * n_dslams / k)).collect()
}

/// Carves the plant state into per-shard mutable slices along `bounds`.
fn split_shards<'a>(
    topology: &Topology,
    bounds: &[(usize, usize)],
    state: &'a mut PlantState,
) -> Vec<ShardMut<'a>> {
    let n_lines = topology.lines.len();
    // First line terminated at or after DSLAM `d`.
    let line_at = |d: usize| -> usize {
        if d >= topology.dslams.len() {
            n_lines
        } else {
            topology.dslams[d].first_line.index()
        }
    };
    let mut faults = state.faults.as_mut_slice();
    let mut aware_since = state.aware_since.as_mut_slice();
    let mut churned = state.churned.as_mut_slice();
    let mut usage_bits = state.usage_bits.as_mut_slice();
    let mut pending = state.pending.as_mut_slice();
    let mut rngs = state.rngs.as_mut_slice();
    let mut outage_reports = state.outage_reports.as_mut_slice();
    let mut outage_known = state.outage_known.as_mut_slice();
    macro_rules! take {
        ($slice:ident, $n:expr) => {{
            let (head, tail) = std::mem::take(&mut $slice).split_at_mut($n);
            $slice = tail;
            head
        }};
    }
    let mut shards = Vec::with_capacity(bounds.len());
    for &(d0, d1) in bounds {
        let first_line = line_at(d0);
        let n_l = line_at(d1) - first_line;
        let n_d = d1 - d0;
        shards.push(ShardMut {
            first_dslam: d0,
            first_line,
            faults: take!(faults, n_l),
            aware_since: take!(aware_since, n_l),
            churned: take!(churned, n_l),
            usage_bits: take!(usage_bits, n_l),
            pending: take!(pending, n_l),
            rngs: take!(rngs, n_d),
            outage_reports: take!(outage_reports, n_d),
            outage_known: take!(outage_known, n_d),
        });
    }
    shards
}

/// One shard's full day: outage bookkeeping, per-line advancement, due
/// dispatches, and (Saturdays) line tests.
fn step_shard(ctx: &StepCtx<'_>, shard: &mut ShardMut<'_>, buf: &mut DayBuffer) {
    refresh_outage_state(ctx, shard);
    advance_lines(ctx, shard, buf);
    process_dispatches(ctx, shard, buf);
    if DayOfWeek::of(ctx.day).is_test_day() {
        run_line_tests(ctx, shard, buf);
    }
}

/// Resets IVR counters at outage boundaries.
fn refresh_outage_state(ctx: &StepCtx<'_>, shard: &mut ShardMut<'_>) {
    for d in 0..shard.outage_reports.len() {
        let dslam = DslamId((shard.first_dslam + d) as u32);
        if !ctx.outages.is_down(dslam, ctx.day) {
            shard.outage_reports[d] = 0;
            shard.outage_known[d] = false;
        }
    }
}

/// Per-line daily processing: usage, fault onsets/healing, awareness,
/// calls and tickets, traffic.
fn advance_lines(ctx: &StepCtx<'_>, shard: &mut ShardMut<'_>, buf: &mut DayBuffer) {
    let day = ctx.day;
    let daily_rate = ctx.config.faults_per_line_year / 365.0;

    for d in 0..shard.rngs.len() {
        let dslam_id = DslamId((shard.first_dslam + d) as u32);
        let dslam = ctx.topology.dslam(dslam_id);
        let region = dslam.region;
        let dslam_down = ctx.outages.is_down(dslam_id, day);
        let dslam_stress = ctx.outages.stress(dslam_id, day);

        for line_id in dslam.lines() {
            let gi = line_id.index();
            let li = gi - shard.first_line;

            // Churned customers are gone: no usage, no problems noticed,
            // no calls. The copper stays in the plant but the service is
            // disconnected.
            if shard.churned[li] {
                shard.usage_bits[li] <<= 1;
                record_traffic(ctx, buf, line_id, false, &mut shard.rngs[d].misc);
                continue;
            }

            let customer = &ctx.customers[gi];

            // --- usage ---
            let used = customer.uses_service(day, &mut shard.rngs[d].customer);
            shard.usage_bits[li] = (shard.usage_bits[li] << 1) | u8::from(used);

            // --- fault self-healing ---
            for f in shard.faults[li].iter_mut() {
                if f.repaired_day.is_none() && f.onset_day <= day {
                    let heal_p = match f.disposition.info().class {
                        FaultClass::Hard => 0.002,
                        FaultClass::Intermittent => 0.02,
                        FaultClass::Degraded => 0.018,
                    };
                    if shard.rngs[d].fault.random_bool(heal_p) {
                        f.repaired_day = Some(day);
                    }
                }
            }

            // --- fault onset ---
            let active_count = shard.faults[li].iter().filter(|f| f.active(day)).count();
            if active_count < 3 {
                let h = &ctx.hazards[gi];
                let wet = ctx.calendar.is_wet(region, day);
                let constr = ctx.calendar.is_construction(dslam_id, day);
                let mut total = h.sum_base;
                if wet {
                    total += h.extra_wet;
                }
                if constr {
                    total += h.extra_construction;
                }
                let p = fault_onset_prob(daily_rate, total, ctx.mean_base_hazard);
                if shard.rngs[d].fault.random_bool(p) {
                    if let Some(fault) = sample_new_fault(
                        &ctx.topology.lines[gi],
                        &shard.faults[li],
                        day,
                        wet,
                        constr,
                        &mut shard.rngs[d].fault,
                    ) {
                        shard.faults[li].push(fault);
                    }
                }
            }

            // --- outage handling (overrides individual awareness) ---
            if dslam_down {
                if used && !customer.is_away(day) {
                    // The service is dead; the customer calls with outage
                    // urgency modulated by the weekly pattern.
                    let p = customer.call_prob(day, 1.0, ctx.config.report_base_prob * 1.6);
                    if shard.rngs[d].customer.random_bool(p) {
                        if shard.outage_known[d] {
                            buf.ivr_calls.push(IvrCall { line: line_id, day });
                        } else {
                            buf.tickets.push((line_id, TicketCategory::Outage));
                            shard.outage_reports[d] = shard.outage_reports[d].saturating_add(1);
                            if shard.outage_reports[d] >= 3 {
                                shard.outage_known[d] = true;
                            }
                        }
                    }
                }
                // No individual fault reporting while the DSLAM is down.
                record_traffic(ctx, buf, line_id, false, &mut shard.rngs[d].misc);
                continue;
            }

            // --- awareness & reporting of line faults ---
            // A degrading DSLAM card is user-visible too: sporadic drops in
            // the precursor window produce some genuine pre-outage
            // customer-edge tickets (and keep the measurement pattern from
            // being a pure no-ticket signature).
            let stress_perceived = 0.55 * dslam_stress * stress_susceptibility(line_id);
            let perceived = shard.faults[li]
                .iter()
                .map(|f| f.perceived_severity(day))
                .fold(stress_perceived, f64::max);
            if perceived <= 0.0 {
                shard.aware_since[li] = None;
            } else {
                if shard.aware_since[li].is_none() && used && perceived > customer.tolerance {
                    shard.aware_since[li] = Some(day);
                }
                if let Some(since) = shard.aware_since[li] {
                    let p = customer.call_prob(day, perceived, ctx.config.report_base_prob);
                    if shard.rngs[d].customer.random_bool(p) {
                        let local_ticket = buf.tickets.len() as u32;
                        buf.tickets.push((line_id, TicketCategory::CustomerEdge));
                        handle_customer_edge_ticket(ctx, shard, buf, d, li, local_ticket);
                    }
                    // A problem the customer has been living with for more
                    // than a week starts burning goodwill; eventually they
                    // terminate the contract.
                    if day.saturating_sub(since) > 7 {
                        let p_churn = customer.churn_propensity * 0.012;
                        if shard.rngs[d].customer.random_bool(p_churn) {
                            shard.churned[li] = true;
                            buf.churn_events.push(ChurnEvent { line: line_id, day });
                            continue;
                        }
                    }
                }
            }

            // --- non-technical tickets ---
            let p_nt = ctx.config.non_technical_tickets_per_line_year / 365.0;
            if shard.rngs[d].misc.random_bool(p_nt.clamp(0.0, 1.0)) {
                buf.tickets.push((line_id, TicketCategory::NonTechnical));
            }

            // --- traffic ---
            let hard_down = shard.faults[li].iter().any(|f| {
                f.active(day)
                    && f.disposition.info().class == FaultClass::Hard
                    && f.severity(day) > 0.8
            });
            record_traffic(ctx, buf, line_id, used && !hard_down, &mut shard.rngs[d].misc);
        }
    }
}

/// ATDS triage of a fresh customer-edge ticket: remote resolution or a
/// field dispatch in 1–3 days (unless one is already scheduled).
fn handle_customer_edge_ticket(
    ctx: &StepCtx<'_>,
    shard: &mut ShardMut<'_>,
    buf: &mut DayBuffer,
    d: usize,
    li: usize,
    local_ticket: u32,
) {
    if shard.pending[li].is_some() {
        return; // repeat ticket while a visit is pending
    }
    let day = ctx.day;
    let line_id = LineId((shard.first_line + li) as u32);
    // Remote resolution path (configuration fixes, reboots).
    if shard.rngs[d].dispatch.random_bool(0.15) {
        let live_closest = shard.faults[li]
            .iter()
            .enumerate()
            .filter(|(_, f)| f.active(day))
            .min_by_key(|(_, f)| f.disposition.location())
            .map(|(i, _)| i);
        if let Some(fi) = live_closest {
            let disposition = shard.faults[li][fi].disposition;
            // Remote fixes reliably handle only configuration-style
            // problems; hardware faults bounce back to a dispatch.
            if matches!(disposition.info().class, FaultClass::Degraded) {
                shard.faults[li][fi].repaired_day = Some(day + 1);
                buf.prior_counts[disposition.0 as usize] += 1;
                buf.remote_notes.push((
                    DispositionNote {
                        ticket: None, // local id; patched to global at merge
                        line: line_id,
                        day: day + 1,
                        disposition: Some(disposition),
                        tests_performed: 0,
                        minutes_spent: 0.0,
                        proactive: false,
                    },
                    local_ticket,
                ));
                return;
            }
        }
    }
    let delay = shard.rngs[d].dispatch.random_range(1..=3u32);
    buf.new_pending.push((
        PendingDispatch { due_day: day + delay, line: line_id, ticket: None, proactive: false },
        local_ticket,
    ));
}

/// Runs all dispatches due today, in line order within the shard.
fn process_dispatches(ctx: &StepCtx<'_>, shard: &mut ShardMut<'_>, buf: &mut DayBuffer) {
    let day = ctx.day;
    // All of today's visits triage with the day-start priors snapshot, so
    // the disposition check order cannot depend on the shard partition.
    let order = basic_order(&ctx.priors);
    for li in 0..shard.pending.len() {
        if !shard.pending[li].as_ref().is_some_and(|p| p.due_day <= day) {
            continue;
        }
        let Some(p) = shard.pending[li].take() else {
            continue;
        };
        let d = ctx.topology.lines[shard.first_line + li].dslam.index() - shard.first_dslam;
        let outcome = run_dispatch(
            p.line,
            &mut shard.faults[li],
            day,
            &order,
            p.ticket,
            p.proactive,
            &mut shard.rngs[d].dispatch,
        );
        if let Some(found) = outcome.note.disposition {
            buf.prior_counts[found.0 as usize] += 1;
        }
        if ctx.trace {
            // Close the provenance loop: what the truck found, keyed
            // back to the originating "dispatch" event by line (and to
            // the week's "rank" event for proactive visits).
            let note = &outcome.note;
            buf.trace.push(
                nevermind_obs::trace::TraceEvent::new("visit")
                    .line(note.line.0)
                    .day(day)
                    .attr("proactive", note.proactive)
                    .attr("found_fault", note.disposition.is_some())
                    .attr("disposition", note.disposition.map_or("none", |dd| dd.info().code))
                    .attr("tests_performed", note.tests_performed)
                    .attr("minutes_spent", note.minutes_spent),
            );
        }
        buf.visit_notes.push(outcome.note);
    }
}

/// Saturday line tests across the shard.
fn run_line_tests(ctx: &StepCtx<'_>, shard: &mut ShardMut<'_>, buf: &mut DayBuffer) {
    let day = ctx.day;
    for d in 0..shard.rngs.len() {
        let dslam_id = DslamId((shard.first_dslam + d) as u32);
        let dslam = ctx.topology.dslam(dslam_id);
        let down = ctx.outages.is_down(dslam_id, day);
        let raw_stress = ctx.outages.stress(dslam_id, day);

        for line_id in dslam.lines() {
            let gi = line_id.index();
            let li = gi - shard.first_line;
            if shard.churned[li] {
                continue; // service disconnected: the test gets no answer
            }
            let line = &ctx.topology.lines[gi];
            let customer = &ctx.customers[gi];
            let used_today = shard.usage_bits[li] & 1 == 1;

            // Customer-side modem silence first.
            let p_off = customer.modem_off_prob(day, used_today);
            if shard.rngs[d].measure.random_bool(p_off) {
                continue;
            }

            let stress = if down { 1.0 } else { raw_stress * stress_susceptibility(line_id) };
            let effects = combine_effects(line, &shard.faults[li], day, stress);
            if !modem_answers(&effects, &mut shard.rngs[d].measure) {
                continue;
            }
            let usage = weekly_usage(shard.usage_bits[li]);
            let values = synthesize(line, &effects, usage, &mut shard.rngs[d].measure);
            buf.measurements.push(LineTest { line: line_id, day, values });
        }
    }
}

fn record_traffic(
    ctx: &StepCtx<'_>,
    buf: &mut DayBuffer,
    line: LineId,
    active: bool,
    rng: &mut ChaCha8Rng,
) {
    if !ctx.traffic_covered[line.index()] {
        return;
    }
    let kb = if active { rng.random_range(200..8_000u32) } else { 0 };
    buf.traffic.push((line, kb));
}

impl World {
    /// Builds a world from the configuration. Deterministic in
    /// `config.seed`.
    ///
    /// # Panics
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn generate(config: SimConfig) -> Self {
        let _span = nevermind_obs::span!("sim/generate");
        if let Err(e) = config.validate() {
            // lint:allow(no-panic-in-lib) -- documented # Panics contract; a bad config is a programmer error, not operational data
            panic!("invalid SimConfig: {e}");
        }
        let topology = Topology::generate(&config, subseed(config.seed, 1));
        let customers = generate_customers(&config, subseed(config.seed, 2));
        let calendar = ExogenousCalendar::generate(
            config.n_regions,
            topology.dslams.len(),
            config.days,
            subseed(config.seed, 3),
        );
        let outages = OutageSchedule::generate(
            topology.dslams.len(),
            config.days,
            config.outages_per_dslam_year,
            config.outage_precursor_days,
            subseed(config.seed, 4),
        );

        let hazards: Vec<LineHazard> = topology
            .lines
            .iter()
            .map(|line| {
                let w = disposition_weights(line);
                let mut h = LineHazard::default();
                for (i, info) in crate::disposition::DISPOSITIONS.iter().enumerate() {
                    h.sum_base += w[i];
                    if info.weather_sensitive {
                        h.extra_wet += (WET_MULTIPLIER - 1.0) * w[i];
                    }
                    if info.class == FaultClass::Hard && info.location.is_outside() {
                        h.extra_construction += (CONSTRUCTION_MULTIPLIER - 1.0) * w[i];
                    }
                }
                h
            })
            .collect();
        let mean_base_hazard =
            hazards.iter().map(|h| h.sum_base).sum::<f64>() / hazards.len().max(1) as f64;

        // Traffic is sampled for the lines under the first N BRAS servers.
        let traffic_covered: Vec<bool> = topology
            .lines
            .iter()
            .map(|l| topology.bras_of(l.id).index() < config.traffic_bras_sample)
            .collect();
        let sampled_lines: Vec<LineId> =
            topology.lines.iter().filter(|l| traffic_covered[l.id.index()]).map(|l| l.id).collect();
        let traffic = TrafficTable::new(sampled_lines, config.days);

        let n_lines = topology.lines.len();
        let n_dslams = topology.dslams.len();
        let outage_events = outages.events().to_vec();
        let rngs: Vec<SubtreeRngs> =
            (0..n_dslams).map(|d| SubtreeRngs::new(config.seed, d as u32)).collect();

        Self {
            customers,
            calendar,
            outages,
            hazards,
            mean_base_hazard,
            traffic_covered,
            state: PlantState {
                faults: vec![Vec::new(); n_lines],
                aware_since: vec![None; n_lines],
                churned: vec![false; n_lines],
                usage_bits: vec![0; n_lines],
                pending: vec![None; n_lines],
                rngs,
                outage_reports: vec![0; n_dslams],
                outage_known: vec![false; n_dslams],
            },
            priors: taxonomy_priors(),
            shards: 1,
            day: 0,
            next_ticket: 0,
            out: SimOutput {
                measurements: Vec::new(),
                tickets: Vec::new(),
                notes: Vec::new(),
                outage_events,
                traffic,
                ivr_calls: Vec::new(),
                churn_events: Vec::new(),
                days: config.days,
            },
            topology,
            config,
        }
    }

    /// Returns the world stepping with `shards` parallel shards (clamped
    /// to at least 1; shards beyond the DSLAM count are merged away).
    ///
    /// Sharding is an execution detail, not a modelling one: any shard
    /// count produces bit-identical [`SimOutput`] logs and trace bytes.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Number of shards [`World::step_day`] splits the plant into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The configuration the world was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The static plant.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The customer population.
    pub fn customers(&self) -> &[Customer] {
        &self.customers
    }

    /// Current simulation day (the next day to be stepped).
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Logs accumulated so far.
    pub fn output(&self) -> &SimOutput {
        &self.out
    }

    /// Consumes the world, returning the logs.
    pub fn into_output(self) -> SimOutput {
        self.out
    }

    /// Whether the customer on a line has churned.
    pub fn has_churned(&self, line: LineId) -> bool {
        self.state.churned[line.index()]
    }

    /// Ground-truth view: live (active, unrepaired) faults on a line.
    /// Used by evaluation code, never by the learning pipeline.
    pub fn live_faults(&self, line: LineId) -> Vec<&Fault> {
        self.state.faults[line.index()].iter().filter(|f| f.active(self.day)).collect()
    }

    /// Full fault history of a line (ground truth for evaluation).
    pub fn fault_history(&self, line: LineId) -> &[Fault] {
        &self.state.faults[line.index()]
    }

    /// Schedules a proactive (NEVERMIND) dispatch for `line`, `delay_days`
    /// from now. Ignored if a dispatch is already scheduled for the line.
    pub fn schedule_proactive_dispatch(&mut self, line: LineId, delay_days: u32) {
        let li = line.index();
        if self.state.pending[li].is_some() {
            return;
        }
        nevermind_obs::counter_add!("sim/proactive_scheduled", 1);
        let due_day = self.day + delay_days.max(1);
        if nevermind_obs::trace::enabled() {
            // Decision provenance: the dispatch that a later "visit" event
            // (same line, first due day at or after this one) answers to.
            nevermind_obs::trace::global().emit(
                nevermind_obs::trace::TraceEvent::new("dispatch")
                    .line(line.0)
                    .day(self.day)
                    .attr("due_day", due_day)
                    .attr("proactive", true),
            );
        }
        self.state.pending[li] =
            Some(PendingDispatch { due_day, line, ticket: None, proactive: true });
    }

    /// Runs the remaining horizon reactively and returns the logs.
    pub fn run(mut self) -> SimOutput {
        let _span = nevermind_obs::span!("sim/run");
        while self.day < self.config.days {
            self.step_day();
        }
        self.out
    }

    /// Advances the simulation by one day, stepping each shard on its own
    /// scoped thread and merging the per-shard buffers in shard order.
    ///
    /// # Panics
    /// Panics if stepped past the configured horizon.
    pub fn step_day(&mut self) {
        let _span = nevermind_obs::span!("sim/step_day");
        nevermind_obs::counter_add!("sim/days_stepped", 1);
        assert!(self.day < self.config.days, "stepped past the simulation horizon");
        let day = self.day;

        let ctx = StepCtx {
            config: &self.config,
            topology: &self.topology,
            customers: &self.customers,
            calendar: &self.calendar,
            outages: &self.outages,
            hazards: &self.hazards,
            traffic_covered: &self.traffic_covered,
            mean_base_hazard: self.mean_base_hazard,
            priors: self.priors,
            day,
            trace: nevermind_obs::trace::enabled(),
        };
        let bounds = shard_bounds(self.topology.dslams.len(), self.shards);
        let mut bufs: Vec<DayBuffer> = bounds.iter().map(|_| DayBuffer::default()).collect();
        let mut shards = split_shards(&self.topology, &bounds, &mut self.state);
        if shards.len() == 1 {
            // Same buffer-and-merge path as the threaded case, inline.
            step_shard(&ctx, &mut shards[0], &mut bufs[0]);
        } else {
            let ctx = &ctx;
            std::thread::scope(|scope| {
                for (shard, buf) in shards.iter_mut().zip(bufs.iter_mut()) {
                    scope.spawn(move || step_shard(ctx, shard, buf));
                }
            });
        }
        drop(shards);
        self.merge_day(day, bufs);
        self.day += 1;
        // History snapshots are clocked on *simulated* days — the only time
        // source the model is allowed to observe — so the ring store and any
        // rule evaluations it triggers are byte-reproducible across reruns
        // and shard counts.
        nevermind_obs::history::tick(u64::from(day));
    }

    /// Folds the per-shard day buffers into the global logs and state, in
    /// shard order — which, because shards are contiguous DSLAM ranges, is
    /// plant line order within each record kind.
    fn merge_day(&mut self, day: u32, mut bufs: Vec<DayBuffer>) {
        // Ticket ids: each shard's buffer gets the next contiguous block.
        let mut bases = Vec::with_capacity(bufs.len());
        for buf in &bufs {
            bases.push(self.next_ticket);
            for &(line, category) in &buf.tickets {
                self.out.tickets.push(Ticket { id: self.next_ticket, line, day, category });
                self.next_ticket += 1;
            }
        }
        // Notes keep their two producer phases separate: every shard's
        // remote fixes (advance phase) land before any shard's truck rolls
        // (dispatch phase), matching the single-shard emission order.
        for (buf, &base) in bufs.iter_mut().zip(&bases) {
            for (mut note, local) in buf.remote_notes.drain(..) {
                note.ticket = Some(base + local);
                self.out.notes.push(note);
            }
        }
        for buf in &mut bufs {
            if nevermind_obs::enabled() {
                for note in buf.visit_notes.iter().filter(|n| n.proactive) {
                    nevermind_obs::counter_add!("sim/proactive_visits", 1);
                    if note.disposition.is_some() {
                        nevermind_obs::counter_add!("sim/proactive_hits", 1);
                    }
                }
            }
            self.out.notes.append(&mut buf.visit_notes);
        }
        for (buf, &base) in bufs.iter_mut().zip(&bases) {
            for (mut p, local) in buf.new_pending.drain(..) {
                p.ticket = Some(base + local);
                let li = p.line.index();
                self.state.pending[li] = Some(p);
            }
        }
        for buf in &mut bufs {
            self.out.ivr_calls.append(&mut buf.ivr_calls);
            self.out.churn_events.append(&mut buf.churn_events);
            self.out.measurements.append(&mut buf.measurements);
            for (line, kb) in buf.traffic.drain(..) {
                self.out.traffic.record(line, day, kb);
            }
        }
        // Priors advance by replaying each increment as `+1.0`: the same
        // f64 op sequence regardless of how the counts were partitioned.
        for buf in &bufs {
            for (di, &count) in buf.prior_counts.iter().enumerate() {
                for _ in 0..count {
                    self.priors[di] += 1.0;
                }
            }
        }
        for buf in &mut bufs {
            for ev in buf.trace.drain(..) {
                nevermind_obs::trace::global().emit(ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_small(seed: u64) -> (SimConfig, SimOutput) {
        let cfg = SimConfig::small(seed);
        let out = World::generate(cfg.clone()).run();
        (cfg, out)
    }

    #[test]
    fn produces_all_record_types() {
        let (_, out) = run_small(1);
        assert!(!out.measurements.is_empty(), "no measurements");
        assert!(out.customer_edge_tickets().count() > 0, "no customer-edge tickets");
        assert!(!out.notes.is_empty(), "no disposition notes");
        assert!(out.traffic.n_lines() > 0, "no traffic sample");
    }

    #[test]
    fn measurements_only_on_saturdays() {
        let (_, out) = run_small(2);
        for m in &out.measurements {
            assert!(DayOfWeek::of(m.day).is_test_day(), "measurement on day {}", m.day);
        }
    }

    #[test]
    fn weekly_measurement_coverage_is_high_but_incomplete() {
        let (cfg, out) = run_small(3);
        let n_saturdays = (0..cfg.days).filter(|&d| DayOfWeek::of(d).is_test_day()).count();
        let expected_full = cfg.n_lines * n_saturdays;
        let coverage = out.measurements.len() as f64 / expected_full as f64;
        assert!(coverage > 0.5, "coverage {coverage}");
        assert!(coverage < 0.999, "some records must be missing (modem off)");
    }

    #[test]
    fn ticket_volume_is_operationally_plausible() {
        let (cfg, out) = run_small(4);
        let ce = out.customer_edge_tickets().count() as f64;
        let weeks = cfg.days as f64 / 7.0;
        let weekly_rate = ce / weeks / cfg.n_lines as f64;
        // Roughly 0.1%–1.5% of lines ticket per week.
        assert!(
            (0.001..0.015).contains(&weekly_rate),
            "weekly customer-edge ticket rate {weekly_rate}"
        );
    }

    #[test]
    fn tickets_peak_early_week() {
        let (_, out) = run_small(5);
        let mut by_dow = [0usize; 7];
        for t in out.customer_edge_tickets() {
            by_dow[(t.day % 7) as usize] += 1;
        }
        let monday = by_dow[1];
        let saturday = by_dow[6];
        let sunday = by_dow[0];
        assert!(monday > saturday, "Mon {monday} vs Sat {saturday}");
        assert!(monday > sunday, "Mon {monday} vs Sun {sunday}");
    }

    #[test]
    fn dispatches_repair_faults() {
        let (_, out) = run_small(6);
        let found = out.notes.iter().filter(|n| n.disposition.is_some()).count();
        assert!(found > 0, "no successful repairs");
        // Reactive notes must reference tickets; remote fixes have 0 tests.
        for n in &out.notes {
            if !n.proactive {
                assert!(n.ticket.is_some());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, a) = run_small(7);
        let (_, b) = run_small(7);
        assert_eq!(a.measurements.len(), b.measurements.len());
        assert_eq!(a.tickets.len(), b.tickets.len());
        assert_eq!(a.notes.len(), b.notes.len());
        for (x, y) in a.measurements.iter().zip(&b.measurements).take(500) {
            assert_eq!(x.line, y.line);
            assert_eq!(x.day, y.day);
            assert_eq!(x.values, y.values);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (_, a) = run_small(8);
        let (_, b) = run_small(9);
        assert_ne!(a.tickets.len(), b.tickets.len());
    }

    #[test]
    fn outages_suppress_tickets_via_ivr() {
        // Crank outage rate so the small world reliably sees several.
        let mut cfg = SimConfig::small(10);
        cfg.outages_per_dslam_year = 6.0;
        let out = World::generate(cfg).run();
        assert!(!out.outage_events.is_empty(), "no outages scheduled");
        assert!(!out.ivr_calls.is_empty(), "IVR never engaged");
        let outage_tickets =
            out.tickets.iter().filter(|t| t.category == TicketCategory::Outage).count();
        assert!(outage_tickets > 0, "no outage tickets before IVR kicked in");
    }

    #[test]
    fn proactive_dispatch_repairs_and_notes() {
        let cfg = SimConfig::small(11);
        let mut world = World::generate(cfg);
        // Step until some line has a live fault, then dispatch proactively.
        // A single visit can legitimately end "no trouble found" (the
        // technician's test misses with `TEST_MISS_PROB`), so keep
        // re-dispatching while the fault is live — exactly what a weekly
        // re-ranking would do — and require a successful visit eventually.
        let mut target = None;
        for _ in 0..120 {
            world.step_day();
            let day = world.day();
            if target.is_none() {
                target = (0..world.topology().lines.len())
                    .map(|li| LineId(li as u32))
                    .find(|&li| world.fault_history(li).iter().any(|f| f.active(day)));
            }
            if let Some(line) = target {
                let repaired = world
                    .output()
                    .notes
                    .iter()
                    .any(|n| n.proactive && n.line == line && n.disposition.is_some());
                let live = world.fault_history(line).iter().any(|f| f.active(day));
                if !repaired && live {
                    world.schedule_proactive_dispatch(line, 1);
                }
            }
        }
        let line = target.expect("a fault should appear within 120 days");
        let out = world.output();
        let note = out
            .notes
            .iter()
            .find(|n| n.proactive && n.line == line && n.disposition.is_some())
            .expect("a proactive dispatch should find the fault");
        assert!(note.ticket.is_none());
    }

    #[test]
    fn unresolved_problems_cause_churn() {
        let (_, out) = run_small(40);
        assert!(!out.churn_events.is_empty(), "a year of operations should lose some customers");
        // Churn must be rarer than tickets (it is the tail outcome).
        assert!(out.churn_events.len() < out.customer_edge_tickets().count());
    }

    #[test]
    fn churned_lines_go_quiet() {
        let (_, out) = run_small(41);
        let Some(churn) = out.churn_events.first().copied() else {
            panic!("expected at least one churn event");
        };
        // No customer-edge tickets from that line after the churn day.
        let later_tickets = out
            .customer_edge_tickets()
            .filter(|t| t.line == churn.line && t.day > churn.day)
            .count();
        assert_eq!(later_tickets, 0, "churned customer must stop calling");
        // And no completed line tests after disconnection.
        let later_tests =
            out.measurements.iter().filter(|m| m.line == churn.line && m.day > churn.day).count();
        assert_eq!(later_tests, 0, "disconnected line must stop answering tests");
    }

    #[test]
    fn traffic_sample_covers_configured_bras() {
        let (cfg, out) = run_small(12);
        assert!(out.traffic.n_lines() > 0);
        // All covered lines belong to the first `traffic_bras_sample` BRASes.
        let world = World::generate(SimConfig::small(12));
        for &l in out.traffic.lines() {
            assert!(world.topology().bras_of(l).index() < cfg.traffic_bras_sample);
        }
    }

    #[test]
    fn vacationing_customers_show_traffic_gaps() {
        let cfg = SimConfig::small(13);
        let world = World::generate(cfg.clone());
        // Find a covered customer with a vacation inside the horizon.
        let candidate = world
            .customers()
            .iter()
            .find(|c| {
                world.output().traffic.covers(c.line)
                    && c.vacations.iter().any(|&(s, e)| e < cfg.days && s > 7)
            })
            .map(|c| (c.line, c.vacations.clone()));
        let Some((line, vacations)) = candidate else {
            // Statistically rare with small populations; nothing to assert.
            return;
        };
        let out = world.run();
        let (s, e) = vacations[0];
        let total = out.traffic.total_in_window(line, s, e).expect("covered");
        assert_eq!(total, 0, "traffic during vacation");
    }

    #[test]
    fn weekly_usage_reads_only_the_trailing_seven_days() {
        // Regression: an always-on customer carries eight set bits in the
        // u8 window, but a week has seven days — the old 8/7 ≈ 1.14 bug.
        assert_eq!(weekly_usage(0b1111_1111), 1.0, "always-on measures exactly 1.0");
        assert_eq!(weekly_usage(0b0111_1111), 1.0);
        assert_eq!(weekly_usage(0b1000_0000), 0.0, "the eighth (oldest) day is out of window");
        assert_eq!(weekly_usage(0), 0.0);
        for bits in 0..=u8::MAX {
            let u = weekly_usage(bits);
            assert!((0.0..=1.0).contains(&u), "usage {u} out of [0,1] for bits {bits:#010b}");
        }
    }

    #[test]
    fn fault_onset_prob_guards_degenerate_hazard() {
        // A plant whose every line has zero base hazard must simply never
        // fault — not feed NaN into `random_bool`.
        let p = fault_onset_prob(0.55 / 365.0, 0.0, 0.0);
        assert_eq!(p, 0.0);
        assert!(fault_onset_prob(0.01, 2.0, 1.0) > 0.0);
        assert!(fault_onset_prob(0.01, 2.0, 1.0) <= 1.0);
        assert!(fault_onset_prob(f64::MAX, f64::MAX, 1.0) == 1.0, "clamped");
    }

    #[test]
    fn outage_report_counter_saturates_instead_of_wrapping() {
        // Regression for the u8 `+= 1` overflow: pin the counter at the
        // numeric ceiling and push one more report through a live outage.
        let mut cfg = SimConfig::small(77);
        cfg.n_lines = 300;
        cfg.lines_per_dslam = 300;
        cfg.days = 60;
        // Rate ≥ 365/yr clamps the daily outage probability to 1.0, so an
        // outage is guaranteed to start on day 0.
        cfg.outages_per_dslam_year = 400.0;
        let mut world = World::generate(cfg);
        assert!(world.outages.is_down(DslamId(0), 0), "outage must start on day 0");
        world.state.outage_reports[0] = u16::MAX;
        world.step_day();
        // The counter held (or was consumed by the IVR flip) — it did not
        // wrap to a small value that would lose outage awareness.
        assert!(
            world.state.outage_known[0] || world.state.outage_reports[0] == u16::MAX,
            "counter wrapped: {}",
            world.state.outage_reports[0]
        );
    }

    #[test]
    fn large_dslam_survives_repeated_outages() {
        // A 300-line DSLAM hammered by outages for two months: every
        // outage day can add reports, and the run must neither panic nor
        // lose IVR suppression.
        let mut cfg = SimConfig::small(78);
        cfg.n_lines = 300;
        cfg.lines_per_dslam = 300;
        cfg.days = 60;
        cfg.outages_per_dslam_year = 400.0;
        let out = World::generate(cfg).run();
        let outage_tickets =
            out.tickets.iter().filter(|t| t.category == TicketCategory::Outage).count();
        assert!(outage_tickets > 0, "outage tickets before the IVR");
        assert!(!out.ivr_calls.is_empty(), "IVR suppression engaged");
    }

    #[test]
    fn shard_bounds_cover_and_clamp() {
        assert_eq!(shard_bounds(10, 1), vec![(0, 10)]);
        assert_eq!(shard_bounds(10, 3), vec![(0, 3), (3, 6), (6, 10)]);
        // More shards than DSLAMs: clamp to one DSLAM per shard.
        assert_eq!(shard_bounds(2, 7), vec![(0, 1), (1, 2)]);
        assert_eq!(shard_bounds(0, 4), vec![(0, 0)]);
        for n in [1usize, 5, 42, 100] {
            for k in [1usize, 2, 7, 16] {
                let b = shard_bounds(n, k);
                assert_eq!(b[0].0, 0);
                assert_eq!(b[b.len() - 1].1, n);
                for w in b.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                    assert!(w[0].0 < w[0].1, "non-empty");
                }
            }
        }
    }

    #[test]
    fn sharded_run_is_bit_identical_to_serial() {
        // The in-crate smoke check; the exhaustive JSON-level equality
        // lives in tests/sharding.rs.
        let cfg = SimConfig::small(90);
        let serial = World::generate(cfg.clone()).run();
        let sharded = World::generate(cfg).with_shards(4).run();
        assert_eq!(serial.tickets.len(), sharded.tickets.len());
        assert_eq!(serial.measurements.len(), sharded.measurements.len());
        for (a, b) in serial.measurements.iter().zip(&sharded.measurements) {
            assert_eq!(a.line, b.line);
            assert_eq!(a.day, b.day);
            assert_eq!(a.values, b.values);
        }
        for (a, b) in serial.tickets.iter().zip(&sharded.tickets) {
            assert_eq!((a.id, a.line, a.day, a.category), (b.id, b.line, b.day, b.category));
        }
    }
}
