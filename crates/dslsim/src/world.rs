//! The simulated world: a day-by-day event loop over the whole plant.
//!
//! Each simulated day the world advances customers (usage, awareness,
//! calls), fault processes (onsets, self-healing), outages (precursor
//! stress, hard-down, IVR), dispatches (technician visits, repairs,
//! disposition notes), traffic counters, and — on Saturdays — the weekly
//! line tests.
//!
//! Two modes of use:
//!
//! * **Offline (the paper's evaluation setting):** [`World::run`] simulates
//!   the full horizon reactively and returns the accumulated [`SimOutput`]
//!   logs, which the learning pipeline then splits into train/test windows.
//! * **Operational (the NEVERMIND loop):** drive [`World::step_day`]
//!   yourself, inspect [`World::output`] after each Saturday, and inject
//!   [`World::schedule_proactive_dispatch`] calls for the predictor's
//!   top-ranked lines.

use crate::config::{DayOfWeek, SimConfig};
use crate::customer::{generate_customers, Customer};
use crate::dispatch::{basic_order, run_dispatch, taxonomy_priors, DispositionNote};
use crate::disposition::{DispositionId, FaultClass, N_DISPOSITIONS};
use crate::fault::{disposition_weights, Fault};
use crate::ids::{DslamId, LineId};
use crate::measurement::LineTest;
use crate::outage::{OutageEvent, OutageSchedule};
use crate::physics::{combine_effects, modem_answers, synthesize};
use crate::ticket::{Ticket, TicketCategory};
use crate::topology::Topology;
use crate::traffic::TrafficTable;
use crate::weather::{ExogenousCalendar, CONSTRUCTION_MULTIPLIER, WET_MULTIPLIER};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A customer call suppressed by the outage IVR (the call happened, the
/// ticket did not — Sec. 5.2's first scenario).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IvrCall {
    /// Calling customer's line.
    pub line: LineId,
    /// Day of the suppressed call.
    pub day: u32,
}

/// A customer terminating their contract after a problem dragged on —
/// the churn the paper's proactive approach is motivated by ("a lengthy
/// resolution can lead to customer dissatisfaction and ultimately lead to
/// churn").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// The departing customer's line.
    pub line: LineId,
    /// Day of the termination.
    pub day: u32,
}

/// Accumulated logs of one simulation run — the synthetic counterparts of
/// the paper's four data sources (plus the outage and IVR side-channels).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutput {
    /// Completed weekly line tests.
    pub measurements: Vec<LineTest>,
    /// All tickets (customer edge, outage, non-technical).
    pub tickets: Vec<Ticket>,
    /// Disposition notes from dispatches and remote resolutions.
    pub notes: Vec<DispositionNote>,
    /// Scheduled DSLAM outages that fell inside the horizon.
    pub outage_events: Vec<OutageEvent>,
    /// Daily traffic counters for the sampled BRAS servers.
    pub traffic: TrafficTable,
    /// IVR-suppressed calls.
    pub ivr_calls: Vec<IvrCall>,
    /// Contract terminations after unresolved problems.
    pub churn_events: Vec<ChurnEvent>,
    /// Simulated horizon in days.
    pub days: u32,
}

impl SimOutput {
    /// Customer-edge tickets only (what the predictor trains against).
    pub fn customer_edge_tickets(&self) -> impl Iterator<Item = &Ticket> {
        self.tickets.iter().filter(|t| t.is_customer_edge())
    }
}

#[derive(Debug, Clone)]
struct PendingDispatch {
    due_day: u32,
    line: LineId,
    ticket: Option<u32>,
    proactive: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct LineHazard {
    /// Σ of base disposition weights.
    sum_base: f64,
    /// Extra weight when the region is wet: (mult−1)·Σ weather-sensitive.
    extra_wet: f64,
    /// Extra weight during construction: (mult−1)·Σ outside hard cuts.
    extra_construction: f64,
}

/// The running simulation.
pub struct World {
    config: SimConfig,
    topology: Topology,
    customers: Vec<Customer>,
    calendar: ExogenousCalendar,
    outages: OutageSchedule,

    faults: Vec<Vec<Fault>>,
    hazards: Vec<LineHazard>,
    mean_base_hazard: f64,

    aware_since: Vec<Option<u32>>,
    churned: Vec<bool>,
    usage_bits: Vec<u8>,
    dispatch_scheduled: Vec<bool>,
    pending: Vec<PendingDispatch>,
    priors: [f64; N_DISPOSITIONS],

    outage_reports: Vec<u8>,
    outage_known: Vec<bool>,

    day: u32,
    next_ticket: u32,
    out: SimOutput,

    rng_fault: ChaCha8Rng,
    rng_customer: ChaCha8Rng,
    rng_measure: ChaCha8Rng,
    rng_dispatch: ChaCha8Rng,
    rng_misc: ChaCha8Rng,
}

/// Samples the disposition for a new fault under current conditions.
fn sample_new_fault(
    line: &crate::topology::Line,
    existing: &[Fault],
    day: u32,
    wet: bool,
    constr: bool,
    rng: &mut ChaCha8Rng,
) -> Option<Fault> {
    let mut w = disposition_weights(line);
    for (i, info) in crate::disposition::DISPOSITIONS.iter().enumerate() {
        if wet && info.weather_sensitive {
            w[i] *= WET_MULTIPLIER;
        }
        if constr && info.class == FaultClass::Hard && info.location.is_outside() {
            w[i] *= CONSTRUCTION_MULTIPLIER;
        }
    }
    // Avoid stacking a second copy of an already-active disposition.
    for f in existing {
        if f.active(day) {
            w[f.disposition.0 as usize] = 0.0;
        }
    }
    let total: f64 = w.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut pick = rng.random_range(0.0..total);
    let mut chosen = N_DISPOSITIONS - 1;
    for (i, &wi) in w.iter().enumerate() {
        if pick < wi {
            chosen = i;
            break;
        }
        pick -= wi;
    }
    let disposition = DispositionId(chosen as u8);
    let info = disposition.info();
    let ramp = info.ramp_days * rng.random_range(0.5..1.5);
    let severity_cap = rng.random_range(0.7..1.0);
    Some(Fault { disposition, onset_day: day, ramp_days: ramp, severity_cap, repaired_day: None })
}

/// Per-line susceptibility to DSLAM-level stress, in [0.25, 1.0].
///
/// A failing card does not degrade every port equally; heterogeneity keeps
/// the precursor pattern from being a trivially separable DSLAM-wide
/// signature (see `physics::combine_effects`).
fn stress_susceptibility(line: LineId) -> f64 {
    let h = subseed(0xCAFE_F00D, line.0 as u64);
    0.5 + 0.5 * (h as f64 / u64::MAX as f64)
}

/// Derives a subsystem seed from the master seed (SplitMix64 step).
fn subseed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl World {
    /// Builds a world from the configuration. Deterministic in
    /// `config.seed`.
    ///
    /// # Panics
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn generate(config: SimConfig) -> Self {
        let _span = nevermind_obs::span!("sim/generate");
        if let Err(e) = config.validate() {
            // lint:allow(no-panic-in-lib) -- documented # Panics contract; a bad config is a programmer error, not operational data
            panic!("invalid SimConfig: {e}");
        }
        let topology = Topology::generate(&config, subseed(config.seed, 1));
        let customers = generate_customers(&config, subseed(config.seed, 2));
        let calendar = ExogenousCalendar::generate(
            config.n_regions,
            topology.dslams.len(),
            config.days,
            subseed(config.seed, 3),
        );
        let outages = OutageSchedule::generate(
            topology.dslams.len(),
            config.days,
            config.outages_per_dslam_year,
            config.outage_precursor_days,
            subseed(config.seed, 4),
        );

        let hazards: Vec<LineHazard> = topology
            .lines
            .iter()
            .map(|line| {
                let w = disposition_weights(line);
                let mut h = LineHazard::default();
                for (i, info) in crate::disposition::DISPOSITIONS.iter().enumerate() {
                    h.sum_base += w[i];
                    if info.weather_sensitive {
                        h.extra_wet += (WET_MULTIPLIER - 1.0) * w[i];
                    }
                    if info.class == FaultClass::Hard && info.location.is_outside() {
                        h.extra_construction += (CONSTRUCTION_MULTIPLIER - 1.0) * w[i];
                    }
                }
                h
            })
            .collect();
        let mean_base_hazard =
            hazards.iter().map(|h| h.sum_base).sum::<f64>() / hazards.len().max(1) as f64;

        // Traffic is sampled for the lines under the first N BRAS servers.
        let sampled_lines: Vec<LineId> = topology
            .lines
            .iter()
            .filter(|l| topology.bras_of(l.id).index() < config.traffic_bras_sample)
            .map(|l| l.id)
            .collect();
        let traffic = TrafficTable::new(sampled_lines, config.days);

        let n_lines = topology.lines.len();
        let n_dslams = topology.dslams.len();
        let outage_events = outages.events().to_vec();

        Self {
            customers,
            calendar,
            outages,
            faults: vec![Vec::new(); n_lines],
            hazards,
            mean_base_hazard,
            aware_since: vec![None; n_lines],
            churned: vec![false; n_lines],
            usage_bits: vec![0; n_lines],
            dispatch_scheduled: vec![false; n_lines],
            pending: Vec::new(),
            priors: taxonomy_priors(),
            outage_reports: vec![0; n_dslams],
            outage_known: vec![false; n_dslams],
            day: 0,
            next_ticket: 0,
            out: SimOutput {
                measurements: Vec::new(),
                tickets: Vec::new(),
                notes: Vec::new(),
                outage_events,
                traffic,
                ivr_calls: Vec::new(),
                churn_events: Vec::new(),
                days: config.days,
            },
            rng_fault: ChaCha8Rng::seed_from_u64(subseed(config.seed, 5)),
            rng_customer: ChaCha8Rng::seed_from_u64(subseed(config.seed, 6)),
            rng_measure: ChaCha8Rng::seed_from_u64(subseed(config.seed, 7)),
            rng_dispatch: ChaCha8Rng::seed_from_u64(subseed(config.seed, 8)),
            rng_misc: ChaCha8Rng::seed_from_u64(subseed(config.seed, 9)),
            topology,
            config,
        }
    }

    /// The configuration the world was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The static plant.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The customer population.
    pub fn customers(&self) -> &[Customer] {
        &self.customers
    }

    /// Current simulation day (the next day to be stepped).
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Logs accumulated so far.
    pub fn output(&self) -> &SimOutput {
        &self.out
    }

    /// Consumes the world, returning the logs.
    pub fn into_output(self) -> SimOutput {
        self.out
    }

    /// Whether the customer on a line has churned.
    pub fn has_churned(&self, line: LineId) -> bool {
        self.churned[line.index()]
    }

    /// Ground-truth view: live (active, unrepaired) faults on a line.
    /// Used by evaluation code, never by the learning pipeline.
    pub fn live_faults(&self, line: LineId) -> Vec<&Fault> {
        self.faults[line.index()].iter().filter(|f| f.active(self.day)).collect()
    }

    /// Full fault history of a line (ground truth for evaluation).
    pub fn fault_history(&self, line: LineId) -> &[Fault] {
        &self.faults[line.index()]
    }

    /// Schedules a proactive (NEVERMIND) dispatch for `line`, `delay_days`
    /// from now. Ignored if a dispatch is already scheduled for the line.
    pub fn schedule_proactive_dispatch(&mut self, line: LineId, delay_days: u32) {
        if self.dispatch_scheduled[line.index()] {
            return;
        }
        self.dispatch_scheduled[line.index()] = true;
        nevermind_obs::counter_add!("sim/proactive_scheduled", 1);
        let due_day = self.day + delay_days.max(1);
        if nevermind_obs::trace::enabled() {
            // Decision provenance: the dispatch that a later "visit" event
            // (same line, first due day at or after this one) answers to.
            nevermind_obs::trace::global().emit(
                nevermind_obs::trace::TraceEvent::new("dispatch")
                    .line(line.0)
                    .day(self.day)
                    .attr("due_day", due_day)
                    .attr("proactive", true),
            );
        }
        self.pending.push(PendingDispatch { due_day, line, ticket: None, proactive: true });
    }

    /// Runs the remaining horizon reactively and returns the logs.
    pub fn run(mut self) -> SimOutput {
        let _span = nevermind_obs::span!("sim/run");
        while self.day < self.config.days {
            self.step_day();
        }
        self.out
    }

    /// Advances the simulation by one day.
    ///
    /// # Panics
    /// Panics if stepped past the configured horizon.
    pub fn step_day(&mut self) {
        let _span = nevermind_obs::span!("sim/step_day");
        nevermind_obs::counter_add!("sim/days_stepped", 1);
        assert!(self.day < self.config.days, "stepped past the simulation horizon");
        let day = self.day;
        let dow = DayOfWeek::of(day);

        self.refresh_outage_state(day);
        self.advance_lines(day);
        self.process_dispatches(day);
        if dow.is_test_day() {
            self.run_line_tests(day);
        }

        self.day += 1;
    }

    /// Resets IVR counters at outage boundaries.
    fn refresh_outage_state(&mut self, day: u32) {
        for dslam in 0..self.topology.dslams.len() {
            let down = self.outages.is_down(DslamId(dslam as u32), day);
            if !down {
                self.outage_reports[dslam] = 0;
                self.outage_known[dslam] = false;
            }
        }
    }

    /// Per-line daily processing: usage, fault onsets/healing, awareness,
    /// calls and tickets, traffic.
    fn advance_lines(&mut self, day: u32) {
        let n_lines = self.topology.lines.len();
        let daily_rate = self.config.faults_per_line_year / 365.0;

        for li in 0..n_lines {
            let line_id = LineId(li as u32);

            // Churned customers are gone: no usage, no problems noticed,
            // no calls. The copper stays in the plant but the service is
            // disconnected.
            if self.churned[li] {
                self.usage_bits[li] <<= 1;
                self.record_traffic(li, day, false);
                continue;
            }

            let dslam = self.topology.lines[li].dslam;
            let region = self.topology.dslam(dslam).region;

            // --- usage ---
            let used = self.customers[li].uses_service(day, &mut self.rng_customer);
            self.usage_bits[li] = (self.usage_bits[li] << 1) | u8::from(used);

            // --- fault self-healing ---
            for f in self.faults[li].iter_mut() {
                if f.repaired_day.is_none() && f.onset_day <= day {
                    let heal_p = match f.disposition.info().class {
                        FaultClass::Hard => 0.002,
                        FaultClass::Intermittent => 0.02,
                        FaultClass::Degraded => 0.018,
                    };
                    if self.rng_fault.random_bool(heal_p) {
                        f.repaired_day = Some(day);
                    }
                }
            }

            // --- fault onset ---
            let active_count = self.faults[li].iter().filter(|f| f.active(day)).count();
            if active_count < 3 {
                let h = &self.hazards[li];
                let wet = self.calendar.is_wet(region, day);
                let constr = self.calendar.is_construction(dslam, day);
                let mut total = h.sum_base;
                if wet {
                    total += h.extra_wet;
                }
                if constr {
                    total += h.extra_construction;
                }
                let p = (daily_rate * total / self.mean_base_hazard).clamp(0.0, 1.0);
                if self.rng_fault.random_bool(p) {
                    if let Some(fault) = sample_new_fault(
                        &self.topology.lines[li],
                        &self.faults[li],
                        day,
                        wet,
                        constr,
                        &mut self.rng_fault,
                    ) {
                        self.faults[li].push(fault);
                    }
                }
            }

            // --- outage handling (overrides individual awareness) ---
            let di = dslam.index();
            if self.outages.is_down(dslam, day) {
                if used && !self.customers[li].is_away(day) {
                    // The service is dead; the customer calls with outage
                    // urgency modulated by the weekly pattern.
                    let p =
                        self.customers[li].call_prob(day, 1.0, self.config.report_base_prob * 1.6);
                    if self.rng_customer.random_bool(p) {
                        if self.outage_known[di] {
                            self.out.ivr_calls.push(IvrCall { line: line_id, day });
                        } else {
                            self.issue_ticket(line_id, day, TicketCategory::Outage);
                            self.outage_reports[di] += 1;
                            if self.outage_reports[di] >= 3 {
                                self.outage_known[di] = true;
                            }
                        }
                    }
                }
                // No individual fault reporting while the DSLAM is down.
                self.record_traffic(li, day, false);
                continue;
            }

            // --- awareness & reporting of line faults ---
            // A degrading DSLAM card is user-visible too: sporadic drops in
            // the precursor window produce some genuine pre-outage
            // customer-edge tickets (and keep the measurement pattern from
            // being a pure no-ticket signature).
            let stress_perceived =
                0.55 * self.outages.stress(dslam, day) * stress_susceptibility(line_id);
            let perceived = self.faults[li]
                .iter()
                .map(|f| f.perceived_severity(day))
                .fold(stress_perceived, f64::max);
            if perceived <= 0.0 {
                self.aware_since[li] = None;
            } else {
                if self.aware_since[li].is_none()
                    && used
                    && perceived > self.customers[li].tolerance
                {
                    self.aware_since[li] = Some(day);
                }
                if let Some(since) = self.aware_since[li] {
                    let p =
                        self.customers[li].call_prob(day, perceived, self.config.report_base_prob);
                    if self.rng_customer.random_bool(p) {
                        let ticket_id =
                            self.issue_ticket(line_id, day, TicketCategory::CustomerEdge);
                        self.handle_customer_edge_ticket(li, day, ticket_id);
                    }
                    // A problem the customer has been living with for more
                    // than a week starts burning goodwill; eventually they
                    // terminate the contract.
                    if day.saturating_sub(since) > 7 {
                        let p_churn = self.customers[li].churn_propensity * 0.012;
                        if self.rng_customer.random_bool(p_churn) {
                            self.churned[li] = true;
                            self.out.churn_events.push(ChurnEvent { line: line_id, day });
                            continue;
                        }
                    }
                }
            }

            // --- non-technical tickets ---
            let p_nt = self.config.non_technical_tickets_per_line_year / 365.0;
            if self.rng_misc.random_bool(p_nt.clamp(0.0, 1.0)) {
                self.issue_ticket(line_id, day, TicketCategory::NonTechnical);
            }

            // --- traffic ---
            let hard_down = self.faults[li].iter().any(|f| {
                f.active(day)
                    && f.disposition.info().class == FaultClass::Hard
                    && f.severity(day) > 0.8
            });
            self.record_traffic(li, day, used && !hard_down);
        }
    }

    fn issue_ticket(&mut self, line: LineId, day: u32, category: TicketCategory) -> u32 {
        let id = self.next_ticket;
        self.next_ticket += 1;
        self.out.tickets.push(Ticket { id, line, day, category });
        id
    }

    /// ATDS triage of a fresh customer-edge ticket: remote resolution or a
    /// field dispatch in 1–3 days (unless one is already scheduled).
    fn handle_customer_edge_ticket(&mut self, li: usize, day: u32, ticket_id: u32) {
        if self.dispatch_scheduled[li] {
            return; // repeat ticket while a visit is pending
        }
        // Remote resolution path (configuration fixes, reboots).
        if self.rng_dispatch.random_bool(0.15) {
            let live_closest = self.faults[li]
                .iter()
                .enumerate()
                .filter(|(_, f)| f.active(day))
                .min_by_key(|(_, f)| f.disposition.location())
                .map(|(i, _)| i);
            if let Some(fi) = live_closest {
                let disposition = self.faults[li][fi].disposition;
                // Remote fixes reliably handle only configuration-style
                // problems; hardware faults bounce back to a dispatch.
                if matches!(disposition.info().class, FaultClass::Degraded) {
                    self.faults[li][fi].repaired_day = Some(day + 1);
                    self.priors[disposition.0 as usize] += 1.0;
                    self.out.notes.push(DispositionNote {
                        ticket: Some(ticket_id),
                        line: LineId(li as u32),
                        day: day + 1,
                        disposition: Some(disposition),
                        tests_performed: 0,
                        minutes_spent: 0.0,
                        proactive: false,
                    });
                    return;
                }
            }
        }
        self.dispatch_scheduled[li] = true;
        let delay = self.rng_dispatch.random_range(1..=3u32);
        self.pending.push(PendingDispatch {
            due_day: day + delay,
            line: LineId(li as u32),
            ticket: Some(ticket_id),
            proactive: false,
        });
    }

    /// Runs all dispatches due today.
    fn process_dispatches(&mut self, day: u32) {
        let mut due = Vec::new();
        self.pending.retain(|p| {
            if p.due_day <= day {
                due.push(p.clone());
                false
            } else {
                true
            }
        });
        for p in due {
            let li = p.line.index();
            let order = basic_order(&self.priors);
            let outcome = run_dispatch(
                p.line,
                &mut self.faults[li],
                day,
                &order,
                p.ticket,
                p.proactive,
                &mut self.rng_dispatch,
            );
            if let Some(d) = outcome.note.disposition {
                self.priors[d.0 as usize] += 1.0;
            }
            if nevermind_obs::trace::enabled() {
                // Close the provenance loop: what the truck found, keyed
                // back to the originating "dispatch" event by line (and to
                // the week's "rank" event for proactive visits).
                let note = &outcome.note;
                nevermind_obs::trace::global().emit(
                    nevermind_obs::trace::TraceEvent::new("visit")
                        .line(note.line.0)
                        .day(day)
                        .attr("proactive", note.proactive)
                        .attr("found_fault", note.disposition.is_some())
                        .attr("disposition", note.disposition.map_or("none", |d| d.info().code))
                        .attr("tests_performed", note.tests_performed)
                        .attr("minutes_spent", note.minutes_spent),
                );
            }
            self.out.notes.push(outcome.note);
            self.dispatch_scheduled[li] = false;
        }
    }

    /// Saturday line tests across the whole plant.
    fn run_line_tests(&mut self, day: u32) {
        for li in 0..self.topology.lines.len() {
            if self.churned[li] {
                continue; // service disconnected: the test gets no answer
            }
            let line = &self.topology.lines[li];
            let customer = &self.customers[li];
            let used_today = self.usage_bits[li] & 1 == 1;

            // Customer-side modem silence first.
            let p_off = customer.modem_off_prob(day, used_today);
            if self.rng_measure.random_bool(p_off) {
                continue;
            }

            let raw_stress = self.outages.stress(line.dslam, day);
            let stress = if self.outages.is_down(line.dslam, day) {
                1.0
            } else {
                raw_stress * stress_susceptibility(line.id)
            };
            let effects = combine_effects(line, &self.faults[li], day, stress);
            if !modem_answers(&effects, &mut self.rng_measure) {
                continue;
            }
            let weekly_usage = f64::from(self.usage_bits[li].count_ones()) / 7.0;
            let values = synthesize(line, &effects, weekly_usage, &mut self.rng_measure);
            self.out.measurements.push(LineTest { line: line.id, day, values });
        }
    }

    fn record_traffic(&mut self, li: usize, day: u32, active: bool) {
        let line_id = LineId(li as u32);
        if !self.out.traffic.covers(line_id) {
            return;
        }
        let kb = if active { self.rng_misc.random_range(200..8_000u32) } else { 0 };
        self.out.traffic.record(line_id, day, kb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_small(seed: u64) -> (SimConfig, SimOutput) {
        let cfg = SimConfig::small(seed);
        let out = World::generate(cfg.clone()).run();
        (cfg, out)
    }

    #[test]
    fn produces_all_record_types() {
        let (_, out) = run_small(1);
        assert!(!out.measurements.is_empty(), "no measurements");
        assert!(out.customer_edge_tickets().count() > 0, "no customer-edge tickets");
        assert!(!out.notes.is_empty(), "no disposition notes");
        assert!(out.traffic.n_lines() > 0, "no traffic sample");
    }

    #[test]
    fn measurements_only_on_saturdays() {
        let (_, out) = run_small(2);
        for m in &out.measurements {
            assert!(DayOfWeek::of(m.day).is_test_day(), "measurement on day {}", m.day);
        }
    }

    #[test]
    fn weekly_measurement_coverage_is_high_but_incomplete() {
        let (cfg, out) = run_small(3);
        let n_saturdays = (0..cfg.days).filter(|&d| DayOfWeek::of(d).is_test_day()).count();
        let expected_full = cfg.n_lines * n_saturdays;
        let coverage = out.measurements.len() as f64 / expected_full as f64;
        assert!(coverage > 0.5, "coverage {coverage}");
        assert!(coverage < 0.999, "some records must be missing (modem off)");
    }

    #[test]
    fn ticket_volume_is_operationally_plausible() {
        let (cfg, out) = run_small(4);
        let ce = out.customer_edge_tickets().count() as f64;
        let weeks = cfg.days as f64 / 7.0;
        let weekly_rate = ce / weeks / cfg.n_lines as f64;
        // Roughly 0.1%–1.5% of lines ticket per week.
        assert!(
            (0.001..0.015).contains(&weekly_rate),
            "weekly customer-edge ticket rate {weekly_rate}"
        );
    }

    #[test]
    fn tickets_peak_early_week() {
        let (_, out) = run_small(5);
        let mut by_dow = [0usize; 7];
        for t in out.customer_edge_tickets() {
            by_dow[(t.day % 7) as usize] += 1;
        }
        let monday = by_dow[1];
        let saturday = by_dow[6];
        let sunday = by_dow[0];
        assert!(monday > saturday, "Mon {monday} vs Sat {saturday}");
        assert!(monday > sunday, "Mon {monday} vs Sun {sunday}");
    }

    #[test]
    fn dispatches_repair_faults() {
        let (_, out) = run_small(6);
        let found = out.notes.iter().filter(|n| n.disposition.is_some()).count();
        assert!(found > 0, "no successful repairs");
        // Reactive notes must reference tickets; remote fixes have 0 tests.
        for n in &out.notes {
            if !n.proactive {
                assert!(n.ticket.is_some());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, a) = run_small(7);
        let (_, b) = run_small(7);
        assert_eq!(a.measurements.len(), b.measurements.len());
        assert_eq!(a.tickets.len(), b.tickets.len());
        assert_eq!(a.notes.len(), b.notes.len());
        for (x, y) in a.measurements.iter().zip(&b.measurements).take(500) {
            assert_eq!(x.line, y.line);
            assert_eq!(x.day, y.day);
            assert_eq!(x.values, y.values);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (_, a) = run_small(8);
        let (_, b) = run_small(9);
        assert_ne!(a.tickets.len(), b.tickets.len());
    }

    #[test]
    fn outages_suppress_tickets_via_ivr() {
        // Crank outage rate so the small world reliably sees several.
        let mut cfg = SimConfig::small(10);
        cfg.outages_per_dslam_year = 6.0;
        let out = World::generate(cfg).run();
        assert!(!out.outage_events.is_empty(), "no outages scheduled");
        assert!(!out.ivr_calls.is_empty(), "IVR never engaged");
        let outage_tickets =
            out.tickets.iter().filter(|t| t.category == TicketCategory::Outage).count();
        assert!(outage_tickets > 0, "no outage tickets before IVR kicked in");
    }

    #[test]
    fn proactive_dispatch_repairs_and_notes() {
        let cfg = SimConfig::small(11);
        let mut world = World::generate(cfg);
        // Step until some line has a live fault, then dispatch proactively.
        // A single visit can legitimately end "no trouble found" (the
        // technician's test misses with `TEST_MISS_PROB`), so keep
        // re-dispatching while the fault is live — exactly what a weekly
        // re-ranking would do — and require a successful visit eventually.
        let mut target = None;
        for _ in 0..120 {
            world.step_day();
            let day = world.day();
            if target.is_none() {
                target = (0..world.topology().lines.len())
                    .map(|li| LineId(li as u32))
                    .find(|&li| world.fault_history(li).iter().any(|f| f.active(day)));
            }
            if let Some(line) = target {
                let repaired = world
                    .output()
                    .notes
                    .iter()
                    .any(|n| n.proactive && n.line == line && n.disposition.is_some());
                let live = world.fault_history(line).iter().any(|f| f.active(day));
                if !repaired && live {
                    world.schedule_proactive_dispatch(line, 1);
                }
            }
        }
        let line = target.expect("a fault should appear within 120 days");
        let out = world.output();
        let note = out
            .notes
            .iter()
            .find(|n| n.proactive && n.line == line && n.disposition.is_some())
            .expect("a proactive dispatch should find the fault");
        assert!(note.ticket.is_none());
    }

    #[test]
    fn unresolved_problems_cause_churn() {
        let (_, out) = run_small(40);
        assert!(!out.churn_events.is_empty(), "a year of operations should lose some customers");
        // Churn must be rarer than tickets (it is the tail outcome).
        assert!(out.churn_events.len() < out.customer_edge_tickets().count());
    }

    #[test]
    fn churned_lines_go_quiet() {
        let (_, out) = run_small(41);
        let Some(churn) = out.churn_events.first().copied() else {
            panic!("expected at least one churn event");
        };
        // No customer-edge tickets from that line after the churn day.
        let later_tickets = out
            .customer_edge_tickets()
            .filter(|t| t.line == churn.line && t.day > churn.day)
            .count();
        assert_eq!(later_tickets, 0, "churned customer must stop calling");
        // And no completed line tests after disconnection.
        let later_tests =
            out.measurements.iter().filter(|m| m.line == churn.line && m.day > churn.day).count();
        assert_eq!(later_tests, 0, "disconnected line must stop answering tests");
    }

    #[test]
    fn traffic_sample_covers_configured_bras() {
        let (cfg, out) = run_small(12);
        assert!(out.traffic.n_lines() > 0);
        // All covered lines belong to the first `traffic_bras_sample` BRASes.
        let world = World::generate(SimConfig::small(12));
        for &l in out.traffic.lines() {
            assert!(world.topology().bras_of(l).index() < cfg.traffic_bras_sample);
        }
    }

    #[test]
    fn vacationing_customers_show_traffic_gaps() {
        let cfg = SimConfig::small(13);
        let world = World::generate(cfg.clone());
        // Find a covered customer with a vacation inside the horizon.
        let candidate = world
            .customers()
            .iter()
            .find(|c| {
                world.output().traffic.covers(c.line)
                    && c.vacations.iter().any(|&(s, e)| e < cfg.days && s > 7)
            })
            .map(|c| (c.line, c.vacations.clone()));
        let Some((line, vacations)) = candidate else {
            // Statistically rare with small populations; nothing to assert.
            return;
        };
        let out = world.run();
        let (s, e) = vacations[0];
        let total = out.traffic.total_in_window(line, s, e).expect("covered");
        assert_eq!(total, 0, "traffic during vacation");
    }
}
