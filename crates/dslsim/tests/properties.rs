//! Property-based tests for the simulator's physical and fault models.

use nevermind_dslsim::disposition::{DispositionId, N_DISPOSITIONS};
use nevermind_dslsim::fault::{disposition_weights, signature_of, Fault};
use nevermind_dslsim::ids::{CrossboxId, DslamId, LineId};
use nevermind_dslsim::measurement::{LineMetric, N_METRICS};
use nevermind_dslsim::physics::{
    attainable_down_kbps, attainable_up_kbps, combine_effects, synthesize,
};
use nevermind_dslsim::profile::ServiceProfile;
use nevermind_dslsim::topology::Line;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn any_profile() -> impl Strategy<Value = ServiceProfile> {
    prop_oneof![
        Just(ServiceProfile::Basic),
        Just(ServiceProfile::Mid),
        Just(ServiceProfile::Advanced),
    ]
}

fn any_line() -> impl Strategy<Value = Line> {
    (500.0f64..24_000.0, any_profile(), any::<bool>()).prop_map(|(ft, profile, bt)| Line {
        id: LineId(0),
        dslam: DslamId(0),
        crossbox: CrossboxId(0),
        loop_length_ft: ft,
        profile,
        has_bridge_tap: bt,
    })
}

fn any_fault() -> impl Strategy<Value = Fault> {
    (0u8..N_DISPOSITIONS as u8, 0u32..200, 0.0f64..30.0, 0.3f64..1.0).prop_map(
        |(d, onset, ramp, cap)| Fault {
            disposition: DispositionId(d),
            onset_day: onset,
            ramp_days: ramp,
            severity_cap: cap,
            repaired_day: None,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Severity is 0 before onset, bounded by the cap, non-decreasing while
    /// the fault is unrepaired, and 0 after repair.
    #[test]
    fn fault_severity_is_well_behaved(mut fault in any_fault(), probe in 0u32..400) {
        prop_assert_eq!(fault.severity(fault.onset_day.saturating_sub(1).min(fault.onset_day)), if fault.onset_day == 0 { fault.severity(0) } else { 0.0 });
        let s = fault.severity(probe);
        prop_assert!((0.0..=fault.severity_cap + 1e-12).contains(&s));
        if probe >= fault.onset_day {
            let s_next = fault.severity(probe + 1);
            prop_assert!(s_next >= s - 1e-12, "severity must not decay before repair");
        }
        fault.repaired_day = Some(probe);
        prop_assert_eq!(fault.severity(probe), 0.0);
        prop_assert_eq!(fault.severity(probe + 100), 0.0);
    }

    /// Attainable-rate curves are positive and non-increasing in loop length.
    #[test]
    fn attainable_rates_monotone(a in 0.0f64..30_000.0, b in 0.0f64..30_000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(attainable_down_kbps(lo) >= attainable_down_kbps(hi));
        prop_assert!(attainable_up_kbps(lo) >= attainable_up_kbps(hi));
        prop_assert!(attainable_down_kbps(hi) > 0.0);
        prop_assert!(attainable_up_kbps(hi) > 0.0);
    }

    /// Whatever the fault set and stress level, a completed test produces
    /// 25 finite metrics with categorical metrics in {0, 1} and counters
    /// non-negative.
    #[test]
    fn synthesized_tests_are_sane(
        line in any_line(),
        faults in prop::collection::vec(any_fault(), 0..3),
        day in 0u32..300,
        stress in 0.0f64..1.0,
        usage in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let effects = combine_effects(&line, &faults, day, stress);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let v = synthesize(&line, &effects, usage, &mut rng);
        prop_assert_eq!(v.len(), N_METRICS);
        for (i, &x) in v.iter().enumerate() {
            prop_assert!(x.is_finite(), "metric {i} = {x}");
        }
        for m in [LineMetric::State, LineMetric::Bt, LineMetric::Crosstalk] {
            let x = v[m.index()];
            prop_assert!(x == 0.0 || x == 1.0, "{} = {x}", m.name());
        }
        for m in [
            LineMetric::DnBr,
            LineMetric::UpBr,
            LineMetric::DnCvCnt1,
            LineMetric::DnEsCnt1,
            LineMetric::DnFecCnt1,
            LineMetric::DnCells,
            LineMetric::UpCells,
            LineMetric::DnMaxAttainFbr,
        ] {
            prop_assert!(v[m.index()] >= 0.0, "{} negative", m.name());
        }
    }

    /// Fault effects only ever degrade: any active fault weakly increases
    /// error counters and weakly decreases the rate factor, relative to the
    /// healthy line.
    #[test]
    fn faults_only_degrade(line in any_line(), fault in any_fault(), day in 0u32..400) {
        let healthy = combine_effects(&line, &[], day, 0.0);
        let faulty = combine_effects(&line, std::slice::from_ref(&fault), day, 0.0);
        prop_assert!(faulty.rate_factor <= healthy.rate_factor + 1e-12);
        prop_assert!(faulty.cv_mult >= healthy.cv_mult - 1e-12);
        prop_assert!(faulty.es_mult >= healthy.es_mult - 1e-12);
        prop_assert!(faulty.nmr_delta_db >= healthy.nmr_delta_db - 1e-12);
        prop_assert!(faulty.no_answer_prob >= healthy.no_answer_prob - 1e-12);
    }

    /// Hazard weights are non-negative for every plant configuration, and
    /// the total is positive (every line can fail somehow).
    #[test]
    fn hazard_weights_are_valid(line in any_line()) {
        let w = disposition_weights(&line);
        prop_assert!(w.iter().all(|&x| x >= 0.0));
        prop_assert!(w.iter().sum::<f64>() > 0.0);
    }

    /// Every disposition's signature keeps probabilities in [0, 1].
    #[test]
    fn signatures_have_valid_probabilities(d in 0u8..N_DISPOSITIONS as u8) {
        let sig = signature_of(DispositionId(d));
        prop_assert!((0.0..=1.0).contains(&sig.no_answer_prob));
        prop_assert!((0.0..=1.0).contains(&sig.state_flap_prob));
        prop_assert!(sig.rate_factor >= 0.0 && sig.rate_factor <= 1.0);
        prop_assert!(sig.attain_factor > 0.0 && sig.attain_factor <= 1.0);
        prop_assert!(sig.cells_factor >= 0.0 && sig.cells_factor <= 1.0);
    }
}
