//! Sharded-vs-serial equivalence: any shard count must be an execution
//! detail, never a modelling one.
//!
//! The contract (ISSUE 6): for shard counts {1, 2, 7, 16} a world stepped
//! shard-parallel produces **byte-identical** `SimOutput` logs versus the
//! serial (one-shard) run — same measurements, tickets (ids included),
//! notes, IVR calls, churn, traffic. Equality is checked on the
//! `serde_json` serialization of the whole output, which covers every
//! field of every record including the f64s bit-for-bit (serde prints the
//! shortest roundtrip representation).

use nevermind_dslsim::{SimConfig, SimOutput, World};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [2, 7, 16];

fn small_config(seed: u64, n_lines: usize, days: u32) -> SimConfig {
    let mut cfg = SimConfig::small(seed);
    cfg.n_lines = n_lines;
    cfg.days = days;
    cfg
}

fn output_json(out: &SimOutput) -> String {
    serde_json::to_string(out).expect("SimOutput serializes")
}

#[test]
fn shard_counts_yield_byte_identical_output() {
    let cfg = small_config(0x5AAD_ED01, 2_000, 120);
    let serial = output_json(&World::generate(cfg.clone()).with_shards(1).run());
    for shards in SHARD_COUNTS {
        let sharded = output_json(&World::generate(cfg.clone()).with_shards(shards).run());
        assert_eq!(serial, sharded, "SimOutput diverged at {shards} shards");
    }
}

#[test]
fn shards_beyond_dslam_count_are_clamped() {
    // 500 lines / 48 per DSLAM = 11 DSLAMs; 64 shards must clamp cleanly.
    let cfg = small_config(0x5AAD_ED02, 500, 90);
    let serial = output_json(&World::generate(cfg.clone()).run());
    let world = World::generate(cfg).with_shards(64);
    assert_eq!(world.shards(), 64, "the knob itself is not clamped");
    assert_eq!(serial, output_json(&world.run()), "clamped shards diverged");
}

#[test]
fn sharded_stepping_interoperates_with_proactive_dispatches() {
    // The operational loop: step day by day, injecting proactive
    // dispatches between days, under different shard counts.
    let run = |shards: usize| -> String {
        let cfg = small_config(0x5AAD_ED03, 1_000, 90);
        let mut world = World::generate(cfg).with_shards(shards);
        while world.day() < world.config().days {
            world.step_day();
            // Every other Saturday, "rank" a deterministic set of lines.
            let day = world.day() - 1;
            if day % 14 == 6 {
                for k in 0..10u32 {
                    let line = nevermind_dslsim::LineId((k * 97) % 1_000);
                    world.schedule_proactive_dispatch(line, 2);
                }
            }
        }
        output_json(&world.into_output())
    };
    let serial = run(1);
    for shards in SHARD_COUNTS {
        assert_eq!(serial, run(shards), "proactive trial diverged at {shards} shards");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any (seed, shard count) pair: a tiny world's sharded output is
    /// byte-identical to its serial output.
    #[test]
    fn sharded_output_equals_serial(seed in 0u64..1_000, shards in 1usize..=16) {
        let cfg = small_config(seed, 400, 60);
        let serial = output_json(&World::generate(cfg.clone()).run());
        let sharded = output_json(&World::generate(cfg).with_shards(shards).run());
        prop_assert_eq!(serial, sharded);
    }
}
