//! The Table-3 encoder.
//!
//! One *row* of the encoded dataset is a `(line, Saturday)` pair: the
//! feature vector summarizes everything known about that line **up to and
//! including** that Saturday's test, and the label records whether a
//! customer-edge ticket arrives within the horizon `T` *after* that day
//! (the paper's `Tkt(u, t, T)` with `T` = 4 weeks).
//!
//! Missing measurements stay `NaN` end to end: a line whose modem skipped
//! the test simply has `NaN` basics that week, and the BStump learner
//! abstains on them.

use crate::indexes::{MeasurementIndex, TicketIndex};
use crate::registry::{DerivedFeature, FeatureClass};
use nevermind_dslsim::topology::Line;
use nevermind_dslsim::{LineId, LineMetric, LineTest, Ticket, N_METRICS};
use nevermind_ml::data::{Dataset, FeatureKind, FeatureMatrix, FeatureMeta};
use nevermind_ml::stats::RunningMoments;
use serde::{Deserialize, Serialize};

/// Encoder knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Label horizon `T` in days (paper: 4 weeks).
    pub horizon_days: u32,
    /// Long-term history window (weeks) for time-series and modem features.
    pub history_weeks: usize,
    /// Minimum number of historical tests required before time-series
    /// z-scores are emitted (fewer → `NaN`).
    pub min_history_tests: usize,
    /// Maximum look-back (days) for the delta feature's previous test.
    pub delta_max_lookback_days: u32,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            horizon_days: 28,
            history_weeks: 26,
            min_history_tests: 4,
            delta_max_lookback_days: 21,
        }
    }
}

/// Identifies a row of an [`EncodedDataset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowKey {
    /// The line.
    pub line: LineId,
    /// The prediction day (a Saturday).
    pub day: u32,
}

/// A labelled, encoded dataset plus its row/feature provenance.
#[derive(Debug, Clone)]
pub struct EncodedDataset {
    /// Features and labels.
    pub data: Dataset,
    /// Row provenance, aligned with `data` rows.
    pub rows: Vec<RowKey>,
    /// Feature class per column, aligned with `data.x` columns.
    pub classes: Vec<FeatureClass>,
}

impl EncodedDataset {
    /// Column-subset view preserving provenance.
    pub fn select_columns(&self, cols: &[usize]) -> EncodedDataset {
        EncodedDataset {
            data: self.data.select_columns(cols),
            rows: self.rows.clone(),
            classes: cols.iter().map(|&c| self.classes[c]).collect(),
        }
    }

    /// Horizontal concatenation (same rows).
    ///
    /// # Panics
    /// Panics if the row keys differ.
    pub fn hconcat(&self, other: &EncodedDataset) -> EncodedDataset {
        assert_eq!(self.rows, other.rows, "hconcat on mismatched rows");
        let x = self.data.x.hconcat(&other.data.x);
        let mut classes = self.classes.clone();
        classes.extend(other.classes.iter().copied());
        EncodedDataset {
            data: Dataset::new(x, self.data.y.clone()),
            rows: self.rows.clone(),
            classes,
        }
    }

    /// Indices of columns in the "history + customer" group.
    pub fn base_columns(&self) -> Vec<usize> {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_history() || c.is_customer())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Reusable encoder over a fixed set of logs.
pub struct BaseEncoder<'a> {
    lines: &'a [Line],
    measurements: MeasurementIndex<'a>,
    tickets: TicketIndex,
    config: EncoderConfig,
}

impl<'a> BaseEncoder<'a> {
    /// Builds the encoder's indexes.
    pub fn new(
        lines: &'a [Line],
        measurements: &'a [LineTest],
        tickets: &[Ticket],
        config: EncoderConfig,
    ) -> Self {
        let measurements = MeasurementIndex::build(measurements, lines.len());
        let tickets = TicketIndex::build(tickets, lines.len());
        Self { lines, measurements, tickets, config }
    }

    /// The ticket index (shared with evaluation code).
    pub fn tickets(&self) -> &TicketIndex {
        &self.tickets
    }

    /// The measurement index.
    pub fn measurements(&self) -> &MeasurementIndex<'a> {
        &self.measurements
    }

    /// Column metadata of the base (history + customer) feature space.
    pub fn base_meta() -> (Vec<FeatureMeta>, Vec<FeatureClass>) {
        let mut meta = Vec::new();
        let mut classes = Vec::new();
        for m in LineMetric::ALL {
            let kind =
                if m.is_categorical() { FeatureKind::Binary } else { FeatureKind::Continuous };
            meta.push(FeatureMeta { name: format!("basic:{}", m.name()), kind });
            classes.push(FeatureClass::Basic);
        }
        for m in LineMetric::ALL {
            meta.push(FeatureMeta::continuous(format!("delta:{}", m.name())));
            classes.push(FeatureClass::Delta);
        }
        for m in LineMetric::ALL {
            meta.push(FeatureMeta::continuous(format!("ts:{}", m.name())));
            classes.push(FeatureClass::TimeSeries);
        }
        for name in ["dnbr", "upbr", "dnmaxattainfbr", "upmaxattainfbr", "looplength"] {
            meta.push(FeatureMeta::continuous(format!("prof:{name}")));
            classes.push(FeatureClass::Profile);
        }
        meta.push(FeatureMeta::continuous("cust:days_since_ticket"));
        classes.push(FeatureClass::Ticket);
        meta.push(FeatureMeta::continuous("cust:modem_off_frac"));
        classes.push(FeatureClass::Modem);
        (meta, classes)
    }

    /// Encodes one row per line for each prediction day.
    ///
    /// # Panics
    /// Panics if a prediction day is not a Saturday (`day % 7 == 6`).
    pub fn encode(&self, prediction_days: &[u32]) -> EncodedDataset {
        let mut keys = Vec::with_capacity(self.lines.len() * prediction_days.len());
        for &day in prediction_days {
            for line in self.lines {
                keys.push(RowKey { line: line.id, day });
            }
        }
        self.encode_rows(&keys)
    }

    /// Encodes the whole population at `day` directly into `store` — the
    /// batch writer of the week-major [`crate::FeatureStore`]. Fills only
    /// the store's tracked lanes; the ingested frame is byte-identical to
    /// what [`crate::IncrementalEncoder::encode_week_into`] writes over the
    /// same logs (both writers funnel through
    /// [`crate::FeatureStore::ingest_frame`]).
    ///
    /// # Panics
    /// Panics if `day` is not a Saturday or the store's shape does not
    /// match this encoder's population.
    pub fn encode_week_into<'s>(
        &self,
        day: u32,
        store: &'s mut crate::FeatureStore,
    ) -> &'s crate::store::WeekFrame {
        let ds = self.encode(&[day]).select_columns(store.cols());
        store.ingest_frame(day, &ds)
    }

    /// Encodes exactly the requested `(line, Saturday)` rows — used by the
    /// trouble locator, whose rows are dispatch events rather than whole
    /// population sweeps.
    ///
    /// # Panics
    /// Panics if a key's day is not a Saturday.
    pub fn encode_rows(&self, keys: &[RowKey]) -> EncodedDataset {
        let _span = nevermind_obs::span!("features/encode_rows");
        nevermind_obs::counter_add!("features/rows_encoded", keys.len());
        let (meta, classes) = Self::base_meta();
        let n_cols = meta.len();
        let n_rows = keys.len();
        let mut values = vec![f32::NAN; n_rows * n_cols];
        let mut labels = Vec::with_capacity(n_rows);

        for (row, key) in keys.iter().enumerate() {
            assert_eq!(key.day % 7, 6, "prediction day {} is not a Saturday", key.day);
            let line = &self.lines[key.line.index()];
            let slot = &mut values[row * n_cols..(row + 1) * n_cols];
            self.encode_row(line, key.day, slot);
            labels.push(self.tickets.has_ticket_within(
                key.line,
                key.day,
                self.config.horizon_days,
            ));
        }

        EncodedDataset {
            data: Dataset::new(FeatureMatrix::new(n_rows, meta, values), labels),
            rows: keys.to_vec(),
            classes,
        }
    }

    fn encode_row(&self, line: &Line, day: u32, slot: &mut [f32]) {
        let cur = self.measurements.at(line.id, day).map(|t| &t.values);
        let prev = self
            .measurements
            .before(line.id, day)
            .last()
            .filter(|t| day - t.day <= self.config.delta_max_lookback_days)
            .map(|t| &t.values);

        // History window for time-series and modem features.
        let window_start = day.saturating_sub(self.config.history_weeks as u32 * 7);
        let history: Vec<&[f32; N_METRICS]> = self
            .measurements
            .before(line.id, day)
            .iter()
            .filter(|t| t.day >= window_start)
            .map(|t| &t.values)
            .collect();

        let days_since = days_since_ticket(self.tickets.last_before(line.id, day + 1), day);
        fill_base_row(line, day, cur, prev, &history, days_since, &self.config, slot);
    }
}

/// The `cust:days_since_ticket` value from the most recent ticket at or
/// before `day` (pass the result of a `last_before(line, day + 1)` lookup).
pub(crate) fn days_since_ticket(last_ticket: Option<u32>, day: u32) -> u32 {
    match last_ticket {
        Some(t) => (day + 1 - t).min(365),
        None => 365,
    }
}

/// Fills one base-feature row from its ingredients.
///
/// Shared by [`BaseEncoder`] (which gathers the ingredients from full-log
/// indexes) and [`crate::incremental::IncrementalEncoder`] (which keeps them
/// as per-line rolling state), so the two encoders agree bit for bit.
///
/// `history` holds the metric vectors of the tests strictly before `day`
/// within the `history_weeks` window, in chronological order; `prev` must
/// already be filtered by `delta_max_lookback_days`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_base_row(
    line: &Line,
    day: u32,
    cur: Option<&[f32; N_METRICS]>,
    prev: Option<&[f32; N_METRICS]>,
    history: &[&[f32; N_METRICS]],
    days_since: u32,
    config: &EncoderConfig,
    slot: &mut [f32],
) {
    fill_row_except_ts(line, day, cur, prev, history.len(), days_since, config, slot);

    // --- time-series z-scores (reference implementation) ---
    // The incremental encoder computes the same z-scores with a fused
    // 25-lane pass (`incremental::fill_ts_fused`) whose per-metric update
    // sequence is identical to `RunningMoments::push`, so the two paths
    // agree bit for bit (pinned by the incremental equivalence tests).
    if let Some(cur) = cur {
        if history.len() >= config.min_history_tests {
            for i in 0..N_METRICS {
                let mut mom = RunningMoments::new();
                for t in history {
                    mom.push(f64::from(t[i]));
                }
                let sd = mom.std_dev();
                let z = if sd > 1e-6 {
                    (f64::from(cur[i]) - mom.mean()) / sd
                } else if (f64::from(cur[i]) - mom.mean()).abs() < 1e-6 {
                    0.0
                } else {
                    f64::NAN
                };
                slot[2 * N_METRICS + i] = z as f32;
            }
        }
    }
}

/// Everything in a base row except the time-series z-score block: basic,
/// delta, profile, ticket-recency and modem-off features. Shared between the
/// batch and incremental encoders (which differ only in how they compute the
/// z-scores and gather the ingredients).
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_row_except_ts(
    line: &Line,
    day: u32,
    cur: Option<&[f32; N_METRICS]>,
    prev: Option<&[f32; N_METRICS]>,
    history_count: usize,
    days_since: u32,
    config: &EncoderConfig,
    slot: &mut [f32],
) {
    let window_start = day.saturating_sub(config.history_weeks as u32 * 7);

    // --- basic + delta ---
    if let Some(cur) = cur {
        for (i, &v) in cur.iter().enumerate() {
            slot[i] = v;
        }
        if let Some(prev) = prev {
            for i in 0..N_METRICS {
                slot[N_METRICS + i] = cur[i] - prev[i];
            }
        }
    }

    // --- profile features ---
    let pbase = 3 * N_METRICS;
    if let Some(cur) = cur {
        let down = line.profile.down_kbps() as f32;
        let up = line.profile.up_kbps() as f32;
        slot[pbase] = cur[LineMetric::DnBr.index()] / down;
        slot[pbase + 1] = cur[LineMetric::UpBr.index()] / up;
        slot[pbase + 2] = cur[LineMetric::DnMaxAttainFbr.index()] / down;
        slot[pbase + 3] = cur[LineMetric::UpMaxAttainFbr.index()] / up;
        slot[pbase + 4] =
            cur[LineMetric::LoopLength.index()] / line.profile.marginal_loop_ft() as f32;
    }

    // --- ticket recency ---
    slot[pbase + 5] = days_since as f32;

    // --- modem-off fraction ---
    // Expected Saturdays in the window (Saturdays are day % 7 == 6).
    let first_sat =
        if window_start % 7 <= 6 { window_start + (6 - window_start % 7) } else { window_start };
    let expected = if day > first_sat { ((day - first_sat) / 7 + 1) as usize } else { 1 };
    let present = history_count + usize::from(cur.is_some());
    let frac_off = 1.0 - (present as f64 / expected as f64).min(1.0);
    slot[pbase + 6] = frac_off as f32;
}

/// Every quadratic over continuous base columns.
pub fn all_quadratics(base: &EncodedDataset) -> Vec<DerivedFeature> {
    base.data
        .x
        .meta()
        .iter()
        .enumerate()
        .filter(|(_, m)| m.kind == FeatureKind::Continuous)
        .map(|(col, _)| DerivedFeature::Quadratic { col })
        .collect()
}

/// Every pairwise product over continuous base columns (`a < b`).
pub fn all_products(base: &EncodedDataset) -> Vec<DerivedFeature> {
    let continuous: Vec<usize> = base
        .data
        .x
        .meta()
        .iter()
        .enumerate()
        .filter(|(_, m)| m.kind == FeatureKind::Continuous)
        .map(|(i, _)| i)
        .collect();
    let mut out = Vec::with_capacity(continuous.len() * (continuous.len() - 1) / 2);
    for (ai, &a) in continuous.iter().enumerate() {
        for &b in &continuous[ai + 1..] {
            out.push(DerivedFeature::Product { a, b });
        }
    }
    out
}

/// Materializes derived columns from a base dataset (derived-only result;
/// combine with [`EncodedDataset::hconcat`]).
pub fn derive(base: &EncodedDataset, features: &[DerivedFeature]) -> EncodedDataset {
    let n_rows = base.data.len();
    let meta: Vec<FeatureMeta> = features
        .iter()
        .map(|f| match f {
            DerivedFeature::Quadratic { col } => {
                FeatureMeta::continuous(format!("quad:{}^2", base.data.x.meta()[*col].name))
            }
            DerivedFeature::Product { a, b } => FeatureMeta::continuous(format!(
                "prod:{}*{}",
                base.data.x.meta()[*a].name,
                base.data.x.meta()[*b].name
            )),
        })
        .collect();
    let classes: Vec<FeatureClass> = features.iter().map(|f| f.class()).collect();

    let mut values = Vec::with_capacity(n_rows * features.len());
    for r in 0..n_rows {
        let row = base.data.x.row(r);
        for f in features {
            let v = match f {
                DerivedFeature::Quadratic { col } => row[*col] * row[*col],
                DerivedFeature::Product { a, b } => row[*a] * row[*b],
            };
            values.push(v);
        }
    }

    EncodedDataset {
        data: Dataset::new(FeatureMatrix::new(n_rows, meta, values), base.data.y.clone()),
        rows: base.rows.clone(),
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nevermind_dslsim::{SimConfig, World};

    fn sim() -> (Vec<Line>, nevermind_dslsim::SimOutput) {
        let cfg = SimConfig::small(21);
        let world = World::generate(cfg);
        let lines = world.topology().lines.clone();
        (lines, world.run())
    }

    #[test]
    fn encodes_expected_shape() {
        let (lines, out) = sim();
        let enc =
            BaseEncoder::new(&lines, &out.measurements, &out.tickets, EncoderConfig::default());
        let day = 27 * 7 + 6; // a mid-run Saturday
        let ds = enc.encode(&[day]);
        assert_eq!(ds.data.len(), lines.len());
        assert_eq!(ds.data.x.n_cols(), 25 * 3 + 5 + 2);
        assert_eq!(ds.classes.len(), ds.data.x.n_cols());
        assert_eq!(ds.rows.len(), lines.len());
        assert!(ds.rows.iter().all(|r| r.day == day));
    }

    #[test]
    #[should_panic(expected = "not a Saturday")]
    fn rejects_non_saturdays() {
        let (lines, out) = sim();
        let enc =
            BaseEncoder::new(&lines, &out.measurements, &out.tickets, EncoderConfig::default());
        let _ = enc.encode(&[100]);
    }

    #[test]
    fn basic_features_match_measurements() {
        let (lines, out) = sim();
        let enc =
            BaseEncoder::new(&lines, &out.measurements, &out.tickets, EncoderConfig::default());
        let day = 20 * 7 + 6;
        let ds = enc.encode(&[day]);
        // Find a row whose line measured that day and check value passthrough.
        let m =
            out.measurements.iter().find(|m| m.day == day).expect("someone measured that Saturday");
        let row_idx = ds.rows.iter().position(|r| r.line == m.line).expect("row exists");
        for i in 0..N_METRICS {
            let v = ds.data.x.get(row_idx, i);
            assert_eq!(v, m.values[i], "metric {i}");
        }
    }

    #[test]
    fn missing_test_yields_nan_basics_but_customer_features() {
        let (lines, out) = sim();
        let enc =
            BaseEncoder::new(&lines, &out.measurements, &out.tickets, EncoderConfig::default());
        let day = 20 * 7 + 6;
        let measured: std::collections::BTreeSet<LineId> =
            out.measurements.iter().filter(|m| m.day == day).map(|m| m.line).collect();
        let ds = enc.encode(&[day]);
        let row_idx =
            ds.rows.iter().position(|r| !measured.contains(&r.line)).expect("some modem was off");
        assert!(ds.data.x.get(row_idx, 0).is_nan(), "basic must be missing");
        // Ticket-recency and modem features never go missing.
        let n = ds.data.x.n_cols();
        assert!(!ds.data.x.get(row_idx, n - 1).is_nan(), "modem feature");
        assert!(!ds.data.x.get(row_idx, n - 2).is_nan(), "ticket feature");
        // And the modem-off fraction should be positive for a line that
        // skipped this very test.
        assert!(ds.data.x.get(row_idx, n - 1) > 0.0);
    }

    #[test]
    fn labels_match_ticket_windows() {
        let (lines, out) = sim();
        let cfg = EncoderConfig::default();
        let enc = BaseEncoder::new(&lines, &out.measurements, &out.tickets, cfg.clone());
        let day = 15 * 7 + 6;
        let ds = enc.encode(&[day]);
        for (row, key) in ds.rows.iter().enumerate() {
            let expected = out
                .customer_edge_tickets()
                .any(|t| t.line == key.line && t.day > day && t.day <= day + cfg.horizon_days);
            assert_eq!(ds.data.y[row], expected, "label mismatch line {}", key.line);
        }
        assert!(ds.data.n_positive() > 0, "some positives expected");
    }

    #[test]
    fn delta_is_current_minus_previous() {
        let (lines, out) = sim();
        let enc =
            BaseEncoder::new(&lines, &out.measurements, &out.tickets, EncoderConfig::default());
        let day = 20 * 7 + 6;
        let ds = enc.encode(&[day]);
        // A line measured both this week and last week.
        let this_week: std::collections::BTreeMap<LineId, &LineTest> =
            out.measurements.iter().filter(|m| m.day == day).map(|m| (m.line, m)).collect();
        let last_week: std::collections::BTreeMap<LineId, &LineTest> =
            out.measurements.iter().filter(|m| m.day == day - 7).map(|m| (m.line, m)).collect();
        let line = *this_week
            .keys()
            .find(|l| last_week.contains_key(l))
            .expect("a line measured two consecutive Saturdays");
        let row = ds.rows.iter().position(|r| r.line == line).expect("row");
        let cur = this_week[&line];
        let prev = last_week[&line];
        for i in 0..N_METRICS {
            let expected = cur.values[i] - prev.values[i];
            let got = ds.data.x.get(row, N_METRICS + i);
            assert!((got - expected).abs() < 1e-5, "delta metric {i}: {got} vs {expected}");
        }
    }

    #[test]
    fn time_series_zscores_are_standardized_for_stable_lines() {
        let (lines, out) = sim();
        let enc =
            BaseEncoder::new(&lines, &out.measurements, &out.tickets, EncoderConfig::default());
        let day = 30 * 7 + 6;
        let ds = enc.encode(&[day]);
        // Across the healthy majority, z-scores should mostly be modest.
        let ts_col = 2 * N_METRICS + LineMetric::DnNmr.index();
        let zs: Vec<f32> =
            (0..ds.data.len()).map(|r| ds.data.x.get(r, ts_col)).filter(|z| !z.is_nan()).collect();
        assert!(zs.len() > lines.len() / 2, "most lines should have enough history");
        let small = zs.iter().filter(|z| z.abs() < 3.0).count();
        assert!(
            small as f64 > 0.9 * zs.len() as f64,
            "z-scores should be standardized: {small}/{}",
            zs.len()
        );
    }

    #[test]
    fn derived_columns_compute_squares_and_products() {
        let (lines, out) = sim();
        let enc =
            BaseEncoder::new(&lines, &out.measurements, &out.tickets, EncoderConfig::default());
        let ds = enc.encode(&[20 * 7 + 6]);
        let feats =
            vec![DerivedFeature::Quadratic { col: 1 }, DerivedFeature::Product { a: 1, b: 2 }];
        let der = derive(&ds, &feats);
        assert_eq!(der.data.x.n_cols(), 2);
        for r in 0..ds.data.len().min(50) {
            let a = ds.data.x.get(r, 1);
            let b = ds.data.x.get(r, 2);
            let q = der.data.x.get(r, 0);
            let p = der.data.x.get(r, 1);
            if a.is_nan() {
                assert!(q.is_nan());
            } else {
                assert_eq!(q, a * a);
            }
            if a.is_nan() || b.is_nan() {
                assert!(p.is_nan());
            } else {
                assert_eq!(p, a * b);
            }
        }
        let joined = ds.hconcat(&der);
        assert_eq!(joined.data.x.n_cols(), ds.data.x.n_cols() + 2);
    }

    #[test]
    fn derived_enumerations_cover_continuous_columns() {
        let (lines, out) = sim();
        let enc =
            BaseEncoder::new(&lines, &out.measurements, &out.tickets, EncoderConfig::default());
        let ds = enc.encode(&[20 * 7 + 6]);
        let n_cont = ds.data.x.meta().iter().filter(|m| m.kind == FeatureKind::Continuous).count();
        assert_eq!(all_quadratics(&ds).len(), n_cont);
        assert_eq!(all_products(&ds).len(), n_cont * (n_cont - 1) / 2);
    }

    #[test]
    fn base_columns_are_all_base() {
        let (lines, out) = sim();
        let enc =
            BaseEncoder::new(&lines, &out.measurements, &out.tickets, EncoderConfig::default());
        let ds = enc.encode(&[20 * 7 + 6]);
        assert_eq!(ds.base_columns().len(), ds.data.x.n_cols());
    }
}
