//! Incremental weekly encoder for the operational proactive loop.
//!
//! [`crate::BaseEncoder`] is built for offline experiments: it indexes a
//! *fixed* log once and answers arbitrary `(line, Saturday)` queries by
//! re-scanning each line's full prefix. The operational loop has a
//! different shape — every Saturday it encodes the *whole* population at
//! the *current frontier*, over logs that only ever grow at the end. Doing
//! that with `BaseEncoder` means cloning the accumulated logs and
//! rebuilding the indexes every single week, with cost growing linearly in
//! elapsed time.
//!
//! [`IncrementalEncoder`] keeps per-line rolling state instead:
//!
//! * a bounded window of recent tests (the `history_weeks` time-series
//!   window, which also serves the delta baseline and the modem-off
//!   denominator), pruned as the frontier advances;
//! * the line's customer-edge ticket days (for recency and labels).
//!
//! [`IncrementalEncoder::ingest`] appends one batch of fresh log events
//! (typically a week); [`IncrementalEncoder::encode_day`] then encodes the
//! population in O(lines × window) regardless of how long the simulation
//! has been running. The produced rows are bit-identical to what
//! `BaseEncoder` would compute over the same ingested logs — both encoders
//! funnel into the same row-fill routine, and the equivalence is pinned by
//! tests.
//!
//! Both phases shard by contiguous line ranges
//! ([`IncrementalEncoder::ingest_sharded`],
//! [`IncrementalEncoder::encode_day_cols_sharded`]): per-line state is
//! independent, so each scoped thread owns a disjoint slice of it and
//! writes a disjoint slice of the output — the serial and sharded paths
//! run the identical per-line routine, which keeps every shard count
//! bit-identical.

use crate::encode::{days_since_ticket, fill_row_except_ts, EncodedDataset, EncoderConfig, RowKey};
use crate::BaseEncoder;
use nevermind_dslsim::topology::Line;
use nevermind_dslsim::{LineId, LineTest, Ticket, N_METRICS};
use nevermind_ml::data::{Dataset, FeatureMatrix};
use std::collections::VecDeque;

/// Per-line rolling state.
struct LineState {
    /// `(day, metrics)` of recent tests, chronological; pruned to the
    /// time-series window of the most recent encode day.
    tests: VecDeque<(u32, [f32; N_METRICS])>,
    /// Customer-edge ticket days, ascending (never pruned: ticket recency
    /// saturates at 365 days but labels may look arbitrarily far back).
    tickets: Vec<u32>,
}

impl LineState {
    /// Appends one measurement; panics if it rewinds the line's history.
    fn push_test(&mut self, line: LineId, day: u32, values: [f32; N_METRICS]) {
        if let Some(&(last_day, _)) = self.tests.back() {
            assert!(
                day >= last_day,
                "line {line} measurements must arrive in day order ({day} after {last_day})",
            );
        }
        self.tests.push_back((day, values));
    }

    /// Records one customer-edge ticket day, tolerating mildly
    /// out-of-order batches by insertion.
    fn push_ticket(&mut self, day: u32) {
        match self.tickets.last() {
            Some(&last) if day < last => {
                let pos = self.tickets.partition_point(|&d| d <= day);
                self.tickets.insert(pos, day);
            }
            _ => self.tickets.push(day),
        }
    }
}

/// Streaming counterpart of [`BaseEncoder`]: ingest log events as they
/// happen, encode the population at the current Saturday from rolling
/// per-line state.
pub struct IncrementalEncoder<'a> {
    lines: &'a [Line],
    config: EncoderConfig,
    state: Vec<LineState>,
    last_encoded: u32,
}

/// Encodes one line into `values_out` (one slot per requested column),
/// returning its row key and label — the single per-line routine behind
/// both the serial and the sharded encode paths.
#[allow(clippy::too_many_arguments)] // internal: the flattened per-line hot path
fn encode_line_into(
    line: &Line,
    st: &mut LineState,
    day: u32,
    window_start: u32,
    cols: &[usize],
    lanes: &[usize],
    config: &EncoderConfig,
    scratch: &mut [f32],
    values_out: &mut [f32],
) -> (RowKey, bool) {
    while st.tests.front().is_some_and(|&(d, _)| d < window_start) {
        st.tests.pop_front();
    }
    let st = &*st;

    // Tests strictly before `day` are history; one at `day` is the
    // current test (ingesting ahead of the encode day is allowed —
    // later events are simply not visible yet).
    let cut = st.tests.partition_point(|&(d, _)| d < day);
    let cur = st.tests.get(cut).filter(|&&(d, _)| d == day).map(|(_, v)| v);
    let prev = cut
        .checked_sub(1)
        .map(|i| &st.tests[i])
        .filter(|&&(d, _)| day - d <= config.delta_max_lookback_days)
        .map(|(_, v)| v);
    let last_ticket = {
        let c = st.tickets.partition_point(|&d| d < day + 1);
        c.checked_sub(1).map(|i| st.tickets[i])
    };
    scratch.fill(f32::NAN);
    fill_row_except_ts(
        line,
        day,
        cur,
        prev,
        cut,
        days_since_ticket(last_ticket, day),
        config,
        scratch,
    );
    if let Some(cur) = cur {
        if !lanes.is_empty() && cut >= config.min_history_tests {
            // The window's first `cut` tests, as the deque's (up to
            // two) contiguous runs — plain slices keep the fused
            // lane loop vectorisable.
            let (a, b) = st.tests.as_slices();
            let (ha, hb) =
                if cut <= a.len() { (&a[..cut], &b[..0]) } else { (a, &b[..cut - a.len()]) };
            fill_ts_fused(ha, hb, cur, lanes, scratch);
        }
    }
    for (slot, &c) in values_out.iter_mut().zip(cols) {
        *slot = scratch[c];
    }

    // The paper's label window `(day, day + horizon]`.
    let c = st.tickets.partition_point(|&d| d <= day);
    let label = st.tickets.get(c).is_some_and(|&d| d <= day + config.horizon_days);
    (RowKey { line: line.id, day }, label)
}

impl<'a> IncrementalEncoder<'a> {
    /// Creates an encoder with empty state for the given plant.
    pub fn new(lines: &'a [Line], config: EncoderConfig) -> Self {
        debug_assert!(lines.iter().enumerate().all(|(i, l)| l.id.index() == i));
        let state = lines
            .iter()
            .map(|_| LineState { tests: VecDeque::new(), tickets: Vec::new() })
            .collect();
        Self { lines, config, state, last_encoded: 0 }
    }

    /// The encoder configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Appends a batch of fresh log events (e.g. one week of the world's
    /// output). Non-customer-edge tickets are ignored, mirroring the ticket
    /// index `BaseEncoder` builds.
    ///
    /// # Panics
    /// Panics if a line's measurements arrive out of chronological order.
    pub fn ingest(&mut self, measurements: &[LineTest], tickets: &[Ticket]) {
        self.ingest_sharded(measurements, tickets, 1);
    }

    /// [`IncrementalEncoder::ingest`] fanned out over `shards` scoped
    /// threads. Per-line state is independent, so each thread filters the
    /// batch to its own contiguous line range and applies exactly the
    /// serial per-event routine — any shard count leaves identical state.
    ///
    /// # Panics
    /// Panics under [`IncrementalEncoder::ingest`]'s conditions.
    pub fn ingest_sharded(&mut self, measurements: &[LineTest], tickets: &[Ticket], shards: usize) {
        let _span = nevermind_obs::span!("features/ingest");
        nevermind_obs::counter_add!("features/events_ingested", measurements.len() + tickets.len());
        let n = self.state.len();
        let shards = shards.clamp(1, n.max(1));
        let apply = |state: &mut [LineState], lo: usize, hi: usize| {
            for m in measurements {
                let li = m.line.index();
                if (lo..hi).contains(&li) {
                    state[li - lo].push_test(m.line, m.day, m.values);
                }
            }
            for t in tickets {
                let li = t.line.index();
                if t.is_customer_edge() && (lo..hi).contains(&li) {
                    state[li - lo].push_ticket(t.day);
                }
            }
        };
        if shards == 1 {
            apply(&mut self.state, 0, n);
            return;
        }
        std::thread::scope(|scope| {
            let mut rest = self.state.as_mut_slice();
            for s in 0..shards {
                let lo = s * n / shards;
                let hi = (s + 1) * n / shards;
                let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(hi - lo);
                rest = tail;
                let apply = &apply;
                scope.spawn(move || apply(chunk, lo, hi));
            }
        });
    }

    /// Encodes one row per line at the given Saturday, exactly as
    /// [`BaseEncoder::encode`] would over the ingested logs. Labels reflect
    /// only tickets ingested so far — at the live frontier the label window
    /// is still open, just as it is for the batch encoder on truncated logs.
    ///
    /// # Panics
    /// Panics if `day` is not a Saturday, or decreases between calls (the
    /// rolling windows prune tests the frontier has left behind).
    pub fn encode_day(&mut self, day: u32) -> EncodedDataset {
        let n_cols = BaseEncoder::base_meta().0.len();
        let cols: Vec<usize> = (0..n_cols).collect();
        self.encode_day_cols(day, &cols)
    }

    /// [`IncrementalEncoder::encode_day`] restricted to the requested base
    /// columns, in the given order. Every returned column is bit-identical
    /// to the same column of the full encoding, but the per-week cost
    /// scales with what is asked for — in particular, only the requested
    /// time-series lanes run their Welford pass over the window (lanes are
    /// independent, so skipping some cannot perturb the others). This is
    /// the encoder the weekly scoring engine drives: a trained ensemble
    /// reads a couple dozen base columns, not all of them.
    ///
    /// # Panics
    /// Panics under [`IncrementalEncoder::encode_day`]'s conditions, or if
    /// a column index is out of range.
    pub fn encode_day_cols(&mut self, day: u32, cols: &[usize]) -> EncodedDataset {
        self.encode_day_cols_sharded(day, cols, 1)
    }

    /// Encodes the population at `day` directly into `store` — the
    /// streaming writer of the week-major [`crate::FeatureStore`]. Encodes
    /// exactly the store's tracked lanes (sharded) and ingests the result;
    /// byte-identical to [`crate::BaseEncoder::encode_week_into`] over the
    /// same logs, because both writers funnel through
    /// [`crate::FeatureStore::ingest_frame`].
    ///
    /// # Panics
    /// Panics under [`IncrementalEncoder::encode_day_cols`]'s conditions,
    /// or if the store's shape does not match this encoder's population.
    pub fn encode_week_into<'s>(
        &mut self,
        day: u32,
        shards: usize,
        store: &'s mut crate::FeatureStore,
    ) -> &'s crate::store::WeekFrame {
        let ds = self.encode_day_cols_sharded(day, store.cols(), shards);
        store.ingest_frame(day, &ds)
    }

    /// [`IncrementalEncoder::encode_day_cols`] fanned out over `shards`
    /// scoped threads, each encoding a contiguous line range into a
    /// disjoint slice of the output matrix. Bit-identical to the serial
    /// encode for any shard count: both paths run the same per-line
    /// routine, and rows never interact.
    ///
    /// # Panics
    /// Panics under [`IncrementalEncoder::encode_day_cols`]'s conditions.
    pub fn encode_day_cols_sharded(
        &mut self,
        day: u32,
        cols: &[usize],
        shards: usize,
    ) -> EncodedDataset {
        let _span = nevermind_obs::span!("features/encode_day");
        nevermind_obs::counter_add!("features/rows_encoded", self.lines.len());
        assert_eq!(day % 7, 6, "prediction day {day} is not a Saturday");
        assert!(
            day >= self.last_encoded,
            "encode days must be non-decreasing ({} after {})",
            day,
            self.last_encoded
        );
        self.last_encoded = day;

        let (meta_full, classes_full) = BaseEncoder::base_meta();
        let n_full = meta_full.len();
        assert!(cols.iter().all(|&c| c < n_full), "column index out of range");
        let meta: Vec<_> = cols.iter().map(|&c| meta_full[c].clone()).collect();
        let classes: Vec<_> = cols.iter().map(|&c| classes_full[c]).collect();
        // The time-series lanes the requested columns need.
        let lanes: Vec<usize> = cols
            .iter()
            .filter(|&&c| (2 * N_METRICS..3 * N_METRICS).contains(&c))
            .map(|&c| c - 2 * N_METRICS)
            .collect();

        let n_rows = self.lines.len();
        let shards = shards.clamp(1, n_rows.max(1));
        let window_start = day.saturating_sub(self.config.history_weeks as u32 * 7);
        let mut values = vec![0.0f32; n_rows * cols.len()];
        let mut rows = vec![RowKey { line: LineId(0), day }; n_rows];
        let mut labels = vec![false; n_rows];

        let encode_range = |state: &mut [LineState],
                            vals: &mut [f32],
                            rks: &mut [RowKey],
                            lbs: &mut [bool],
                            lo: usize| {
            let mut scratch = vec![f32::NAN; n_full];
            for (k, st) in state.iter_mut().enumerate() {
                let (rk, label) = encode_line_into(
                    &self.lines[lo + k],
                    st,
                    day,
                    window_start,
                    cols,
                    &lanes,
                    &self.config,
                    &mut scratch,
                    &mut vals[k * cols.len()..(k + 1) * cols.len()],
                );
                rks[k] = rk;
                lbs[k] = label;
            }
        };
        if shards == 1 {
            encode_range(&mut self.state, &mut values, &mut rows, &mut labels, 0);
        } else {
            std::thread::scope(|scope| {
                let mut state_rest = self.state.as_mut_slice();
                let mut values_rest = values.as_mut_slice();
                let mut rows_rest = rows.as_mut_slice();
                let mut labels_rest = labels.as_mut_slice();
                for s in 0..shards {
                    let lo = s * n_rows / shards;
                    let hi = (s + 1) * n_rows / shards;
                    let n = hi - lo;
                    let (st, tail) = std::mem::take(&mut state_rest).split_at_mut(n);
                    state_rest = tail;
                    let (vals, tail) =
                        std::mem::take(&mut values_rest).split_at_mut(n * cols.len());
                    values_rest = tail;
                    let (rks, tail) = std::mem::take(&mut rows_rest).split_at_mut(n);
                    rows_rest = tail;
                    let (lbs, tail) = std::mem::take(&mut labels_rest).split_at_mut(n);
                    labels_rest = tail;
                    let encode_range = &encode_range;
                    scope.spawn(move || encode_range(st, vals, rks, lbs, lo));
                }
            });
        }

        EncodedDataset {
            data: Dataset::new(FeatureMatrix::new(n_rows, meta, values), labels),
            rows,
            classes,
        }
    }
}

/// Fills the requested time-series z-score lanes of a base row from the
/// window tests in `history` (the deque's two contiguous runs, already
/// truncated to the tests strictly before the encode day), in a single
/// fused pass.
///
/// Each lane performs *exactly* the floating-point operation sequence of
/// [`nevermind_ml::stats::RunningMoments`] (`push` per non-NaN sample, then
/// population `std_dev`), and lanes never interact — so every computed lane
/// is bit-identical to the reference z-score loop in `fill_base_row`
/// regardless of which other lanes are requested. The window is traversed
/// once instead of once per metric, and the NaN skip is a branchless select
/// over plain slices the compiler can vectorise.
fn fill_ts_fused(
    history_front: &[(u32, [f32; N_METRICS])],
    history_back: &[(u32, [f32; N_METRICS])],
    cur: &[f32; N_METRICS],
    lanes: &[usize],
    slot: &mut [f32],
) {
    assert!(lanes.len() <= N_METRICS);
    let mut n = [0.0f64; N_METRICS];
    let mut mean = [0.0f64; N_METRICS];
    let mut m2 = [0.0f64; N_METRICS];
    for part in [history_front, history_back] {
        for (_, v) in part {
            for (j, &lane) in lanes.iter().enumerate() {
                let x = f64::from(v[lane]);
                // RunningMoments::push, with the NaN skip as a select:
                //   n += 1; delta = x - mean; mean += delta / n; m2 += delta * (x - mean)
                let miss = x.is_nan();
                let n1 = n[j] + 1.0;
                let delta = x - mean[j];
                let mean1 = mean[j] + delta / n1;
                let m21 = m2[j] + delta * (x - mean1);
                n[j] = if miss { n[j] } else { n1 };
                mean[j] = if miss { mean[j] } else { mean1 };
                m2[j] = if miss { m2[j] } else { m21 };
            }
        }
    }
    for (j, &lane) in lanes.iter().enumerate() {
        // RunningMoments: mean() and variance() are NaN while empty;
        // variance is the population m2 / n.
        let (mu, sd) =
            if n[j] == 0.0 { (f64::NAN, f64::NAN) } else { (mean[j], (m2[j] / n[j]).sqrt()) };
        let c = f64::from(cur[lane]);
        let z = if sd > 1e-6 {
            (c - mu) / sd
        } else if (c - mu).abs() < 1e-6 {
            0.0
        } else {
            f64::NAN
        };
        slot[2 * N_METRICS + lane] = z as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nevermind_dslsim::{SimConfig, SimOutput, World};

    fn sim(seed: u64) -> (Vec<Line>, SimOutput) {
        let cfg = SimConfig::small(seed);
        let world = World::generate(cfg);
        let lines = world.topology().lines.clone();
        (lines, world.run())
    }

    fn assert_encodings_identical(a: &EncodedDataset, b: &EncodedDataset, ctx: &str) {
        assert_eq!(a.rows, b.rows, "{ctx}: row keys");
        assert_eq!(a.data.y, b.data.y, "{ctx}: labels");
        assert_eq!(a.classes, b.classes, "{ctx}: classes");
        assert_eq!(a.data.x.n_cols(), b.data.x.n_cols(), "{ctx}: columns");
        for r in 0..a.data.len() {
            for c in 0..a.data.x.n_cols() {
                let (va, vb) = (a.data.x.get(r, c), b.data.x.get(r, c));
                assert_eq!(va.to_bits(), vb.to_bits(), "{ctx}: row {r} col {c}: {va} vs {vb}");
            }
        }
    }

    #[test]
    fn matches_batch_encoder_over_full_logs() {
        let (lines, out) = sim(21);
        let cfg = EncoderConfig::default();
        let batch = BaseEncoder::new(&lines, &out.measurements, &out.tickets, cfg.clone());
        let mut inc = IncrementalEncoder::new(&lines, cfg);
        inc.ingest(&out.measurements, &out.tickets);

        // Early (thin history), mid-run, and late Saturdays.
        for day in [6, 6 * 7 + 6, 20 * 7 + 6, 30 * 7 + 6] {
            let a = batch.encode(&[day]);
            let b = inc.encode_day(day);
            assert_encodings_identical(&a, &b, &format!("day {day}"));
        }
    }

    #[test]
    fn weekly_ingestion_matches_batch_encoder_on_truncated_logs() {
        // The operational pattern: ingest one week at a time, encode at the
        // frontier. Each week's encoding must equal a batch encoder built
        // from scratch over exactly the logs seen so far.
        let (lines, out) = sim(22);
        let cfg = EncoderConfig::default();
        let mut inc = IncrementalEncoder::new(&lines, cfg.clone());
        let (mut m_cursor, mut t_cursor) = (0usize, 0usize);

        for day in (6..out.days).step_by(7).skip(4).take(10) {
            let m_end = out.measurements.partition_point(|m| m.day <= day);
            let t_end = out.tickets.partition_point(|t| t.day <= day);
            inc.ingest(&out.measurements[m_cursor..m_end], &out.tickets[t_cursor..t_end]);
            (m_cursor, t_cursor) = (m_end, t_end);

            let truncated = BaseEncoder::new(
                &lines,
                &out.measurements[..m_end],
                &out.tickets[..t_end],
                cfg.clone(),
            );
            let a = truncated.encode(&[day]);
            let b = inc.encode_day(day);
            assert_encodings_identical(&a, &b, &format!("frontier day {day}"));
        }
    }

    #[test]
    fn sharded_ingest_and_encode_match_serial() {
        // The sharding contract at the encoder level: weekly sharded
        // ingest + sharded encode, bit-identical to the serial pair for
        // shard counts {2, 7, 16}.
        let (lines, out) = sim(25);
        let cfg = EncoderConfig::default();
        let mut serial = IncrementalEncoder::new(&lines, cfg.clone());
        let mut sharded: Vec<IncrementalEncoder> =
            [2usize, 7, 16].iter().map(|_| IncrementalEncoder::new(&lines, cfg.clone())).collect();
        let (mut m_cursor, mut t_cursor) = (0usize, 0usize);

        for day in (6..out.days).step_by(7).skip(4).take(8) {
            let m_end = out.measurements.partition_point(|m| m.day <= day);
            let t_end = out.tickets.partition_point(|t| t.day <= day);
            let (ms, ts) = (&out.measurements[m_cursor..m_end], &out.tickets[t_cursor..t_end]);
            serial.ingest(ms, ts);
            let want = serial.encode_day(day);
            for (enc, &n) in sharded.iter_mut().zip(&[2usize, 7, 16]) {
                enc.ingest_sharded(ms, ts, n);
                let got = enc.encode_day_cols_sharded(
                    day,
                    &(0..BaseEncoder::base_meta().0.len()).collect::<Vec<_>>(),
                    n,
                );
                assert_encodings_identical(&want, &got, &format!("day {day}, {n} shards"));
            }
            (m_cursor, t_cursor) = (m_end, t_end);
        }
    }

    #[test]
    fn column_subset_encoding_matches_full() {
        let (lines, out) = sim(24);
        let cfg = EncoderConfig::default();
        let mut full_enc = IncrementalEncoder::new(&lines, cfg.clone());
        let mut sub_enc = IncrementalEncoder::new(&lines, cfg);
        full_enc.ingest(&out.measurements, &out.tickets);
        sub_enc.ingest(&out.measurements, &out.tickets);

        let day = 20 * 7 + 6;
        let full = full_enc.encode_day(day);
        // A spread across every feature block, deliberately out of order:
        // two ts lanes, basic, delta, profile, ticket recency, modem-off.
        let n = N_METRICS;
        let cols = vec![2 * n + 7, 0, 3, n + 1, 2 * n, 3 * n + 2, 3 * n + 5, 3 * n + 6];
        let sub = sub_enc.encode_day_cols(day, &cols);

        assert_eq!(sub.rows, full.rows);
        assert_eq!(sub.data.y, full.data.y);
        assert_eq!(sub.data.x.n_cols(), cols.len());
        for (j, &c) in cols.iter().enumerate() {
            assert_eq!(sub.data.x.meta()[j], full.data.x.meta()[c], "col {c} meta");
            assert_eq!(sub.classes[j], full.classes[c], "col {c} class");
            for r in 0..full.data.len() {
                let (a, b) = (sub.data.x.get(r, j), full.data.x.get(r, c));
                assert_eq!(a.to_bits(), b.to_bits(), "row {r} col {c}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fused_lanes_match_running_moments_with_nan_gaps() {
        use nevermind_ml::stats::RunningMoments;
        // Windows with NaN holes, constant lanes, and an all-NaN lane — the
        // corner cases of the z-score branches.
        let mk = |vals: [f32; 4]| {
            let mut m = [f32::NAN; N_METRICS];
            m[0] = vals[0]; // ordinary lane
            m[1] = vals[1]; // lane with NaN gaps
            m[2] = 7.25; // constant lane (sd == 0)
            m[3] = vals[3]; // all-NaN lane stays NaN
            m
        };
        let tests: Vec<(u32, [f32; N_METRICS])> = vec![
            (6, mk([1.0, f32::NAN, 0.0, f32::NAN])),
            (13, mk([2.5, 4.0, 0.0, f32::NAN])),
            (20, mk([-3.0, f32::NAN, 0.0, f32::NAN])),
            (27, mk([0.5, 9.5, 0.0, f32::NAN])),
        ];
        let cur = mk([1.75, 5.0, 0.0, f32::NAN]);
        let all_lanes: Vec<usize> = (0..N_METRICS).collect();
        let mut slot = vec![f32::NAN; 3 * N_METRICS];
        // Split across the two "deque runs" to exercise both slice args.
        fill_ts_fused(&tests[..1], &tests[1..], &cur, &all_lanes, &mut slot);

        for i in 0..N_METRICS {
            let mut mom = RunningMoments::new();
            for (_, v) in &tests {
                mom.push(f64::from(v[i]));
            }
            let sd = mom.std_dev();
            let want = if sd > 1e-6 {
                (f64::from(cur[i]) - mom.mean()) / sd
            } else if (f64::from(cur[i]) - mom.mean()).abs() < 1e-6 {
                0.0
            } else {
                f64::NAN
            } as f32;
            let got = slot[2 * N_METRICS + i];
            assert_eq!(got.to_bits(), want.to_bits(), "lane {i}: {got} vs {want}");
        }
        // Sanity on the branch coverage itself.
        assert!(slot[2 * N_METRICS].is_finite());
        assert_eq!(slot[2 * N_METRICS + 2], 0.0);
        assert!(slot[2 * N_METRICS + 3].is_nan());
    }

    #[test]
    #[should_panic(expected = "not a Saturday")]
    fn rejects_non_saturdays() {
        let (lines, _) = sim(23);
        let mut inc = IncrementalEncoder::new(&lines, EncoderConfig::default());
        let _ = inc.encode_day(100);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_rewinding_the_frontier() {
        let (lines, out) = sim(23);
        let mut inc = IncrementalEncoder::new(&lines, EncoderConfig::default());
        inc.ingest(&out.measurements, &out.tickets);
        let _ = inc.encode_day(30 * 7 + 6);
        let _ = inc.encode_day(10 * 7 + 6);
    }
}
