//! Fast per-line lookup structures over the simulator's flat logs.
//!
//! Both the encoder and the evaluation analyses repeatedly ask "what did
//! line *u* measure before day *t*?" and "when is *u*'s next ticket after
//! *t*?"; these indexes answer in O(log n).

use nevermind_dslsim::{LineId, LineTest, Ticket};

/// Per-line measurement index (tests sorted by day within each line).
pub struct MeasurementIndex<'a> {
    per_line: Vec<Vec<&'a LineTest>>,
}

impl<'a> MeasurementIndex<'a> {
    /// Builds the index. `n_lines` must cover every line id appearing in
    /// the log.
    pub fn build(measurements: &'a [LineTest], n_lines: usize) -> Self {
        let mut per_line: Vec<Vec<&LineTest>> = vec![Vec::new(); n_lines];
        for m in measurements {
            per_line[m.line.index()].push(m);
        }
        for tests in per_line.iter_mut() {
            tests.sort_by_key(|t| t.day);
        }
        Self { per_line }
    }

    /// Number of indexed lines.
    pub fn n_lines(&self) -> usize {
        self.per_line.len()
    }

    /// The test taken exactly on `day`, if the modem answered.
    pub fn at(&self, line: LineId, day: u32) -> Option<&'a LineTest> {
        let tests = &self.per_line[line.index()];
        tests.binary_search_by_key(&day, |t| t.day).ok().map(|i| tests[i])
    }

    /// All tests strictly before `day`, in chronological order.
    pub fn before(&self, line: LineId, day: u32) -> &[&'a LineTest] {
        let tests = &self.per_line[line.index()];
        let cut = tests.partition_point(|t| t.day < day);
        &tests[..cut]
    }

    /// The most recent test at or before `day`.
    pub fn latest_up_to(&self, line: LineId, day: u32) -> Option<&'a LineTest> {
        let tests = &self.per_line[line.index()];
        let cut = tests.partition_point(|t| t.day <= day);
        cut.checked_sub(1).map(|i| tests[i])
    }

    /// All tests for a line.
    pub fn all(&self, line: LineId) -> &[&'a LineTest] {
        &self.per_line[line.index()]
    }
}

/// Per-line customer-edge ticket index (days sorted within each line).
pub struct TicketIndex {
    per_line: Vec<Vec<u32>>,
}

impl TicketIndex {
    /// Builds the index from **customer-edge tickets only** — the agent
    /// category label is the filter, exactly as the paper uses it.
    pub fn build(tickets: &[Ticket], n_lines: usize) -> Self {
        let mut per_line: Vec<Vec<u32>> = vec![Vec::new(); n_lines];
        for t in tickets {
            if t.is_customer_edge() {
                per_line[t.line.index()].push(t.day);
            }
        }
        for days in per_line.iter_mut() {
            days.sort_unstable();
        }
        Self { per_line }
    }

    /// Day of the most recent ticket strictly before `day`.
    pub fn last_before(&self, line: LineId, day: u32) -> Option<u32> {
        let days = &self.per_line[line.index()];
        let cut = days.partition_point(|&d| d < day);
        cut.checked_sub(1).map(|i| days[i])
    }

    /// Day of the first ticket in `(day, day + horizon]` — the paper's
    /// `NT(u, t) < T` label window.
    pub fn first_within(&self, line: LineId, day: u32, horizon: u32) -> Option<u32> {
        let days = &self.per_line[line.index()];
        let cut = days.partition_point(|&d| d <= day);
        days.get(cut).copied().filter(|&d| d <= day + horizon)
    }

    /// The paper's label `Tkt(u, t, T)`.
    pub fn has_ticket_within(&self, line: LineId, day: u32, horizon: u32) -> bool {
        self.first_within(line, day, horizon).is_some()
    }

    /// All ticket days for a line.
    pub fn days(&self, line: LineId) -> &[u32] {
        &self.per_line[line.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nevermind_dslsim::measurement::N_METRICS;
    use nevermind_dslsim::TicketCategory;

    fn test_at(line: u32, day: u32) -> LineTest {
        LineTest { line: LineId(line), day, values: [day as f32; N_METRICS] }
    }

    fn ticket(line: u32, day: u32, category: TicketCategory) -> Ticket {
        Ticket { id: day, line: LineId(line), day, category }
    }

    #[test]
    fn measurement_lookup() {
        let tests = vec![test_at(0, 20), test_at(0, 6), test_at(0, 13), test_at(1, 6)];
        let idx = MeasurementIndex::build(&tests, 2);
        assert_eq!(idx.at(LineId(0), 13).map(|t| t.day), Some(13));
        assert!(idx.at(LineId(0), 12).is_none());
        let before: Vec<u32> = idx.before(LineId(0), 20).iter().map(|t| t.day).collect();
        assert_eq!(before, vec![6, 13]);
        assert_eq!(idx.latest_up_to(LineId(0), 19).map(|t| t.day), Some(13));
        assert_eq!(idx.latest_up_to(LineId(0), 20).map(|t| t.day), Some(20));
        assert!(idx.latest_up_to(LineId(0), 5).is_none());
        assert_eq!(idx.all(LineId(1)).len(), 1);
    }

    #[test]
    fn ticket_index_filters_to_customer_edge() {
        let tickets = vec![
            ticket(0, 5, TicketCategory::CustomerEdge),
            ticket(0, 9, TicketCategory::NonTechnical),
            ticket(0, 12, TicketCategory::Outage),
            ticket(0, 30, TicketCategory::CustomerEdge),
        ];
        let idx = TicketIndex::build(&tickets, 1);
        assert_eq!(idx.days(LineId(0)), &[5, 30]);
    }

    #[test]
    fn label_window_is_half_open_after_day() {
        let tickets = vec![ticket(0, 10, TicketCategory::CustomerEdge)];
        let idx = TicketIndex::build(&tickets, 1);
        // A ticket on the prediction day itself does not count.
        assert!(!idx.has_ticket_within(LineId(0), 10, 28));
        assert!(idx.has_ticket_within(LineId(0), 9, 28));
        assert!(idx.has_ticket_within(LineId(0), 9, 1));
        assert!(!idx.has_ticket_within(LineId(0), 5, 4));
    }

    #[test]
    fn last_before_is_strict() {
        let tickets = vec![
            ticket(0, 10, TicketCategory::CustomerEdge),
            ticket(0, 20, TicketCategory::CustomerEdge),
        ];
        let idx = TicketIndex::build(&tickets, 1);
        assert_eq!(idx.last_before(LineId(0), 10), None);
        assert_eq!(idx.last_before(LineId(0), 11), Some(10));
        assert_eq!(idx.last_before(LineId(0), 25), Some(20));
    }
}
