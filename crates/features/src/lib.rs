//! # nevermind-features
//!
//! The Table-3 feature encoder: turns each line's sparse weekly measurement
//! history into the feature vector the ticket predictor consumes.
//!
//! The paper defines three families (Sec. 4.2):
//!
//! * **history features** — *basic* (this Saturday's 25 metrics), *delta*
//!   (change vs last week), and *time-series* (z-score vs the long-term
//!   history);
//! * **customer features** — *profile* (measured value ÷ the subscribed
//!   profile's expectation), *ticket* (days since the most recent trouble
//!   ticket), and *modem* (fraction of weekly tests the modem missed);
//! * **derived features** — *quadratic* (squares) and *product* (pairwise
//!   products) of the above, which let the linear BStump model capture
//!   variances and interactions.
//!
//! Categorical metrics are binary already (`state`, `bt`, `crosstalk`), so
//! the paper's binary expansion is the identity here; they are excluded
//! from quadratic derivation (a 0/1 squared is itself).
//!
//! [`indexes`] holds the measurement/ticket lookup structures shared with
//! the core crate, [`encode`] the offline batch encoder, [`incremental`]
//! its streaming counterpart for the weekly operational loop (rolling
//! per-line state instead of full-log re-scans), [`store`] the week-major
//! columnar [`FeatureStore`] both encoders write and every downstream
//! reader (scoring, telemetry, provenance) borrows zero-copy, and
//! [`registry`] the feature taxonomy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod incremental;
pub mod indexes;
pub mod registry;
pub mod store;

pub use encode::{BaseEncoder, EncodedDataset};
pub use incremental::IncrementalEncoder;
pub use indexes::{MeasurementIndex, TicketIndex};
pub use registry::{DerivedFeature, FeatureClass};
pub use store::{FeatureStore, Retention, StoreError, WeekFrame};
