//! Feature taxonomy: the Table-3 classes and derived-feature descriptors.

use serde::{Deserialize, Serialize};

/// The Table-3 feature classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureClass {
    /// This Saturday's raw metric value (`l_i^K`).
    Basic,
    /// Change vs the previous week (`l_i^K − l_i^{K−1}`).
    Delta,
    /// Z-score vs the long-term history (`(l_i^K − l̄_i)/σ(l_i)`).
    TimeSeries,
    /// Measured value ÷ the profile expectation (`l_i^K / profile(l_i)`).
    Profile,
    /// Days since the most recent trouble ticket.
    Ticket,
    /// Fraction of weekly tests the modem missed.
    Modem,
    /// Square of a history/customer feature (`(l_i^t)²`).
    Quadratic,
    /// Product of two history/customer features (`l_i^t · l_j^t`).
    Product,
}

impl FeatureClass {
    /// Whether the class belongs to the paper's "history features" group.
    pub fn is_history(self) -> bool {
        matches!(self, FeatureClass::Basic | FeatureClass::Delta | FeatureClass::TimeSeries)
    }

    /// Whether the class belongs to the "customer features" group.
    pub fn is_customer(self) -> bool {
        matches!(self, FeatureClass::Profile | FeatureClass::Ticket | FeatureClass::Modem)
    }

    /// Whether the class is derived (Table 3 rows 7–8).
    pub fn is_derived(self) -> bool {
        matches!(self, FeatureClass::Quadratic | FeatureClass::Product)
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FeatureClass::Basic => "basic",
            FeatureClass::Delta => "delta",
            FeatureClass::TimeSeries => "time-series",
            FeatureClass::Profile => "profile",
            FeatureClass::Ticket => "ticket",
            FeatureClass::Modem => "modem",
            FeatureClass::Quadratic => "quadratic",
            FeatureClass::Product => "product",
        }
    }
}

/// A derived feature built from base (history + customer) columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DerivedFeature {
    /// `base[col]²`.
    Quadratic {
        /// Base column index.
        col: usize,
    },
    /// `base[a] · base[b]` with `a < b`.
    Product {
        /// First base column.
        a: usize,
        /// Second base column.
        b: usize,
    },
}

impl DerivedFeature {
    /// The class of the derived feature.
    pub fn class(self) -> FeatureClass {
        match self {
            DerivedFeature::Quadratic { .. } => FeatureClass::Quadratic,
            DerivedFeature::Product { .. } => FeatureClass::Product,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_predicates_partition_classes() {
        let all = [
            FeatureClass::Basic,
            FeatureClass::Delta,
            FeatureClass::TimeSeries,
            FeatureClass::Profile,
            FeatureClass::Ticket,
            FeatureClass::Modem,
            FeatureClass::Quadratic,
            FeatureClass::Product,
        ];
        for c in all {
            let groups = usize::from(c.is_history())
                + usize::from(c.is_customer())
                + usize::from(c.is_derived());
            assert_eq!(groups, 1, "{} must belong to exactly one group", c.label());
        }
    }

    #[test]
    fn derived_descriptor_class() {
        assert_eq!(DerivedFeature::Quadratic { col: 3 }.class(), FeatureClass::Quadratic);
        assert_eq!(DerivedFeature::Product { a: 1, b: 2 }.class(), FeatureClass::Product);
    }
}
