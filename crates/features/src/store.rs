//! The week-major columnar feature store.
//!
//! Every Saturday the operational loop encodes the whole population into a
//! feature snapshot that three different readers then want to look at: the
//! compiled stump scorer (per-used-feature gathers), the model-health
//! monitor (per-feature PSI binning), and the decision-provenance layer
//! (re-expanding a traced row). Before this module each reader kept its own
//! copy — the scorer a narrow gathered matrix, the trace layer a *retained
//! clone* of it, the monitor a second encode of the very same day.
//!
//! [`FeatureStore`] replaces all of that with one structure-of-arrays
//! store: per retained week a [`WeekFrame`] holding one contiguous f32
//! *lane* per tracked base column (lane-major: `lane * n_lines + line`),
//! one missing-bitmap per lane, and one label bitmap. Both encoders write
//! it through the same [`FeatureStore::ingest_frame`] — the batch
//! [`crate::BaseEncoder`] via [`crate::BaseEncoder::encode_week_into`], the
//! rolling [`crate::IncrementalEncoder`] via
//! [`crate::IncrementalEncoder::encode_week_into`] — so the long-standing
//! encoder-equivalence contract collapses to "two writers fill the same
//! store with the same bytes". Readers borrow lane slices
//! ([`WeekFrame::lane`], [`WeekFrame::lane_missing`]) zero-copy.
//!
//! # Missing-value canonicalization
//!
//! The encoders mark a missing value as `NaN` (any payload the arithmetic
//! happened to produce). The store canonicalizes on ingest: a `NaN` becomes
//! a set bit in the lane's missing bitmap and a `0.0` in the value page.
//! Reads that need the encoder convention back ([`WeekFrame::value`],
//! [`WeekFrame::lane_f64`]) restore a canonical `NaN` — every consumer of
//! a missing value treats all `NaN`s alike (stumps abstain, PSI routes to
//! the NaN bucket), so the payload is immaterial, and the value pages
//! become byte-deterministic, which the binary export below relies on.
//!
//! # `nevermind-store/v1` binary format
//!
//! [`FeatureStore::export`] serializes the store as one mmap-friendly
//! little-endian document so trials can checkpoint mid-horizon and resume
//! byte-for-byte (see `--store-out` / `--resume-from` on `nevermind
//! trial`), and sharded runs can hand stores across process boundaries:
//!
//! ```text
//! offset  size            field
//! 0       8               magic b"NVMSTOR1"
//! 8       4               version (u32, = 1)
//! 12      4               n_lanes (u32)
//! 16      8               n_lines (u64)
//! 24      4               n_frames (u32)
//! 28      4               horizon_days (u32)        ┐ encoder-config
//! 32      4               history_weeks (u32)       │ guard: a resumed
//! 36      4               min_history_tests (u32)   │ trial must encode
//! 40      4               delta_max_lookback (u32)  ┘ identically
//! 44      4               reserved (u32, = 0)
//! 48      4 * n_lanes     lane directory: base-column index per lane
//! …       pad to 8
//! per frame:
//!         4 + 4           day (u32), reserved (u32, = 0)
//!         4 * n_lanes * n_lines   value pages, lane-major f32 LE
//!         pad to 8
//!         8 * n_lanes * words     missing bitmaps, one page per lane
//!         8 * words               label bitmap
//! ```
//!
//! where `words = ceil(n_lines / 64)`. Every multi-byte field is
//! little-endian and every 8-byte page starts 8-byte aligned, so an import
//! can view pages in place. Export is byte-deterministic: the same frames
//! always serialize to the same bytes (pinned by the store tests).

use crate::encode::{EncodedDataset, EncoderConfig};
use nevermind_ml::data::{FeatureMatrix, FeatureMeta};

/// Magic bytes opening a `nevermind-store/v1` document.
pub const STORE_MAGIC: [u8; 8] = *b"NVMSTOR1";
/// Format version written by [`FeatureStore::export`].
pub const STORE_VERSION: u32 = 1;

/// How many encoded weeks a [`FeatureStore`] keeps resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Retention {
    /// Keep only the most recent frame — the weekly loop's steady state
    /// (telemetry and provenance only ever read the week just ranked).
    #[default]
    Latest,
    /// Keep every ingested frame — what `--store-out` checkpointing needs.
    All,
}

/// Why a `nevermind-store/v1` document was rejected on import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The document does not open with [`STORE_MAGIC`].
    BadMagic,
    /// The document's version is not [`STORE_VERSION`].
    BadVersion(u32),
    /// The document ended before a promised field or page.
    Truncated {
        /// What was being read when the bytes ran out.
        reading: &'static str,
    },
    /// A structural invariant does not hold (unsorted lane directory,
    /// non-ascending frame days, nonzero padding).
    Malformed {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a nevermind-store/v1 document (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported nevermind-store version {v}"),
            Self::Truncated { reading } => {
                write!(f, "store document truncated while reading {reading}")
            }
            Self::Malformed { detail } => write!(f, "malformed store document: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One retained week: lane-major values, per-lane missing bitmaps, and the
/// label bitmap. Produced by [`FeatureStore::ingest_frame`]; row order is
/// the plant's line order (row `r` is line index `r`).
#[derive(Debug, Clone, PartialEq)]
pub struct WeekFrame {
    day: u32,
    n_lines: usize,
    /// `n_lanes * n_lines` values, lane-major; missing entries hold `0.0`.
    values: Vec<f32>,
    /// `n_lanes * words` bitmap words, lane-major; a set bit means missing.
    missing: Vec<u64>,
    /// `words` bitmap words; a set bit means the row's label is positive.
    labels: Vec<u64>,
}

/// Bitmap words needed for `n` rows.
fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

#[inline]
fn bit_is_set(bits: &[u64], i: usize) -> bool {
    (bits[i / 64] >> (i % 64)) & 1 == 1
}

/// Calls `f(row)` for every set bit whose row falls in `rows`, walking
/// whole words and skipping zero words — O(set bits), not O(rows).
fn for_set_bits(bits: &[u64], rows: &core::ops::Range<usize>, mut f: impl FnMut(usize)) {
    if rows.is_empty() {
        return;
    }
    let first = rows.start / 64;
    for (w, &raw) in bits.iter().enumerate().take(rows.end.div_ceil(64)).skip(first) {
        let mut word = raw;
        if w == first {
            word &= !0u64 << (rows.start % 64);
        }
        while word != 0 {
            let row = w * 64 + word.trailing_zeros() as usize;
            if row >= rows.end {
                break;
            }
            f(row);
            word &= word - 1;
        }
    }
}

impl WeekFrame {
    /// The Saturday this frame encodes.
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Rows in the frame (the plant's population).
    pub fn n_lines(&self) -> usize {
        self.n_lines
    }

    /// Lanes in the frame.
    pub fn n_lanes(&self) -> usize {
        // With zero rows the value pages are empty for any lane count (the
        // bitmap pages too), so the lane count is then only meaningful
        // through the owning store.
        self.values.len().checked_div(self.n_lines).unwrap_or(0)
    }

    /// Borrows one lane's value page (missing entries read `0.0`; pair with
    /// [`WeekFrame::lane_missing`] or use [`WeekFrame::value`] /
    /// [`WeekFrame::lane_f64`] for the NaN-restoring view).
    pub fn lane(&self, lane: usize) -> &[f32] {
        &self.values[lane * self.n_lines..(lane + 1) * self.n_lines]
    }

    /// Borrows one lane's missing bitmap (a set bit means missing).
    pub fn lane_missing(&self, lane: usize) -> &[u64] {
        let words = words_for(self.n_lines);
        &self.missing[lane * words..(lane + 1) * words]
    }

    /// Whether `(lane, row)` was missing in the encoded week.
    #[inline]
    pub fn is_missing(&self, lane: usize, row: usize) -> bool {
        bit_is_set(self.lane_missing(lane), row)
    }

    /// The encoder-convention value at `(lane, row)`: the stored value, or
    /// `NaN` when the missing bit is set.
    #[inline]
    pub fn value(&self, lane: usize, row: usize) -> f32 {
        if self.is_missing(lane, row) {
            f32::NAN
        } else {
            self.lane(lane)[row]
        }
    }

    /// The row's label bit.
    #[inline]
    pub fn label(&self, row: usize) -> bool {
        bit_is_set(&self.labels, row)
    }

    /// All labels as the encoder's `Vec<bool>` (row order).
    pub fn labels_vec(&self) -> Vec<bool> {
        (0..self.n_lines).map(|r| self.label(r)).collect()
    }

    /// Copies rows `rows` of a lane into `out` with missing entries
    /// restored to `NaN` — the gather-scoring block fill: the value copy
    /// vectorizes and the bitmap walk touches only set bits, where the
    /// per-element [`WeekFrame::value`] path pays index arithmetic and
    /// bounds checks on every cell.
    ///
    /// # Panics
    /// Panics if `rows` exceeds the population or `out.len() != rows.len()`.
    pub fn fill_restored(&self, lane: usize, rows: core::ops::Range<usize>, out: &mut [f32]) {
        out.copy_from_slice(&self.lane(lane)[rows.clone()]);
        for_set_bits(self.lane_missing(lane), &rows, |r| out[r - rows.start] = f32::NAN);
    }

    /// Multiplies `out` element-wise by rows `rows` of a lane with missing
    /// entries treated as `NaN` (`x * NaN = NaN`, so a missing factor
    /// poisons the product exactly as the batch derive pass does) — the
    /// second factor of a product-feature block fill.
    ///
    /// # Panics
    /// Panics if `rows` exceeds the population or `out.len() != rows.len()`.
    pub fn mul_restored(&self, lane: usize, rows: core::ops::Range<usize>, out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(&self.lane(lane)[rows.clone()]) {
            *o *= v;
        }
        for_set_bits(self.lane_missing(lane), &rows, |r| out[r - rows.start] = f32::NAN);
    }

    /// One lane as `f64` samples with `NaN` restored for missing entries —
    /// the view the PSI binning consumes.
    pub fn lane_f64(&self, lane: usize) -> impl Iterator<Item = f64> + '_ {
        let values = self.lane(lane);
        let missing = self.lane_missing(lane);
        (0..self.n_lines).map(
            move |r| {
                if bit_is_set(missing, r) {
                    f64::NAN
                } else {
                    f64::from(values[r])
                }
            },
        )
    }

    /// Resident heap bytes of this frame's pages.
    pub fn resident_bytes(&self) -> usize {
        self.values.len() * 4 + (self.missing.len() + self.labels.len()) * 8
    }
}

/// The week-major SoA columnar store. See the module docs for layout and
/// format; see [`crate::BaseEncoder::encode_week_into`] and
/// [`crate::IncrementalEncoder::encode_week_into`] for the two writers.
#[derive(Debug, Clone)]
pub struct FeatureStore {
    n_lines: usize,
    /// Base-column index per lane, strictly ascending.
    cols: Vec<usize>,
    /// Encoder-config fields guarded by the binary header: a resumed trial
    /// must re-encode under the identical configuration or the stored
    /// frames would not match what it would have computed.
    horizon_days: u32,
    history_weeks: u32,
    min_history_tests: u32,
    delta_max_lookback_days: u32,
    retention: Retention,
    frames: Vec<WeekFrame>,
}

impl FeatureStore {
    /// Creates an empty store tracking the given base columns for a plant
    /// of `n_lines` lines.
    ///
    /// # Panics
    /// Panics if `cols` is not strictly ascending (lane order must be a
    /// deterministic function of the tracked column set).
    pub fn new(n_lines: usize, cols: &[usize], config: &EncoderConfig) -> Self {
        assert!(cols.windows(2).all(|w| w[0] < w[1]), "store columns must be strictly ascending");
        Self {
            n_lines,
            cols: cols.to_vec(),
            horizon_days: config.horizon_days,
            history_weeks: config.history_weeks as u32,
            min_history_tests: config.min_history_tests as u32,
            delta_max_lookback_days: config.delta_max_lookback_days,
            retention: Retention::Latest,
            frames: Vec::new(),
        }
    }

    /// Sets the retention policy. Switching to [`Retention::Latest`] drops
    /// all but the newest resident frame.
    pub fn set_retention(&mut self, retention: Retention) {
        self.retention = retention;
        if retention == Retention::Latest && self.frames.len() > 1 {
            self.frames.drain(..self.frames.len() - 1);
        }
    }

    /// The retention policy.
    pub fn retention(&self) -> Retention {
        self.retention
    }

    /// Rows per frame (the plant's population).
    pub fn n_lines(&self) -> usize {
        self.n_lines
    }

    /// Tracked base columns, one per lane, strictly ascending.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Lanes per frame.
    pub fn n_lanes(&self) -> usize {
        self.cols.len()
    }

    /// The lane tracking base column `col`, if any.
    pub fn lane_of(&self, col: usize) -> Option<usize> {
        self.cols.binary_search(&col).ok()
    }

    /// Whether the store was built under the same encoder configuration —
    /// the header guard a resumed trial checks before adopting frames.
    pub fn matches_config(&self, config: &EncoderConfig) -> bool {
        self.horizon_days == config.horizon_days
            && self.history_weeks == config.history_weeks as u32
            && self.min_history_tests == config.min_history_tests as u32
            && self.delta_max_lookback_days == config.delta_max_lookback_days
    }

    /// Resident frames, ascending by day.
    pub fn frames(&self) -> &[WeekFrame] {
        &self.frames
    }

    /// The most recently ingested frame.
    pub fn latest(&self) -> Option<&WeekFrame> {
        self.frames.last()
    }

    /// Consumes the store, yielding its frames (ascending by day) — how a
    /// resumed trial queues checkpointed weeks for adoption.
    pub fn into_frames(self) -> Vec<WeekFrame> {
        self.frames
    }

    /// Resident heap bytes across all frames.
    pub fn resident_bytes(&self) -> usize {
        self.frames.iter().map(WeekFrame::resident_bytes).sum()
    }

    /// Transposes one encoded week into a frame and retains it: values go
    /// lane-major, `NaN`s become missing bits over a `0.0`, labels pack
    /// into the label bitmap. Returns the ingested frame.
    ///
    /// The dataset's columns must be exactly [`FeatureStore::cols`] in
    /// order (what both encoders' `encode_week_into` produce).
    ///
    /// # Panics
    /// Panics if the dataset's shape does not match the store, or `day`
    /// does not advance past the newest resident frame.
    pub fn ingest_frame(&mut self, day: u32, ds: &EncodedDataset) -> &WeekFrame {
        assert_eq!(ds.data.len(), self.n_lines, "frame row count must match the plant");
        assert_eq!(ds.data.x.n_cols(), self.cols.len(), "frame must carry one column per lane");
        let frame = Self::transpose(day, self.n_lines, &ds.data.x, &ds.data.y);
        self.push_frame(frame)
    }

    /// Retains an already-built frame (e.g. one imported from a
    /// checkpoint).
    ///
    /// # Panics
    /// Panics if the frame's shape does not match the store, or its day
    /// does not advance past the newest resident frame.
    pub fn adopt_frame(&mut self, frame: WeekFrame) -> &WeekFrame {
        assert_eq!(frame.n_lines, self.n_lines, "adopted frame row count must match the plant");
        assert_eq!(
            frame.values.len(),
            self.cols.len() * self.n_lines,
            "adopted frame must carry one lane per tracked column"
        );
        self.push_frame(frame)
    }

    fn push_frame(&mut self, frame: WeekFrame) -> &WeekFrame {
        if let Some(last) = self.frames.last() {
            assert!(
                frame.day > last.day,
                "frames must be ingested in ascending day order ({} after {})",
                frame.day,
                last.day
            );
        }
        if self.retention == Retention::Latest {
            self.frames.clear();
        }
        self.frames.push(frame);
        // lint:allow(no-panic-in-lib) -- a frame was pushed on the line above
        self.frames.last().expect("frame just pushed")
    }

    fn transpose(day: u32, n_lines: usize, x: &FeatureMatrix, y: &[bool]) -> WeekFrame {
        let n_lanes = x.n_cols();
        let words = words_for(n_lines);
        let mut values = vec![0.0f32; n_lanes * n_lines];
        let mut missing = vec![0u64; n_lanes * words];
        for r in 0..n_lines {
            let row = x.row(r);
            for (l, &v) in row.iter().enumerate() {
                if v.is_nan() {
                    missing[l * words + r / 64] |= 1 << (r % 64);
                } else {
                    values[l * n_lines + r] = v;
                }
            }
        }
        let mut labels = vec![0u64; words];
        for (r, &pos) in y.iter().enumerate() {
            if pos {
                labels[r / 64] |= 1 << (r % 64);
            }
        }
        WeekFrame { day, n_lines, values, missing, labels }
    }

    /// Column metadata for the tracked lanes, drawn from the base feature
    /// space (useful for rendering and for rebuilding matrices).
    pub fn lane_meta(&self) -> Vec<FeatureMeta> {
        let (meta, _) = crate::BaseEncoder::base_meta();
        self.cols.iter().map(|&c| meta[c].clone()).collect()
    }

    // --- nevermind-store/v1 serialization ---

    /// Serializes the store as one `nevermind-store/v1` document
    /// (byte-deterministic; see the module docs for the layout).
    pub fn export(&self) -> Vec<u8> {
        let words = words_for(self.n_lines);
        let frame_bytes =
            8 + pad8(4 * self.cols.len() * self.n_lines) + 8 * self.cols.len() * words + 8 * words;
        let mut out =
            Vec::with_capacity(pad8(48 + 4 * self.cols.len()) + self.frames.len() * frame_bytes);
        out.extend_from_slice(&STORE_MAGIC);
        out.extend_from_slice(&STORE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.cols.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.n_lines as u64).to_le_bytes());
        out.extend_from_slice(&(self.frames.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.horizon_days.to_le_bytes());
        out.extend_from_slice(&self.history_weeks.to_le_bytes());
        out.extend_from_slice(&self.min_history_tests.to_le_bytes());
        out.extend_from_slice(&self.delta_max_lookback_days.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        for &c in &self.cols {
            out.extend_from_slice(&(c as u32).to_le_bytes());
        }
        pad_to8(&mut out);
        for frame in &self.frames {
            out.extend_from_slice(&frame.day.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            for &v in &frame.values {
                out.extend_from_slice(&v.to_le_bytes());
            }
            pad_to8(&mut out);
            for &w in &frame.missing {
                out.extend_from_slice(&w.to_le_bytes());
            }
            for &w in &frame.labels {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Parses a `nevermind-store/v1` document produced by
    /// [`FeatureStore::export`]. The imported store starts under
    /// [`Retention::All`] (a checkpoint's frames are all wanted).
    ///
    /// # Errors
    /// Returns [`StoreError`] when the document is not a well-formed v1
    /// store.
    pub fn import(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut r = Reader { bytes, off: 0 };
        if r.take(8, "magic")? != STORE_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = r.u32("version")?;
        if version != STORE_VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let n_lanes = r.u32("lane count")? as usize;
        let n_lines = usize::try_from(r.u64("line count")?)
            .map_err(|_| StoreError::Malformed { detail: "line count overflows usize".into() })?;
        let n_frames = r.u32("frame count")? as usize;
        let horizon_days = r.u32("horizon guard")?;
        let history_weeks = r.u32("history guard")?;
        let min_history_tests = r.u32("min-history guard")?;
        let delta_max_lookback_days = r.u32("lookback guard")?;
        let _reserved = r.u32("reserved header word")?;
        let mut cols = Vec::with_capacity(n_lanes);
        for _ in 0..n_lanes {
            cols.push(r.u32("lane directory")? as usize);
        }
        if !cols.windows(2).all(|w| w[0] < w[1]) {
            return Err(StoreError::Malformed { detail: "lane directory not ascending".into() });
        }
        r.skip_pad8("header padding")?;

        let words = words_for(n_lines);
        let mut frames = Vec::with_capacity(n_frames);
        let mut last_day: Option<u32> = None;
        for _ in 0..n_frames {
            let day = r.u32("frame day")?;
            if last_day.is_some_and(|d| day <= d) {
                return Err(StoreError::Malformed {
                    detail: format!("frame days not ascending at day {day}"),
                });
            }
            last_day = Some(day);
            let _reserved = r.u32("reserved frame word")?;
            let mut values = Vec::with_capacity(n_lanes * n_lines);
            for _ in 0..n_lanes * n_lines {
                values.push(f32::from_le_bytes(r.array4("value page")?));
            }
            r.skip_pad8("value padding")?;
            let mut missing = Vec::with_capacity(n_lanes * words);
            for _ in 0..n_lanes * words {
                missing.push(u64::from_le_bytes(r.array8("missing bitmap")?));
            }
            let mut labels = Vec::with_capacity(words);
            for _ in 0..words {
                labels.push(u64::from_le_bytes(r.array8("label bitmap")?));
            }
            for (l, lane) in values.chunks(n_lines.max(1)).enumerate().take(n_lanes) {
                for (i, &v) in lane.iter().enumerate() {
                    if v != 0.0 && bit_is_set(&missing[l * words..(l + 1) * words], i) {
                        return Err(StoreError::Malformed {
                            detail: format!("missing entry with nonzero value at lane {l} row {i}"),
                        });
                    }
                }
            }
            frames.push(WeekFrame { day, n_lines, values, missing, labels });
        }
        if r.off != bytes.len() {
            return Err(StoreError::Malformed {
                detail: format!("{} trailing bytes after the last frame", bytes.len() - r.off),
            });
        }
        Ok(Self {
            n_lines,
            cols,
            horizon_days,
            history_weeks,
            min_history_tests,
            delta_max_lookback_days,
            retention: Retention::All,
            frames,
        })
    }
}

/// Next multiple of 8.
fn pad8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

fn pad_to8(out: &mut Vec<u8>) {
    while out.len() % 8 != 0 {
        out.push(0);
    }
}

/// Bounds-checked little-endian cursor over an import document.
struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, reading: &'static str) -> Result<&'a [u8], StoreError> {
        let end = self.off.checked_add(n).ok_or(StoreError::Truncated { reading })?;
        let slice = self.bytes.get(self.off..end).ok_or(StoreError::Truncated { reading })?;
        self.off = end;
        Ok(slice)
    }

    fn array4(&mut self, reading: &'static str) -> Result<[u8; 4], StoreError> {
        let s = self.take(4, reading)?;
        Ok([s[0], s[1], s[2], s[3]])
    }

    fn array8(&mut self, reading: &'static str) -> Result<[u8; 8], StoreError> {
        let s = self.take(8, reading)?;
        Ok([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
    }

    fn u32(&mut self, reading: &'static str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.array4(reading)?))
    }

    fn u64(&mut self, reading: &'static str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.array8(reading)?))
    }

    fn skip_pad8(&mut self, reading: &'static str) -> Result<(), StoreError> {
        while self.off % 8 != 0 {
            let b = self.take(1, reading)?;
            if b[0] != 0 {
                return Err(StoreError::Malformed { detail: format!("nonzero {reading}") });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nevermind_ml::data::Dataset;

    fn tiny_dataset(
        n_rows: usize,
        cols: &[usize],
        fill: impl Fn(usize, usize) -> f32,
    ) -> EncodedDataset {
        use crate::encode::RowKey;
        use nevermind_dslsim::LineId;
        let meta: Vec<FeatureMeta> =
            cols.iter().map(|c| FeatureMeta::continuous(format!("c{c}"))).collect();
        let mut values = Vec::with_capacity(n_rows * cols.len());
        for r in 0..n_rows {
            for (j, _) in cols.iter().enumerate() {
                values.push(fill(r, j));
            }
        }
        let labels: Vec<bool> = (0..n_rows).map(|r| r % 3 == 0).collect();
        EncodedDataset {
            data: Dataset::new(FeatureMatrix::new(n_rows, meta, values), labels),
            rows: (0..n_rows).map(|r| RowKey { line: LineId(r as u32), day: 6 }).collect(),
            classes: vec![crate::FeatureClass::Basic; cols.len()],
        }
    }

    fn store_with_frame(n_rows: usize) -> FeatureStore {
        let cols = [1usize, 4, 9];
        let mut store = FeatureStore::new(n_rows, &cols, &EncoderConfig::default());
        let ds = tiny_dataset(n_rows, &cols, |r, j| {
            if (r + j) % 5 == 0 {
                f32::NAN
            } else {
                (r * 10 + j) as f32 / 3.0
            }
        });
        store.ingest_frame(6, &ds);
        store
    }

    #[test]
    fn block_fills_match_the_scalar_path_on_unaligned_ranges() {
        // The gather scorer fills word-aligned 256-row blocks, so the
        // first-word masking in `for_set_bits` only bites on unaligned
        // starts — exercise those directly against `value()`.
        let store = store_with_frame(150);
        let frame = store.latest().expect("frame ingested");
        for lane in 0..3 {
            for range in [0..150, 0..1, 149..150, 3..77, 63..65, 64..128, 65..129, 130..150, 70..70]
            {
                let mut out = vec![0.0f32; range.len()];
                frame.fill_restored(lane, range.clone(), &mut out);
                for (i, r) in range.clone().enumerate() {
                    let want = frame.value(lane, r);
                    assert_eq!(
                        out[i].to_bits(),
                        want.to_bits(),
                        "fill lane {lane} range {range:?} row {r}"
                    );
                }
                let other = (lane + 1) % 3;
                frame.mul_restored(other, range.clone(), &mut out);
                for (i, r) in range.clone().enumerate() {
                    let want = frame.value(lane, r) * frame.value(other, r);
                    assert_eq!(
                        out[i].to_bits(),
                        want.to_bits(),
                        "mul lane {lane}*{other} range {range:?} row {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn ingest_canonicalizes_nans_into_the_bitmap() {
        let store = store_with_frame(70);
        let frame = store.latest().expect("frame ingested");
        assert_eq!(frame.day(), 6);
        assert_eq!(frame.n_lanes(), 3);
        for j in 0..3 {
            for (r, &stored) in frame.lane(j).iter().enumerate() {
                let missing = (r + j) % 5 == 0;
                assert_eq!(frame.is_missing(j, r), missing, "lane {j} row {r}");
                if missing {
                    assert_eq!(stored.to_bits(), 0.0f32.to_bits(), "missing stores 0.0");
                    assert!(frame.value(j, r).is_nan(), "value() restores NaN");
                } else {
                    assert_eq!(stored, (r * 10 + j) as f32 / 3.0);
                    assert_eq!(frame.value(j, r), stored);
                }
            }
        }
        for r in 0..70 {
            assert_eq!(frame.label(r), r % 3 == 0, "label bit row {r}");
        }
    }

    #[test]
    fn lane_f64_restores_nan_for_psi_binning() {
        let store = store_with_frame(70);
        let frame = store.latest().expect("frame");
        let vals: Vec<f64> = frame.lane_f64(1).collect();
        assert_eq!(vals.len(), 70);
        for (r, v) in vals.iter().enumerate() {
            assert_eq!(v.is_nan(), (r + 1) % 5 == 0, "row {r}");
        }
    }

    #[test]
    fn retention_latest_keeps_one_frame_and_all_keeps_every() {
        let cols = [0usize, 2];
        let cfg = EncoderConfig::default();
        let ds = |day: u32| tiny_dataset(10, &cols, move |r, j| (day as usize + r + j) as f32);
        let mut latest = FeatureStore::new(10, &cols, &cfg);
        let mut all = FeatureStore::new(10, &cols, &cfg);
        all.set_retention(Retention::All);
        for day in [6u32, 13, 20] {
            latest.ingest_frame(day, &ds(day));
            all.ingest_frame(day, &ds(day));
        }
        assert_eq!(latest.frames().len(), 1);
        assert_eq!(latest.latest().map(WeekFrame::day), Some(20));
        assert_eq!(all.frames().len(), 3);
        assert!(all.resident_bytes() > latest.resident_bytes());
        // Dropping back to Latest sheds the history.
        all.set_retention(Retention::Latest);
        assert_eq!(all.frames().len(), 1);
        assert_eq!(all.latest().map(WeekFrame::day), Some(20));
    }

    #[test]
    #[should_panic(expected = "ascending day order")]
    fn rejects_rewinding_frames() {
        let cols = [0usize];
        let mut store = FeatureStore::new(4, &cols, &EncoderConfig::default());
        store.ingest_frame(13, &tiny_dataset(4, &cols, |r, _| r as f32));
        store.ingest_frame(6, &tiny_dataset(4, &cols, |r, _| r as f32));
    }

    #[test]
    fn export_import_round_trips_byte_identically() {
        let mut store = store_with_frame(70);
        store.set_retention(Retention::All);
        store.ingest_frame(13, &tiny_dataset(70, &[1, 4, 9], |r, j| (r ^ j) as f32));
        let bytes = store.export();
        assert_eq!(&bytes[..8], &STORE_MAGIC);
        assert_eq!(bytes.len() % 8, 0, "document is 8-byte padded");
        let imported = FeatureStore::import(&bytes).expect("well-formed document");
        assert_eq!(imported.cols(), store.cols());
        assert_eq!(imported.n_lines(), store.n_lines());
        assert_eq!(imported.frames().len(), store.frames().len());
        assert!(imported.matches_config(&EncoderConfig::default()));
        assert_eq!(imported.export(), bytes, "re-export must be byte-identical");
    }

    #[test]
    fn import_rejects_garbage() {
        assert_eq!(FeatureStore::import(b"not a store").err(), Some(StoreError::BadMagic));
        let mut bytes = store_with_frame(8).export();
        let whole = FeatureStore::import(&bytes).expect("valid before tampering");
        assert_eq!(whole.frames().len(), 1);
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(FeatureStore::import(&bytes), Err(StoreError::Truncated { .. })));
        let mut versioned = store_with_frame(8).export();
        versioned[8] = 9;
        assert!(matches!(FeatureStore::import(&versioned), Err(StoreError::BadVersion(9))));
        let mut trailing = store_with_frame(8).export();
        trailing.push(0);
        assert!(matches!(FeatureStore::import(&trailing), Err(StoreError::Malformed { .. })));
    }

    #[test]
    fn empty_population_store_round_trips() {
        let cols = [3usize, 7];
        let mut store = FeatureStore::new(0, &cols, &EncoderConfig::default());
        store.ingest_frame(6, &tiny_dataset(0, &cols, |_, _| 0.0));
        let bytes = store.export();
        let imported = FeatureStore::import(&bytes).expect("empty store is still a store");
        assert_eq!(imported.n_lines(), 0);
        assert_eq!(imported.frames().len(), 1);
        assert_eq!(imported.export(), bytes);
    }
}
