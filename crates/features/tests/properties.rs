//! Property-based tests for the Table-3 encoder over synthetic
//! measurement/ticket logs.

use nevermind_dslsim::ids::{CrossboxId, DslamId, LineId};
use nevermind_dslsim::measurement::{LineTest, N_METRICS};
use nevermind_dslsim::profile::ServiceProfile;
use nevermind_dslsim::ticket::{Ticket, TicketCategory};
use nevermind_dslsim::topology::Line;
use nevermind_features::encode::{BaseEncoder, EncoderConfig};
use proptest::prelude::*;

const N_LINES: usize = 6;

fn lines() -> Vec<Line> {
    (0..N_LINES as u32)
        .map(|i| Line {
            id: LineId(i),
            dslam: DslamId(0),
            crossbox: CrossboxId(0),
            loop_length_ft: 3_000.0 + 2_000.0 * f64::from(i),
            profile: ServiceProfile::ALL[i as usize % 3],
            has_bridge_tap: i % 4 == 0,
        })
        .collect()
}

/// Random sparse measurement logs: each (line, week) pair may or may not
/// have a test, with slowly varying values.
fn measurements() -> impl Strategy<Value = Vec<LineTest>> {
    prop::collection::vec((0u32..N_LINES as u32, 0u32..30, -10.0f32..10.0), 0..120).prop_map(
        |tuples| {
            let mut seen = std::collections::BTreeSet::new();
            tuples
                .into_iter()
                .filter(|(l, w, _)| seen.insert((*l, *w)))
                .map(|(l, w, v)| LineTest {
                    line: LineId(l),
                    day: w * 7 + 6,
                    values: [v; N_METRICS],
                })
                .collect()
        },
    )
}

fn tickets() -> impl Strategy<Value = Vec<Ticket>> {
    prop::collection::vec((0u32..N_LINES as u32, 0u32..220, any::<bool>()), 0..40).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (l, d, edge))| Ticket {
                id: i as u32,
                line: LineId(l),
                day: d,
                category: if edge {
                    TicketCategory::CustomerEdge
                } else {
                    TicketCategory::NonTechnical
                },
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The encoder never panics, always yields one row per (line, day),
    /// finite-or-NaN values only, and deterministic output.
    #[test]
    fn encoder_is_total_and_deterministic(
        meas in measurements(),
        tkts in tickets(),
        week in 4u32..28,
    ) {
        let lines = lines();
        let day = week * 7 + 6;
        let enc = BaseEncoder::new(&lines, &meas, &tkts, EncoderConfig::default());
        let a = enc.encode(&[day]);
        let b = enc.encode(&[day]);
        prop_assert_eq!(a.data.len(), lines.len());
        for r in 0..a.data.len() {
            for c in 0..a.data.x.n_cols() {
                let va = a.data.x.get(r, c);
                let vb = b.data.x.get(r, c);
                prop_assert!(va.is_nan() == vb.is_nan());
                if !va.is_nan() {
                    prop_assert_eq!(va, vb);
                    prop_assert!(va.is_finite());
                }
            }
            prop_assert_eq!(a.data.y[r], b.data.y[r]);
        }
    }

    /// Labels depend only on customer-edge tickets strictly after the
    /// prediction day within the horizon.
    #[test]
    fn labels_match_ticket_window(tkts in tickets(), week in 4u32..26) {
        let lines = lines();
        let day = week * 7 + 6;
        let cfg = EncoderConfig::default();
        let horizon = cfg.horizon_days;
        let enc = BaseEncoder::new(&lines, &[], &tkts, cfg);
        let ds = enc.encode(&[day]);
        for (r, key) in ds.rows.iter().enumerate() {
            let expected = tkts.iter().any(|t| {
                t.line == key.line
                    && t.category == TicketCategory::CustomerEdge
                    && t.day > day
                    && t.day <= day + horizon
            });
            prop_assert_eq!(ds.data.y[r], expected);
        }
    }

    /// The modem-off fraction is a valid proportion and equals 1 for lines
    /// with no measurements at all.
    #[test]
    fn modem_fraction_is_a_proportion(meas in measurements(), week in 6u32..28) {
        let lines = lines();
        let day = week * 7 + 6;
        let enc = BaseEncoder::new(&lines, &meas, &[], EncoderConfig::default());
        let ds = enc.encode(&[day]);
        let modem_col = ds.data.x.n_cols() - 1;
        for (r, key) in ds.rows.iter().enumerate() {
            let v = ds.data.x.get(r, modem_col);
            prop_assert!((0.0..=1.0).contains(&v), "modem fraction {v}");
            let has_any = meas.iter().any(|m| m.line == key.line && m.day <= day);
            if !has_any {
                prop_assert_eq!(v, 1.0, "all tests missed must give fraction 1");
            }
        }
    }
}
