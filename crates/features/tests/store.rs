//! Property tests for the week-major feature store: both encoders must
//! fill byte-identical stores, and the `nevermind-store/v1` wire format
//! must round-trip byte-for-byte.
//!
//! This is the store-level statement of the workspace's encoder
//! equivalence: `BaseEncoder` (batch, rebuilt from truncated logs each
//! week) and `IncrementalEncoder` (streaming, sharded) are two writers
//! for the same columnar frames, so the bytes they leave behind — values,
//! missing bitmaps, labels — must agree exactly, for every lane subset
//! and shard count.

use nevermind_dslsim::{SimConfig, SimOutput, World};
use nevermind_features::encode::{BaseEncoder, EncoderConfig};
use nevermind_features::{FeatureStore, IncrementalEncoder, Retention};
use proptest::prelude::*;

fn sim(seed: u64) -> (Vec<nevermind_dslsim::topology::Line>, SimOutput) {
    let cfg = SimConfig::small(seed);
    let world = World::generate(cfg);
    let lines = world.topology().lines.clone();
    (lines, world.run())
}

/// Distinct, sorted base-column indices drawn from the full encoder width.
fn lane_subset(picks: &[u32]) -> Vec<usize> {
    let width = BaseEncoder::base_meta().0.len();
    let mut cols: Vec<usize> = picks.iter().map(|&i| i as usize % width).collect();
    cols.sort_unstable();
    cols.dedup();
    cols
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One store filled by weekly truncated-log `BaseEncoder` runs, one by
    /// a streaming sharded `IncrementalEncoder` — identical export bytes,
    /// and those bytes survive an import → export round trip unchanged.
    #[test]
    fn both_encoders_fill_byte_identical_stores(
        seed in 0u64..1000,
        weeks in 2usize..6,
        shards in 1usize..8,
        picks in prop::collection::vec(any::<u32>(), 1..10),
    ) {
        let (lines, out) = sim(seed);
        let ecfg = EncoderConfig::default();
        let cols = lane_subset(&picks);

        let mut base_store = FeatureStore::new(lines.len(), &cols, &ecfg);
        base_store.set_retention(Retention::All);
        let mut inc_store = FeatureStore::new(lines.len(), &cols, &ecfg);
        inc_store.set_retention(Retention::All);

        let mut inc = IncrementalEncoder::new(&lines, ecfg.clone());
        let (mut m_cursor, mut t_cursor) = (0usize, 0usize);
        for day in (6..out.days).step_by(7).skip(4).take(weeks) {
            let m_end = out.measurements.partition_point(|m| m.day <= day);
            let t_end = out.tickets.partition_point(|t| t.day <= day);
            inc.ingest_sharded(
                &out.measurements[m_cursor..m_end],
                &out.tickets[t_cursor..t_end],
                shards,
            );
            (m_cursor, t_cursor) = (m_end, t_end);

            let batch = BaseEncoder::new(
                &lines,
                &out.measurements[..m_end],
                &out.tickets[..t_end],
                ecfg.clone(),
            );
            batch.encode_week_into(day, &mut base_store);
            inc.encode_week_into(day, shards, &mut inc_store);
        }

        let bytes = base_store.export();
        prop_assert_eq!(&bytes, &inc_store.export(), "encoder writers disagree");

        let reloaded = FeatureStore::import(&bytes).expect("own export must import");
        prop_assert_eq!(reloaded.export(), bytes, "round trip must be byte-stable");
    }
}

/// The missing bitmap is exactly the encoder's NaN set: a bit is set iff
/// the encoded value was NaN, `value()` restores NaN for those cells, and
/// every present cell keeps its exact bit pattern.
#[test]
fn missing_bitmap_agrees_with_encoder_nans() {
    let (lines, out) = sim(77);
    let ecfg = EncoderConfig::default();
    let width = BaseEncoder::base_meta().0.len();
    let cols: Vec<usize> = (0..width).collect();
    let enc = BaseEncoder::new(&lines, &out.measurements, &out.tickets, ecfg.clone());

    let day = 20 * 7 + 6;
    let ds = enc.encode(&[day]);
    let mut store = FeatureStore::new(lines.len(), &cols, &ecfg);
    let frame = enc.encode_week_into(day, &mut store);

    let mut nan_cells = 0usize;
    for (lane, &col) in cols.iter().enumerate() {
        for row in 0..lines.len() {
            let orig = ds.data.x.get(row, col);
            assert_eq!(
                frame.is_missing(lane, row),
                orig.is_nan(),
                "bitmap vs NaN at lane {lane} row {row}"
            );
            let got = frame.value(lane, row);
            if orig.is_nan() {
                assert!(got.is_nan(), "missing cell must read back as NaN");
                nan_cells += 1;
            } else {
                assert_eq!(got.to_bits(), orig.to_bits(), "present cell bits");
            }
        }
    }
    assert!(nan_cells > 0, "simulated logs must exercise missing cells");
    assert_eq!(frame.labels_vec(), ds.data.y);
}
