//! Maps a workspace-relative path to the lint context that decides which
//! rules apply: which crate the file belongs to and whether it is library
//! source, a test, a bench or an example.

/// Where in a crate a file lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<name>/src/**` — library (or binary) source.
    Src,
    /// `crates/<name>/tests/**` or the workspace `tests/`.
    Tests,
    /// `crates/<name>/benches/**`.
    Benches,
    /// Workspace `examples/`.
    Examples,
}

/// The lint context of one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileContext {
    /// Crate directory name (`core`, `ml`, ...); `None` for workspace-level
    /// tests and examples.
    pub crate_name: Option<String>,
    /// Directory class within the crate/workspace.
    pub kind: FileKind,
}

/// Crates whose `src` must stay panic-free: everything operational data
/// flows through. The CLI and bench harness may panic at the edge.
pub const PANIC_FREE_CRATES: &[&str] = &["core", "dslsim", "features", "ml", "obs", "lint"];

/// Crates on the scoring/ranking path, where unordered-collection iteration
/// can leak into ranked output (or make tests flaky).
pub const ORDERED_CRATES: &[&str] = &["core", "features", "ml"];

/// Crates allowed to read the wall clock: observability owns time, and the
/// CLI/bench surfaces report it. Model code must stay replayable. The
/// linter itself reports per-pass wall-clock timings for CI's lint budget.
pub const WALLCLOCK_CRATES: &[&str] = &["obs", "cli", "bench", "lint"];

/// Classifies a workspace-relative path (`/`-separated); `None` means the
/// file is out of scope (vendored stubs, build artifacts, fixtures).
pub fn classify(rel_path: &str) -> Option<FileContext> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel_path.split('/').collect();
    match parts.as_slice() {
        ["crates", krate, dir, ..] => {
            // Lint fixtures intentionally contain violations.
            if parts.contains(&"fixtures") {
                return None;
            }
            let kind = match *dir {
                "src" => FileKind::Src,
                "tests" => FileKind::Tests,
                "benches" => FileKind::Benches,
                "examples" => FileKind::Examples,
                _ => return None,
            };
            Some(FileContext { crate_name: Some((*krate).to_string()), kind })
        }
        ["tests", ..] => Some(FileContext { crate_name: None, kind: FileKind::Tests }),
        ["examples", ..] => Some(FileContext { crate_name: None, kind: FileKind::Examples }),
        _ => None,
    }
}

impl FileContext {
    /// Whether the file's crate is in `set`.
    pub fn crate_in(&self, set: &[&str]) -> bool {
        self.crate_name.as_deref().is_some_and(|c| set.contains(&c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_table() {
        let ml = classify("crates/ml/src/stump.rs").expect("in scope");
        assert_eq!(ml.crate_name.as_deref(), Some("ml"));
        assert_eq!(ml.kind, FileKind::Src);

        let t = classify("crates/dslsim/tests/properties.rs").expect("in scope");
        assert_eq!(t.kind, FileKind::Tests);

        let b = classify("crates/bench/benches/ranking.rs").expect("in scope");
        assert_eq!(b.kind, FileKind::Benches);

        let root_test = classify("tests/determinism.rs").expect("in scope");
        assert_eq!(root_test.crate_name, None);
        assert_eq!(root_test.kind, FileKind::Tests);

        let ex = classify("examples/quickstart.rs").expect("in scope");
        assert_eq!(ex.kind, FileKind::Examples);
    }

    #[test]
    fn out_of_scope_paths() {
        assert!(classify("vendor/rand/src/lib.rs").is_none());
        assert!(classify("crates/lint/tests/fixtures/bad.rs").is_none());
        assert!(classify("crates/cli/Cargo.toml").is_none());
        assert!(classify("target/debug/build/foo.rs").is_none());
    }
}
