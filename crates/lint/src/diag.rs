//! Structured diagnostics and their text/JSON renderings.

/// One finding: a rule violation (or a suppression-hygiene problem) at a
/// specific source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule identifier (kebab-case).
    pub rule: &'static str,
    /// Severity label; every shipped rule is an `error` (the gate runs with
    /// deny-warnings semantics), but the field keeps the schema honest.
    pub severity: &'static str,
    /// Human-facing explanation with the suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// `file:line:col: error[rule]: message` — the compiler-style line.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}:{}: {}[{}]: {}",
            self.file, self.line, self.col, self.severity, self.rule, self.message
        )
    }

    /// The diagnostic as one JSON object.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"severity\":{},\"message\":{}}}",
            json_string(&self.file),
            self.line,
            self.col,
            json_string(self.rule),
            json_string(self.severity),
            json_string(&self.message)
        )
    }
}

/// Escapes a string for JSON output (the tool is zero-dependency, so the
/// emitter is hand-rolled like `nevermind-obs`'s).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderings() {
        let d = Diagnostic {
            file: "crates/ml/src/x.rs".into(),
            line: 3,
            col: 9,
            rule: "no-panic-in-lib",
            severity: "error",
            message: "don't".into(),
        };
        assert_eq!(d.render_text(), "crates/ml/src/x.rs:3:9: error[no-panic-in-lib]: don't");
        let json = d.render_json();
        assert!(json.contains("\"rule\":\"no-panic-in-lib\""));
        assert!(json.contains("\"line\":3"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
