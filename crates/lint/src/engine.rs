//! Workspace walker and report assembly.

use crate::context::classify;
use crate::diag::Diagnostic;
use crate::lexer::lex;
use crate::rules::check_file;
use crate::suppress;
use std::path::{Path, PathBuf};

/// The outcome of linting a workspace.
#[derive(Debug)]
pub struct LintReport {
    /// Surviving (non-suppressed) diagnostics, sorted by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were in scope.
    pub files_scanned: usize,
    /// How many diagnostics `lint:allow` annotations suppressed.
    pub suppressed: usize,
}

impl LintReport {
    /// Whether the gate passes (no surviving diagnostics).
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Compiler-style text rendering, one line per diagnostic plus a
    /// summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_text());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} diagnostic(s), {} suppressed\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.suppressed
        ));
        out
    }

    /// One machine-readable JSON document (schema `nevermind-lint/v1`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"nevermind-lint/v1\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&d.render_json());
        }
        if !self.diagnostics.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Lints every in-scope `.rs` file under `root` (a workspace checkout).
///
/// In scope: `crates/*/{src,tests,benches}/**`, the workspace `tests/` and
/// `examples/`. Out of scope: `vendor/` (API stand-ins), `target/`, and the
/// lint crate's own `tests/fixtures/` (which contain violations on
/// purpose).
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    // Deterministic order regardless of directory-entry order.
    files.sort();

    let mut diagnostics = Vec::new();
    let mut files_scanned = 0usize;
    let mut suppressed = 0usize;
    for path in files {
        let rel = rel_path(root, &path);
        let Some(ctx) = classify(&rel) else { continue };
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
        let lexed = lex(&src);
        let raw = check_file(&rel, &ctx, &lexed);
        let (kept, n) = suppress::apply(&rel, &lexed.comments, raw);
        diagnostics.extend(kept);
        suppressed += n;
        files_scanned += 1;
    }
    diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(LintReport { diagnostics, files_scanned, suppressed })
}

/// Recursively collects `.rs` files, skipping directories that are never in
/// scope.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("failed to read entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name == "vendor" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated path (falls back to the full path when
/// `path` is not under `root`).
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Writes `contents` to `path` (used by the CLI's `--out` flag).
pub fn write_report(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("failed to write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_shape() {
        let report = LintReport {
            diagnostics: vec![Diagnostic {
                file: "crates/ml/src/x.rs".into(),
                line: 1,
                col: 2,
                rule: "seeded-rng-only",
                severity: "error",
                message: "no \"entropy\"".into(),
            }],
            files_scanned: 3,
            suppressed: 1,
        };
        let json = report.render_json();
        assert!(json.contains("\"schema\": \"nevermind-lint/v1\""));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\\\"entropy\\\""));
        let text = report.render_text();
        assert!(text.contains("crates/ml/src/x.rs:1:2"));
        assert!(text.contains("1 diagnostic(s), 1 suppressed"));
    }

    #[test]
    fn empty_report_is_clean() {
        let report = LintReport { diagnostics: vec![], files_scanned: 0, suppressed: 0 };
        assert!(report.clean());
        assert!(report.render_json().contains("\"diagnostics\": []"));
    }
}
