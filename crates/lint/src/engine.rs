//! Workspace walker, parallel frontend, semantic-pass orchestration and
//! report assembly.
//!
//! The frontend (read → lex → parse → token rules) is embarrassingly
//! parallel and runs per-file under [`std::thread::scope`], splitting the
//! sorted file list into one contiguous chunk per available core so the
//! output order — and therefore the report — stays byte-deterministic.
//! The semantic passes then run over the assembled per-crate models:
//! `lock-order` + `no-side-effects-under-lock` share one region walker
//! (reported as the `locks` pass), `nondeterminism-dataflow` walks each
//! function's statements, and `schema-drift` diffs the extracted wire
//! vocabulary against README.md/DESIGN.md.
//!
//! Timing uses `std::time::Instant` directly: the linter is a reporting
//! surface (the `lint` crate sits in `WALLCLOCK_CRATES`), and per-pass
//! wall-clock numbers feed CI's lint-budget gate.

use crate::context::classify;
use crate::diag::{json_string, Diagnostic};
use crate::flow;
use crate::lexer::lex;
use crate::rules::{check_file, rule_info};
use crate::schema;
use crate::semantic::{self, FileUnit};
use crate::suppress;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Options for a lint run.
#[derive(Debug, Default, Clone)]
pub struct LintOptions {
    /// When set, only these rules report (suppression-hygiene diagnostics
    /// always report, except `suppression-unused`, which would misfire on
    /// allows for rules outside the filter).
    pub rules: Option<BTreeSet<String>>,
}

impl LintOptions {
    /// Parses a `--rules a,b,c` filter, rejecting unknown rule names with
    /// the offending name in the error.
    pub fn with_rules(csv: &str) -> Result<LintOptions, String> {
        let mut set = BTreeSet::new();
        for raw in csv.split(',') {
            let name = raw.trim();
            if name.is_empty() {
                continue;
            }
            if rule_info(name).is_none() {
                return Err(format!(
                    "unknown rule '{name}' in --rules (run --list-rules for the valid set)"
                ));
            }
            set.insert(name.to_string());
        }
        if set.is_empty() {
            return Err("--rules names no rule".to_string());
        }
        Ok(LintOptions { rules: Some(set) })
    }

    fn keeps(&self, rule: &str) -> bool {
        match &self.rules {
            None => true,
            Some(set) => set.contains(rule),
        }
    }
}

/// Wall-clock timing of one pass.
#[derive(Debug)]
pub struct PassTiming {
    /// Pass name (`frontend`, `locks`, `nondeterminism-dataflow`,
    /// `schema-drift`).
    pub name: &'static str,
    /// Elapsed milliseconds.
    pub ms: f64,
    /// Diagnostics the pass produced (pre-suppression).
    pub diagnostics: usize,
}

/// Call-graph / lock-graph summary across all analyzed crates.
#[derive(Debug, Default)]
pub struct GraphStats {
    /// Crates with a symbol model (i.e. with `src` files in scope).
    pub crates: usize,
    /// Non-test functions walked.
    pub functions: usize,
    /// Resolved intra-crate call edges.
    pub call_edges: usize,
    /// Distinct named locks.
    pub locks: usize,
    /// Distinct lock-acquisition-order edges.
    pub lock_edges: usize,
}

/// The outcome of linting a workspace.
#[derive(Debug)]
pub struct LintReport {
    /// Surviving (non-suppressed) diagnostics, sorted by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were in scope.
    pub files_scanned: usize,
    /// How many diagnostics `lint:allow` annotations suppressed.
    pub suppressed: usize,
    /// Per-pass wall-clock timings.
    pub passes: Vec<PassTiming>,
    /// Call-graph statistics.
    pub graph: GraphStats,
    /// Total wall-clock of the run in milliseconds.
    pub wall_ms: f64,
}

impl LintReport {
    /// Whether the gate passes (no surviving diagnostics).
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Compiler-style text rendering, one line per diagnostic plus a
    /// summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_text());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} diagnostic(s), {} suppressed in {:.1}ms\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.suppressed,
            self.wall_ms,
        ));
        out
    }

    /// One machine-readable JSON document (schema `nevermind-lint/v2`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"nevermind-lint/v2\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        out.push_str(&format!("  \"wall_ms\": {:.3},\n", self.wall_ms));
        out.push_str("  \"passes\": [");
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\":{},\"ms\":{:.3},\"diagnostics\":{}}}",
                json_string(p.name),
                p.ms,
                p.diagnostics
            ));
        }
        if !self.passes.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"call_graph\": {{\"crates\":{},\"functions\":{},\"call_edges\":{},\"locks\":{},\"lock_edges\":{}}},\n",
            self.graph.crates,
            self.graph.functions,
            self.graph.call_edges,
            self.graph.locks,
            self.graph.lock_edges
        ));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&d.render_json());
        }
        if !self.diagnostics.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Lints every in-scope `.rs` file under `root` with default options.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    lint_workspace_with(root, &LintOptions::default())
}

/// Lints every in-scope `.rs` file under `root` (a workspace checkout).
///
/// In scope: `crates/*/{src,tests,benches}/**`, the workspace `tests/` and
/// `examples/`. Out of scope: `vendor/` (API stand-ins), `target/`, and the
/// lint crate's own `tests/fixtures/` (which contain violations on
/// purpose).
pub fn lint_workspace_with(root: &Path, opts: &LintOptions) -> Result<LintReport, String> {
    let run_start = Instant::now();
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    // Deterministic order regardless of directory-entry order.
    files.sort();

    // ---- frontend: read → lex → parse → token rules, parallel per file --
    let frontend_start = Instant::now();
    let slots = run_frontend(root, &files);
    let mut units: Vec<FileUnit> = Vec::new();
    let mut token_diags: Vec<Diagnostic> = Vec::new();
    let mut files_scanned = 0usize;
    for slot in slots {
        match slot {
            FrontendSlot::OutOfScope => {}
            FrontendSlot::Err(e) => return Err(e),
            FrontendSlot::Ok(unit, diags) => {
                files_scanned += 1;
                token_diags.extend(diags);
                units.push(unit);
            }
        }
    }
    let mut passes = Vec::new();
    passes.push(PassTiming {
        name: "frontend",
        ms: ms_since(frontend_start),
        diagnostics: token_diags.len(),
    });

    // ---- per-crate models + lock passes --------------------------------
    let locks_start = Instant::now();
    let mut by_crate: BTreeMap<String, Vec<&FileUnit>> = BTreeMap::new();
    for u in &units {
        if let Some(name) = &u.ctx.crate_name {
            by_crate.entry(name.clone()).or_default().push(u);
        }
    }
    let mut graph = GraphStats { crates: by_crate.len(), ..GraphStats::default() };
    let mut lock_diags: Vec<Diagnostic> = Vec::new();
    let mut models: Vec<semantic::CrateModel<'_>> = Vec::new();
    for (name, crate_units) in &by_crate {
        models.push(semantic::CrateModel::build(name, crate_units.clone()));
    }
    for model in &models {
        let analysis = semantic::analyze_locks(model);
        graph.functions += analysis.functions;
        graph.call_edges += analysis.call_edges;
        graph.locks += analysis.locks;
        graph.lock_edges += analysis.lock_edges;
        lock_diags.extend(analysis.diagnostics);
    }
    passes.push(PassTiming {
        name: "locks",
        ms: ms_since(locks_start),
        diagnostics: lock_diags.len(),
    });

    // ---- nondeterminism dataflow ---------------------------------------
    let flow_start = Instant::now();
    let mut flow_diags: Vec<Diagnostic> = Vec::new();
    for model in &models {
        flow_diags.extend(flow::analyze_flow(model));
    }
    passes.push(PassTiming {
        name: "nondeterminism-dataflow",
        ms: ms_since(flow_start),
        diagnostics: flow_diags.len(),
    });

    // ---- schema drift ---------------------------------------------------
    let schema_start = Instant::now();
    let mut docs: Vec<(String, String)> = Vec::new();
    for doc in ["README.md", "DESIGN.md"] {
        let path = root.join(doc);
        if path.is_file() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
            docs.push((doc.to_string(), text));
        }
    }
    let all_units: Vec<&FileUnit> = units.iter().collect();
    let schema_diags = schema::analyze_schema(&all_units, &docs);
    passes.push(PassTiming {
        name: "schema-drift",
        ms: ms_since(schema_start),
        diagnostics: schema_diags.len(),
    });

    // ---- filter, suppress, assemble ------------------------------------
    let mut raw: Vec<Diagnostic> = Vec::new();
    for d in token_diags.into_iter().chain(lock_diags).chain(flow_diags).chain(schema_diags) {
        if opts.keeps(d.rule) {
            raw.push(d);
        }
    }
    let mut per_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    for d in raw {
        per_file.entry(d.file.clone()).or_default().push(d);
    }
    let check_unused = opts.rules.is_none();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut suppressed = 0usize;
    for u in &units {
        let file_diags = per_file.remove(&u.rel).unwrap_or_default();
        let (kept, n) = suppress::apply(&u.rel, &u.lexed.comments, file_diags, check_unused);
        diagnostics.extend(kept);
        suppressed += n;
    }
    // Diagnostics in files without a lexed unit (doc files) pass through.
    for (_, rest) in per_file {
        diagnostics.extend(rest);
    }
    diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(LintReport {
        diagnostics,
        files_scanned,
        suppressed,
        passes,
        graph,
        wall_ms: ms_since(run_start),
    })
}

/// Per-file frontend outcome.
enum FrontendSlot {
    OutOfScope,
    Err(String),
    Ok(FileUnit, Vec<Diagnostic>),
}

/// Runs the frontend over `files`, one contiguous chunk per core under
/// `std::thread::scope`, returning results in file order.
fn run_frontend(root: &Path, files: &[PathBuf]) -> Vec<FrontendSlot> {
    let workers = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let workers = workers.min(files.len()).max(1);
    let chunk_len = files.len().div_ceil(workers);
    let mut slots: Vec<FrontendSlot> = Vec::with_capacity(files.len());
    slots.resize_with(files.len(), || FrontendSlot::OutOfScope);
    if files.is_empty() {
        return slots;
    }
    std::thread::scope(|scope| {
        let mut remaining: &mut [FrontendSlot] = &mut slots;
        let mut offset = 0usize;
        while offset < files.len() {
            let take = chunk_len.min(remaining.len());
            let (mine, rest) = remaining.split_at_mut(take);
            remaining = rest;
            let file_chunk = &files[offset..offset + take];
            scope.spawn(move || {
                for (slot, path) in mine.iter_mut().zip(file_chunk) {
                    *slot = frontend_one(root, path);
                }
            });
            offset += take;
        }
    });
    slots
}

/// The frontend for one file.
fn frontend_one(root: &Path, path: &Path) -> FrontendSlot {
    let rel = rel_path(root, path);
    let Some(ctx) = classify(&rel) else { return FrontendSlot::OutOfScope };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return FrontendSlot::Err(format!("failed to read {}: {e}", path.display())),
    };
    let lexed = lex(&src);
    let diags = check_file(&rel, &ctx, &lexed);
    let parsed = crate::parser::parse(&lexed.tokens);
    FrontendSlot::Ok(FileUnit { rel, ctx, lexed, parsed }, diags)
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1000.0
}

/// Recursively collects `.rs` files, skipping directories that are never in
/// scope.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("failed to read entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name == "vendor" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated path (falls back to the full path when
/// `path` is not under `root`).
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Writes `contents` to `path` (used by the CLI's `--out` flag).
pub fn write_report(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("failed to write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> LintReport {
        LintReport {
            diagnostics: vec![Diagnostic {
                file: "crates/ml/src/x.rs".into(),
                line: 1,
                col: 2,
                rule: "seeded-rng-only",
                severity: "error",
                message: "no \"entropy\"".into(),
            }],
            files_scanned: 3,
            suppressed: 1,
            passes: vec![
                PassTiming { name: "frontend", ms: 1.25, diagnostics: 1 },
                PassTiming { name: "locks", ms: 0.5, diagnostics: 0 },
            ],
            graph: GraphStats { crates: 2, functions: 10, call_edges: 4, locks: 3, lock_edges: 2 },
            wall_ms: 2.0,
        }
    }

    #[test]
    fn json_document_shape() {
        let report = sample_report();
        let json = report.render_json();
        assert!(json.contains("\"schema\": \"nevermind-lint/v2\""));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\\\"entropy\\\""));
        assert!(json.contains("\"passes\": ["));
        assert!(json.contains("{\"name\":\"frontend\",\"ms\":1.250,\"diagnostics\":1}"));
        assert!(json.contains(
            "\"call_graph\": {\"crates\":2,\"functions\":10,\"call_edges\":4,\"locks\":3,\"lock_edges\":2}"
        ));
        let text = report.render_text();
        assert!(text.contains("crates/ml/src/x.rs:1:2"));
        assert!(text.contains("1 diagnostic(s), 1 suppressed"));
    }

    #[test]
    fn empty_report_is_clean() {
        let report = LintReport {
            diagnostics: vec![],
            files_scanned: 0,
            suppressed: 0,
            passes: vec![],
            graph: GraphStats::default(),
            wall_ms: 0.0,
        };
        assert!(report.clean());
        assert!(report.render_json().contains("\"diagnostics\": []"));
    }

    #[test]
    fn rules_filter_parses_and_rejects_unknown() {
        let opts = LintOptions::with_rules("lock-order, schema-drift").expect("valid");
        assert!(opts.keeps("lock-order"));
        assert!(opts.keeps("schema-drift"));
        assert!(!opts.keeps("no-panic-in-lib"));
        let err = LintOptions::with_rules("lock-order,no-such-rule").expect_err("invalid");
        assert!(err.contains("no-such-rule"), "{err}");
        assert!(LintOptions::with_rules(" , ").is_err());
    }
}
