//! The `nondeterminism-dataflow` pass: intra-function taint tracking that
//! values derived from `HashMap`/`HashSet` iteration do not reach
//! trace/export/score sinks without an intervening sort.
//!
//! The `no-unordered-iteration` token rule already bans hash collections
//! outright on the scoring path; this pass covers the crates that *are*
//! allowed to use them (obs aggregates samples in a `HashMap` for good
//! reason) and checks the export discipline instead: iterate, **sort**,
//! then serialize. `Profiler::collapsed` is the canonical clean shape —
//! collect under the lock, `lines.sort()`, then render.
//!
//! Mechanics, deliberately approximate but deterministic:
//!
//! * an ident is **hash-typed** when its `let`/param type mentions
//!   `HashMap`/`HashSet`, its initializer does, or it is a lock guard over
//!   a (crate-wide unique) hash-typed field;
//! * iteration methods (`iter`, `keys`, `values`, `drain`, ...) on a
//!   hash-typed receiver make the statement's bindings **tainted**, and
//!   taint propagates to any later binding whose statement mentions a
//!   tainted ident;
//! * a statement that sorts (`sort*` call) or lands in a B-tree
//!   (`BTreeMap`/`BTreeSet` in the type or turbofish) **sanitizes**;
//! * a **sink** call (`emit`, `attr`, `push_json*`, `record_span`,
//!   `push_str`, `write!`/`writeln!`) whose arguments or receiver mention
//!   a tainted ident is a diagnostic.

use crate::context::FileKind;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::parser::{Block, Call, Op, Stmt};
use crate::semantic::CrateModel;
use std::collections::BTreeSet;

/// Iteration methods whose order is the hash map's internal order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Calls that put data on an externally visible surface: trace events,
/// JSON/collapsed exports, span records, and string/stream rendering.
const SINKS: &[&str] = &[
    "emit",
    "attr",
    "push_json_line",
    "push_json",
    "push_json_string",
    "record_span",
    "push_str",
    "write",
    "writeln",
];

/// Type names whose mention marks a value hash-typed.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Runs the pass over one crate model's `src` files.
pub fn analyze_flow(model: &CrateModel<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for fu in &model.files {
        if fu.ctx.kind != FileKind::Src {
            continue;
        }
        for f in &fu.parsed.fns {
            if f.is_test || f.name == "lock_recovering" {
                continue;
            }
            let Some(body) = f.body.as_ref() else { continue };
            let mut env = Env {
                model,
                toks: &fu.lexed.tokens,
                rel: &fu.rel,
                hashy: BTreeSet::new(),
                tainted: BTreeSet::new(),
                diags: &mut diags,
            };
            for p in &f.params {
                if HASH_TYPES.iter().any(|h| p.ty.contains(h)) {
                    env.hashy.insert(p.name.clone());
                }
            }
            env.walk(body);
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    diags
}

struct Env<'a, 'd> {
    model: &'a CrateModel<'a>,
    toks: &'a [Tok],
    rel: &'a str,
    hashy: BTreeSet<String>,
    tainted: BTreeSet<String>,
    diags: &'d mut Vec<Diagnostic>,
}

impl Env<'_, '_> {
    /// Whether `name` is hash-typed here: a local/param marked hashy, or a
    /// crate-wide unique struct field of hash type.
    fn is_hashy(&self, name: &str) -> bool {
        self.hashy.contains(name) || self.model.field_ty_mentions(name, HASH_TYPES)
    }

    /// Whether any ident token in `span` is in `set`-like predicate.
    fn span_mentions(&self, span: (usize, usize), pred: impl Fn(&str) -> bool) -> bool {
        self.toks
            .get(span.0..span.1)
            .is_some_and(|ts| ts.iter().any(|t| t.kind == TokKind::Ident && pred(&t.text)))
    }

    /// Whether an iteration call on a hash-typed receiver appears in these
    /// ops (recursing through nested blocks).
    fn has_hash_source(&self, ops: &[Op]) -> bool {
        ops.iter().any(|op| match op {
            Op::Call(c) => {
                c.is_method
                    && ITER_METHODS.contains(&c.name.as_str())
                    && c.recv.last().is_some_and(|r| self.is_hashy(r))
            }
            Op::Block(b) => b.stmts.iter().any(|s| self.has_hash_source(&s.ops)),
            Op::Str(_) => false,
        })
    }

    fn walk(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        // A sanitizing statement: sorted, or collected into an ordered map.
        let sanitized = stmt
            .let_ty
            .as_deref()
            .is_some_and(|t| t.contains("BTreeMap") || t.contains("BTreeSet"))
            || self.span_mentions(stmt.span, |id| {
                id == "BTreeMap" || id == "BTreeSet" || id.starts_with("sort")
            });

        if stmt.is_for {
            // Loop-head source or tainted mention taints the bindings
            // before the body runs.
            let head_ops: Vec<&Op> =
                stmt.ops.iter().take_while(|op| !matches!(op, Op::Block(_))).collect();
            let head_source = head_ops.iter().any(|op| {
                if let Op::Call(c) = op {
                    c.is_method
                        && ITER_METHODS.contains(&c.name.as_str())
                        && c.recv.last().is_some_and(|r| self.is_hashy(r))
                } else {
                    false
                }
            });
            let mention = self.span_mentions(stmt.span, |id| self.tainted.contains(id));
            if (head_source || mention) && !sanitized {
                for l in &stmt.lets {
                    self.tainted.insert(l.clone());
                }
            }
        }

        // Nested blocks first: inner statements establish their own
        // bindings (and taint) that the enclosing `let` decision reads.
        for op in &stmt.ops {
            if let Op::Block(b) = op {
                self.walk(b);
            }
        }

        // Hash-typed bindings: an annotation or literal `HashMap`/`HashSet`
        // mention, or an alias/guard of a hash-typed thing — but *not* an
        // iteration-derived value (`let v: Vec<_> = m.iter().collect()` is
        // tainted data, not a hash container).
        if !stmt.lets.is_empty() && !stmt.is_for {
            let ty_hashy =
                stmt.let_ty.as_deref().is_some_and(|t| HASH_TYPES.iter().any(|h| t.contains(h)));
            let init_hashy = ty_hashy
                || self.span_mentions(stmt.span, |id| HASH_TYPES.contains(&id))
                || (self.span_mentions(stmt.span, |id| self.is_hashy(id))
                    && !self.has_hash_source(&stmt.ops));
            if init_hashy {
                for l in &stmt.lets {
                    self.hashy.insert(l.clone());
                }
            }
        }

        // Sink checks on this statement's own calls.
        for op in &stmt.ops {
            if let Op::Call(c) = op {
                self.check_sink(c);
            }
        }

        // Statement-form sort: `lines.sort();` cleans the receiver.
        if stmt.lets.is_empty() {
            for op in &stmt.ops {
                if let Op::Call(c) = op {
                    if c.is_method && c.name.starts_with("sort") {
                        if let Some(r) = c.recv.last() {
                            self.tainted.remove(r);
                        }
                    }
                }
            }
        }

        // Taint propagation into bindings.
        if !stmt.is_for && !stmt.lets.is_empty() {
            let source = self.has_hash_source(&stmt.ops);
            let mention = self.span_mentions(stmt.span, |id| self.tainted.contains(id));
            if sanitized {
                for l in &stmt.lets {
                    self.tainted.remove(l);
                }
            } else if source || mention {
                for l in &stmt.lets {
                    self.tainted.insert(l.clone());
                }
            }
        }
    }

    fn check_sink(&mut self, call: &Call) {
        if !SINKS.contains(&call.name.as_str()) {
            return;
        }
        let arg_tainted = self.toks.get(call.args.0..call.args.1).is_some_and(|ts| {
            ts.iter().any(|t| t.kind == TokKind::Ident && self.tainted.contains(&t.text))
        });
        let recv_tainted = call.recv.last().is_some_and(|r| self.tainted.contains(r));
        // Direct form: `emit(m.iter().collect())` — a hash source right in
        // the argument list.
        let direct = self.toks.get(call.args.0..call.args.1).is_some_and(|ts| {
            ts.iter().enumerate().any(|(k, t)| {
                t.kind == TokKind::Ident
                    && self.is_hashy(&t.text)
                    && ts.get(k + 1).is_some_and(|d| d.is_punct('.'))
                    && ts.get(k + 2).is_some_and(|m| {
                        m.kind == TokKind::Ident && ITER_METHODS.contains(&m.text.as_str())
                    })
            })
        });
        if arg_tainted || recv_tainted || direct {
            let bang = if call.is_macro { "!" } else { "()" };
            self.diags.push(Diagnostic {
                file: self.rel.to_string(),
                line: call.line,
                col: call.col,
                rule: "nondeterminism-dataflow",
                severity: "error",
                message: format!(
                    "value derived from HashMap/HashSet iteration reaches {}{bang} without an intervening sort; sort (or collect into a BTreeMap/BTreeSet) before exporting",
                    call.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::semantic::FileUnit;

    fn run(krate: &str, src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        let unit = FileUnit {
            rel: format!("crates/{krate}/src/lib.rs"),
            ctx: FileContext { crate_name: Some(krate.to_string()), kind: FileKind::Src },
            lexed,
            parsed,
        };
        let files = vec![&unit];
        let model = CrateModel::build(krate, files);
        analyze_flow(&model)
    }

    #[test]
    fn unsorted_hash_iteration_reaching_export_is_flagged() {
        let src = r#"
            struct P { samples: Mutex<HashMap<Vec<u64>, u64>> }
            impl P {
                fn collapsed(&self) -> String {
                    let lines: Vec<(String, u64)> = {
                        let samples = lock_recovering(&self.samples);
                        samples.iter().map(|(stack, n)| (stack.join(";"), *n)).collect()
                    };
                    let mut out = String::new();
                    for (stack, n) in lines.iter() {
                        out.push_str(&stack);
                    }
                    out
                }
            }
        "#;
        let diags = run("obs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "nondeterminism-dataflow");
        assert!(diags[0].message.contains("push_str"));
    }

    #[test]
    fn sorting_before_export_is_clean() {
        let src = r#"
            struct P { samples: Mutex<HashMap<Vec<u64>, u64>> }
            impl P {
                fn collapsed(&self) -> String {
                    let mut lines: Vec<(String, u64)> = {
                        let samples = lock_recovering(&self.samples);
                        samples.iter().map(|(stack, n)| (stack.join(";"), *n)).collect()
                    };
                    lines.sort();
                    let mut out = String::new();
                    for (stack, n) in lines.iter() {
                        out.push_str(&stack);
                    }
                    out
                }
            }
        "#;
        let diags = run("obs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn param_typed_maps_taint_trace_sinks() {
        let src = r#"
            fn export(m: &HashMap<String, u64>, ev: &mut TraceEvent) {
                for (k, v) in m.iter() {
                    ev.attr(k, *v);
                }
            }
        "#;
        let diags = run("cli", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("attr"));
    }

    #[test]
    fn collecting_into_btreemap_sanitizes() {
        let src = r#"
            fn export(m: &HashMap<String, u64>, ev: &mut TraceEvent) {
                let ordered: BTreeMap<&String, &u64> = m.iter().collect();
                for (k, v) in ordered.iter() {
                    ev.attr(k, **v);
                }
            }
        "#;
        let diags = run("cli", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn direct_iteration_in_sink_args_is_flagged() {
        let src = r#"
            fn export(m: &HashSet<String>, out: &mut String) {
                out.push_str(&m.iter().next().cloned().unwrap_or_default());
            }
        "#;
        let diags = run("cli", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn btreemap_iteration_is_never_tainted() {
        let src = r#"
            fn export(m: &BTreeMap<String, u64>, out: &mut String) {
                for (k, v) in m.iter() {
                    out.push_str(k);
                }
            }
        "#;
        let diags = run("cli", src);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
