//! A small hand-rolled Rust lexer: just enough tokenization to match
//! paths, method calls and attributes without ever confusing source code
//! with the contents of string literals or comments.
//!
//! The lexer is deliberately lossy — numeric values and punctuation
//! spelling beyond single characters are irrelevant to the rules — but it
//! is *exact* about what is code and what is not: nested block comments,
//! raw strings with arbitrary `#` fences, byte strings, char literals and
//! lifetimes are all recognized, so a rule can never fire on text inside a
//! literal or a comment. String-literal *contents* are preserved verbatim
//! (escape sequences unprocessed) because the `schema-drift` pass reads
//! schema identifiers, trace kinds and metric names out of them.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `HashMap`, ...).
    Ident,
    /// A single punctuation character (`.`, `(`, `!`, `{`, ...).
    Punct(char),
    /// String, raw-string, byte-string or char literal (contents kept
    /// verbatim, delimiters and `r#` fences stripped, escapes unprocessed).
    Literal,
    /// Numeric literal (value dropped).
    Number,
    /// Lifetime (`'a`, `'static`; name dropped).
    Lifetime,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind; identifiers carry their text.
    pub kind: TokKind,
    /// Identifier text, or a string/char literal's verbatim contents
    /// (empty for punctuation, numbers and lifetimes).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

impl Tok {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment, preserved verbatim for suppression parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// Whether any code token precedes it on the same line (a trailing
    /// comment annotates its own line; a standalone one, the next line).
    pub trailing: bool,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order (block comments keep only their first line
    /// position; suppressions are line comments by convention).
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`, splitting code tokens from comments.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut last_code_line: u32 = 0;

    // Manual cursor: every branch below advances `i` and keeps line/col in
    // sync via `bump`. Closures can't borrow the counters mutably while the
    // main loop also uses them, so the bookkeeping is written out inline.
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tok_line, tok_col) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                bump!();
            }
            out.comments.push(Comment {
                text,
                line: tok_line,
                trailing: last_code_line == tok_line,
            });
            continue;
        }
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
            let mut text = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                    depth += 1;
                    text.push('/');
                    bump!();
                    text.push('*');
                    bump!();
                } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                    depth -= 1;
                    text.push('*');
                    bump!();
                    text.push('/');
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(chars[i]);
                    bump!();
                }
            }
            out.comments.push(Comment {
                text,
                line: tok_line,
                trailing: last_code_line == tok_line,
            });
            continue;
        }

        // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#, rb is
        // not legal Rust but harmless to accept.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') && chars[j] != c {
                j += 1;
            }
            let mut hashes = 0usize;
            while j < chars.len() && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            let raw = c == 'r' || (i + 1 < chars.len() && chars[i + 1] == 'r');
            if j < chars.len() && chars[j] == '"' && (raw || hashes == 0) {
                // Consume prefix up to and including the opening quote.
                while i <= j {
                    bump!();
                }
                let mut text = String::new();
                if raw {
                    // Raw string: ends at `"` followed by `hashes` hashes.
                    while i < chars.len() {
                        if chars[i] == '"'
                            && chars[i + 1..].iter().take(hashes).filter(|&&h| h == '#').count()
                                == hashes
                        {
                            bump!();
                            for _ in 0..hashes {
                                if i < chars.len() {
                                    bump!();
                                }
                            }
                            break;
                        }
                        text.push(chars[i]);
                        bump!();
                    }
                } else {
                    // Plain byte string with escapes.
                    consume_string(&chars, &mut i, &mut line, &mut col, &mut text);
                }
                out.tokens.push(Tok { kind: TokKind::Literal, text, line: tok_line, col: tok_col });
                last_code_line = line;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }

        // Plain strings.
        if c == '"' {
            bump!();
            let mut text = String::new();
            consume_string(&chars, &mut i, &mut line, &mut col, &mut text);
            out.tokens.push(Tok { kind: TokKind::Literal, text, line: tok_line, col: tok_col });
            last_code_line = line;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime = match next {
                Some(n) if n == '_' || n.is_alphabetic() => after != Some('\''),
                _ => false,
            };
            if is_lifetime {
                bump!(); // '
                while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    bump!();
                }
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text: String::new(),
                    line: tok_line,
                    col: tok_col,
                });
            } else {
                // Char literal: 'x', '\n', '\u{1F600}', '\''.
                let mut text = String::new();
                bump!(); // opening '
                while i < chars.len() {
                    if chars[i] == '\\' {
                        text.push(chars[i]);
                        bump!();
                        if i < chars.len() {
                            text.push(chars[i]);
                            bump!();
                        }
                    } else if chars[i] == '\'' {
                        bump!();
                        break;
                    } else {
                        text.push(chars[i]);
                        bump!();
                    }
                }
                out.tokens.push(Tok { kind: TokKind::Literal, text, line: tok_line, col: tok_col });
            }
            last_code_line = line;
            continue;
        }

        // Identifiers and keywords.
        if c == '_' || c.is_alphabetic() {
            let mut text = String::new();
            while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                text.push(chars[i]);
                bump!();
            }
            out.tokens.push(Tok { kind: TokKind::Ident, text, line: tok_line, col: tok_col });
            last_code_line = line;
            continue;
        }

        // Numbers (value irrelevant; `.` joins only when starting a decimal
        // part so `0..10` stays three tokens).
        if c.is_ascii_digit() {
            while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                bump!();
            }
            if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                bump!();
                while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    bump!();
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Number,
                text: String::new(),
                line: tok_line,
                col: tok_col,
            });
            last_code_line = line;
            continue;
        }

        // Everything else: single punctuation character.
        out.tokens.push(Tok {
            kind: TokKind::Punct(c),
            text: String::new(),
            line: tok_line,
            col: tok_col,
        });
        last_code_line = line;
        bump!();
    }

    out
}

/// Consumes the body of a non-raw string literal; the cursor must sit just
/// past the opening quote, and ends just past the closing quote. The body
/// (escape sequences as written, closing quote excluded) lands in `text`.
fn consume_string(chars: &[char], i: &mut usize, line: &mut u32, col: &mut u32, text: &mut String) {
    let mut bump = |i: &mut usize| {
        if chars[*i] == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
    };
    while *i < chars.len() {
        match chars[*i] {
            '\\' => {
                text.push(chars[*i]);
                bump(i);
                if *i < chars.len() {
                    text.push(chars[*i]);
                    bump(i);
                }
            }
            '"' => {
                bump(i);
                break;
            }
            c => {
                text.push(c);
                bump(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r#"
            // unwrap() in a comment must not tokenize
            /* panic!("x") in a block comment /* nested unwrap() */ either */
            let s = "calling .unwrap() inside a string";
            let r = r#inner#;
            let done = finish();
        "#;
        // `r#inner#` above is not valid Rust but exercises the `r`-prefix
        // fallthrough; what matters is that no `unwrap`/`panic` ident leaks.
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "unwrap" || t == "panic"), "{ids:?}");
        assert!(ids.iter().any(|t| t == "finish"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let x = r##\"unwrap() \"# still inside\"##; after();";
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "unwrap"), "{ids:?}");
        assert!(ids.iter().any(|t| t == "after"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let literals = lexed.tokens.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lifetimes, 2, "{:?}", lexed.tokens);
        assert_eq!(literals, 1);
    }

    #[test]
    fn escaped_quote_chars() {
        let src = r"let q = '\''; let n = '\n'; g();";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "q", "let", "n", "g"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let src = "ab\n  cd.ef()";
        let lexed = lex(src);
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        let cd = lexed.tokens.iter().find(|t| t.is_ident("cd")).expect("cd");
        assert_eq!((cd.line, cd.col), (2, 3));
        let ef = lexed.tokens.iter().find(|t| t.is_ident("ef")).expect("ef");
        assert_eq!((ef.line, ef.col), (2, 6));
    }

    #[test]
    fn trailing_vs_standalone_comments() {
        let src = "let x = 1; // trailing\n// standalone\nlet y = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn ranges_do_not_glue_numbers() {
        let src = "for i in 0..10 { f(1.5e3); }";
        let lexed = lex(src);
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "{:?}", lexed.tokens);
    }

    #[test]
    fn byte_strings_and_b_idents() {
        let src = "let s = b\"unwrap()\"; let b = before;";
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "unwrap"));
        assert!(ids.iter().any(|t| t == "before"));
    }

    fn literals(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Literal).map(|t| t.text).collect()
    }

    #[test]
    fn string_contents_are_preserved_verbatim() {
        let src = r#"let s = "nevermind-trace/v1"; let e = "a\"b\n";"#;
        assert_eq!(literals(src), vec!["nevermind-trace/v1", "a\\\"b\\n"]);
    }

    #[test]
    fn raw_string_contents_keep_inner_quotes_and_hashes() {
        // The `"#` inside must not terminate the `##`-fenced literal, and
        // the token must carry the exact inner text (no escape processing).
        let src = "let x = r##\"keep \"# this\\n\"##; done();";
        assert_eq!(literals(src), vec!["keep \"# this\\n"]);
        assert!(idents(src).iter().any(|t| t == "done"));
    }

    #[test]
    fn byte_and_raw_byte_strings_carry_contents() {
        let src = "let a = b\"bytes()\"; let c = br#\"raw \" bytes\"#; go();";
        assert_eq!(literals(src), vec!["bytes()", "raw \" bytes"]);
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "bytes"), "{ids:?}");
        assert!(ids.iter().any(|t| t == "go"));
    }

    #[test]
    fn multiline_raw_string_keeps_line_positions_in_sync() {
        let src = "let x = r#\"line one\nline two\"#;\nafter();";
        let lexed = lex(src);
        let after = lexed.tokens.iter().find(|t| t.is_ident("after")).expect("after");
        assert_eq!((after.line, after.col), (3, 1), "{:?}", lexed.tokens);
        assert_eq!(literals(src), vec!["line one\nline two"]);
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        // Depth bookkeeping: `/* a /* b */ c */` is ONE comment; code after
        // the outer close must tokenize again.
        let src = "before(); /* outer /* inner unwrap() */ tail panic!() */ after();";
        let lexed = lex(src);
        let ids: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, vec!["before", "after"], "{ids:?}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner unwrap()"));
    }

    #[test]
    fn adjacent_block_comment_openers_track_depth() {
        // `/*/` must not close anything: the `/` belongs to the body.
        let src = "/*/ still a comment */ x(); /**/ y();";
        let ids = idents(src);
        assert_eq!(ids, vec!["x", "y"], "{ids:?}");
    }

    #[test]
    fn char_literals_carry_contents() {
        let src = r"let a = 'x'; let b = '\n';";
        assert_eq!(literals(src), vec!["x", "\\n"]);
    }
}
