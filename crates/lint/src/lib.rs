//! # nevermind-lint
//!
//! Zero-dependency static analysis for the NEVERMIND workspace: a
//! hand-rolled Rust lexer and recursive-descent parser (no `syn` is
//! vendored) feeding a token-level rule engine plus four semantic passes
//! over per-crate symbol tables and call graphs. Together they enforce the
//! invariants the compiler cannot see —
//!
//! * rankings must be **bit-identical** across scoring paths, so nothing on
//!   the scoring path may iterate unordered collections or read wall
//!   clocks, and HashMap-derived values must be sorted before they reach a
//!   trace/export sink (`nondeterminism-dataflow`);
//! * the pipeline must **degrade gracefully** instead of crashing
//!   mid-dispatch, so library crates may not `unwrap`/`expect`/`panic!` on
//!   operational data and float ordering must be `total_cmp` (the NaN-AP
//!   panic class);
//! * simulated worlds must **replay** from a seed, so ambient entropy
//!   (`thread_rng`, `from_entropy`, `OsRng`) is banned everywhere;
//! * the observability plane must stay **deadlock-free and responsive**:
//!   lock acquisition order must be acyclic across the crate call graph
//!   (`lock-order`) and no I/O or unbounded serialization may run while a
//!   lock is held (`no-side-effects-under-lock`);
//! * the **wire vocabulary is a contract**: every schema string, trace-event
//!   kind and metric name in code must match the documented registry in
//!   README.md/DESIGN.md, in both directions (`schema-drift`).
//!
//! Violations that are genuinely safe are acknowledged inline — with a
//! mandatory written reason:
//!
//! ```text
//! let v = xs.first().unwrap(); // lint:allow(no-panic-in-lib) -- xs checked non-empty above
//! ```
//!
//! Run it as `nevermind lint` or `cargo run -p nevermind-lint`; `--format
//! json` emits one `nevermind-lint/v2` document for CI with per-pass
//! wall-clock timings and call-graph statistics. `--rules a,b` restricts
//! the run to the named rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod diag;
pub mod engine;
pub mod flow;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod schema;
pub mod semantic;
pub mod suppress;

pub use diag::Diagnostic;
pub use engine::{lint_workspace, lint_workspace_with, LintOptions, LintReport};
pub use rules::RULES;
