//! # nevermind-lint
//!
//! Zero-dependency static analysis for the NEVERMIND workspace: a
//! hand-rolled Rust lexer (no `syn` is vendored) plus a token-level rule
//! engine enforcing the invariants the compiler cannot see —
//!
//! * rankings must be **bit-identical** across scoring paths, so nothing on
//!   the scoring path may iterate unordered collections or read wall
//!   clocks;
//! * the pipeline must **degrade gracefully** instead of crashing
//!   mid-dispatch, so library crates may not `unwrap`/`expect`/`panic!` on
//!   operational data and float ordering must be `total_cmp` (the NaN-AP
//!   panic class);
//! * simulated worlds must **replay** from a seed, so ambient entropy
//!   (`thread_rng`, `from_entropy`, `OsRng`) is banned everywhere.
//!
//! Violations that are genuinely safe are acknowledged inline — with a
//! mandatory written reason:
//!
//! ```text
//! let v = xs.first().unwrap(); // lint:allow(no-panic-in-lib) -- xs checked non-empty above
//! ```
//!
//! Run it as `nevermind lint` or `cargo run -p nevermind-lint`; `--format
//! json` emits one `nevermind-lint/v1` document for CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod suppress;

pub use diag::Diagnostic;
pub use engine::{lint_workspace, LintReport};
pub use rules::RULES;
