//! `nevermind-lint` — standalone entry point for the workspace static
//! analysis (the `nevermind lint` subcommand wraps the same library).
//!
//! ```text
//! nevermind-lint [--root PATH] [--format text|json] [--out FILE] [--list-rules]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 when any non-suppressed
//! diagnostic survives, 2 on usage errors.

use std::path::PathBuf;

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(clean) => std::process::exit(i32::from(!clean)),
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn run(args: Vec<String>) -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut format = "text".to_string();
    let mut out_file: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--root" => root = PathBuf::from(iter.next().ok_or("--root needs a value")?),
            "--format" => format = iter.next().ok_or("--format needs a value")?,
            "--out" => out_file = Some(iter.next().ok_or("--out needs a value")?),
            "--json" => format = "json".to_string(),
            "--list-rules" => {
                for r in nevermind_lint::RULES {
                    println!("{:<26} {}", r.id, r.summary);
                }
                return Ok(true);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if format != "text" && format != "json" {
        return Err(format!("--format must be 'text' or 'json', got '{format}'"));
    }

    let report = nevermind_lint::lint_workspace(&root)?;
    let rendered = if format == "json" { report.render_json() } else { report.render_text() };
    match out_file {
        Some(path) => nevermind_lint::engine::write_report(&path, &rendered)?,
        None => print!("{rendered}"),
    }
    Ok(report.clean())
}

const USAGE: &str = "\
nevermind-lint — workspace static analysis for determinism and robustness

USAGE:
  nevermind-lint [--root PATH] [--format text|json] [--out FILE]
  nevermind-lint --list-rules

Suppress a finding inline, with a mandatory reason:
  // lint:allow(<rule>) -- <why this is safe>

Exit codes: 0 clean, 1 diagnostics found, 2 usage error.";
