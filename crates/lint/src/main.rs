//! `nevermind-lint` — standalone entry point for the workspace static
//! analysis (the `nevermind lint` subcommand wraps the same library).
//!
//! ```text
//! nevermind-lint [--root PATH] [--format text|json] [--out FILE]
//!                [--rules a,b] [--list-rules]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 when any non-suppressed
//! diagnostic survives, 2 on usage errors.

use std::path::PathBuf;

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(clean) => std::process::exit(i32::from(!clean)),
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn run(args: Vec<String>) -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut format = "text".to_string();
    let mut out_file: Option<String> = None;
    let mut opts = nevermind_lint::LintOptions::default();
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--root" => root = PathBuf::from(iter.next().ok_or("--root needs a value")?),
            "--format" => format = iter.next().ok_or("--format needs a value")?,
            "--out" => out_file = Some(iter.next().ok_or("--out needs a value")?),
            "--json" => format = "json".to_string(),
            "--rules" => {
                let csv = iter.next().ok_or("--rules needs a comma-separated rule list")?;
                opts = nevermind_lint::LintOptions::with_rules(&csv)?;
            }
            "--list-rules" => {
                for r in nevermind_lint::RULES {
                    println!("{:<26} {}", r.id, r.summary);
                }
                return Ok(true);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if format != "text" && format != "json" {
        return Err(format!("--format must be 'text' or 'json', got '{format}'"));
    }

    let report = nevermind_lint::lint_workspace_with(&root, &opts)?;
    let rendered = if format == "json" { report.render_json() } else { report.render_text() };
    match out_file {
        Some(path) => nevermind_lint::engine::write_report(&path, &rendered)?,
        None => print!("{rendered}"),
    }
    Ok(report.clean())
}

const USAGE: &str = "\
nevermind-lint — workspace static analysis for determinism and robustness

USAGE:
  nevermind-lint [--root PATH] [--format text|json] [--out FILE] [--rules a,b]
  nevermind-lint --list-rules

--rules runs only the named rules (comma-separated; unknown names are a
usage error). The suppression-unused hygiene check is skipped under a
filter, since allows for out-of-filter rules would look stale.

Suppress a finding inline, with a mandatory reason:
  // lint:allow(<rule>) -- <why this is safe>

Exit codes: 0 clean, 1 diagnostics found, 2 usage error.";
