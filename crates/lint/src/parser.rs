//! A lightweight recursive-descent parser over the token stream: just
//! enough structure for the semantic passes — items (modules, fns, impls,
//! use-decls, struct fields), statement-split function bodies, and the
//! calls/string literals inside them, all spanned back to source positions.
//!
//! The parser is deliberately approximate where precision doesn't pay:
//! closures, struct literals and match bodies all parse as nested blocks,
//! expression statements split on `;` (and on `,`/`}` at block depth), and
//! types are flattened to ident strings. It is *exact* about the things the
//! passes key on: which fn a call appears in, whether the call is a method
//! or a path call, what the receiver chain is, the token right after the
//! argument list (guard-binding vs temporary), and test scoping
//! (`#[cfg(test)]` / `#[test]` items are marked, not dropped).

use crate::lexer::{Tok, TokKind};

/// One parsed source file: every fn (at any nesting depth) plus the
/// struct-field and use-decl tables the symbol layer consumes.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All functions with bodies, in source order (nested fns included).
    pub fns: Vec<FnDef>,
    /// Named struct fields: `(field_name, flattened_type)`.
    pub fields: Vec<(String, String)>,
    /// `use` paths, `::`-joined.
    pub uses: Vec<String>,
}

/// One function definition.
#[derive(Debug)]
pub struct FnDef {
    /// The fn name.
    pub name: String,
    /// Enclosing `impl` type name, when inside an impl block.
    pub self_ty: Option<String>,
    /// Whether the fn (or an enclosing item) is `#[test]` / `#[cfg(test)]`.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared parameters (a `self` receiver appears as name `self`).
    pub params: Vec<Param>,
    /// The body. `None` for trait-method signatures.
    pub body: Option<Block>,
}

/// One fn parameter: the binding name and its flattened type text
/// (idents joined by spaces, e.g. `& Mutex < HashMap < String , u64 > >`
/// flattens to `Mutex HashMap String u64`).
#[derive(Debug)]
pub struct Param {
    /// Binding name (`self` for receivers; `_` patterns keep the first
    /// ident or are empty).
    pub name: String,
    /// Flattened type idents, space-joined.
    pub ty: String,
}

/// A `{ ... }` region: statements in order.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements (approximate split; see module docs).
    pub stmts: Vec<Stmt>,
}

/// One statement: its bindings plus the ops (calls, string literals,
/// nested blocks) encountered left to right.
#[derive(Debug, Default)]
pub struct Stmt {
    /// Names bound by `let` patterns (or `for`/`while let` bindings).
    pub lets: Vec<String>,
    /// Flattened `let` type annotation, when present.
    pub let_ty: Option<String>,
    /// Whether the bindings come from a `for ... in` loop head (loop
    /// bindings are iteration values, not lock guards).
    pub is_for: bool,
    /// Ops in source order.
    pub ops: Vec<Op>,
    /// Token index range of the whole statement (nested blocks included) —
    /// the dataflow pass scans it for ident mentions.
    pub span: (usize, usize),
}

/// One interesting thing inside a statement.
#[derive(Debug)]
pub enum Op {
    /// A call (function, method or macro).
    Call(Call),
    /// A string literal (verbatim contents).
    Str(StrLit),
    /// A nested `{ ... }` region (block expression, closure body, match
    /// body, struct literal — all treated alike).
    Block(Block),
}

/// What follows a call's closing parenthesis — distinguishes a guard that
/// lives to the end of the statement's binding (`let g = m.lock();`) from a
/// temporary dropped at the end of the statement (`m.lock().push(x)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum After {
    /// `;` — the call result is the whole initializer.
    Semi,
    /// `.` or `?` — the result is further chained.
    Chain,
    /// Anything else (operator, `)`, `,`, `}`).
    Other,
}

/// One call site.
#[derive(Debug)]
pub struct Call {
    /// Callee name (method name, fn name, or macro name).
    pub name: String,
    /// Path qualifier directly before `::name(` (`TraceEvent::new` →
    /// `TraceEvent`; multi-segment paths keep only the last segment).
    pub qual: Option<String>,
    /// Whether this is a `.name(...)` method call.
    pub is_method: bool,
    /// Receiver chain for method calls: `a.b.c.name()` → `["a","b","c"]`.
    /// Empty when the receiver is not a simple ident/field chain.
    pub recv: Vec<String>,
    /// Whether this is a `name!(...)` macro invocation.
    pub is_macro: bool,
    /// 1-based source line/column of the callee name.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Token index range of the arguments (exclusive of delimiters).
    pub args: (usize, usize),
    /// What follows the closing delimiter.
    pub after: After,
}

/// One string literal occurrence.
#[derive(Debug)]
pub struct StrLit {
    /// Verbatim contents (escapes unprocessed).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Token index in the file's token stream.
    pub tok: usize,
}

/// Parses one lexed file into the item structures above.
pub fn parse(toks: &[Tok]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut p = Parser { toks, i: 0 };
    p.items(&mut out, false, None);
    out
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
}

impl Parser<'_> {
    fn at(&self, k: usize) -> Option<&Tok> {
        self.toks.get(self.i + k)
    }

    fn is_punct(&self, k: usize, c: char) -> bool {
        self.at(k).is_some_and(|t| t.is_punct(c))
    }

    fn is_ident(&self, k: usize, name: &str) -> bool {
        self.at(k).is_some_and(|t| t.is_ident(name))
    }

    /// Consumes a run of `#[...]` attributes; true if any marks test code.
    fn attrs(&mut self) -> bool {
        let mut is_test = false;
        while self.is_punct(0, '#') && (self.is_punct(1, '[') || self.is_punct(2, '[')) {
            // `#[attr]` or `#![attr]`.
            let open = if self.is_punct(1, '[') { self.i + 1 } else { self.i + 2 };
            let Some(close) = matching(self.toks, open, '[', ']') else {
                self.i = open + 1;
                return is_test;
            };
            is_test |= attr_is_test(&self.toks[open + 1..close]);
            self.i = close + 1;
        }
        is_test
    }

    /// Skips `pub`, `pub(crate)`, `pub(super)`, `pub(in path)`.
    fn visibility(&mut self) {
        if self.is_ident(0, "pub") {
            self.i += 1;
            if self.is_punct(0, '(') {
                if let Some(close) = matching(self.toks, self.i, '(', ')') {
                    self.i = close + 1;
                }
            }
        }
    }

    /// Parses items until `}` at this nesting level (or EOF).
    fn items(&mut self, out: &mut ParsedFile, in_test: bool, self_ty: Option<&str>) {
        while self.i < self.toks.len() {
            if self.is_punct(0, '}') {
                return;
            }
            let item_test = in_test | self.attrs();
            self.visibility();
            let Some(t) = self.at(0) else { return };
            if t.kind != TokKind::Ident {
                // A stray brace group at item level (e.g. the body of an
                // unrecognized construct) is skipped whole, so its closing
                // `}` can never terminate this nesting level early.
                if t.is_punct('{') {
                    match matching(self.toks, self.i, '{', '}') {
                        Some(close) => self.i = close + 1,
                        None => self.i = self.toks.len(),
                    }
                } else {
                    self.i += 1;
                }
                continue;
            }
            // Item-level macro invocations (`thread_local! { ... }`,
            // `lazy_static! { ... }`) would otherwise leak their braces
            // into item scanning.
            if self.at(1).is_some_and(|n| n.is_punct('!')) && self.is_punct(2, '{') {
                match matching(self.toks, self.i + 2, '{', '}') {
                    Some(close) => self.i = close + 1,
                    None => self.i = self.toks.len(),
                }
                continue;
            }
            match t.text.as_str() {
                "mod" => self.item_mod(out, item_test),
                "fn" => self.item_fn(out, item_test, self_ty),
                "impl" => self.item_impl(out, item_test),
                "use" => self.item_use(out),
                "struct" => self.item_struct(out),
                "enum" | "trait" | "union" | "extern" | "macro_rules" => self.skip_braced_item(),
                "static" | "const" | "type" => {
                    // `const fn` / `static ref`-style: only skip to `;` when
                    // this really is a value/type item.
                    self.i += 1;
                    if self.is_ident(0, "fn") {
                        self.item_fn(out, item_test, self_ty);
                    } else {
                        self.skip_to_semi();
                    }
                }
                // Modifiers before `fn`: loop again, keywords will land on it.
                "unsafe" | "async" => self.i += 1,
                _ => self.i += 1,
            }
        }
    }

    fn item_mod(&mut self, out: &mut ParsedFile, in_test: bool) {
        self.i += 1; // mod
        let is_sampler_etc = self.at(0).is_some_and(|t| t.kind == TokKind::Ident);
        if is_sampler_etc {
            self.i += 1; // name
        }
        if self.is_punct(0, ';') {
            self.i += 1;
            return;
        }
        if self.is_punct(0, '{') {
            let Some(close) = matching(self.toks, self.i, '{', '}') else {
                self.i = self.toks.len();
                return;
            };
            self.i += 1;
            self.items(out, in_test, None);
            self.i = close + 1;
        }
    }

    fn item_use(&mut self, out: &mut ParsedFile) {
        self.i += 1; // use
        let mut path = Vec::new();
        while self.i < self.toks.len() && !self.is_punct(0, ';') {
            if let Some(t) = self.at(0) {
                if t.kind == TokKind::Ident {
                    path.push(t.text.clone());
                }
            }
            self.i += 1;
        }
        self.i += 1; // ;
        if !path.is_empty() {
            out.uses.push(path.join("::"));
        }
    }

    fn item_struct(&mut self, out: &mut ParsedFile) {
        self.i += 1; // struct
        self.i += 1; // name
                     // Skip generics and a possible where clause, then look at the body.
        let mut angle = 0i64;
        while self.i < self.toks.len() {
            let Some(t) = self.at(0) else { break };
            match t.kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle -= 1,
                TokKind::Punct(';') => {
                    // Unit struct or tuple struct terminator.
                    self.i += 1;
                    return;
                }
                TokKind::Punct('(') if angle == 0 => {
                    // Tuple struct: unnamed fields carry no symbol info.
                    if let Some(close) = matching(self.toks, self.i, '(', ')') {
                        self.i = close + 1;
                        continue;
                    }
                    self.i = self.toks.len();
                    return;
                }
                TokKind::Punct('{') if angle == 0 => break,
                _ => {}
            }
            self.i += 1;
        }
        let Some(close) = matching(self.toks, self.i, '{', '}') else {
            self.i = self.toks.len();
            return;
        };
        // Named fields: `name: Type,` split on `,` at depth 0.
        let mut k = self.i + 1;
        while k < close {
            // Skip field attrs and visibility.
            while self.toks[k].is_punct('#')
                && self.toks.get(k + 1).is_some_and(|t| t.is_punct('['))
            {
                match matching(self.toks, k + 1, '[', ']') {
                    Some(c) => k = c + 1,
                    None => break,
                }
            }
            if self.toks[k].is_ident("pub") {
                k += 1;
                if self.toks.get(k).is_some_and(|t| t.is_punct('(')) {
                    if let Some(c) = matching(self.toks, k, '(', ')') {
                        k = c + 1;
                    }
                }
            }
            let name = match self.toks.get(k) {
                Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                _ => {
                    k += 1;
                    continue;
                }
            };
            k += 1;
            if !self.toks.get(k).is_some_and(|t| t.is_punct(':')) {
                continue;
            }
            k += 1;
            // Flatten the type up to the next `,` at depth 0.
            let mut depth = 0i64;
            let mut ty = Vec::new();
            while k < close {
                let t = &self.toks[k];
                match t.kind {
                    TokKind::Punct('<') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct('>') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                    TokKind::Punct(',') if depth == 0 => break,
                    TokKind::Ident => ty.push(t.text.clone()),
                    _ => {}
                }
                k += 1;
            }
            k += 1; // ,
            out.fields.push((name, ty.join(" ")));
        }
        self.i = close + 1;
    }

    fn item_impl(&mut self, out: &mut ParsedFile, in_test: bool) {
        let start = self.i;
        self.i += 1; // impl
                     // Header runs to the first `{` outside angle brackets.
        let mut angle = 0i64;
        let mut body = None;
        while self.i < self.toks.len() {
            let Some(t) = self.at(0) else { break };
            match t.kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle -= 1,
                TokKind::Punct('{') if angle <= 0 => {
                    body = Some(self.i);
                    break;
                }
                TokKind::Punct(';') => {
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
        let Some(body) = body else {
            self.i = self.toks.len();
            return;
        };
        // Self type: first ident after `for` (trait impls), else first
        // ident after `impl` and its generics.
        let header = &self.toks[start + 1..body];
        let mut self_ty = None;
        let mut depth = 0i64;
        let mut after_for = false;
        for t in header {
            match t.kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => depth -= 1,
                TokKind::Ident if t.text == "for" && depth == 0 => after_for = true,
                TokKind::Ident if t.text == "where" && depth == 0 => break,
                TokKind::Ident if depth == 0 => {
                    if after_for {
                        self_ty = Some(t.text.clone());
                        break;
                    }
                    if self_ty.is_none() {
                        self_ty = Some(t.text.clone());
                    }
                }
                _ => {}
            }
        }
        // `impl Trait for Type` keeps the *last* candidate: re-scan found it
        // above — when `for` appeared, the ident right after it won.
        let Some(close) = matching(self.toks, body, '{', '}') else {
            self.i = self.toks.len();
            return;
        };
        self.i = body + 1;
        self.items(out, in_test, self_ty.as_deref());
        self.i = close + 1;
    }

    /// Skips an item that ends at a matching `{ ... }` (or `;`).
    fn skip_braced_item(&mut self) {
        while self.i < self.toks.len() {
            if self.is_punct(0, ';') {
                self.i += 1;
                return;
            }
            if self.is_punct(0, '{') {
                match matching(self.toks, self.i, '{', '}') {
                    Some(close) => self.i = close + 1,
                    None => self.i = self.toks.len(),
                }
                return;
            }
            self.i += 1;
        }
    }

    fn skip_to_semi(&mut self) {
        let mut depth = 0i64;
        while self.i < self.toks.len() {
            let Some(t) = self.at(0) else { break };
            match t.kind {
                TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(';') if depth == 0 => {
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    fn item_fn(&mut self, out: &mut ParsedFile, is_test: bool, self_ty: Option<&str>) {
        let fn_line = self.at(0).map_or(0, |t| t.line);
        self.i += 1; // fn
        let name = match self.at(0) {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => return,
        };
        self.i += 1;
        // Generics between name and `(` contain no parens.
        while self.i < self.toks.len() && !self.is_punct(0, '(') {
            if self.is_punct(0, '{') || self.is_punct(0, ';') {
                return; // malformed; bail without consuming the brace
            }
            self.i += 1;
        }
        let Some(params_close) = matching(self.toks, self.i, '(', ')') else {
            self.i = self.toks.len();
            return;
        };
        let params = parse_params(&self.toks[self.i + 1..params_close], self_ty);
        self.i = params_close + 1;
        // Return type / where clause: run to the body `{` or a `;` (trait
        // signature). `->` lexes as `-` `>`, so track angle depth of `<`
        // minus bare `>` conservatively via paren/bracket only — return
        // types never contain bare `{` before the body.
        while self.i < self.toks.len() && !self.is_punct(0, '{') && !self.is_punct(0, ';') {
            self.i += 1;
        }
        if self.is_punct(0, ';') {
            self.i += 1;
            out.fns.push(FnDef {
                name,
                self_ty: self_ty.map(str::to_string),
                is_test,
                line: fn_line,
                params,
                body: None,
            });
            return;
        }
        if !self.is_punct(0, '{') {
            out.fns.push(FnDef {
                name,
                self_ty: self_ty.map(str::to_string),
                is_test,
                line: fn_line,
                params,
                body: None,
            });
            return;
        }
        let body = self.block(out, is_test, self_ty);
        out.fns.push(FnDef {
            name,
            self_ty: self_ty.map(str::to_string),
            is_test,
            line: fn_line,
            params,
            body: Some(body),
        });
    }

    /// Parses a `{ ... }` region; the cursor sits on the opening brace and
    /// ends just past the matching close. Nested `fn` items are hoisted
    /// into `out` as their own definitions.
    fn block(&mut self, out: &mut ParsedFile, in_test: bool, self_ty: Option<&str>) -> Block {
        let Some(close) = matching(self.toks, self.i, '{', '}') else {
            self.i = self.toks.len();
            return Block::default();
        };
        self.i += 1; // {
        let mut block = Block::default();
        while self.i < close {
            // Nested items inside bodies: local fns get hoisted; local use
            // decls are skipped.
            if self.is_ident(0, "fn") {
                self.item_fn(out, in_test, self_ty);
                continue;
            }
            if self.is_ident(0, "use") {
                self.skip_to_semi();
                continue;
            }
            if self.is_punct(0, '#') && self.is_punct(1, '[') {
                self.attrs();
                continue;
            }
            if self.is_punct(0, ';') || self.is_punct(0, ',') {
                self.i += 1;
                continue;
            }
            let start = self.i;
            let mut stmt = self.stmt(out, close, in_test, self_ty);
            stmt.span = (start, self.i);
            block.stmts.push(stmt);
        }
        self.i = close + 1;
        block
    }

    /// Parses one statement: optional `let`/`for` bindings, then a linear
    /// op scan to the statement end (`;`/`,` at depth 0, or the block
    /// close). Nested braces recurse as blocks.
    fn stmt(
        &mut self,
        out: &mut ParsedFile,
        limit: usize,
        in_test: bool,
        self_ty: Option<&str>,
    ) -> Stmt {
        let mut stmt = Stmt::default();

        if self.is_ident(0, "let") {
            self.i += 1;
            self.let_bindings(&mut stmt, limit);
        } else if self.is_ident(0, "for") {
            stmt.is_for = true;
            self.i += 1;
            // Bindings up to `in` at depth 0.
            let mut depth = 0i64;
            while self.i < limit {
                let Some(t) = self.at(0) else { break };
                match t.kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                    TokKind::Ident if depth == 0 && t.text == "in" => {
                        self.i += 1;
                        break;
                    }
                    TokKind::Ident if t.text != "mut" && t.text != "ref" && t.text != "_" => {
                        stmt.lets.push(t.text.clone());
                    }
                    _ => {}
                }
                self.i += 1;
            }
        } else if self.is_ident(0, "while") && self.is_ident(1, "let") {
            self.i += 2;
            self.let_bindings(&mut stmt, limit);
        } else if (self.is_ident(0, "if") && self.is_ident(1, "let"))
            || (self.is_ident(0, "else") && self.is_ident(1, "if") && self.is_ident(2, "let"))
        {
            // `if let PAT = expr {` — bindings are block-local but the
            // over-approximation (statement-scoped) is harmless here.
            self.i += if self.is_ident(0, "if") { 2 } else { 3 };
            self.let_bindings(&mut stmt, limit);
        }

        // Expression scan.
        let mut depth = 0i64;
        while self.i < limit {
            let Some(t) = self.at(0) else { break };
            match t.kind {
                TokKind::Punct(';') | TokKind::Punct(',') if depth == 0 => {
                    self.i += 1;
                    return stmt;
                }
                TokKind::Punct('(') | TokKind::Punct('[') => {
                    depth += 1;
                    self.i += 1;
                }
                TokKind::Punct(')') | TokKind::Punct(']') => {
                    depth -= 1;
                    self.i += 1;
                }
                TokKind::Punct('{') => {
                    let inner = self.block(out, in_test, self_ty);
                    stmt.ops.push(Op::Block(inner));
                    if depth == 0 {
                        // Block expression at statement level: continue only
                        // through chains and else-branches.
                        if self.is_punct(0, ';') {
                            self.i += 1;
                            return stmt;
                        }
                        if self.is_ident(0, "else") {
                            continue;
                        }
                        if self.is_punct(0, '.') || self.is_punct(0, '?') {
                            continue;
                        }
                        return stmt;
                    }
                }
                TokKind::Literal => {
                    stmt.ops.push(Op::Str(StrLit {
                        text: t.text.clone(),
                        line: t.line,
                        col: t.col,
                        tok: self.i,
                    }));
                    self.i += 1;
                }
                TokKind::Ident => {
                    let is_fn_kw = t.text == "fn";
                    if let Some(call) = self.call_at() {
                        // Step *into* the arguments so nested calls and
                        // literals register as later ops in this stmt.
                        let brace_args = self.toks[call.args.0 - 1].is_punct('{');
                        stmt.ops.push(Op::Call(call));
                        if brace_args {
                            // Macro with `{ ... }` args: recurse as a block
                            // so brace matching stays consistent.
                            self.i -= 1; // back onto `{`
                            let inner = self.block(out, in_test, self_ty);
                            stmt.ops.push(Op::Block(inner));
                        } else {
                            // The cursor sits just past the opening `(`/`[`;
                            // account for it so the matching close balances.
                            depth += 1;
                        }
                    } else if is_fn_kw {
                        self.item_fn(out, in_test, self_ty);
                    } else {
                        self.i += 1;
                    }
                }
                _ => self.i += 1,
            }
        }
        stmt
    }

    /// Consumes `PAT [: TY] =` after a `let`, recording binding names and
    /// the flattened type annotation. Leaves the cursor on the initializer
    /// expression (or the statement terminator for `let x;`).
    fn let_bindings(&mut self, stmt: &mut Stmt, limit: usize) {
        let mut depth = 0i64;
        while self.i < limit {
            let Some(t) = self.at(0) else { break };
            match t.kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(':') if depth == 0 => {
                    self.i += 1;
                    stmt.let_ty = Some(self.flatten_ty(limit));
                    continue;
                }
                TokKind::Punct('=') if depth == 0 => {
                    self.i += 1;
                    return;
                }
                TokKind::Punct(';') if depth == 0 => return,
                TokKind::Punct('{') if depth == 0 => return, // if/while let body
                TokKind::Ident
                    if !matches!(t.text.as_str(), "mut" | "ref" | "_" | "Some" | "Ok" | "Err") =>
                {
                    stmt.lets.push(t.text.clone());
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Flattens a type annotation (cursor just past `:`) up to the `=` or
    /// statement end at depth 0, angle-bracket aware.
    fn flatten_ty(&mut self, limit: usize) -> String {
        let mut depth = 0i64;
        let mut ty = Vec::new();
        while self.i < limit {
            let Some(t) = self.at(0) else { break };
            match t.kind {
                TokKind::Punct('<') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct('>') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct('=') | TokKind::Punct(';') | TokKind::Punct('{') if depth <= 0 => {
                    break;
                }
                TokKind::Ident => ty.push(t.text.clone()),
                _ => {}
            }
            self.i += 1;
        }
        ty.join(" ")
    }

    /// If the cursor sits on a call's callee ident, builds the [`Call`] and
    /// advances just past the opening delimiter (so the argument tokens are
    /// scanned as ops too). Returns `None` for non-call idents.
    fn call_at(&mut self) -> Option<Call> {
        let t = self.at(0)?;
        if t.kind != TokKind::Ident {
            return None;
        }
        // Keyword idents are never callees.
        if matches!(
            t.text.as_str(),
            "if" | "else" | "match" | "while" | "for" | "loop" | "return" | "let" | "move" | "in"
        ) {
            return None;
        }
        let (is_macro, open_at) = if self.is_punct(1, '!')
            && (self.is_punct(2, '(') || self.is_punct(2, '[') || self.is_punct(2, '{'))
        {
            (true, self.i + 2)
        } else if self.is_punct(1, '(') {
            (false, self.i + 1)
        } else if self.is_punct(1, ':') && self.is_punct(2, ':') && self.is_punct(3, '<') {
            // Turbofish: `collect::<Vec<_>>()`.
            let close_angle = matching(self.toks, self.i + 3, '<', '>')?;
            if !self.toks.get(close_angle + 1).is_some_and(|t| t.is_punct('(')) {
                return None;
            }
            (false, close_angle + 1)
        } else {
            return None;
        };
        let open_char = match self.toks[open_at].kind {
            TokKind::Punct(c) => c,
            _ => return None,
        };
        let close_char = match open_char {
            '(' => ')',
            '[' => ']',
            _ => '}',
        };
        let close = matching(self.toks, open_at, open_char, close_char)?;
        let after = match self.toks.get(close + 1) {
            Some(t) if t.is_punct(';') => After::Semi,
            Some(t) if t.is_punct('.') || t.is_punct('?') => After::Chain,
            _ => After::Other,
        };

        let prev = self.i.checked_sub(1).map(|k| &self.toks[k]);
        let is_method = prev.is_some_and(|p| p.is_punct('.'));
        let mut qual = None;
        if !is_method
            && self.i >= 3
            && self.toks[self.i - 1].is_punct(':')
            && self.toks[self.i - 2].is_punct(':')
            && self.toks[self.i - 3].kind == TokKind::Ident
        {
            qual = Some(self.toks[self.i - 3].text.clone());
        }
        // Receiver chain for `a.b.c.name(...)`.
        let mut recv = Vec::new();
        if is_method {
            let mut k = self.i - 1; // the `.`
            loop {
                if k == 0 {
                    break;
                }
                let before = &self.toks[k - 1];
                if before.kind == TokKind::Ident {
                    recv.push(before.text.clone());
                    if k >= 2 && self.toks[k - 2].is_punct('.') {
                        k -= 2;
                        continue;
                    }
                }
                break;
            }
            recv.reverse();
        }

        let call = Call {
            name: t.text.clone(),
            qual,
            is_method,
            recv,
            is_macro,
            line: t.line,
            col: t.col,
            args: (open_at + 1, close),
            after,
        };
        self.i = open_at + 1;
        Some(call)
    }
}

/// Splits a parameter list on `,` at depth 0 into `(name, type)` pairs.
fn parse_params(toks: &[Tok], self_ty: Option<&str>) -> Vec<Param> {
    let mut params = Vec::new();
    let mut k = 0usize;
    while k < toks.len() {
        // One parameter: pattern idents up to `:`, then the flattened type
        // up to `,` at depth 0.
        let mut name = String::new();
        let mut is_self = false;
        let mut depth = 0i64;
        while k < toks.len() {
            let t = &toks[k];
            match t.kind {
                TokKind::Punct('<') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct('>') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(':') if depth == 0 => {
                    k += 1;
                    break;
                }
                TokKind::Punct(',') if depth == 0 => break,
                TokKind::Ident if t.text == "self" => {
                    is_self = true;
                    name = "self".to_string();
                }
                TokKind::Ident if name.is_empty() && t.text != "mut" && t.text != "ref" => {
                    name = t.text.clone();
                }
                _ => {}
            }
            k += 1;
        }
        let mut ty = Vec::new();
        let mut depth = 0i64;
        while k < toks.len() {
            let t = &toks[k];
            match t.kind {
                TokKind::Punct('<') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct('>') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(',') if depth == 0 => break,
                TokKind::Ident => ty.push(t.text.clone()),
                _ => {}
            }
            k += 1;
        }
        k += 1; // ,
        if !name.is_empty() {
            let ty = if is_self { self_ty.unwrap_or("").to_string() } else { ty.join(" ") };
            params.push(Param { name, ty });
        }
    }
    params
}

/// Exact `cfg(test)` or bare `test` attribute bodies only (mirrors
/// `rules::attr_is_test`; kept local so the parser stays standalone).
fn attr_is_test(body: &[Tok]) -> bool {
    match body {
        [t] => t.is_ident("test"),
        [c, open, t, close] => {
            c.is_ident("cfg") && open.is_punct('(') && t.is_ident("test") && close.is_punct(')')
        }
        _ => false,
    }
}

/// Index of the token closing the delimiter opened at `open_idx`.
pub(crate) fn matching(toks: &[Tok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// The last path-segment ident at depth 0 inside a token range — used to
/// name a lock from its mutex expression (`&self.ring` → `ring`,
/// `&stack.frames` → `frames`, `map` → `map`).
pub fn last_path_ident(toks: &[Tok], range: (usize, usize)) -> Option<String> {
    let mut depth = 0i64;
    let mut last = None;
    for t in toks.get(range.0..range.1)?.iter() {
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => depth -= 1,
            TokKind::Ident if depth == 0 => last = Some(t.text.clone()),
            _ => {}
        }
    }
    last
}

/// The leading simple path of a call-argument range (`&self.samples` →
/// `["self", "samples"]`), or empty when the expression is not a plain
/// (referenced) ident/field chain.
pub fn arg_path(toks: &[Tok], range: (usize, usize)) -> Vec<String> {
    let mut path = Vec::new();
    let Some(slice) = toks.get(range.0..range.1) else { return path };
    let mut expect_ident = true;
    for t in slice {
        match t.kind {
            TokKind::Punct('&') | TokKind::Punct('*') if path.is_empty() => {}
            TokKind::Ident if expect_ident && t.text != "mut" => {
                path.push(t.text.clone());
                expect_ident = false;
            }
            TokKind::Punct('.') if !expect_ident => expect_ident = true,
            _ => return Vec::new(),
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src).tokens)
    }

    fn find<'a>(pf: &'a ParsedFile, name: &str) -> &'a FnDef {
        pf.fns.iter().find(|f| f.name == name).unwrap_or_else(|| panic!("fn {name} not parsed"))
    }

    fn calls(block: &Block, out: &mut Vec<String>) {
        for s in &block.stmts {
            for op in &s.ops {
                match op {
                    Op::Call(c) => out.push(c.name.clone()),
                    Op::Block(b) => calls(b, out),
                    Op::Str(_) => {}
                }
            }
        }
    }

    #[test]
    fn fns_impls_and_params() {
        let src = r"
            impl Registry {
                pub fn counter(&self, name: &str) -> Counter { self.shard(name).get() }
            }
            fn free(map: &Mutex<HashMap<String, u64>>) {}
        ";
        let pf = parse_src(src);
        let c = find(&pf, "counter");
        assert_eq!(c.self_ty.as_deref(), Some("Registry"));
        assert_eq!(c.params.len(), 2);
        assert_eq!(c.params[0].name, "self");
        assert_eq!(c.params[1].name, "name");
        let f = find(&pf, "free");
        assert_eq!(f.params[0].ty, "Mutex HashMap String u64");
    }

    #[test]
    fn trait_impl_self_type_follows_for() {
        let src = "impl Default for Gauge { fn default() -> Self { Gauge::new() } }";
        let pf = parse_src(src);
        assert_eq!(find(&pf, "default").self_ty.as_deref(), Some("Gauge"));
        let generic = "impl<T> From<T> for Wrapper { fn from(t: T) -> Self { Wrapper(t) } }";
        let pf = parse_src(generic);
        assert_eq!(find(&pf, "from").self_ty.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn calls_record_shape_and_after_token() {
        let src = r#"
            fn f(&self) {
                let g = lock_recovering(&self.ring);
                g.push_back(ev);
                TraceEvent::new("score").attr("rank", 1);
            }
        "#;
        let pf = parse_src(src);
        let body = find(&pf, "f").body.as_ref().expect("body");
        let s0 = &body.stmts[0];
        assert_eq!(s0.lets, vec!["g"]);
        let Op::Call(lock) = &s0.ops[0] else { panic!("{s0:?}") };
        assert_eq!(lock.name, "lock_recovering");
        assert!(!lock.is_method);
        assert_eq!(lock.after, After::Semi);
        let Op::Call(push) = &body.stmts[1].ops[0] else { panic!() };
        assert!(push.is_method);
        assert_eq!(push.recv, vec!["g"]);
        let Op::Call(new) = &body.stmts[2].ops[0] else { panic!() };
        assert_eq!(new.qual.as_deref(), Some("TraceEvent"));
        assert_eq!(new.after, After::Chain);
    }

    #[test]
    fn nested_blocks_and_macro_args_are_scanned() {
        let src = r#"
            fn f(out: &mut String) {
                let v = { compute(1) };
                write!(out, "{}", render(v)).ok();
                items.iter().map(|x| { shape(x) }).collect::<Vec<_>>();
            }
        "#;
        let pf = parse_src(src);
        let mut seen = Vec::new();
        calls(find(&pf, "f").body.as_ref().expect("body"), &mut seen);
        for want in ["compute", "write", "render", "iter", "map", "shape", "collect"] {
            assert!(seen.iter().any(|c| c == want), "missing {want} in {seen:?}");
        }
    }

    #[test]
    fn test_items_are_marked_not_dropped() {
        let src = r"
            fn prod() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn t() {}
            }
        ";
        let pf = parse_src(src);
        assert!(!find(&pf, "prod").is_test);
        assert!(find(&pf, "helper").is_test);
        assert!(find(&pf, "t").is_test);
    }

    #[test]
    fn struct_fields_flatten_types() {
        let src = r"
            pub struct Profiler {
                threads: Mutex<Vec<Arc<SharedStack>>>,
                samples: Mutex<HashMap<Vec<&'static str>, u64>>,
            }
            struct Unit;
            struct Tuple(u32, u32);
        ";
        let pf = parse_src(src);
        assert_eq!(pf.fields.len(), 2, "{:?}", pf.fields);
        assert_eq!(pf.fields[0].0, "threads");
        assert!(pf.fields[1].1.contains("HashMap"), "{:?}", pf.fields);
    }

    #[test]
    fn for_loops_mark_loop_bindings() {
        let src = "fn f(m: &BTreeMap<u32, u32>) { for (k, v) in m.iter() { use_it(k, v); } }";
        let pf = parse_src(src);
        let body = find(&pf, "f").body.as_ref().expect("body");
        let s0 = &body.stmts[0];
        assert!(s0.is_for);
        assert_eq!(s0.lets, vec!["k", "v"]);
        let Op::Call(iter) = &s0.ops[0] else { panic!("{s0:?}") };
        assert_eq!(iter.name, "iter");
        assert_eq!(iter.recv, vec!["m"]);
    }

    #[test]
    fn lock_name_helpers() {
        let lexed = lex("lock_recovering(&self.ring)");
        let toks = &lexed.tokens;
        // args range: past `(` to before `)`.
        assert_eq!(last_path_ident(toks, (2, toks.len() - 1)).as_deref(), Some("ring"));
        assert_eq!(arg_path(toks, (2, toks.len() - 1)), vec!["self", "ring"]);
        let call = lex("f(a.b(), c)");
        assert!(arg_path(&call.tokens, (2, call.tokens.len() - 1)).is_empty());
    }

    #[test]
    fn item_level_macro_braces_do_not_end_item_scanning() {
        // Regression: `thread_local! { ... }` used to leak its `{ ... }`
        // into item scanning, whose closing brace then terminated the
        // whole level — every item after the macro was dropped.
        let src = r"
            fn before() {}
            thread_local! {
                static STACK: std::cell::OnceCell<Arc<SharedStack>> =
                    const { std::cell::OnceCell::new() };
            }
            fn after() { lock_recovering(&self.frames).pop(); }
            mod inner {
                thread_local! { static T: u32 = 0; }
                fn in_mod() {}
            }
        ";
        let pf = parse_src(src);
        let names: Vec<&str> = pf.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["before", "after", "in_mod"], "{names:?}");
    }

    #[test]
    fn drop_and_temporaries() {
        let src = r"
            fn f(&self) {
                lock_recovering(&self.worker).take();
                drop(samples);
            }
        ";
        let pf = parse_src(src);
        let body = find(&pf, "f").body.as_ref().expect("body");
        let Op::Call(lock) = &body.stmts[0].ops[0] else { panic!() };
        assert_eq!(lock.after, After::Chain);
        assert!(body.stmts[0].lets.is_empty());
        let Op::Call(d) = &body.stmts[1].ops[0] else { panic!() };
        assert_eq!(d.name, "drop");
    }
}
