//! The rule set: token-level matchers for the determinism and robustness
//! invariants this workspace depends on, each born from a past (or latent)
//! bug class.

use crate::context::{FileContext, FileKind, ORDERED_CRATES, PANIC_FREE_CRATES, WALLCLOCK_CRATES};
use crate::diag::Diagnostic;
use crate::lexer::{Lexed, Tok, TokKind};

/// Static description of one rule, for `--list-rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Kebab-case identifier used in output and `lint:allow(...)`.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every enforceable rule, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-panic-in-lib",
        summary: "library crates must not unwrap/expect/panic on operational data",
    },
    RuleInfo {
        id: "no-unordered-iteration",
        summary: "scoring-path crates must not use HashMap/HashSet (iteration order can leak into rankings)",
    },
    RuleInfo {
        id: "total-cmp-for-floats",
        summary: "float ordering must use total_cmp, not partial_cmp (NaN panics)",
    },
    RuleInfo {
        id: "no-wallclock-in-model",
        summary: "model code must not read wall clocks (Instant/SystemTime); time belongs to obs/cli/bench",
    },
    RuleInfo {
        id: "seeded-rng-only",
        summary: "all randomness must flow from explicit seeds (no thread_rng/from_entropy/OsRng)",
    },
    RuleInfo {
        id: "no-poisoning-lock-unwrap",
        summary: "use a poisoning-recovering lock helper instead of .lock().unwrap()",
    },
    RuleInfo {
        id: "trace-event-fields-are-static",
        summary: "trace event field names (.attr(...)) must be string literals, not runtime-formatted",
    },
    RuleInfo {
        id: "no-blocking-in-sampler",
        summary: "profiler sampler regions (`mod sampler`) must not touch the metrics registry or allocate per sample",
    },
    RuleInfo {
        id: "lock-order",
        summary: "lock acquisition order must be acyclic across the crate call graph (deadlock risk)",
    },
    RuleInfo {
        id: "no-side-effects-under-lock",
        summary: "obs code must not do I/O or unbounded serialization while holding a lock",
    },
    RuleInfo {
        id: "schema-drift",
        summary: "wire schemas, trace kinds and metric names in code must match the documented registry",
    },
    RuleInfo {
        id: "nondeterminism-dataflow",
        summary: "HashMap/HashSet iteration output must be sorted before reaching trace/export/score sinks",
    },
];

/// Returns the rule table entry for `id`, if any.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Runs every applicable rule over one lexed file, returning diagnostics in
/// source order. `rel_path` is workspace-relative with `/` separators.
pub fn check_file(rel_path: &str, ctx: &FileContext, lexed: &Lexed) -> Vec<Diagnostic> {
    let toks = &lexed.tokens;
    let test_ranges = cfg_test_ranges(toks);
    let in_test_code = |i: usize| -> bool { test_ranges.iter().any(|&(a, b)| i >= a && i <= b) };
    let sampler_ranges = mod_sampler_ranges(toks);
    let in_sampler = |i: usize| -> bool { sampler_ranges.iter().any(|&(a, b)| i >= a && i <= b) };

    let panic_rule = ctx.kind == FileKind::Src && ctx.crate_in(PANIC_FREE_CRATES);
    let ordered_rule = ctx.crate_in(ORDERED_CRATES);
    let wallclock_rule = ctx.kind == FileKind::Src && !ctx.crate_in(WALLCLOCK_CRATES);

    let mut out = Vec::new();
    let mut emit = |tok: &Tok, rule: &'static str, message: String| {
        out.push(Diagnostic {
            file: rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            rule,
            severity: "error",
            message,
        });
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }

        // --- no-panic-in-lib ------------------------------------------------
        if panic_rule && !in_test_code(i) {
            if method_call(toks, i) && (t.text == "unwrap" || t.text == "expect") {
                emit(
                    t,
                    "no-panic-in-lib",
                    format!(
                        ".{}() can panic on operational data; return a Result or handle the None/Err arm",
                        t.text
                    ),
                );
            }
            if macro_bang(toks, i) && matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
            {
                emit(
                    t,
                    "no-panic-in-lib",
                    format!(
                        "{}! aborts the pipeline mid-dispatch; return an error instead",
                        t.text
                    ),
                );
            }
        }

        // --- no-unordered-iteration ----------------------------------------
        if ordered_rule && (t.text == "HashMap" || t.text == "HashSet") {
            let ordered = if t.text == "HashMap" { "BTreeMap" } else { "BTreeSet" };
            emit(
                t,
                "no-unordered-iteration",
                format!(
                    "{} iteration order is nondeterministic and can leak into ranked output; use {} or a sorted Vec",
                    t.text, ordered
                ),
            );
        }

        // --- total-cmp-for-floats ------------------------------------------
        if method_call(toks, i) && t.text == "partial_cmp" {
            emit(
                t,
                "total-cmp-for-floats",
                "partial_cmp on floats forces an unwrap/expect that panics on NaN; use f64::total_cmp"
                    .to_string(),
            );
        }

        // --- no-wallclock-in-model -----------------------------------------
        if wallclock_rule && !in_test_code(i) && (t.text == "Instant" || t.text == "SystemTime") {
            emit(
                t,
                "no-wallclock-in-model",
                format!(
                    "{} makes model code non-replayable; route timing through nevermind-obs (spans or Stopwatch)",
                    t.text
                ),
            );
        }

        // --- seeded-rng-only ------------------------------------------------
        if matches!(t.text.as_str(), "thread_rng" | "from_entropy" | "OsRng" | "from_os_rng") {
            emit(
                t,
                "seeded-rng-only",
                format!(
                    "{} draws from ambient entropy; every RNG must be seeded explicitly (e.g. ChaCha8Rng::seed_from_u64)",
                    t.text
                ),
            );
        }

        // --- no-poisoning-lock-unwrap --------------------------------------
        if t.text == "lock"
            && method_call(toks, i)
            && toks.get(i + 2).is_some_and(|p| p.is_punct(')'))
            && toks.get(i + 3).is_some_and(|p| p.is_punct('.'))
            && toks.get(i + 4).is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"))
        {
            emit(
                t,
                "no-poisoning-lock-unwrap",
                ".lock().unwrap() propagates mutex poisoning into a crash cascade; use a lock_recovering helper (see nevermind-obs)"
                    .to_string(),
            );
        }

        // --- trace-event-fields-are-static ---------------------------------
        // A runtime-formatted field name (`.attr(format!("f{i}"), ...)`)
        // fractures the nevermind-trace/v1 vocabulary: `explain`/`report`
        // match fields by name, so names must be compile-time constants.
        if t.text == "attr"
            && method_call(toks, i)
            && toks.get(i + 2).is_some_and(|a| a.kind != TokKind::Literal)
        {
            emit(
                t,
                "trace-event-fields-are-static",
                "trace event field names must be string literals so the nevermind-trace/v1 vocabulary stays enumerable; put variability in the field value"
                    .to_string(),
            );
        }

        // --- no-blocking-in-sampler ----------------------------------------
        // The profiler's sweep loop (`mod sampler`) runs between every pair
        // of samples on every instrumented thread's critical path: touching
        // the sharded metrics registry from it can block workers mid-span,
        // and per-sample allocation turns a 1ms cadence into allocator
        // pressure. The loop may only read its own pre-registered stacks
        // into a reusable scratch buffer.
        if in_sampler(i) {
            const REGISTRY_CALLS: &[&str] = &[
                "counter",
                "gauge",
                "histogram",
                "series",
                "distribution",
                "record_span",
                "snapshot",
                "to_json",
            ];
            const ALLOC_CALLS: &[&str] = &["to_string", "to_owned", "to_vec"];
            const BANNED_MACROS: &[&str] =
                &["counter_add", "gauge_set", "histogram_record", "span", "format", "vec"];
            if method_call(toks, i) && REGISTRY_CALLS.contains(&t.text.as_str()) {
                emit(
                    t,
                    "no-blocking-in-sampler",
                    format!(
                        ".{}() reaches the metrics registry from the sampler hot loop and can block every instrumented thread; the sweep may only read its own registered stacks",
                        t.text
                    ),
                );
            }
            if method_call(toks, i) && ALLOC_CALLS.contains(&t.text.as_str()) {
                emit(
                    t,
                    "no-blocking-in-sampler",
                    format!(
                        ".{}() allocates on every sample; reuse a scratch buffer and clone only when a novel stack shape appears",
                        t.text
                    ),
                );
            }
            if macro_bang(toks, i) && BANNED_MACROS.contains(&t.text.as_str()) {
                emit(
                    t,
                    "no-blocking-in-sampler",
                    format!(
                        "{}! records metrics or allocates inside the sampler hot loop; the sweep must stay off the registry and allocation-free per sample",
                        t.text
                    ),
                );
            }
        }
    }
    out
}

/// Whether token `i` is the method name of a `.name(` call.
fn method_call(toks: &[Tok], i: usize) -> bool {
    i > 0 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
}

/// Whether token `i` is a macro name directly followed by `!`.
fn macro_bang(toks: &[Tok], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|p| p.is_punct('!'))
}

/// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items (test
/// modules and functions inside library source), where the panic and
/// wall-clock rules do not apply.
pub(crate) fn cfg_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') || !toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        // Walk a run of attributes; remember whether any is a test marker.
        let attr_start = i;
        let mut is_test = false;
        while i < toks.len()
            && toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
        {
            let body_start = i + 2;
            let Some(close) = matching(toks, i + 1, '[', ']') else {
                // Unclosed attribute (malformed source): step past `#[` so
                // the outer scan always advances.
                i += 2;
                break;
            };
            is_test |= attr_is_test(&toks[body_start..close]);
            i = close + 1;
        }
        if !is_test {
            continue;
        }
        // Exclude the annotated item: up to its matching close brace, or to
        // a `;` for brace-less items.
        let mut j = i;
        while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            j += 1;
        }
        if j < toks.len() && toks[j].is_punct('{') {
            let end = matching(toks, j, '{', '}').unwrap_or(toks.len() - 1);
            ranges.push((attr_start, end));
            i = end + 1;
        } else {
            ranges.push((attr_start, j.min(toks.len().saturating_sub(1))));
            i = j + 1;
        }
    }
    ranges
}

/// Token-index ranges covered by `mod sampler { ... }` items — the profiler
/// sweep loop, where registry access and per-sample allocation are banned.
/// The rule keys on the module name by convention: any sampler hot loop in
/// this workspace must live in a module called `sampler` to get coverage.
fn mod_sampler_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("mod") && toks[i + 1].is_ident("sampler") {
            // Skip to the module body; `mod sampler;` declarations have no
            // body to scan.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let end = matching(toks, j, '{', '}').unwrap_or(toks.len() - 1);
                ranges.push((i, end));
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Exact `cfg(test)` or bare `test` attribute bodies only — `cfg(not(test))`
/// and friends keep their code in scope.
fn attr_is_test(body: &[Tok]) -> bool {
    match body {
        [t] => t.is_ident("test"),
        [c, open, t, close] => {
            c.is_ident("cfg") && open.is_punct('(') && t.is_ident("test") && close.is_punct(')')
        }
        _ => false,
    }
}

/// Index of the token closing the delimiter opened at `open_idx`.
fn matching(toks: &[Tok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ml_src() -> FileContext {
        FileContext { crate_name: Some("ml".into()), kind: FileKind::Src }
    }

    fn check(src: &str, ctx: &FileContext) -> Vec<Diagnostic> {
        check_file("crates/x/src/lib.rs", ctx, &lex(src))
    }

    #[test]
    fn unwrap_flagged_in_lib_but_not_in_test_mod() {
        let src = "
            fn f(v: Vec<u32>) -> u32 { v.first().unwrap() + 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { assert_eq!(super::f(vec![1]).checked_mul(2).unwrap(), 2); }
            }
        ";
        let diags = check(src, &ml_src());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "no-panic-in-lib");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn cfg_not_test_stays_in_scope() {
        let src = "
            #[cfg(not(test))]
            fn f() { g().unwrap(); }
        ";
        let diags = check(src, &ml_src());
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn hash_collections_flagged_on_scoring_path_only() {
        let src = "use std::collections::HashMap; fn f(m: &HashMap<u32, u32>) {}";
        assert_eq!(check(src, &ml_src()).len(), 2);
        let cli = FileContext { crate_name: Some("cli".into()), kind: FileKind::Src };
        assert_eq!(check(src, &cli).len(), 0);
    }

    #[test]
    fn partial_cmp_flagged_everywhere_including_tests() {
        let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b); }";
        let tests = FileContext { crate_name: None, kind: FileKind::Tests };
        let diags = check(src, &tests);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "total-cmp-for-floats");
        // Defining partial_cmp (PartialOrd impls) is not a call.
        let def =
            "impl PartialOrd for X { fn partial_cmp(&self, o: &X) -> Option<Ordering> { None } }";
        assert_eq!(check(def, &tests).len(), 0);
    }

    #[test]
    fn wallclock_scoped_to_model_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(check(src, &ml_src())[0].rule, "no-wallclock-in-model");
        let obs = FileContext { crate_name: Some("obs".into()), kind: FileKind::Src };
        assert_eq!(check(src, &obs).len(), 0);
        let bench = FileContext { crate_name: Some("bench".into()), kind: FileKind::Src };
        assert_eq!(check(src, &bench).len(), 0);
    }

    #[test]
    fn ambient_rng_flagged_even_in_tests() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }";
        let tests = FileContext { crate_name: Some("dslsim".into()), kind: FileKind::Tests };
        let diags = check(src, &tests);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "seeded-rng-only");
    }

    #[test]
    fn lock_unwrap_pattern() {
        let src = "fn f(m: &Mutex<u32>) { *m.lock().unwrap() += 1; }";
        let cli = FileContext { crate_name: Some("cli".into()), kind: FileKind::Src };
        let diags = check(src, &cli);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "no-poisoning-lock-unwrap");
        // A recovering helper that *handles* the poison arm is clean.
        let ok = "fn f(m: &Mutex<u32>) { let g = match m.lock() { Ok(g) => g, Err(p) => p.into_inner() }; }";
        assert_eq!(check(ok, &cli).len(), 0);
    }

    #[test]
    fn attr_field_names_must_be_literals() {
        let cli = FileContext { crate_name: Some("cli".into()), kind: FileKind::Src };
        // Literal names are fine, wherever the call appears.
        let ok = r#"fn f(ev: TraceEvent) { ev.attr("margin", 1.0).attr("rank", 3u32); }"#;
        assert_eq!(check(ok, &cli).len(), 0);
        // Runtime-formatted or variable names fracture the schema.
        let bad = r#"fn f(ev: TraceEvent, name: &'static str, i: usize) {
            ev.attr(name, 1.0);
            ev.attr(format!("f{i}"), 2.0);
        }"#;
        let diags = check(bad, &cli);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "trace-event-fields-are-static"));
        // Unrelated `attr` identifiers (fields, paths) are not method calls.
        let unrelated = "fn f(a: Attr) { let x = a.attr; attr(1); }";
        assert_eq!(check(unrelated, &cli).len(), 0);
    }

    #[test]
    fn sampler_rule_scopes_to_mod_sampler_bodies() {
        let obs = FileContext { crate_name: Some("obs".into()), kind: FileKind::Src };
        let bad = r#"
            mod sampler {
                fn run() {
                    let c = super::global().counter("obs/sweeps");
                    let s = format!("sweep {}", 1);
                }
            }
            fn outside() {
                let c = global().counter("obs/other");
                let s = format!("fine {}", 1);
            }
        "#;
        let diags = check(bad, &obs);
        let fired: Vec<_> = diags.iter().filter(|d| d.rule == "no-blocking-in-sampler").collect();
        assert_eq!(fired.len(), 2, "counter + format! inside the module only: {diags:?}");
        assert!(fired.iter().all(|d| d.line == 4 || d.line == 5), "{diags:?}");
        // A body-less declaration has nothing to scan.
        let decl = r#"mod sampler; fn f() { global().counter("x"); }"#;
        assert!(check(decl, &obs).is_empty(), "mod sampler; must not blanket the file");
    }

    #[test]
    fn rule_table_is_consistent() {
        for r in RULES {
            assert!(rule_info(r.id).is_some());
            assert!(!r.summary.is_empty());
        }
        assert!(rule_info("no-such-rule").is_none());
    }
}
