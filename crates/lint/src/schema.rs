//! The `schema-drift` pass: the wire vocabulary the code actually speaks —
//! `nevermind-*/vN` schema identifiers, trace-event kinds, and
//! metric/span name literals — diffed against the documented registry in
//! DESIGN.md, in both directions.
//!
//! The documented sets live in fenced blocks introduced by an HTML marker
//! comment, so prose stays prose and the lists stay machine-checkable:
//!
//! ````text
//! <!-- lint:schema-registry(trace-kinds) -->
//! ```text
//! dispatch
//! score
//! ```
//! ````
//!
//! Categories: `schemas`, `trace-kinds`, `metric-names`. An entry
//! containing `<` (e.g. `telemetry/psi/<feature>`) is a **wildcard**: it
//! documents a runtime-formatted family, matches any code literal starting
//! with its prefix, and is exempt from the docs→code direction (there is
//! no single literal to find).
//!
//! Additionally, *every* `nevermind-*/vN` mention anywhere in the checked
//! docs must name a schema the code emits — stale prose references (the
//! classic `vN` bump miss) fail the gate too.
//!
//! Extraction is token-level over `src` files only, skipping
//! `#[cfg(test)]` regions: test fixtures legitimately invent kinds.

use crate::context::FileKind;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::rules::cfg_test_ranges;
use crate::semantic::FileUnit;
use std::collections::BTreeMap;

/// Registry methods whose first-argument literal is a metric name.
const METRIC_METHODS: &[&str] = &["counter", "gauge", "histogram", "series", "distribution"];
/// Macros whose first-argument literal is a metric/span name.
const METRIC_MACROS: &[&str] = &["counter_add", "gauge_set", "histogram_record", "span"];

/// One extracted or documented vocabulary item.
type Sites = BTreeMap<String, (String, u32, u32)>;

/// The three vocabularies extracted from code.
#[derive(Debug, Default)]
pub struct CodeVocab {
    /// `nevermind-*/vN` schema identifiers (from any string literal).
    pub schemas: Sites,
    /// `TraceEvent::new("kind")` literals.
    pub trace_kinds: Sites,
    /// Metric/span name literals.
    pub metric_names: Sites,
}

/// Extracts the code-side vocabulary from `src` files (test regions and
/// non-src files skipped).
pub fn extract_code_vocab(units: &[&FileUnit]) -> CodeVocab {
    let mut vocab = CodeVocab::default();
    for fu in units {
        if fu.ctx.kind != FileKind::Src {
            continue;
        }
        let toks = &fu.lexed.tokens;
        let test_ranges = cfg_test_ranges(toks);
        let in_test = |i: usize| test_ranges.iter().any(|&(a, b)| i >= a && i <= b);
        for (i, t) in toks.iter().enumerate() {
            if in_test(i) {
                continue;
            }
            match t.kind {
                TokKind::Literal => {
                    for schema in schema_mentions(&t.text) {
                        vocab
                            .schemas
                            .entry(schema)
                            .or_insert_with(|| (fu.rel.clone(), t.line, t.col));
                    }
                }
                TokKind::Ident => {
                    // `TraceEvent::new("kind")`.
                    if t.text == "new"
                        && i >= 3
                        && toks[i - 1].is_punct(':')
                        && toks[i - 2].is_punct(':')
                        && toks[i - 3].is_ident("TraceEvent")
                        && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
                    {
                        if let Some(lit) = toks.get(i + 2).filter(|l| l.kind == TokKind::Literal) {
                            vocab
                                .trace_kinds
                                .entry(lit.text.clone())
                                .or_insert_with(|| (fu.rel.clone(), lit.line, lit.col));
                        }
                    }
                    // `.counter("name")` etc.
                    if METRIC_METHODS.contains(&t.text.as_str())
                        && i > 0
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
                    {
                        if let Some(lit) = toks.get(i + 2).filter(|l| l.kind == TokKind::Literal) {
                            vocab
                                .metric_names
                                .entry(lit.text.clone())
                                .or_insert_with(|| (fu.rel.clone(), lit.line, lit.col));
                        }
                    }
                    // `counter_add!("name", ...)`, `span!("name")`.
                    if METRIC_MACROS.contains(&t.text.as_str())
                        && toks.get(i + 1).is_some_and(|p| p.is_punct('!'))
                        && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
                    {
                        if let Some(lit) = toks.get(i + 3).filter(|l| l.kind == TokKind::Literal) {
                            vocab
                                .metric_names
                                .entry(lit.text.clone())
                                .or_insert_with(|| (fu.rel.clone(), lit.line, lit.col));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    vocab
}

/// All `nevermind-<word>/v<digits>` substrings of `text`.
fn schema_mentions(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let needle = b"nevermind-";
    let mut i = 0usize;
    while i + needle.len() < bytes.len() {
        if &bytes[i..i + needle.len()] != needle {
            i += 1;
            continue;
        }
        let mut j = i + needle.len();
        let word_start = j;
        while j < bytes.len() && bytes[j].is_ascii_lowercase() {
            j += 1;
        }
        if j == word_start || j + 1 >= bytes.len() || bytes[j] != b'/' || bytes[j + 1] != b'v' {
            i += 1;
            continue;
        }
        let mut k = j + 2;
        let digits_start = k;
        while k < bytes.len() && bytes[k].is_ascii_digit() {
            k += 1;
        }
        if k == digits_start {
            i += 1;
            continue;
        }
        if let Ok(s) = std::str::from_utf8(&bytes[i..k]) {
            out.push(s.to_string());
        }
        i = k;
    }
    out
}

/// One documented vocabulary: exact entries plus wildcard prefixes.
#[derive(Debug, Default)]
struct DocSet {
    exact: Sites,
    /// `(prefix, file, line)` for entries containing `<`.
    wildcards: Vec<(String, String, u32)>,
}

impl DocSet {
    fn matches(&self, item: &str) -> bool {
        self.exact.contains_key(item)
            || self.wildcards.iter().any(|(p, _, _)| !p.is_empty() && item.starts_with(p.as_str()))
    }
}

/// Parses the `<!-- lint:schema-registry(<category>) -->` blocks out of the
/// documentation files (`(path, contents)` pairs).
fn parse_docs(docs: &[(String, String)]) -> BTreeMap<String, DocSet> {
    let mut sets: BTreeMap<String, DocSet> = BTreeMap::new();
    const MARKER: &str = "<!-- lint:schema-registry(";
    for (path, text) in docs {
        let mut lines = text.lines().enumerate().peekable();
        while let Some((_, line)) = lines.next() {
            let trimmed = line.trim();
            let Some(rest) = trimmed.strip_prefix(MARKER) else { continue };
            let Some(close) = rest.find(')') else { continue };
            let category = rest[..close].trim().to_string();
            let set = sets.entry(category).or_default();
            // Skip to the opening fence, collect until the closing fence.
            for (_, l) in lines.by_ref() {
                if l.trim_start().starts_with("```") {
                    break;
                }
            }
            for (n, l) in lines.by_ref() {
                let entry = l.trim();
                if entry.starts_with("```") {
                    break;
                }
                if entry.is_empty() || entry.starts_with('#') {
                    continue;
                }
                let lineno = (n + 1) as u32;
                if entry.contains('<') {
                    let prefix = entry.split('<').next().unwrap_or("").to_string();
                    set.wildcards.push((prefix, path.clone(), lineno));
                } else {
                    set.exact.entry(entry.to_string()).or_insert_with(|| (path.clone(), lineno, 1));
                }
            }
        }
    }
    sets
}

/// Diffs the code vocabulary against the documented registry, both ways,
/// and checks every prose `nevermind-*/vN` mention against the code set.
pub fn analyze_schema(units: &[&FileUnit], docs: &[(String, String)]) -> Vec<Diagnostic> {
    let vocab = extract_code_vocab(units);
    let sets = parse_docs(docs);
    let empty = DocSet::default();
    let mut diags = Vec::new();

    let mut check = |category: &str, code: &Sites, label: &str| {
        let documented = sets.get(category).unwrap_or(&empty);
        for (item, (file, line, col)) in code {
            if !documented.matches(item) {
                diags.push(Diagnostic {
                    file: file.clone(),
                    line: *line,
                    col: *col,
                    rule: "schema-drift",
                    severity: "error",
                    message: format!(
                        "{label} '{item}' is not in the documented schema-registry({category}) block; add it to DESIGN.md (or remove it from the code)"
                    ),
                });
            }
        }
        for (item, (file, line, _)) in &documented.exact {
            if !code.contains_key(item) {
                diags.push(Diagnostic {
                    file: file.clone(),
                    line: *line,
                    col: 1,
                    rule: "schema-drift",
                    severity: "error",
                    message: format!(
                        "documented {label} '{item}' no longer appears in the code; update the schema-registry({category}) block"
                    ),
                });
            }
        }
    };
    check("schemas", &vocab.schemas, "schema identifier");
    check("trace-kinds", &vocab.trace_kinds, "trace-event kind");
    check("metric-names", &vocab.metric_names, "metric/span name");

    // Prose mentions: any `nevermind-*/vN` string in the docs must be a
    // schema the code emits (stale version references fail here).
    for (path, text) in docs {
        for (n, line) in text.lines().enumerate() {
            for mention in schema_mentions(line) {
                if !vocab.schemas.contains_key(&mention) {
                    diags.push(Diagnostic {
                        file: path.clone(),
                        line: (n + 1) as u32,
                        col: 1,
                        rule: "schema-drift",
                        severity: "error",
                        message: format!(
                            "doc mentions schema '{mention}' which the code does not emit; the reference is stale (or the code dropped a schema the docs still promise)"
                        ),
                    });
                }
            }
        }
    }

    diags.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    diags.dedup();
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn unit(rel: &str, src: &str) -> FileUnit {
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        FileUnit {
            rel: rel.to_string(),
            ctx: FileContext { crate_name: Some("obs".to_string()), kind: FileKind::Src },
            lexed,
            parsed,
        }
    }

    const GOOD_DOC: &str = "\
# Design\n\
<!-- lint:schema-registry(schemas) -->\n\
```text\n\
nevermind-trace/v1\n\
```\n\
<!-- lint:schema-registry(trace-kinds) -->\n\
```text\n\
score\n\
```\n\
<!-- lint:schema-registry(metric-names) -->\n\
```text\n\
sim/weeks\n\
telemetry/psi/<feature>\n\
```\n";

    fn src_unit() -> FileUnit {
        unit(
            "crates/obs/src/x.rs",
            r#"
            fn f(reg: &Registry) {
                let doc = "nevermind-trace/v1";
                let ev = TraceEvent::new("score");
                reg.counter("sim/weeks").add(1);
                counter_add!("telemetry/psi/psi_min");
            }
            "#,
        )
    }

    #[test]
    fn matching_registry_is_clean() {
        let u = src_unit();
        let docs = vec![("DESIGN.md".to_string(), GOOD_DOC.to_string())];
        let diags = analyze_schema(&[&u], &docs);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn wildcard_covers_formatted_family_members() {
        let u = src_unit();
        // `telemetry/psi/psi_min` only matches via the wildcard entry.
        let doc = GOOD_DOC.replace("telemetry/psi/<feature>\n", "");
        let docs = vec![("DESIGN.md".to_string(), doc)];
        let diags = analyze_schema(&[&u], &docs);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("telemetry/psi/psi_min"));
    }

    #[test]
    fn undocumented_code_vocab_is_flagged_both_ways() {
        let u = src_unit();
        let drifted = GOOD_DOC.replace("score", "scored_week");
        let docs = vec![("DESIGN.md".to_string(), drifted)];
        let diags = analyze_schema(&[&u], &docs);
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("'score' is not in the documented")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("'scored_week' no longer appears")), "{msgs:?}");
    }

    #[test]
    fn stale_prose_schema_mention_is_flagged() {
        let u = src_unit();
        let mut doc = GOOD_DOC.to_string();
        doc.push_str("\nThe exporter emits one nevermind-trace/v9 document.\n");
        let docs = vec![("README.md".to_string(), doc)];
        let diags = analyze_schema(&[&u], &docs);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("nevermind-trace/v9"));
        assert_eq!(diags[0].file, "README.md");
    }

    #[test]
    fn test_regions_do_not_contribute_vocabulary() {
        let u = unit(
            "crates/obs/src/y.rs",
            r#"
            fn f() { let _ = TraceEvent::new("score"); }
            #[cfg(test)]
            mod tests {
                fn t() {
                    let _ = TraceEvent::new("test_only_kind");
                    let doc = "nevermind-madeup/v9";
                }
            }
            "#,
        );
        let vocab = extract_code_vocab(&[&u]);
        assert!(vocab.trace_kinds.contains_key("score"));
        assert!(!vocab.trace_kinds.contains_key("test_only_kind"), "{vocab:?}");
        assert!(vocab.schemas.is_empty(), "{vocab:?}");
    }

    #[test]
    fn schema_mention_scanner() {
        assert_eq!(
            schema_mentions("emits nevermind-metrics/v1 and nevermind-lint/v2 docs"),
            vec!["nevermind-metrics/v1".to_string(), "nevermind-lint/v2".to_string()]
        );
        assert!(schema_mentions("plain nevermind- prefix and nevermind-x/vv").is_empty());
    }
}
