//! Per-crate symbol table, intra-crate call graph, and the lock passes.
//!
//! The model is built from the parsed files of one crate at a time (the
//! workspace's concurrency all lives inside single crates — `obs` today,
//! `serve` tomorrow), then two passes walk every non-test `src` function:
//!
//! * **lock-order** — tracks which named locks are held at each point,
//!   adds acquisition edges (`held → newly-acquired`) both for direct
//!   acquisitions and, via the call graph's transitive may-acquire sets,
//!   for calls made while holding, and flags any cycle in the resulting
//!   acquisition graph as a deadlock risk.
//! * **no-side-effects-under-lock** — inside `nevermind-obs`, no I/O and
//!   no unbounded serialization/allocation while a lock is held (the rule
//!   PR 8's off-lock registry snapshot fix established by hand).
//!
//! Locks are named after the mutex expression that acquires them: the last
//! path segment of `lock_recovering(&self.ring)` is `ring`, of
//! `lock_recovering(map)` is `map`, and `m.lock()` names `m`. Named-field
//! mutexes therefore collapse by field name across instances — exactly the
//! granularity the deadlock argument needs, since every instance of a
//! shard map is acquired through the same code paths.
//!
//! Method calls resolve by name against the crate's fn table, except for
//! ubiquitous std names (`len`, `iter`, `insert`, ...) which would alias
//! unrelated crate methods; `self.m(...)` resolves only against the
//! enclosing impl type. Unresolved calls contribute no edges — the passes
//! stay sound for intra-crate lock discipline, which is where every lock
//! in this workspace lives.

use crate::context::{FileContext, FileKind};
use crate::diag::Diagnostic;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::parser::{arg_path, last_path_ident, Block, Call, FnDef, Op, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// One analyzed file: everything the semantic passes need, built once by
/// the engine's (parallel) frontend.
#[derive(Debug)]
pub struct FileUnit {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// Lint context (crate, kind).
    pub ctx: FileContext,
    /// Token/comment stream.
    pub lexed: Lexed,
    /// Item tree.
    pub parsed: ParsedFile,
}

/// Method names that are overwhelmingly std-library vocabulary: never
/// resolved against the crate fn table (a crate method that happens to
/// share one of these names is analyzed at its own definition instead).
const STD_METHODS: &[&str] = &[
    "all",
    "any",
    "as_slice",
    "as_str",
    "chain",
    "clear",
    "clone",
    "cloned",
    "collect",
    "contains",
    "copied",
    "drain",
    "entry",
    "enumerate",
    "extend",
    "extend_from_slice",
    "filter",
    "find",
    "flat_map",
    "fold",
    "get",
    "get_mut",
    "get_or_init",
    "insert",
    "into_iter",
    "is_empty",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "load",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "ok",
    "parse",
    "pop",
    "pop_front",
    "push",
    "push_back",
    "push_str",
    "remove",
    "retain",
    "rev",
    "rsplit",
    "skip",
    "sort",
    "sort_by",
    "split",
    "store",
    "take",
    "then",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "unwrap_or",
    "values",
    "with",
    "with_capacity",
    "zip",
];

/// Function identifier inside a [`CrateModel`]: `(file index, fn index)`.
pub type FnId = (usize, usize);

/// The per-crate symbol table and call graph.
pub struct CrateModel<'a> {
    /// Crate directory name.
    pub name: String,
    /// Analyzed `src` files of the crate.
    pub files: Vec<&'a FileUnit>,
    /// Fn name → definitions (test fns included; passes filter).
    pub by_name: BTreeMap<String, Vec<FnId>>,
    /// Merged struct-field types: field name → `Some(type)` when the name
    /// is unique crate-wide, `None` on conflicting definitions.
    pub fields: BTreeMap<String, Option<String>>,
    /// Resolved call edges (caller → callee), for the report's stats.
    pub call_edges: usize,
}

impl<'a> CrateModel<'a> {
    /// Builds the model over one crate's `src` files.
    pub fn build(name: &str, files: Vec<&'a FileUnit>) -> CrateModel<'a> {
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut fields: BTreeMap<String, Option<String>> = BTreeMap::new();
        for (fi, fu) in files.iter().enumerate() {
            for (ni, f) in fu.parsed.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push((fi, ni));
            }
            for (fname, fty) in &fu.parsed.fields {
                match fields.get_mut(fname) {
                    None => {
                        fields.insert(fname.clone(), Some(fty.clone()));
                    }
                    Some(slot) => {
                        if slot.as_deref() != Some(fty.as_str()) {
                            *slot = None; // conflicting definitions: unknown
                        }
                    }
                }
            }
        }
        CrateModel { name: name.to_string(), files, by_name, fields, call_edges: 0 }
    }

    /// The fn definition for an id.
    pub fn fn_def(&self, id: FnId) -> &FnDef {
        &self.files[id.0].parsed.fns[id.1]
    }

    /// Whether the unique crate-wide type of `field` mentions any of
    /// `needles` (used for hash-typed lookups).
    pub fn field_ty_mentions(&self, field: &str, needles: &[&str]) -> bool {
        self.fields
            .get(field)
            .and_then(|t| t.as_deref())
            .is_some_and(|t| needles.iter().any(|n| t.contains(n)))
    }

    /// Resolves a call to candidate definitions (possibly several — the
    /// union is the conservative choice for may-acquire propagation).
    pub fn resolve(&self, call: &Call, caller_self_ty: Option<&str>) -> Vec<FnId> {
        // The poison-recovering primitive is modeled as an acquisition, not
        // a call; its own body would otherwise contribute a `lock()` edge.
        if call.name == "lock_recovering" || call.name == "drop" {
            return Vec::new();
        }
        let Some(cands) = self.by_name.get(&call.name) else { return Vec::new() };
        if call.is_method {
            if STD_METHODS.contains(&call.name.as_str()) {
                return Vec::new();
            }
            if call.recv.first().map(String::as_str) == Some("self") {
                // `self.m(...)`: only the enclosing impl type's methods.
                return cands
                    .iter()
                    .copied()
                    .filter(|&id| self.fn_def(id).self_ty.as_deref() == caller_self_ty)
                    .collect();
            }
            // Unknown receiver: any crate method of that name.
            return cands
                .iter()
                .copied()
                .filter(|&id| self.fn_def(id).params.first().is_some_and(|p| p.name == "self"))
                .collect();
        }
        match call.qual.as_deref() {
            Some("Self") => cands
                .iter()
                .copied()
                .filter(|&id| self.fn_def(id).self_ty.as_deref() == caller_self_ty)
                .collect(),
            Some(q) => {
                // `Type::name(...)`: prefer impl-type matches; fall back to
                // free fns for module-qualified calls (`sampler::run`).
                let typed: Vec<FnId> = cands
                    .iter()
                    .copied()
                    .filter(|&id| self.fn_def(id).self_ty.as_deref() == Some(q))
                    .collect();
                if !typed.is_empty() {
                    return typed;
                }
                if self
                    .by_name
                    .values()
                    .flatten()
                    .any(|&id| self.fn_def(id).self_ty.as_deref() == Some(q))
                {
                    // The qualifier names a known crate type but this
                    // method isn't on it (e.g. a std trait method).
                    return Vec::new();
                }
                cands.iter().copied().filter(|&id| self.fn_def(id).self_ty.is_none()).collect()
            }
            None => cands.iter().copied().filter(|&id| self.fn_def(id).self_ty.is_none()).collect(),
        }
    }
}

/// One held lock during a region walk.
#[derive(Debug, Clone)]
struct Held {
    name: String,
    /// The `let` binding holding the guard (`drop(binding)` releases it);
    /// `None` for statement-scoped temporaries.
    binding: Option<String>,
}

/// A lock-acquisition edge with its representative source position.
#[derive(Debug)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    col: u32,
    /// `via`: the call chain note for deferred (call-graph) edges.
    via: Option<String>,
}

/// One recorded acquisition-edge site: `(file, line, col, via-note)`.
type EdgeSite = (String, u32, u32, Option<String>);

/// A call made while holding locks, resolved once may-acquire sets reach
/// their fixpoint: `(held locks, callee id, file, line, col, callee name)`.
type DeferredCall = (Vec<String>, FnId, String, u32, u32, String);

/// What the crate-level lock analysis produced.
pub struct LockAnalysis {
    /// Diagnostics from both lock passes.
    pub diagnostics: Vec<Diagnostic>,
    /// Distinct lock names seen.
    pub locks: usize,
    /// Distinct acquisition-order edges.
    pub lock_edges: usize,
    /// Non-test fns walked.
    pub functions: usize,
    /// Resolved call edges.
    pub call_edges: usize,
}

/// I/O and serialization vocabulary banned while holding a lock in
/// `nevermind-obs`: socket/file writes plus the workspace's JSON/export
/// entry points, which serialize unbounded state and belong off-lock (the
/// registry snapshot reads values only after copying handles out).
const UNDER_LOCK_BANNED_MACROS: &[&str] =
    &["write", "writeln", "print", "println", "eprint", "eprintln", "format"];
const UNDER_LOCK_BANNED_CALLS: &[&str] = &[
    "write_all",
    "write_fmt",
    "flush",
    "read_to_string",
    "to_json",
    "to_jsonl",
    "snapshot_to_json",
    "push_json_line",
    "push_json",
    "collapsed",
];
const UNDER_LOCK_BANNED_QUALS: &[&str] = &["TcpStream", "TcpListener", "File", "OpenOptions", "fs"];

/// Direct I/O vocabulary for the transitive side-effect closure (a call
/// made under a lock to a fn that transitively does I/O is flagged too).
const IO_MACROS: &[&str] = &["write", "writeln", "print", "println", "eprint", "eprintln"];
const IO_CALLS: &[&str] = &["write_all", "write_fmt", "flush", "read_to_string"];

/// Runs the lock-order and under-lock passes over one crate.
pub fn analyze_locks(model: &CrateModel<'_>) -> LockAnalysis {
    let mut diags = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    // Deferred: calls made while holding locks, resolved via may-acquire.
    let mut deferred: Vec<DeferredCall> = Vec::new();
    let mut functions = 0usize;
    let mut call_edges = 0usize;

    // Which fns get walked: non-test fns with bodies in src files, except
    // the lock primitive itself.
    let in_scope = |model: &CrateModel<'_>, id: FnId| -> bool {
        let f = model.fn_def(id);
        model.files[id.0].ctx.kind == FileKind::Src
            && !f.is_test
            && f.body.is_some()
            && f.name != "lock_recovering"
    };

    // Per-fn direct acquisitions and direct side effects, for the
    // transitive closures.
    let mut direct_acquire: BTreeMap<FnId, BTreeSet<String>> = BTreeMap::new();
    let mut direct_io: BTreeSet<FnId> = BTreeSet::new();
    let mut calls_of: BTreeMap<FnId, BTreeSet<FnId>> = BTreeMap::new();

    let obs_rules = model.name == "obs";

    for (fi, fu) in model.files.iter().enumerate() {
        for (ni, f) in fu.parsed.fns.iter().enumerate() {
            let id: FnId = (fi, ni);
            if !in_scope(model, id) {
                continue;
            }
            functions += 1;
            let Some(body) = f.body.as_ref() else { continue };
            let mut walker = Walker {
                model,
                fu,
                f,
                id,
                held: Vec::new(),
                edges: &mut edges,
                deferred: &mut deferred,
                diags: &mut diags,
                direct_acquire: BTreeSet::new(),
                direct_io: false,
                callees: BTreeSet::new(),
                obs_rules,
            };
            walker.walk_block(body);
            let Walker { direct_acquire: da, direct_io: io, callees, .. } = walker;
            call_edges += callees.len();
            if io {
                direct_io.insert(id);
            }
            calls_of.insert(id, callees);
            direct_acquire.insert(id, da);
        }
    }

    // Fixpoint: transitive may-acquire and may-do-io per fn.
    let mut may_acquire = direct_acquire.clone();
    let mut may_io = direct_io.clone();
    loop {
        let mut changed = false;
        for (id, callees) in &calls_of {
            for callee in callees {
                let add: Vec<String> = may_acquire
                    .get(callee)
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default();
                if !add.is_empty() {
                    if let Some(mine) = may_acquire.get_mut(id) {
                        for l in add {
                            changed |= mine.insert(l);
                        }
                    }
                }
                if may_io.contains(callee) && may_io.insert(*id) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Expand deferred call edges through the may-acquire sets, and flag
    // transitive I/O under a held lock (obs only).
    for (held, callee, file, line, col, callee_name) in deferred {
        if let Some(acquires) = may_acquire.get(&callee) {
            for l in acquires {
                for h in &held {
                    edges.push(Edge {
                        from: h.clone(),
                        to: l.clone(),
                        file: file.clone(),
                        line,
                        col,
                        via: Some(callee_name.clone()),
                    });
                }
            }
        }
        if obs_rules && may_io.contains(&callee) {
            diags.push(Diagnostic {
                file: file.clone(),
                line,
                col,
                rule: "no-side-effects-under-lock",
                severity: "error",
                message: format!(
                    "call to {callee_name}() does I/O while '{}' is held; move the I/O outside the locked region",
                    held.join("', '")
                ),
            });
        }
    }

    // Acquisition graph: dedupe edges, detect cycles.
    let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut lock_names: BTreeSet<String> = BTreeSet::new();
    for set in may_acquire.values() {
        lock_names.extend(set.iter().cloned());
    }
    edges.sort_by(|a, b| {
        (&a.from, &a.to, &a.file, a.line, a.col).cmp(&(&b.from, &b.to, &b.file, b.line, b.col))
    });
    let mut edge_sites: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    for e in &edges {
        lock_names.insert(e.from.clone());
        lock_names.insert(e.to.clone());
        adj.entry(e.from.clone()).or_default().insert(e.to.clone());
        edge_sites
            .entry((e.from.clone(), e.to.clone()))
            .or_insert_with(|| (e.file.clone(), e.line, e.col, e.via.clone()));
    }
    let lock_edges = edge_sites.len();

    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((from, to), (file, line, col, via)) in &edge_sites {
        // An edge a→b closes a cycle when b reaches a (b == a included:
        // re-acquiring a non-reentrant mutex self-deadlocks).
        if let Some(mut path) = reach_path(&adj, to, from) {
            // path: to .. from; cycle nodes: from → to → ... (from repeats
            // only in the rendering).
            if path.last().map(String::as_str) == Some(from.as_str()) && path.len() > 1 {
                path.pop();
            }
            let mut cycle: Vec<String> = Vec::with_capacity(path.len() + 1);
            cycle.push(from.clone());
            if path.first().map(String::as_str) != Some(from.as_str()) {
                cycle.extend(path);
            }
            let key = canonical_cycle(&cycle);
            if !reported.insert(key) {
                continue;
            }
            let via_note =
                via.as_ref().map(|v| format!(" (via call to {v}())")).unwrap_or_default();
            diags.push(Diagnostic {
                file: file.clone(),
                line: *line,
                col: *col,
                rule: "lock-order",
                severity: "error",
                message: format!(
                    "lock acquisition cycle {} -> {}{}: threads taking these locks in different orders can deadlock; pick one global order",
                    cycle.join(" -> "),
                    cycle.first().map(String::as_str).unwrap_or(""),
                    via_note
                ),
            });
        }
    }

    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    LockAnalysis { diagnostics: diags, locks: lock_names.len(), lock_edges, functions, call_edges }
}

/// Shortest path `from → ... → to` in the acquisition graph (BFS), as the
/// node list starting at `from` and ending at `to`.
fn reach_path(
    adj: &BTreeMap<String, BTreeSet<String>>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    let mut parent: BTreeMap<String, String> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<String> = std::collections::VecDeque::new();
    queue.push_back(from.to_string());
    let mut seen: BTreeSet<String> = BTreeSet::new();
    seen.insert(from.to_string());
    while let Some(cur) = queue.pop_front() {
        if cur == to {
            // Rebuild path.
            let mut path = vec![cur.clone()];
            let mut node = cur;
            while let Some(p) = parent.get(&node) {
                path.push(p.clone());
                node = p.clone();
            }
            path.reverse();
            return Some(path);
        }
        if let Some(nexts) = adj.get(&cur) {
            for n in nexts {
                if seen.insert(n.clone()) {
                    parent.insert(n.clone(), cur.clone());
                    queue.push_back(n.clone());
                }
            }
        }
    }
    // Self-cycle check: `from == to` handled above only if `to` was pushed;
    // the first pop compares equal, so a→a returns [a]. Nothing more here.
    None
}

/// Canonical form of a cycle (smallest rotation), for dedup across the
/// multiple edges that witness the same cycle.
fn canonical_cycle(cycle: &[String]) -> Vec<String> {
    if cycle.is_empty() {
        return Vec::new();
    }
    let n = cycle.len();
    let mut best: Option<Vec<String>> = None;
    for start in 0..n {
        let rot: Vec<String> = (0..n).map(|k| cycle[(start + k) % n].clone()).collect();
        if best.as_ref().map_or(true, |b| &rot < b) {
            best = Some(rot);
        }
    }
    best.unwrap_or_default()
}

/// The shared region walker for both lock passes.
struct Walker<'m, 'a, 'o> {
    model: &'m CrateModel<'a>,
    fu: &'a FileUnit,
    f: &'a FnDef,
    id: FnId,
    held: Vec<Held>,
    edges: &'o mut Vec<Edge>,
    deferred: &'o mut Vec<DeferredCall>,
    diags: &'o mut Vec<Diagnostic>,
    direct_acquire: BTreeSet<String>,
    direct_io: bool,
    callees: BTreeSet<FnId>,
    obs_rules: bool,
}

impl Walker<'_, '_, '_> {
    fn walk_block(&mut self, block: &Block) {
        let entry = self.held.len();
        for stmt in &block.stmts {
            let stmt_entry = self.held.len();
            let guard_binding = if stmt.is_for { None } else { stmt.lets.first().cloned() };
            for op in &stmt.ops {
                match op {
                    Op::Block(inner) => self.walk_block(inner),
                    Op::Str(_) => {}
                    Op::Call(call) => self.visit_call(call, guard_binding.as_deref()),
                }
            }
            // Statement-scoped temporaries release here.
            self.held.truncate_retain(stmt_entry, |h| h.binding.is_some());
        }
        // Block-scoped let guards release at the block's end.
        self.held.truncate(entry);
    }

    fn visit_call(&mut self, call: &Call, guard_binding: Option<&str>) {
        let toks = &self.fu.lexed.tokens;
        // Release: `drop(binding)`.
        if !call.is_method && call.name == "drop" {
            if let [only] = arg_path(toks, call.args).as_slice() {
                if let Some(pos) =
                    self.held.iter().rposition(|h| h.binding.as_deref() == Some(only.as_str()))
                {
                    self.held.remove(pos);
                }
            }
            return;
        }
        // Acquisition: the recovering helper or a raw `.lock()`.
        let acquired = if !call.is_method && call.name == "lock_recovering" {
            lock_name_from_args(toks, call.args, self.f)
        } else if call.is_method && call.name == "lock" {
            call.recv.last().cloned()
        } else {
            None
        };
        if let Some(name) = acquired {
            for h in &self.held {
                self.edges.push(Edge {
                    from: h.name.clone(),
                    to: name.clone(),
                    file: self.fu.rel.clone(),
                    line: call.line,
                    col: call.col,
                    via: None,
                });
            }
            self.direct_acquire.insert(name.clone());
            // `let g = lock(...);` → guard lives until block end or
            // `drop(g)`; anything else is a statement-scoped temporary.
            let binding = match (call.after, guard_binding) {
                (crate::parser::After::Semi, Some(b)) => Some(b.to_string()),
                _ => None,
            };
            self.held.push(Held { name, binding });
            return;
        }

        // Side effects (direct): obs under-lock rule + transitive seed.
        let banned_direct = (call.is_macro
            && UNDER_LOCK_BANNED_MACROS.contains(&call.name.as_str()))
            || (!call.is_macro && UNDER_LOCK_BANNED_CALLS.contains(&call.name.as_str()))
            || call.qual.as_deref().is_some_and(|q| UNDER_LOCK_BANNED_QUALS.contains(&q));
        let is_io = (call.is_macro && IO_MACROS.contains(&call.name.as_str()))
            || (!call.is_macro && IO_CALLS.contains(&call.name.as_str()))
            || call.qual.as_deref().is_some_and(|q| UNDER_LOCK_BANNED_QUALS.contains(&q));
        if is_io {
            self.direct_io = true;
        }
        if self.obs_rules && banned_direct && !self.held.is_empty() {
            let held: Vec<&str> = self.held.iter().map(|h| h.name.as_str()).collect();
            let bang = if call.is_macro { "!" } else { "()" };
            self.diags.push(Diagnostic {
                file: self.fu.rel.clone(),
                line: call.line,
                col: call.col,
                rule: "no-side-effects-under-lock",
                severity: "error",
                message: format!(
                    "{}{bang} runs I/O or unbounded serialization while '{}' is held, stalling every thread that touches the lock; copy the data out and do this after the guard drops",
                    call.name,
                    held.join("', '")
                ),
            });
        }

        // Call-graph edge.
        let targets = self.model.resolve(call, self.f.self_ty.as_deref());
        for t in targets {
            if t == self.id {
                continue; // recursion adds nothing to may-acquire
            }
            self.callees.insert(t);
            if !self.held.is_empty() {
                let held: Vec<String> = self.held.iter().map(|h| h.name.clone()).collect();
                self.deferred.push((
                    held,
                    t,
                    self.fu.rel.clone(),
                    call.line,
                    call.col,
                    call.name.clone(),
                ));
            }
        }
    }
}

/// Names the lock acquired by `lock_recovering(<expr>)` from its argument:
/// the last depth-0 path ident (`&self.ring` → `ring`), or `<Ty>.<n>` for
/// tuple-field mutexes (`&self.0` on `impl Series` → `Series.0`).
fn lock_name_from_args(toks: &[Tok], args: (usize, usize), f: &FnDef) -> Option<String> {
    // Tuple-field access: the arg range ends `. <number>`.
    if args.1 >= 2 && args.1 - args.0 >= 2 {
        let last = &toks[args.1 - 1];
        if last.kind == TokKind::Number && toks[args.1 - 2].is_punct('.') {
            let ty = f.self_ty.as_deref().unwrap_or("tuple");
            return Some(format!("{ty}.{}", "0"));
        }
    }
    last_path_ident(toks, args)
}

/// `Vec::truncate` that keeps elements below `from` untouched and retains
/// only `keep`-matching elements at or above it (used to expire statement
/// temporaries while leaving let-bound guards in place).
trait TruncateRetain<T> {
    fn truncate_retain(&mut self, from: usize, keep: impl Fn(&T) -> bool);
}

impl<T> TruncateRetain<T> for Vec<T> {
    fn truncate_retain(&mut self, from: usize, keep: impl Fn(&T) -> bool) {
        let mut k = from;
        while k < self.len() {
            if keep(&self[k]) {
                k += 1;
            } else {
                self.remove(k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileKind;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn unit(rel: &str, krate: &str, src: &str) -> FileUnit {
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        FileUnit {
            rel: rel.to_string(),
            ctx: FileContext { crate_name: Some(krate.to_string()), kind: FileKind::Src },
            lexed,
            parsed,
        }
    }

    fn analyze(krate: &str, src: &str) -> LockAnalysis {
        let u = unit(&format!("crates/{krate}/src/lib.rs"), krate, src);
        let files = vec![&u];
        let model = CrateModel::build(krate, files);
        analyze_locks(&model)
    }

    #[test]
    fn consistent_order_is_clean() {
        let a = r"
            fn sweep(&self) {
                let threads = lock_recovering(&self.threads);
                let samples = lock_recovering(&self.samples);
                drop(samples);
                drop(threads);
            }
            fn other(&self) {
                let threads = lock_recovering(&self.threads);
                let samples = lock_recovering(&self.samples);
            }
        ";
        let out = analyze("obs", a);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.locks, 2);
        assert_eq!(out.lock_edges, 1);
    }

    #[test]
    fn direct_two_lock_cycle_is_flagged() {
        let src = r"
            fn ab(&self) {
                let a = lock_recovering(&self.alpha);
                let b = lock_recovering(&self.beta);
            }
            fn ba(&self) {
                let b = lock_recovering(&self.beta);
                let a = lock_recovering(&self.alpha);
            }
        ";
        let out = analyze("core", src);
        let cycles: Vec<_> = out.diagnostics.iter().filter(|d| d.rule == "lock-order").collect();
        assert_eq!(cycles.len(), 1, "{:?}", out.diagnostics);
        assert!(cycles[0].message.contains("alpha"), "{:?}", cycles[0]);
        assert!(cycles[0].message.contains("beta"));
    }

    #[test]
    fn cycle_through_call_graph_is_flagged() {
        let src = r"
            fn touch_alpha(&self) {
                let a = lock_recovering(&self.alpha);
            }
            fn holds_beta_then_calls(&self) {
                let b = lock_recovering(&self.beta);
                self.touch_alpha();
            }
            fn holds_alpha_then_beta(&self) {
                let a = lock_recovering(&self.alpha);
                let b = lock_recovering(&self.beta);
            }
        ";
        let src = &format!("impl S {{ {src} }}");
        let out = analyze("core", src);
        let cycles: Vec<_> = out.diagnostics.iter().filter(|d| d.rule == "lock-order").collect();
        assert_eq!(cycles.len(), 1, "{:?}", out.diagnostics);
        assert!(cycles[0].message.contains("alpha") && cycles[0].message.contains("beta"));
        // Both the direct alpha→beta edge and the call-graph beta→alpha
        // edge must exist for the cycle to close.
        assert_eq!(out.lock_edges, 2);
    }

    #[test]
    fn drop_releases_before_reacquire() {
        let src = r"
            fn ok(&self) {
                let a = lock_recovering(&self.alpha);
                drop(a);
                let b = lock_recovering(&self.beta);
            }
            fn also_ok(&self) {
                let b = lock_recovering(&self.beta);
                drop(b);
                let a = lock_recovering(&self.alpha);
            }
        ";
        let out = analyze("core", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.lock_edges, 0);
    }

    #[test]
    fn temporaries_release_at_statement_end() {
        let src = r"
            fn ok(&self) {
                lock_recovering(&self.alpha).push(1);
                lock_recovering(&self.beta).push(2);
            }
            fn rev(&self) {
                lock_recovering(&self.beta).push(2);
                lock_recovering(&self.alpha).push(1);
            }
        ";
        let out = analyze("core", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn serialization_under_lock_flagged_in_obs_only() {
        let src = r#"
            fn export(&self) -> String {
                let ring = lock_recovering(&self.ring);
                let mut out = String::new();
                for event in ring.iter() {
                    event.push_json_line(&mut out);
                }
                out
            }
        "#;
        let out = analyze("obs", src);
        let hits: Vec<_> =
            out.diagnostics.iter().filter(|d| d.rule == "no-side-effects-under-lock").collect();
        assert_eq!(hits.len(), 1, "{:?}", out.diagnostics);
        assert!(hits[0].message.contains("'ring'"), "{:?}", hits[0]);
        // Same code outside obs: the rule is scoped.
        assert!(analyze("cli", src).diagnostics.is_empty());
    }

    #[test]
    fn off_lock_serialization_is_clean() {
        let src = r#"
            fn export(&self) -> String {
                let events: Vec<TraceEvent> = {
                    let ring = lock_recovering(&self.ring);
                    ring.iter().cloned().collect()
                };
                let mut out = String::new();
                for event in events.iter() {
                    event.push_json_line(&mut out);
                }
                out
            }
        "#;
        let out = analyze("obs", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn transitive_io_under_lock_flagged() {
        let src = r#"
            fn log_line(&self, sock: &mut TcpStream, line: &str) {
                sock.write_all(line.as_bytes());
            }
            fn bad(&self, sock: &mut TcpStream) {
                let g = lock_recovering(&self.state);
                self.log_line(sock, "held");
            }
        "#;
        let src = &format!("impl S {{ {src} }}");
        let out = analyze("obs", src);
        let hits: Vec<_> =
            out.diagnostics.iter().filter(|d| d.rule == "no-side-effects-under-lock").collect();
        assert_eq!(hits.len(), 1, "{:?}", out.diagnostics);
        assert!(hits[0].message.contains("log_line"), "{:?}", hits[0]);
    }

    #[test]
    fn test_fns_are_out_of_scope() {
        let src = r"
            #[cfg(test)]
            mod tests {
                fn ab() { let a = GLOBAL.lock(); let b = OTHER.lock(); }
                fn ba() { let b = OTHER.lock(); let a = GLOBAL.lock(); }
            }
        ";
        let out = analyze("obs", src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }
}
