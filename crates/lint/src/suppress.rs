//! Inline suppression: `// lint:allow(<rule>[, <rule>...]) -- <reason>`.
//!
//! A trailing comment suppresses matching diagnostics on its own line; a
//! standalone comment suppresses them on the next line. The `-- reason` is
//! mandatory — an allow without a written justification is itself a
//! diagnostic, as is one naming an unknown rule or suppressing nothing
//! (dead annotations rot fast).

use crate::diag::Diagnostic;
use crate::lexer::Comment;
use crate::rules::rule_info;

/// The marker that introduces a suppression inside a comment.
const MARKER: &str = "lint:allow(";

/// One parsed `lint:allow` annotation.
#[derive(Debug)]
struct Suppression {
    /// Rules it names.
    rules: Vec<String>,
    /// Line whose diagnostics it suppresses.
    covers_line: u32,
    /// Where the annotation itself lives (for hygiene diagnostics).
    at_line: u32,
    /// Whether it suppressed at least one diagnostic.
    used: bool,
}

/// Applies suppressions from `comments` to `diags`, returning the surviving
/// diagnostics (hygiene problems appended) and the number suppressed.
///
/// `check_unused` disables the `suppression-unused` hygiene rule; the engine
/// turns it off under a `--rules` filter, where allows for out-of-filter
/// rules would otherwise look stale.
pub fn apply(
    rel_path: &str,
    comments: &[Comment],
    diags: Vec<Diagnostic>,
    check_unused: bool,
) -> (Vec<Diagnostic>, usize) {
    let mut suppressions: Vec<Suppression> = Vec::new();
    let mut hygiene: Vec<Diagnostic> = Vec::new();
    let mut problem = |line: u32, rule: &'static str, message: String| {
        hygiene.push(Diagnostic {
            file: rel_path.to_string(),
            line,
            col: 1,
            rule,
            severity: "error",
            message,
        });
    };

    for c in comments {
        // Suppressions live in plain `//` comments only: doc comments
        // (`///`, `//!`) and block comments are prose and may *mention* the
        // syntax (as this sentence just did) without enacting it.
        if !c.text.starts_with("//") || c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(start) = c.text.find(MARKER) else { continue };
        let after = &c.text[start + MARKER.len()..];
        let Some(close) = after.find(')') else {
            problem(
                c.line,
                "suppression-malformed",
                "lint:allow(...) is missing its closing parenthesis".into(),
            );
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            problem(c.line, "suppression-malformed", "lint:allow() names no rule".into());
            continue;
        }
        for r in &rules {
            if rule_info(r).is_none() {
                problem(
                    c.line,
                    "suppression-unknown-rule",
                    format!("lint:allow names unknown rule '{r}' (run with --list-rules)"),
                );
            }
        }
        let tail = after[close + 1..].trim();
        let reason_ok =
            tail.strip_prefix("--").map(str::trim).is_some_and(|reason| !reason.is_empty());
        if !reason_ok {
            problem(
                c.line,
                "suppression-missing-reason",
                "lint:allow must carry a justification: `// lint:allow(<rule>) -- <why this is safe>`"
                    .into(),
            );
        }
        let covers_line = if c.trailing { c.line } else { c.line + 1 };
        suppressions.push(Suppression { rules, covers_line, at_line: c.line, used: false });
    }

    let before = diags.len();
    let mut kept: Vec<Diagnostic> = Vec::new();
    for d in diags {
        let suppressed = suppressions
            .iter_mut()
            .find(|s| s.covers_line == d.line && s.rules.iter().any(|r| r == d.rule));
        match suppressed {
            Some(s) => s.used = true,
            None => kept.push(d),
        }
    }
    let n_suppressed = before - kept.len();

    for s in &suppressions {
        if check_unused && !s.used && s.rules.iter().all(|r| rule_info(r).is_some()) {
            problem(
                s.at_line,
                "suppression-unused",
                format!(
                    "lint:allow({}) suppresses nothing on line {}; remove the stale annotation",
                    s.rules.join(", "),
                    s.covers_line
                ),
            );
        }
    }

    kept.extend(hygiene);
    kept.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    (kept, n_suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FileContext, FileKind};
    use crate::lexer::lex;
    use crate::rules::check_file;

    fn run(src: &str) -> (Vec<Diagnostic>, usize) {
        let ctx = FileContext { crate_name: Some("ml".into()), kind: FileKind::Src };
        let lexed = lex(src);
        let diags = check_file("crates/ml/src/x.rs", &ctx, &lexed);
        apply("crates/ml/src/x.rs", &lexed.comments, diags, true)
    }

    #[test]
    fn unused_check_is_skippable_for_rule_filters() {
        let src = "// lint:allow(seeded-rng-only) -- rule outside the filter\nfn h() {}\n";
        let lexed = lex(src);
        let (kept, n) = apply("crates/ml/src/x.rs", &lexed.comments, Vec::new(), false);
        assert!(kept.is_empty(), "{kept:?}");
        assert_eq!(n, 0);
    }

    #[test]
    fn trailing_allow_with_reason_suppresses() {
        let src = "fn f(v: &[u32]) -> u32 { v.first().copied().unwrap() } // lint:allow(no-panic-in-lib) -- caller checks non-empty\n";
        let (kept, n) = run(src);
        assert!(kept.is_empty(), "{kept:?}");
        assert_eq!(n, 1);
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let src = "// lint:allow(no-panic-in-lib) -- infallible by construction\nfn f(v: &[u32]) -> u32 { v.first().copied().unwrap() }\n";
        let (kept, n) = run(src);
        assert!(kept.is_empty(), "{kept:?}");
        assert_eq!(n, 1);
    }

    #[test]
    fn missing_reason_is_its_own_diagnostic() {
        let src = "fn f(v: &[u32]) -> u32 { v.first().copied().unwrap() } // lint:allow(no-panic-in-lib)\n";
        let (kept, n) = run(src);
        assert_eq!(n, 1, "the violation is still suppressed");
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert_eq!(kept[0].rule, "suppression-missing-reason");
    }

    #[test]
    fn unknown_rule_and_unused_are_reported() {
        let src = "// lint:allow(no-such-rule) -- oops\nfn g() {}\n// lint:allow(seeded-rng-only) -- nothing here\nfn h() {}\n";
        let (kept, n) = run(src);
        assert_eq!(n, 0);
        let rules: Vec<&str> = kept.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"suppression-unknown-rule"), "{kept:?}");
        assert!(rules.contains(&"suppression-unused"), "{kept:?}");
    }

    #[test]
    fn doc_comments_never_enact_suppressions() {
        let src = "/// Example: `// lint:allow(no-panic-in-lib) -- reason`\nfn f(v: &[u32]) -> u32 { v.first().copied().unwrap() }\n";
        let (kept, n) = run(src);
        assert_eq!(n, 0, "doc comment must not suppress");
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert_eq!(kept[0].rule, "no-panic-in-lib");
    }

    #[test]
    fn allow_does_not_leak_to_other_rules_or_lines() {
        let src = "// lint:allow(total-cmp-for-floats) -- wrong rule\nfn f(v: &[u32]) -> u32 { v.first().copied().unwrap() }\n";
        let (kept, _) = run(src);
        let rules: Vec<&str> = kept.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"no-panic-in-lib"), "{kept:?}");
        assert!(rules.contains(&"suppression-unused"), "{kept:?}");
    }
}
