//! Doc-sync: the README's "Static analysis" rule table must list exactly
//! the rules the linter enforces, so `--list-rules`, the docs and the
//! engine never drift apart.

use nevermind_lint::RULES;
use std::collections::BTreeSet;

#[test]
fn readme_rule_table_matches_the_rules_table() {
    let path = format!("{}/../../README.md", env!("CARGO_MANIFEST_DIR"));
    let readme = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));

    // Only the "Static analysis" section holds the rule table; other
    // sections use the same | `code` | row shape for different content.
    let start = readme.find("## Static analysis").expect("README has a Static analysis section");
    let section = &readme[start..];
    let section = match section[3..].find("\n## ") {
        Some(end) => &section[..end + 3],
        None => section,
    };

    // Rows of the rule table look like: | `rule-id` | invariant ... |
    let documented: BTreeSet<&str> = section
        .lines()
        .filter_map(|l| {
            let l = l.trim();
            let rest = l.strip_prefix("| `")?;
            let (id, _) = rest.split_once('`')?;
            Some(id)
        })
        .collect();

    let enforced: BTreeSet<&str> = RULES.iter().map(|r| r.id).collect();
    let missing: Vec<&&str> = enforced.difference(&documented).collect();
    let stale: Vec<&&str> = documented.difference(&enforced).collect();
    assert!(
        missing.is_empty() && stale.is_empty(),
        "README rule table out of sync: missing {missing:?}, stale {stale:?}"
    );
    assert_eq!(documented.len(), RULES.len(), "one row per rule");
}
