//! Integration tests driving the full lint pipeline (lex → rules →
//! suppression) over the fixture files in `tests/fixtures/`.
//!
//! Fixtures hold violations on purpose, so the workspace walker skips any
//! directory named `fixtures`; these tests feed them through the same
//! per-file path the engine uses, under a synthetic workspace-relative
//! path that selects the crate role being exercised.

use nevermind_lint::context::classify;
use nevermind_lint::lexer::lex;
use nevermind_lint::rules::check_file;
use nevermind_lint::suppress;
use nevermind_lint::Diagnostic;

/// Lints a fixture as if it lived at `rel_path` in the workspace.
fn lint_as(fixture: &str, rel_path: &str) -> Vec<Diagnostic> {
    let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let ctx = classify(rel_path).unwrap_or_else(|| panic!("{rel_path} must classify"));
    let lexed = lex(&src);
    let raw = check_file(rel_path, &ctx, &lexed);
    let (kept, _) = suppress::apply(rel_path, &lexed.comments, raw, true);
    kept
}

fn rules_fired(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn panic_positive_fires_once_per_site() {
    let diags = lint_as("panic_positive.rs", "crates/ml/src/fixture.rs");
    let fired = rules_fired(&diags);
    assert_eq!(fired.len(), 5, "unwrap, expect, panic!, todo!, unimplemented!: {diags:?}");
    assert!(fired.iter().all(|r| *r == "no-panic-in-lib"), "{diags:?}");
    // Diagnostics carry real positions: all distinct, ascending lines.
    let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
    assert!(lines.windows(2).all(|w| w[0] < w[1]), "sorted positions: {lines:?}");
}

#[test]
fn panic_negative_is_clean_including_test_regions() {
    let diags = lint_as("panic_negative.rs", "crates/ml/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn panic_rule_silent_in_cli_and_test_files() {
    // The same violating fixture is fine in a binary crate, under tests/,
    // or in benches/ — panics there abort one run, not a dispatch loop.
    for rel in
        ["crates/cli/src/fixture.rs", "crates/ml/tests/fixture.rs", "crates/ml/benches/fixture.rs"]
    {
        let diags = lint_as("panic_positive.rs", rel);
        assert!(
            !rules_fired(&diags).contains(&"no-panic-in-lib"),
            "no-panic-in-lib must not fire at {rel}: {diags:?}"
        );
    }
}

#[test]
fn unordered_positive_fires_in_ordered_crates_only() {
    let diags = lint_as("unordered_positive.rs", "crates/features/src/fixture.rs");
    let fired = rules_fired(&diags);
    assert!(fired.iter().filter(|r| **r == "no-unordered-iteration").count() >= 2, "{diags:?}");

    // The CLI formats output; it may hash freely.
    let diags = lint_as("unordered_positive.rs", "crates/cli/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unordered_negative_is_clean() {
    let diags = lint_as("unordered_negative.rs", "crates/features/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn float_cmp_fixture_flags_partial_cmp_only() {
    let diags = lint_as("float_cmp.rs", "crates/ml/src/fixture.rs");
    // One partial_cmp (+ its unwrap) on the bad line; total_cmp is clean.
    assert!(rules_fired(&diags).contains(&"total-cmp-for-floats"), "{diags:?}");
    assert_eq!(diags.iter().filter(|d| d.rule == "total-cmp-for-floats").count(), 1, "{diags:?}");
    assert!(
        diags.iter().all(|d| d.line == 4 || d.rule != "total-cmp-for-floats"),
        "must point at the partial_cmp line: {diags:?}"
    );
}

#[test]
fn wallclock_fires_in_model_crates_not_in_obs_or_cli() {
    let diags = lint_as("wallclock.rs", "crates/core/src/fixture.rs");
    // Every token mention counts — the return-type positions as well as the
    // ::now() calls — because storing a clock value in model state is just
    // as non-replayable as reading one.
    assert_eq!(
        diags.iter().filter(|d| d.rule == "no-wallclock-in-model").count(),
        4,
        "Instant and SystemTime, in type and call position: {diags:?}"
    );
    for rel in ["crates/obs/src/fixture.rs", "crates/cli/src/fixture.rs"] {
        let diags = lint_as("wallclock.rs", rel);
        assert!(
            !rules_fired(&diags).contains(&"no-wallclock-in-model"),
            "clock reads are the obs/cli crates' job at {rel}: {diags:?}"
        );
    }
}

#[test]
fn rng_fixture_flags_ambient_entropy_everywhere() {
    // Replayability is global: even tests may not seed from the
    // environment.
    for rel in ["crates/ml/src/fixture.rs", "crates/cli/src/fixture.rs", "tests/fixture.rs"] {
        let diags = lint_as("rng.rs", rel);
        assert_eq!(
            diags.iter().filter(|d| d.rule == "seeded-rng-only").count(),
            2,
            "thread_rng + from_entropy at {rel}: {diags:?}"
        );
    }
}

#[test]
fn lock_fixture_flags_unwrap_not_recovery() {
    let diags = lint_as("lock.rs", "crates/obs/src/fixture.rs");
    let lock_diags: Vec<_> =
        diags.iter().filter(|d| d.rule == "no-poisoning-lock-unwrap").collect();
    assert_eq!(lock_diags.len(), 1, "{diags:?}");
    assert_eq!(lock_diags[0].line, 6, "must point at the .lock().unwrap() line");
}

#[test]
fn suppression_fixture_reasoned_allow_wins_reasonless_does_not() {
    let diags = lint_as("suppressed.rs", "crates/ml/src/fixture.rs");
    let fired = rules_fired(&diags);
    // The acknowledged site is gone; the reasonless allow leaves both its
    // hygiene diagnostic and nothing else missing.
    assert!(fired.contains(&"suppression-missing-reason"), "{diags:?}");
    assert!(
        !diags.iter().any(|d| d.rule == "no-panic-in-lib" && d.line == 4),
        "reasoned allow must suppress its line: {diags:?}"
    );
}

#[test]
fn trace_fields_fixture_flags_dynamic_names_everywhere() {
    // The trace vocabulary is global: emission sites live in core, dslsim,
    // ml *and* the cli, so the rule is not scoped to a crate list.
    for rel in ["crates/core/src/fixture.rs", "crates/cli/src/fixture.rs", "tests/fixture.rs"] {
        let diags = lint_as("trace_fields.rs", rel);
        let fired: Vec<_> =
            diags.iter().filter(|d| d.rule == "trace-event-fields-are-static").collect();
        assert_eq!(fired.len(), 3, "variable, format!, and &format! names at {rel}: {diags:?}");
        // The literal-name chain and the unrelated `.attr` field are clean.
        assert!(fired.iter().all(|d| d.line == 8 || d.line == 10 || d.line == 12), "{diags:?}");
    }
}

#[test]
fn sampler_fixture_flags_the_sweep_loop_only() {
    let diags = lint_as("sampler.rs", "crates/obs/src/fixture.rs");
    let fired: Vec<_> = diags.iter().filter(|d| d.rule == "no-blocking-in-sampler").collect();
    assert_eq!(
        fired.len(),
        5,
        "counter, snapshot, format!, to_string, span! inside mod sampler: {diags:?}"
    );
    // Lines 7-11 are the sampler body; the look-alike module and the
    // top-level function reuse the same tokens and must stay clean.
    assert!(fired.iter().all(|d| (7..=11).contains(&d.line)), "{diags:?}");
    // The rule is about the sweep loop wherever it lives, not a crate list.
    let diags = lint_as("sampler.rs", "crates/cli/src/fixture.rs");
    assert_eq!(diags.iter().filter(|d| d.rule == "no-blocking-in-sampler").count(), 5, "{diags:?}");
}

#[test]
fn tokenizer_fixture_proves_strings_and_comments_never_match() {
    for rel in ["crates/ml/src/fixture.rs", "crates/core/src/fixture.rs"] {
        let diags = lint_as("tokenizer.rs", rel);
        assert!(diags.is_empty(), "banned names in strings/comments matched at {rel}: {diags:?}");
    }
}

#[test]
fn engine_skips_fixture_directories() {
    // The workspace walk must never pick up these deliberately violating
    // files: lint the lint crate's own directory and check no diagnostic
    // points into fixtures/.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let report = nevermind_lint::lint_workspace(std::path::Path::new(root))
        .expect("workspace lints from a checkout");
    assert!(
        report.diagnostics.iter().all(|d| !d.file.contains("fixtures/")),
        "fixtures leaked into the workspace walk"
    );
}
