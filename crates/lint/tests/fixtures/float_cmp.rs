// Fixture: partial_cmp on floats fires total-cmp-for-floats (line 4);
// total_cmp does not (line 7).
fn bad(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
fn good(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
}
