// Fixture: .lock().unwrap() fires no-poisoning-lock-unwrap (and
// no-panic-in-lib); recovering from poisoning does not fire the lock rule.
use std::sync::Mutex;

fn bad(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
fn good(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|p| p.into_inner())
}
