//! Clean lock usage: every path acquires `alpha` before `beta`, and the
//! sweep drops its first guard before taking the next — no cycle.

struct Registry {
    alpha: Mutex<Vec<u64>>,
    beta: Mutex<Vec<u64>>,
}

impl Registry {
    fn forward(&self) {
        let a = lock_recovering(&self.alpha);
        let b = lock_recovering(&self.beta);
        b.len();
        a.len();
    }

    fn also_forward(&self) {
        let a = lock_recovering(&self.alpha);
        self.touch_beta();
        a.len();
    }

    fn sequential(&self) {
        let b = lock_recovering(&self.beta);
        drop(b);
        let a = lock_recovering(&self.alpha);
        a.len();
    }

    fn touch_beta(&self) {
        lock_recovering(&self.beta).clear();
    }
}
