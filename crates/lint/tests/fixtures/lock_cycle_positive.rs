//! Seeded `lock-order` violation: two paths acquire the same pair of
//! locks in opposite orders, one of them through a call-graph edge.

struct Registry {
    alpha: Mutex<Vec<u64>>,
    beta: Mutex<Vec<u64>>,
}

impl Registry {
    fn forward(&self) {
        let a = lock_recovering(&self.alpha);
        let b = lock_recovering(&self.beta);
        b.len();
        a.len();
    }

    fn backward(&self) {
        let b = lock_recovering(&self.beta);
        self.touch_alpha();
        b.len();
    }

    fn touch_alpha(&self) {
        lock_recovering(&self.alpha).clear();
    }
}
