//! Clean hash-iteration flows: a sort before the sink, and an ordered
//! container that never taints.

fn export_sorted(counts: &HashMap<String, u64>, buf: &TraceBuffer) {
    let mut lines: Vec<String> = counts.iter().map(|(k, v)| format!("{k} {v}")).collect();
    lines.sort();
    for line in &lines {
        buf.emit(TraceEvent::new("score").attr("name", line.clone()));
    }
}

fn export_ordered(counts: &BTreeMap<String, u64>, buf: &TraceBuffer) {
    for (k, v) in counts.iter() {
        buf.emit(TraceEvent::new("score").attr("name", k.clone()).attr("count", *v));
    }
}
