//! Seeded `nondeterminism-dataflow` violation: HashMap iteration output
//! reaches a trace sink without an intervening sort.

fn export(counts: &HashMap<String, u64>, buf: &TraceBuffer) {
    let lines: Vec<String> = counts.iter().map(|(k, v)| format!("{k} {v}")).collect();
    for line in &lines {
        buf.emit(TraceEvent::new("score").attr("name", line.clone()));
    }
}
