// Fixture: nothing here may fire no-panic-in-lib.
fn a(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}
// The word unwrap() in a comment is prose, not code.
fn b() -> &'static str {
    "call .unwrap() at your peril; panic!(now)"
}
fn c(x: Option<u32>) -> u32 {
    x.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = vec![1u32];
        assert_eq!(v.first().copied().unwrap(), 1);
        if false {
            panic!("tests may panic");
        }
    }
}
