// Fixture: every line here must fire no-panic-in-lib when classified as
// library-crate src.
fn a(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}
fn b(v: &[u32]) -> u32 {
    v.first().copied().expect("non-empty")
}
fn c() {
    panic!("boom");
}
fn d() {
    todo!()
}
fn e() {
    unimplemented!()
}
