// Fixture: ambient entropy fires seeded-rng-only; seeding from a constant
// does not.
fn bad_thread() {
    let _ = rand::thread_rng();
}
fn bad_entropy() {
    let _ = rand_chacha::ChaCha8Rng::from_entropy();
}
fn good() {
    let _ = rand_chacha::ChaCha8Rng::seed_from_u64(42);
}
