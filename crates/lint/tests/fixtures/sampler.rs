// Fixture: registry access and per-sample allocation inside `mod sampler`
// fire no-blocking-in-sampler; the same tokens outside the sampler region
// are clean (the rule is scoped to the profiler sweep loop, not the crate).
mod sampler {
    pub(super) fn run(stop: &std::sync::atomic::AtomicBool) {
        let reg = crate::global();
        reg.counter("obs/sweeps").add(1);
        let snap = reg.snapshot();
        let label = format!("sweep {}", snap.counters.len());
        let owned = label.to_string();
        crate::span!("obs/sample");
        drop((stop, owned));
    }
}

mod sampler_adjacent {
    // A module whose name merely *contains* "sampler" is out of scope.
    pub(super) fn tick() {
        let reg = crate::global();
        reg.counter("obs/other").add(1);
    }
}

fn outside() {
    let reg = crate::global();
    reg.counter("obs/outside").add(1);
    let s = format!("fine {}", 1).to_string();
    drop(s);
}
