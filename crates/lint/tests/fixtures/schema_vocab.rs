//! Vocabulary producer for the `schema-drift` fixtures: one schema
//! string, one trace kind, one metric name. The tests pair this file
//! with `schema_doc_good.md` (in sync) and `schema_doc_drifted.md`
//! (missing the metric, promising a schema the code dropped).

fn describe(reg: &Registry, buf: &TraceBuffer) -> &'static str {
    reg.counter("fixture/widgets").add(1);
    buf.emit(TraceEvent::new("fixture_kind").attr("schema", "nevermind-fixture/v3"));
    "nevermind-fixture/v3"
}
