//! Pass-level suppression hygiene: the first export acknowledges its
//! under-lock serialization with a reasoned allow; the second tries the
//! same without a reason, which is itself a diagnostic.

struct Buffer {
    ring: Mutex<Vec<Event>>,
}

impl Buffer {
    fn export_acknowledged(&self) -> String {
        let ring = lock_recovering(&self.ring);
        let mut out = String::new();
        for event in ring.iter() {
            // lint:allow(no-side-effects-under-lock) -- fixture: ring is bounded to 4 entries
            event.push_json_line(&mut out);
        }
        out
    }

    fn export_reasonless(&self) -> String {
        let ring = lock_recovering(&self.ring);
        let mut out = String::new();
        for event in ring.iter() {
            // lint:allow(no-side-effects-under-lock)
            event.push_json_line(&mut out);
        }
        out
    }
}
