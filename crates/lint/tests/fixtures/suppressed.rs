// Fixture: a violation acknowledged with a reasoned lint:allow survives as
// zero diagnostics; one without a reason keeps a hygiene diagnostic.
fn acknowledged(v: &[u32]) -> u32 {
    v.first().copied().unwrap() // lint:allow(no-panic-in-lib) -- fixture: caller checks non-empty
}
// lint:allow(no-panic-in-lib)
fn missing_reason(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}
