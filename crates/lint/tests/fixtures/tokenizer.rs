// Fixture: every banned name below lives only inside strings, raw strings,
// or comments — the tokenizer must hide all of them, so this file is clean.
// .unwrap() panic!() HashMap thread_rng Instant::now partial_cmp
fn strings() -> Vec<&'static str> {
    vec![
        "x.unwrap()",
        "panic!(\"no\")",
        "HashMap::new()",
        "thread_rng()",
        "Instant::now()",
        "a.partial_cmp(&b)",
        ".lock().unwrap()",
        "from_entropy()",
    ]
}
/* block comment: .unwrap() and SystemTime::now() are prose here too */
fn raw() -> &'static str {
    r#"even in raw strings: .expect("x") and HashSet"#
}
