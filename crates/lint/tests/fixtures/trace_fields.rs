//! Fixture for `trace-event-fields-are-static`: field names passed to
//! `.attr(...)` must be string literals.

fn emit(ev: nevermind_obs::trace::TraceEvent, name: &'static str, i: usize) {
    // Clean: literal names keep the nevermind-trace/v1 vocabulary closed.
    let ev = ev.attr("margin", 1.5).attr("rank", 3u32);
    // Violation: a variable name is opaque to `explain`/`report`.
    let ev = ev.attr(name, 1.0);
    // Violation: runtime formatting mints unbounded field names.
    let ev = ev.attr(format!("feature_{i}"), 2.0);
    // Violation: a reference to a formatted name is just as opaque.
    let _ = ev.attr(&format!("f{i}")[..], 3.0);
}

// Unrelated `attr` identifiers are not trace field names.
fn not_a_trace_call(node: &Node) -> u32 {
    let attr = node.attr;
    attr
}
