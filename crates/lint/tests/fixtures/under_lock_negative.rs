//! Clean export shape: copy the data out inside a nested block so the
//! guard drops, then serialize off-lock.

struct Buffer {
    ring: Mutex<Vec<Event>>,
}

impl Buffer {
    fn export(&self) -> String {
        let tail = {
            let ring = lock_recovering(&self.ring);
            ring.iter().cloned().collect::<Vec<Event>>()
        };
        let mut out = String::new();
        for event in &tail {
            event.push_json_line(&mut out);
        }
        out
    }
}
