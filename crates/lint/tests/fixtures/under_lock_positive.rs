//! Seeded `no-side-effects-under-lock` violations (meaningful only when
//! linted as `nevermind-obs` source): serialization and socket I/O while
//! a guard is live.

struct Buffer {
    ring: Mutex<Vec<Event>>,
}

impl Buffer {
    fn export(&self) -> String {
        let ring = lock_recovering(&self.ring);
        let mut out = String::new();
        for event in ring.iter() {
            event.push_json_line(&mut out);
        }
        out
    }

    fn stream(&self, sock: &mut TcpStream) {
        let ring = lock_recovering(&self.ring);
        sock.write_all(b"hello").ok();
        ring.len();
    }
}
