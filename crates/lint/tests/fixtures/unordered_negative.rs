// Fixture: ordered collections never fire no-unordered-iteration, and the
// words HashMap/HashSet in strings or comments are prose.
use std::collections::BTreeMap;
use std::collections::BTreeSet;

fn a() -> BTreeMap<u32, f64> {
    BTreeMap::new()
}
fn b() -> BTreeSet<u32> {
    BTreeSet::new()
}
fn c() -> &'static str {
    "HashMap iteration order is nondeterministic; HashSet too"
}
