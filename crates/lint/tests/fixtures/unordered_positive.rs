// Fixture: HashMap/HashSet in an ordered crate must fire
// no-unordered-iteration.
use std::collections::HashMap;
use std::collections::HashSet;

fn a() -> HashMap<u32, f64> {
    HashMap::new()
}
fn b() -> HashSet<u32> {
    HashSet::new()
}
