// Fixture: clock reads in model-crate src fire no-wallclock-in-model.
fn bad_instant() -> std::time::Instant {
    std::time::Instant::now()
}
fn bad_system_time() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
fn good() -> &'static str {
    "Instant::now() in a string is prose"
}
