//! Fixture self-tests for the semantic passes: each pass must catch its
//! seeded violation (positive fixture) and stay silent on the clean
//! counterpart (negative fixture), through the same frontend the engine
//! uses — including pass-level `lint:allow` suppression hygiene.

use nevermind_lint::context::classify;
use nevermind_lint::flow::analyze_flow;
use nevermind_lint::lexer::lex;
use nevermind_lint::parser::parse;
use nevermind_lint::schema::analyze_schema;
use nevermind_lint::semantic::{analyze_locks, CrateModel, FileUnit};
use nevermind_lint::suppress;
use nevermind_lint::Diagnostic;

fn fixture_text(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lexes and parses a fixture as if it lived at `rel_path`.
fn unit(fixture: &str, rel_path: &str) -> FileUnit {
    let src = fixture_text(fixture);
    let ctx = classify(rel_path).unwrap_or_else(|| panic!("{rel_path} must classify"));
    let lexed = lex(&src);
    let parsed = parse(&lexed.tokens);
    FileUnit { rel: rel_path.to_string(), ctx, lexed, parsed }
}

fn lock_diags(fixture: &str, rel_path: &str, krate: &str) -> Vec<Diagnostic> {
    let u = unit(fixture, rel_path);
    let model = CrateModel::build(krate, vec![&u]);
    analyze_locks(&model).diagnostics
}

#[test]
fn lock_cycle_positive_flags_the_two_lock_cycle() {
    let diags = lock_diags("lock_cycle_positive.rs", "crates/obs/src/fixture.rs", "obs");
    let cycles: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "lock-order").collect();
    assert!(!cycles.is_empty(), "{diags:?}");
    assert!(
        cycles.iter().any(|d| d.message.contains("alpha") && d.message.contains("beta")),
        "cycle names both locks: {cycles:?}"
    );
}

#[test]
fn lock_cycle_negative_is_clean() {
    let diags = lock_diags("lock_cycle_negative.rs", "crates/obs/src/fixture.rs", "obs");
    assert!(diags.iter().all(|d| d.rule != "lock-order"), "{diags:?}");
}

#[test]
fn under_lock_positive_flags_serialization_and_socket_io() {
    let diags = lock_diags("under_lock_positive.rs", "crates/obs/src/fixture.rs", "obs");
    let fired: Vec<&Diagnostic> =
        diags.iter().filter(|d| d.rule == "no-side-effects-under-lock").collect();
    assert_eq!(fired.len(), 2, "push_json_line and write_all: {diags:?}");
}

#[test]
fn under_lock_rule_is_scoped_to_obs() {
    let diags = lock_diags("under_lock_positive.rs", "crates/cli/src/fixture.rs", "cli");
    assert!(diags.iter().all(|d| d.rule != "no-side-effects-under-lock"), "{diags:?}");
}

#[test]
fn under_lock_negative_copy_out_shape_is_clean() {
    let diags = lock_diags("under_lock_negative.rs", "crates/obs/src/fixture.rs", "obs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn nondet_positive_flags_unsorted_hash_iteration_export() {
    let u = unit("nondet_positive.rs", "crates/obs/src/fixture.rs");
    let model = CrateModel::build("obs", vec![&u]);
    let diags = analyze_flow(&model);
    assert!(diags.iter().any(|d| d.rule == "nondeterminism-dataflow"), "{diags:?}");
}

#[test]
fn nondet_negative_sorted_and_ordered_flows_are_clean() {
    let u = unit("nondet_negative.rs", "crates/obs/src/fixture.rs");
    let model = CrateModel::build("obs", vec![&u]);
    let diags = analyze_flow(&model);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn schema_fixture_is_clean_against_the_good_doc() {
    let u = unit("schema_vocab.rs", "crates/obs/src/fixture.rs");
    let docs = vec![("DESIGN.md".to_string(), fixture_text("schema_doc_good.md"))];
    let diags = analyze_schema(&[&u], &docs);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn schema_fixture_fails_on_the_drifted_doc_in_both_directions() {
    let u = unit("schema_vocab.rs", "crates/obs/src/fixture.rs");
    let docs = vec![("DESIGN.md".to_string(), fixture_text("schema_doc_drifted.md"))];
    let diags = analyze_schema(&[&u], &docs);
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(diags.iter().all(|d| d.rule == "schema-drift"), "{diags:?}");
    // Code → docs: the metric the registry omits.
    assert!(msgs.iter().any(|m| m.contains("'fixture/widgets'")), "{msgs:?}");
    // Docs → code: the trace kind the code never emits.
    assert!(msgs.iter().any(|m| m.contains("'retired_kind'")), "{msgs:?}");
    // Prose: the retired schema version still promised in the text.
    assert!(msgs.iter().any(|m| m.contains("'nevermind-fixture/v2'")), "{msgs:?}");
}

#[test]
fn semantic_diagnostics_honor_reasoned_allows_and_flag_reasonless_ones() {
    let u = unit("semantic_suppressed.rs", "crates/obs/src/fixture.rs");
    let model = CrateModel::build("obs", vec![&u]);
    let raw = analyze_locks(&model).diagnostics;
    assert_eq!(
        raw.iter().filter(|d| d.rule == "no-side-effects-under-lock").count(),
        2,
        "both exports violate before suppression: {raw:?}"
    );
    let (kept, suppressed) = suppress::apply(&u.rel, &u.lexed.comments, raw, true);
    assert_eq!(suppressed, 2, "both allows suppress their line: {kept:?}");
    assert!(
        kept.iter().any(|d| d.rule == "suppression-missing-reason"),
        "the reasonless allow is itself flagged: {kept:?}"
    );
    assert!(
        kept.iter().all(|d| d.rule != "no-side-effects-under-lock"),
        "no violation survives unsuppressed: {kept:?}"
    );
}
