//! Gaussian Naive Bayes — a second cheap baseline ranker for the model
//! ablation (BStump vs linear vs NB vs deep tree).
//!
//! Per-class Gaussians per feature, fitted NaN-aware; at prediction time a
//! missing feature simply contributes no likelihood term (the NB analogue
//! of the stump's abstention). Variances are floored to keep degenerate
//! features from dominating the log-odds.

use crate::data::{Dataset, FeatureMatrix};
use crate::stats::RunningMoments;
use serde::{Deserialize, Serialize};

/// A fitted Gaussian Naive Bayes model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianNb {
    prior_log_odds: f64,
    /// Per-feature (mean, variance) under the positive class.
    pos: Vec<(f64, f64)>,
    /// Per-feature (mean, variance) under the negative class.
    neg: Vec<(f64, f64)>,
}

impl GaussianNb {
    /// Fits class-conditional Gaussians.
    ///
    /// # Panics
    /// Panics on an empty dataset or one without both classes.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let n_pos = data.n_positive();
        let n_neg = data.len() - n_pos;
        assert!(n_pos > 0 && n_neg > 0, "need both classes to fit Naive Bayes");

        let p = data.x.n_cols();
        let mut pos_stats = vec![RunningMoments::new(); p];
        let mut neg_stats = vec![RunningMoments::new(); p];
        for r in 0..data.len() {
            let row = data.x.row(r);
            let stats = if data.y[r] { &mut pos_stats } else { &mut neg_stats };
            for (c, stat) in stats.iter_mut().enumerate() {
                stat.push(f64::from(row[c]));
            }
        }

        // Variance floor: a pooled fraction of the overall spread keeps
        // near-constant features from producing infinite log-likelihoods.
        let moments = |stats: &[RunningMoments]| -> Vec<(f64, f64)> {
            stats
                .iter()
                .map(|s| {
                    let mean = if s.count() > 0 { s.mean() } else { 0.0 };
                    let var = if s.count() > 1 { s.variance() } else { f64::NAN };
                    (mean, var)
                })
                .collect()
        };
        let mut pos = moments(&pos_stats);
        let mut neg = moments(&neg_stats);
        for c in 0..p {
            let pooled = match (pos[c].1.is_nan(), neg[c].1.is_nan()) {
                (false, false) => (pos[c].1 + neg[c].1) / 2.0,
                (false, true) => pos[c].1,
                (true, false) => neg[c].1,
                (true, true) => 1.0,
            };
            let floor = (pooled * 1e-3).max(1e-9);
            pos[c].1 = if pos[c].1.is_nan() { pooled.max(floor) } else { pos[c].1.max(floor) };
            neg[c].1 = if neg[c].1.is_nan() { pooled.max(floor) } else { neg[c].1.max(floor) };
        }

        Self { prior_log_odds: (n_pos as f64 / n_neg as f64).ln(), pos, neg }
    }

    /// Log-odds `log P(y=1|x) − log P(y=0|x)` for one row; missing features
    /// are skipped.
    pub fn log_odds(&self, row: &[f32]) -> f64 {
        let mut score = self.prior_log_odds;
        for (c, &v) in row.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            let v = f64::from(v);
            score += log_gauss(v, self.pos[c].0, self.pos[c].1)
                - log_gauss(v, self.neg[c].0, self.neg[c].1);
        }
        score
    }

    /// Posterior probability via the logistic of the log-odds.
    pub fn probability(&self, row: &[f32]) -> f64 {
        crate::stats::sigmoid(self.log_odds(row))
    }

    /// Log-odds for every row of a matrix.
    pub fn log_odds_batch(&self, x: &FeatureMatrix) -> Vec<f64> {
        (0..x.n_rows()).map(|r| self.log_odds(x.row(r))).collect()
    }
}

fn log_gauss(x: f64, mean: f64, var: f64) -> f64 {
    let d = x - mean;
    -0.5 * (d * d / var) - 0.5 * var.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::FeatureMeta;
    use crate::metrics::auc;
    use rand::{RngExt, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn gauss(rng: &mut ChaCha8Rng) -> f64 {
        let u1: f64 = rng.random_range(1e-12..1.0);
        let u2: f64 = rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn shifted_gaussians(n: usize, shift: f64, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let meta = vec![FeatureMeta::continuous("a"), FeatureMeta::continuous("b")];
        let mut values = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.random_bool(0.3);
            let mu = if y { shift } else { 0.0 };
            values.push((mu + gauss(&mut rng)) as f32);
            values.push(gauss(&mut rng) as f32);
            labels.push(y);
        }
        Dataset::new(FeatureMatrix::new(n, meta, values), labels)
    }

    #[test]
    fn separates_shifted_gaussians() {
        let train = shifted_gaussians(4000, 2.0, 1);
        let test = shifted_gaussians(2000, 2.0, 2);
        let nb = GaussianNb::fit(&train);
        let scores = nb.log_odds_batch(&test.x);
        let a = auc(&scores, &test.y);
        assert!(a > 0.9, "AUC {a}");
    }

    #[test]
    fn prior_dominates_with_no_signal() {
        let train = shifted_gaussians(4000, 0.0, 3);
        let nb = GaussianNb::fit(&train);
        // With identical class conditionals, the posterior stays near the
        // base rate for typical rows.
        let p = nb.probability(&[0.0, 0.0]);
        assert!((p - 0.3).abs() < 0.1, "posterior {p}");
    }

    #[test]
    fn missing_features_are_skipped() {
        let train = shifted_gaussians(2000, 2.0, 4);
        let nb = GaussianNb::fit(&train);
        let with_signal = nb.log_odds(&[3.0, 0.0]);
        let missing_signal = nb.log_odds(&[f32::NAN, 0.0]);
        assert!(with_signal > missing_signal, "signal must move the score");
        // All-missing row falls back to the prior.
        let all_missing = nb.log_odds(&[f32::NAN, f32::NAN]);
        assert!((all_missing - nb.prior_log_odds).abs() < 1e-12);
    }

    #[test]
    fn constant_feature_does_not_explode() {
        let meta = vec![FeatureMeta::continuous("const"), FeatureMeta::continuous("sig")];
        let n = 200;
        let mut values = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            values.push(5.0f32);
            values.push(if i % 2 == 0 { 1.0 } else { -1.0 });
            labels.push(i % 2 == 0);
        }
        let data = Dataset::new(FeatureMatrix::new(n, meta, values), labels);
        let nb = GaussianNb::fit(&data);
        let s = nb.log_odds(&[5.0, 1.0]);
        assert!(s.is_finite());
        assert!(nb.probability(&[5.0, 1.0]) > 0.9);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn rejects_single_class() {
        let meta = vec![FeatureMeta::continuous("f")];
        let data = Dataset::new(FeatureMatrix::new(2, meta, vec![1.0, 2.0]), vec![true, true]);
        let _ = GaussianNb::fit(&data);
    }
}
