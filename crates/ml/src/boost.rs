//! **BStump**: confidence-rated AdaBoost over decision stumps.
//!
//! This is the paper's classifier (Sec. 4.4, Fig. 5): at each of `T`
//! iterations the algorithm picks the single feature/threshold stump that
//! minimizes the Schapire–Singer `Z` objective under the current example
//! weights, adds its real-valued scores to the ensemble, and reweights the
//! examples by `exp(-y·g_t(x))`. The final model is linear in the stump
//! outputs — the property the paper relies on for robustness to the heavy
//! label noise in ticket data (unreported problems are mislabelled
//! negatives).
//!
//! The trainer can fan the per-iteration stump search out across threads
//! with `std::thread` scoped threads; results are bit-identical to the serial
//! path because ties are broken by `(Z, feature index)` in both.

use crate::data::{Dataset, FeatureMatrix};
use crate::stump::{best_stump_for_feature, BinnedDataset, Stump, StumpSearchResult, MISSING_BIN};
use serde::{Deserialize, Serialize};

/// Training configuration for [`BStump`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoostConfig {
    /// Number of boosting iterations `T` (the paper uses 800 for the ticket
    /// predictor and 200 for the trouble locator, both via cross-validation).
    pub iterations: usize,
    /// Maximum number of quantile bins per feature for the threshold search.
    pub n_bins: usize,
    /// Score-smoothing ε; `None` uses the Schapire–Singer default `1/(2n)`.
    pub smoothing: Option<f64>,
    /// Whether to parallelize the per-iteration stump search across features.
    pub parallel: bool,
}

impl Default for BoostConfig {
    fn default() -> Self {
        Self { iterations: 200, n_bins: 64, smoothing: None, parallel: true }
    }
}

impl BoostConfig {
    /// Config with a given iteration count and defaults elsewhere.
    pub fn with_iterations(iterations: usize) -> Self {
        Self { iterations, ..Self::default() }
    }
}

/// A trained boosted-stump ensemble.
///
/// The model's raw output is the *margin* `f(x) = Σ_t g_t(x)`; positive
/// margins vote for the positive class (a future ticket). Use
/// [`crate::calibrate::PlattScale`] to map margins to probabilities.
///
/// ```
/// use nevermind_ml::boost::{BStump, BoostConfig};
/// use nevermind_ml::data::{Dataset, FeatureMatrix, FeatureMeta};
///
/// // A one-feature problem: positives live above 2.5.
/// let x = FeatureMatrix::new(
///     4,
///     vec![FeatureMeta::continuous("f")],
///     vec![1.0, 2.0, 3.0, 4.0],
/// );
/// let data = Dataset::new(x, vec![false, false, true, true]);
/// let model = BStump::fit(&data, &BoostConfig::with_iterations(5));
/// assert!(model.margin(&[4.0]) > 0.0);
/// assert!(model.margin(&[1.0]) < 0.0);
/// assert_eq!(model.margin(&[f32::NAN]), 0.0); // abstains on missing
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BStump {
    stumps: Vec<Stump>,
    n_features: usize,
}

impl BStump {
    /// Trains on a dataset with uniform initial weights.
    pub fn fit(data: &Dataset, config: &BoostConfig) -> Self {
        let n = data.len();
        let w0 = vec![1.0 / n.max(1) as f64; n];
        Self::fit_weighted(&data.x, &data.y, &w0, config)
    }

    /// Trains with caller-supplied initial weights (they are normalized
    /// internally).
    ///
    /// # Panics
    /// Panics if the label or weight slices do not match the matrix rows, or
    /// if the dataset is empty.
    pub fn fit_weighted(
        x: &FeatureMatrix,
        y: &[bool],
        initial_weights: &[f64],
        config: &BoostConfig,
    ) -> Self {
        assert_eq!(x.n_rows(), y.len(), "label/row mismatch");
        assert_eq!(x.n_rows(), initial_weights.len(), "weight/row mismatch");
        assert!(x.n_rows() > 0, "cannot train on an empty dataset");

        let binned = BinnedDataset::from_matrix(x, config.n_bins);
        let candidates: Vec<usize> = (0..x.n_cols()).collect();
        Self::fit_binned(&binned, y, initial_weights, config, &candidates)
    }

    /// Trains from an already-binned dataset, restricted to the given
    /// candidate feature columns (lets callers amortize binning across many
    /// models — e.g. the per-feature selection models train one single-column
    /// model per candidate from one shared binning).
    pub fn fit_binned(
        binned: &BinnedDataset,
        y: &[bool],
        initial_weights: &[f64],
        config: &BoostConfig,
        candidate_features: &[usize],
    ) -> Self {
        let _span = nevermind_obs::span!("ml/bstump_fit");
        nevermind_obs::counter_add!("ml/boost_rounds", config.iterations);
        let n = binned.n_rows();
        let n_features = binned.n_features();
        let smoothing = config.smoothing.unwrap_or(1.0 / (2.0 * n as f64));
        let mut weights: Vec<f64> = initial_weights.to_vec();
        normalize(&mut weights);

        let features: Vec<usize> = candidate_features.to_vec();
        let mut stumps = Vec::with_capacity(config.iterations);

        // Per-feature split-bin cache lets us score training rows from bins
        // rather than raw values.
        for _t in 0..config.iterations {
            let result = if config.parallel && features.len() >= 8 {
                search_parallel(binned, &features, y, &weights, smoothing)
            } else {
                search_serial(binned, &features, y, &weights, smoothing)
            };
            let Some(res) = result else { break };
            // Z >= 1 means the stump no longer reduces training loss; any
            // further rounds would just oscillate.
            if res.z >= 1.0 - 1e-12 {
                break;
            }

            apply_weight_update(binned, &res.stump, y, &mut weights);
            stumps.push(res.stump);
        }

        Self { stumps, n_features }
    }

    /// Raw margin `Σ_t g_t(x)` for one feature row.
    pub fn margin(&self, row: &[f32]) -> f64 {
        self.stumps.iter().map(|s| s.score(row)).sum()
    }

    /// Margins for every row of a matrix.
    ///
    /// # Panics
    /// Panics if the matrix has fewer columns than the training data.
    pub fn margins(&self, x: &FeatureMatrix) -> Vec<f64> {
        assert!(
            x.n_cols() >= self.n_features,
            "matrix has {} columns, model expects {}",
            x.n_cols(),
            self.n_features
        );
        (0..x.n_rows()).map(|r| self.margin(x.row(r))).collect()
    }

    /// Margins of every row after each of the requested iteration
    /// checkpoints (ascending). Returned as one margin vector per
    /// checkpoint; checkpoints beyond the trained length are clamped.
    ///
    /// This is what cross-validated iteration-count selection uses: train
    /// once with the maximum `T`, then evaluate every candidate `T` from the
    /// staged margins instead of retraining.
    pub fn staged_margins(&self, x: &FeatureMatrix, checkpoints: &[usize]) -> Vec<Vec<f64>> {
        let mut acc = vec![0.0f64; x.n_rows()];
        let mut out = Vec::with_capacity(checkpoints.len());
        let mut next_stump = 0usize;
        for &cp in checkpoints {
            let cp = cp.min(self.stumps.len());
            while next_stump < cp {
                let s = &self.stumps[next_stump];
                for (r, slot) in acc.iter_mut().enumerate() {
                    *slot += s.score(x.row(r));
                }
                next_stump += 1;
            }
            out.push(acc.clone());
        }
        out
    }

    /// The trained weak learners, in boosting order.
    pub fn stumps(&self) -> &[Stump] {
        &self.stumps
    }

    /// Number of feature columns the model was trained against.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// How many stumps reference each feature — a crude importance measure
    /// used when rendering the Fig-9 model structure.
    pub fn feature_usage(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_features];
        for s in &self.stumps {
            counts[s.feature] += 1;
        }
        counts
    }
}

fn normalize(weights: &mut [f64]) {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");
    for w in weights.iter_mut() {
        *w /= total;
    }
}

fn search_serial(
    binned: &BinnedDataset,
    features: &[usize],
    y: &[bool],
    weights: &[f64],
    smoothing: f64,
) -> Option<StumpSearchResult> {
    let mut best: Option<StumpSearchResult> = None;
    for &f in features {
        if let Some(res) = best_stump_for_feature(f, binned.feature(f), y, weights, smoothing) {
            if better(&res, best.as_ref()) {
                best = Some(res);
            }
        }
    }
    best
}

fn search_parallel(
    binned: &BinnedDataset,
    features: &[usize],
    y: &[bool],
    weights: &[f64],
    smoothing: f64,
) -> Option<StumpSearchResult> {
    let n_threads = std::thread::available_parallelism().map_or(1, |p| p.get()).min(features.len());
    if n_threads <= 1 {
        return search_serial(binned, features, y, weights, smoothing);
    }
    let chunk = features.len().div_ceil(n_threads);
    let mut per_chunk: Vec<Option<StumpSearchResult>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = features
            .chunks(chunk)
            .map(|fs| scope.spawn(move || search_serial(binned, fs, y, weights, smoothing)))
            .collect();
        for h in handles {
            // lint:allow(no-panic-in-lib) -- re-raises a worker-thread panic instead of deadlocking
            per_chunk.push(h.join().expect("stump search thread panicked"));
        }
    });

    // Deterministic reduction: ties break on the lowest feature index,
    // matching the serial path (chunks are in feature order).
    let mut best: Option<StumpSearchResult> = None;
    for res in per_chunk.into_iter().flatten() {
        if better(&res, best.as_ref()) {
            best = Some(res);
        }
    }
    best
}

/// Whether `candidate` beats `incumbent` under `(Z, feature index)` order.
fn better(candidate: &StumpSearchResult, incumbent: Option<&StumpSearchResult>) -> bool {
    match incumbent {
        None => true,
        Some(inc) => {
            candidate.z < inc.z
                || (candidate.z == inc.z && candidate.stump.feature < inc.stump.feature)
        }
    }
}

/// Applies the AdaBoost weight update `w_i ← w_i·exp(-y_i·g(x_i))` using the
/// binned representation (threshold comparisons reduce to bin comparisons).
fn apply_weight_update(binned: &BinnedDataset, stump: &Stump, y: &[bool], weights: &mut [f64]) {
    let feature = binned.feature(stump.feature);
    // The stump threshold is always one of the bin edges; rows in bins up to
    // and including that edge go left.
    let split_bin = feature.edges.partition_point(|&e| e < stump.threshold) as u16;
    for ((&bin, &label), w) in feature.bin_of_row.iter().zip(y).zip(weights.iter_mut()) {
        let g = if bin == MISSING_BIN {
            0.0
        } else if bin <= split_bin {
            stump.s_le
        } else {
            stump.s_gt
        };
        let signed = if label { g } else { -g };
        *w *= (-signed).exp();
    }
    normalize(weights);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::FeatureMeta;
    use rand::{RngExt, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Synthetic problem: positives live in the corner x0 > 0.5 AND x1 > 0.5,
    /// with optional label noise. Two noise features are included.
    fn corner_dataset(n: usize, noise: f64, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let meta = vec![
            FeatureMeta::continuous("x0"),
            FeatureMeta::continuous("x1"),
            FeatureMeta::continuous("n0"),
            FeatureMeta::continuous("n1"),
        ];
        let mut values = Vec::with_capacity(n * 4);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x0: f32 = rng.random();
            let x1: f32 = rng.random();
            values.extend_from_slice(&[x0, x1, rng.random(), rng.random()]);
            let mut y = x0 > 0.5 && x1 > 0.5;
            if rng.random_bool(noise) {
                y = !y;
            }
            labels.push(y);
        }
        Dataset::new(FeatureMatrix::new(n, meta, values), labels)
    }

    fn accuracy(model: &BStump, data: &Dataset) -> f64 {
        let margins = model.margins(&data.x);
        let correct = margins.iter().zip(&data.y).filter(|(&m, &y)| (m > 0.0) == y).count();
        correct as f64 / data.len() as f64
    }

    #[test]
    fn learns_conjunction() {
        let train = corner_dataset(2000, 0.0, 1);
        let test = corner_dataset(1000, 0.0, 2);
        let model = BStump::fit(&train, &BoostConfig::with_iterations(60));
        let acc = accuracy(&model, &test);
        assert!(acc > 0.95, "test accuracy {acc}");
    }

    #[test]
    fn tolerates_label_noise() {
        let train = corner_dataset(3000, 0.15, 3);
        let test = corner_dataset(1000, 0.0, 4); // evaluate on clean labels
        let model = BStump::fit(&train, &BoostConfig::with_iterations(60));
        let acc = accuracy(&model, &test);
        assert!(acc > 0.85, "noisy-label test accuracy {acc}");
    }

    #[test]
    fn margin_is_sum_of_stump_scores() {
        let train = corner_dataset(500, 0.0, 5);
        let model = BStump::fit(&train, &BoostConfig::with_iterations(10));
        let row = train.x.row(0);
        let manual: f64 = model.stumps().iter().map(|s| s.score(row)).sum();
        assert!((model.margin(row) - manual).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial() {
        let train = corner_dataset(800, 0.05, 6);
        let mut cfg = BoostConfig::with_iterations(25);
        cfg.parallel = false;
        let serial = BStump::fit(&train, &cfg);
        cfg.parallel = true;
        let parallel = BStump::fit(&train, &cfg);
        assert_eq!(serial.stumps(), parallel.stumps());
    }

    #[test]
    fn deterministic_across_runs() {
        let train = corner_dataset(800, 0.05, 7);
        let cfg = BoostConfig::with_iterations(25);
        let a = BStump::fit(&train, &cfg);
        let b = BStump::fit(&train, &cfg);
        assert_eq!(a.stumps(), b.stumps());
    }

    #[test]
    fn handles_missing_values() {
        // Half the signal column is missing; the model should still learn.
        let mut train = corner_dataset(2000, 0.0, 8);
        for r in (0..train.len()).step_by(2) {
            train.x.set(r, 0, f32::NAN);
        }
        let test = corner_dataset(1000, 0.0, 9);
        let model = BStump::fit(&train, &BoostConfig::with_iterations(80));
        let acc = accuracy(&model, &test);
        assert!(acc > 0.85, "accuracy with missing data {acc}");
    }

    #[test]
    fn stops_early_when_no_progress() {
        // A binary feature with perfectly balanced labels on each side has
        // Z = 1 exactly: no stump can reduce the loss, so training stops
        // immediately instead of burning through the iteration budget.
        let meta = vec![FeatureMeta::continuous("f")];
        let x = FeatureMatrix::new(4, meta, vec![0.0, 0.0, 1.0, 1.0]);
        let y = vec![true, false, true, false];
        let cfg = BoostConfig { iterations: 5000, parallel: false, ..BoostConfig::default() };
        let model = BStump::fit_weighted(&x, &y, &[0.25; 4], &cfg);
        assert!(model.stumps().is_empty(), "trained {} stumps", model.stumps().len());
    }

    #[test]
    fn weighted_fit_respects_weights() {
        // Two contradictory points; the heavier one dictates the sign.
        let meta = vec![FeatureMeta::continuous("f")];
        let x = FeatureMatrix::new(2, meta, vec![1.0, 2.0]);
        let y = vec![true, false];
        let cfg = BoostConfig { iterations: 5, n_bins: 4, smoothing: Some(1e-3), parallel: false };
        let model = BStump::fit_weighted(&x, &y, &[0.9, 0.1], &cfg);
        assert!(model.margin(&[1.0]) > 0.0);
        let model2 = BStump::fit_weighted(&x, &y, &[0.1, 0.9], &cfg);
        assert!(model2.margin(&[2.0]) < 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let train = corner_dataset(300, 0.0, 12);
        let model = BStump::fit(&train, &BoostConfig::with_iterations(10));
        let json = serde_json::to_string(&model).expect("serialize");
        let back: BStump = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(model.stumps(), back.stumps());
        assert_eq!(model.n_features(), back.n_features());
    }

    #[test]
    fn feature_usage_counts() {
        let train = corner_dataset(1000, 0.0, 13);
        let model = BStump::fit(&train, &BoostConfig::with_iterations(30));
        let usage = model.feature_usage();
        assert_eq!(usage.len(), 4);
        assert_eq!(usage.iter().sum::<usize>(), model.stumps().len());
        // The two signal features should dominate usage.
        assert!(usage[0] + usage[1] > usage[2] + usage[3]);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_dataset() {
        let x = FeatureMatrix::new(0, vec![FeatureMeta::continuous("f")], vec![]);
        let _ = BStump::fit_weighted(&x, &[], &[], &BoostConfig::default());
    }
}
