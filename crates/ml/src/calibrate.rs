//! Platt scaling — the paper's "logistic calibration" step that converts
//! boosting margins into posterior probabilities `P(Tkt(u)|x)`.
//!
//! Implementation follows Platt (1999) with the numerically robust Newton
//! iteration of Lin, Lin & Weng (2007), including the prior-corrected target
//! probabilities that keep the fit well-behaved on heavily imbalanced data —
//! exactly the regime of ticket prediction, where positives are below 1%.

use crate::stats::sigmoid;
use serde::{Deserialize, Serialize};

/// Why a calibration fit was rejected before any Newton step ran.
///
/// Calibration sits downstream of feature extraction, so malformed
/// operational data (an empty evaluation window, a NaN margin from a
/// corrupted measurement) surfaces here first; returning it as an error lets
/// the pipeline skip the week instead of crashing mid-dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrateError {
    /// No `(margin, label)` pairs at all — e.g. an evaluation window that
    /// contains zero scored line-days.
    Empty,
    /// `margins` and `labels` disagree in length.
    LengthMismatch {
        /// Number of margins supplied.
        margins: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// A margin is NaN or infinite (index of the first offender).
    NonFiniteMargin {
        /// Index of the first non-finite margin.
        index: usize,
    },
}

impl std::fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "cannot calibrate on empty data"),
            Self::LengthMismatch { margins, labels } => {
                write!(f, "margin/label mismatch: {margins} margins vs {labels} labels")
            }
            Self::NonFiniteMargin { index } => {
                write!(f, "non-finite margin at index {index}")
            }
        }
    }
}

impl std::error::Error for CalibrateError {}

/// A fitted sigmoid map `p = σ(a·margin + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlattScale {
    /// Slope applied to the margin.
    pub a: f64,
    /// Intercept.
    pub b: f64,
}

impl PlattScale {
    /// Fits the sigmoid on `(margin, label)` pairs.
    ///
    /// # Errors
    /// Returns [`CalibrateError`] when the slices differ in length, are
    /// empty, or contain a non-finite margin — all symptoms of a malformed
    /// week of measurements that should be skipped, not panicked on.
    pub fn fit(margins: &[f64], labels: &[bool]) -> Result<Self, CalibrateError> {
        let _span = nevermind_obs::span!("ml/platt_fit");
        if margins.len() != labels.len() {
            return Err(CalibrateError::LengthMismatch {
                margins: margins.len(),
                labels: labels.len(),
            });
        }
        if margins.is_empty() {
            return Err(CalibrateError::Empty);
        }
        if let Some(index) = margins.iter().position(|m| !m.is_finite()) {
            return Err(CalibrateError::NonFiniteMargin { index });
        }

        let n_pos = labels.iter().filter(|&&y| y).count() as f64;
        let n_neg = labels.len() as f64 - n_pos;
        // Prior-corrected targets (Platt 1999, Sec. 2.2).
        let t_pos = (n_pos + 1.0) / (n_pos + 2.0);
        let t_neg = 1.0 / (n_neg + 2.0);
        let targets: Vec<f64> = labels.iter().map(|&y| if y { t_pos } else { t_neg }).collect();

        // Newton iterations on (a, b); start from the prior log-odds.
        // (In this crate's parametrization p = σ(a·m + b), so the neutral
        // starting point has σ(b) equal to the base rate.)
        let mut a = 0.0f64;
        let mut b = ((n_pos + 1.0) / (n_neg + 1.0)).ln();
        const MAX_ITER: usize = 100;
        const MIN_STEP: f64 = 1e-10;
        const SIGMA: f64 = 1e-12; // Levenberg–Marquardt style damping

        let nll = |a: f64, b: f64| -> f64 {
            margins
                .iter()
                .zip(&targets)
                .map(|(&m, &t)| {
                    let z = a * m + b;
                    // Stable cross-entropy: t*log(p) + (1-t)*log(1-p).
                    let log_p = -softplus(-z);
                    let log_1p = -softplus(z);
                    -(t * log_p + (1.0 - t) * log_1p)
                })
                .sum()
        };

        let mut f_val = nll(a, b);
        for _ in 0..MAX_ITER {
            // Gradient and Hessian of the NLL.
            let (mut g_a, mut g_b) = (0.0f64, 0.0f64);
            let (mut h_aa, mut h_ab, mut h_bb) = (SIGMA, 0.0f64, SIGMA);
            for (&m, &t) in margins.iter().zip(&targets) {
                let p = sigmoid(a * m + b);
                let d = p - t;
                g_a += d * m;
                g_b += d;
                let w = p * (1.0 - p);
                h_aa += w * m * m;
                h_ab += w * m;
                h_bb += w;
            }
            if g_a.abs() < 1e-9 && g_b.abs() < 1e-9 {
                break;
            }
            let det = h_aa * h_bb - h_ab * h_ab;
            let d_a = -(h_bb * g_a - h_ab * g_b) / det;
            let d_b = -(h_aa * g_b - h_ab * g_a) / det;

            // Backtracking line search.
            let mut step = 1.0f64;
            let mut improved = false;
            while step >= MIN_STEP {
                let (na, nb) = (a + step * d_a, b + step * d_b);
                let nf = nll(na, nb);
                if nf < f_val - 1e-12 {
                    a = na;
                    b = nb;
                    f_val = nf;
                    improved = true;
                    break;
                }
                step *= 0.5;
            }
            if !improved {
                break;
            }
        }

        Ok(Self { a, b })
    }

    /// Maps a raw margin to a calibrated probability.
    #[inline]
    pub fn probability(&self, margin: f64) -> f64 {
        sigmoid(self.a * margin + self.b)
    }

    /// Maps a batch of margins to probabilities.
    pub fn probabilities(&self, margins: &[f64]) -> Vec<f64> {
        margins.iter().map(|&m| self.probability(m)).collect()
    }

    /// Like [`Self::probability`], additionally emitting a `"calibrate"`
    /// decision-provenance event carrying the Platt coefficients and the
    /// margin→probability step, keyed by line and simulated day. The
    /// returned value is bit-identical to [`Self::probability`]; with
    /// tracing disabled the extra cost is one relaxed atomic load.
    pub fn probability_traced(&self, margin: f64, line: u32, day: u32) -> f64 {
        let p = self.probability(margin);
        if nevermind_obs::trace::enabled() {
            nevermind_obs::trace::global().emit(
                nevermind_obs::trace::TraceEvent::new("calibrate")
                    .line(line)
                    .day(day)
                    .attr("margin", margin)
                    .attr("a", self.a)
                    .attr("b", self.b)
                    .attr("probability", p),
            );
        }
        p
    }
}

/// One bin of a reliability (calibration) curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityBin {
    /// Mean predicted probability of the examples in the bin.
    pub mean_predicted: f64,
    /// Empirical positive rate of the examples in the bin.
    pub empirical_rate: f64,
    /// Number of examples in the bin.
    pub count: usize,
}

/// Reliability curve: predictions bucketed into `n_bins` equal-width
/// probability bins, comparing the mean prediction against the realized
/// positive rate. A well-calibrated model tracks the diagonal.
///
/// Empty bins are omitted.
pub fn reliability_curve(
    probabilities: &[f64],
    labels: &[bool],
    n_bins: usize,
) -> Vec<ReliabilityBin> {
    assert_eq!(probabilities.len(), labels.len(), "probability/label mismatch");
    assert!(n_bins >= 2, "need at least two bins");
    let mut sums = vec![0.0f64; n_bins];
    let mut hits = vec![0usize; n_bins];
    let mut counts = vec![0usize; n_bins];
    for (&p, &y) in probabilities.iter().zip(labels) {
        if p.is_nan() {
            continue;
        }
        let b = ((p * n_bins as f64).floor() as usize).min(n_bins - 1);
        sums[b] += p;
        counts[b] += 1;
        if y {
            hits[b] += 1;
        }
    }
    (0..n_bins)
        .filter(|&b| counts[b] > 0)
        .map(|b| ReliabilityBin {
            mean_predicted: sums[b] / counts[b] as f64,
            empirical_rate: hits[b] as f64 / counts[b] as f64,
            count: counts[b],
        })
        .collect()
}

/// Expected calibration error: the count-weighted mean absolute gap between
/// predicted probability and realized positive rate across the equal-width
/// bins of [`reliability_curve`].
///
/// `0` means perfectly calibrated; a model that says 0.9 when the truth is
/// 0.5 scores 0.4. NaN predictions are skipped (as in the curve itself);
/// returns 0 when nothing remains.
pub fn expected_calibration_error(probabilities: &[f64], labels: &[bool], n_bins: usize) -> f64 {
    let bins = reliability_curve(probabilities, labels, n_bins);
    let total: usize = bins.iter().map(|b| b.count).sum();
    if total == 0 {
        return 0.0;
    }
    bins.iter()
        .map(|b| (b.count as f64 / total as f64) * (b.mean_predicted - b.empirical_rate).abs())
        .sum()
}

/// Brier score: mean squared error of the predicted probabilities against
/// the 0/1 outcomes. Lower is better; a clairvoyant model scores 0 and an
/// always-0.5 model scores 0.25. NaN predictions are skipped; returns 0
/// when nothing remains.
pub fn brier_score(probabilities: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(probabilities.len(), labels.len(), "probability/label mismatch");
    let mut sum = 0.0f64;
    let mut n = 0usize;
    for (&p, &y) in probabilities.iter().zip(labels) {
        if p.is_nan() {
            continue;
        }
        let d = p - if y { 1.0 } else { 0.0 };
        sum += d * d;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// `log(1 + exp(x))` computed without overflow.
#[inline]
fn softplus(x: f64) -> f64 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Margins drawn so that `P(y=1|m) = σ(2m - 1)`; Platt should recover
    /// roughly (a, b) ≈ (2, -1).
    fn synthetic(n: usize, seed: u64) -> (Vec<f64>, Vec<bool>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut margins = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let m: f64 = rng.random_range(-3.0..3.0);
            let p = sigmoid(2.0 * m - 1.0);
            margins.push(m);
            labels.push(rng.random_bool(p));
        }
        (margins, labels)
    }

    #[test]
    fn recovers_generating_sigmoid() {
        let (m, y) = synthetic(20_000, 1);
        let platt = PlattScale::fit(&m, &y).expect("valid synthetic data");
        assert!((platt.a - 2.0).abs() < 0.15, "a = {}", platt.a);
        assert!((platt.b + 1.0).abs() < 0.15, "b = {}", platt.b);
    }

    #[test]
    fn probabilities_monotone_in_margin() {
        let (m, y) = synthetic(5000, 2);
        let platt = PlattScale::fit(&m, &y).expect("valid synthetic data");
        assert!(platt.a > 0.0, "positive slope expected");
        let lo = platt.probability(-1.0);
        let hi = platt.probability(1.0);
        assert!(hi > lo);
    }

    #[test]
    fn calibrated_probabilities_are_in_range() {
        let (m, y) = synthetic(1000, 3);
        let platt = PlattScale::fit(&m, &y).expect("valid synthetic data");
        for &margin in &m {
            let p = platt.probability(margin);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn handles_imbalanced_data() {
        // 1% positives, like the ticket-prediction base rate.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut margins = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..10_000 {
            let y = rng.random_bool(0.01);
            let m: f64 = if y { rng.random_range(0.0..2.0) } else { rng.random_range(-2.0..0.5) };
            margins.push(m);
            labels.push(y);
        }
        let platt = PlattScale::fit(&margins, &labels).expect("valid synthetic data");
        // Average predicted probability should be near the base rate.
        let avg: f64 =
            margins.iter().map(|&m| platt.probability(m)).sum::<f64>() / margins.len() as f64;
        assert!((avg - 0.01).abs() < 0.01, "avg calibrated prob {avg}");
    }

    #[test]
    fn handles_degenerate_single_class() {
        // All negatives: the fit must not diverge and must emit low probs.
        let margins = vec![-1.0, 0.0, 1.0, 2.0];
        let labels = vec![false; 4];
        let platt = PlattScale::fit(&margins, &labels).expect("valid synthetic data");
        for &m in &margins {
            assert!(platt.probability(m) < 0.5);
        }
    }

    #[test]
    fn batch_matches_scalar() {
        let (m, y) = synthetic(200, 5);
        let platt = PlattScale::fit(&m, &y).expect("valid synthetic data");
        let batch = platt.probabilities(&m);
        for (i, &margin) in m.iter().enumerate() {
            assert_eq!(batch[i], platt.probability(margin));
        }
    }

    #[test]
    fn reliability_curve_tracks_a_calibrated_model() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut probs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..20_000 {
            let p: f64 = rng.random();
            probs.push(p);
            labels.push(rng.random_bool(p));
        }
        let bins = reliability_curve(&probs, &labels, 10);
        assert!(bins.len() == 10);
        for b in &bins {
            assert!(
                (b.mean_predicted - b.empirical_rate).abs() < 0.05,
                "bin off the diagonal: {b:?}"
            );
        }
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 20_000);
    }

    #[test]
    fn reliability_curve_flags_overconfidence() {
        // A model that says 0.9 when the truth is 0.5 lands far off-diagonal.
        let probs = vec![0.9; 1000];
        let labels: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        let bins = reliability_curve(&probs, &labels, 10);
        assert_eq!(bins.len(), 1);
        assert!((bins[0].mean_predicted - 0.9).abs() < 1e-9);
        assert!((bins[0].empirical_rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_empty_input() {
        assert_eq!(PlattScale::fit(&[], &[]), Err(CalibrateError::Empty));
    }

    #[test]
    fn rejects_length_mismatch() {
        assert_eq!(
            PlattScale::fit(&[0.5], &[true, false]),
            Err(CalibrateError::LengthMismatch { margins: 1, labels: 2 })
        );
    }

    #[test]
    fn rejects_non_finite_margins() {
        // A corrupted measurement propagating a NaN margin must surface as
        // a recoverable error, not a diverged or silently wrong fit.
        assert_eq!(
            PlattScale::fit(&[0.2, f64::NAN, 0.4], &[true, false, true]),
            Err(CalibrateError::NonFiniteMargin { index: 1 })
        );
        assert_eq!(
            PlattScale::fit(&[f64::INFINITY], &[true]),
            Err(CalibrateError::NonFiniteMargin { index: 0 })
        );
    }

    #[test]
    fn ece_near_zero_for_calibrated_and_large_for_overconfident() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut probs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..20_000 {
            let p: f64 = rng.random();
            probs.push(p);
            labels.push(rng.random_bool(p));
        }
        let ece = expected_calibration_error(&probs, &labels, 10);
        assert!(ece < 0.02, "calibrated model: ece = {ece}");

        let over = vec![0.9; 1000];
        let half: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        let ece = expected_calibration_error(&over, &half, 10);
        assert!((ece - 0.4).abs() < 1e-9, "overconfident model: ece = {ece}");
    }

    #[test]
    fn ece_skips_nans_and_handles_empty() {
        assert_eq!(expected_calibration_error(&[], &[], 10), 0.0);
        assert_eq!(expected_calibration_error(&[f64::NAN], &[true], 10), 0.0);
        let ece = expected_calibration_error(&[0.5, f64::NAN], &[true, false], 10);
        assert!((ece - 0.5).abs() < 1e-9);
    }

    #[test]
    fn brier_score_known_values() {
        assert_eq!(brier_score(&[], &[]), 0.0);
        assert_eq!(brier_score(&[1.0, 0.0], &[true, false]), 0.0, "clairvoyant");
        assert_eq!(brier_score(&[0.5, 0.5], &[true, false]), 0.25, "coin-flip");
        let with_nan = brier_score(&[f64::NAN, 0.2], &[true, false]);
        assert!((with_nan - 0.04).abs() < 1e-12);
    }
}
